//! Differential armor for the synchronous-round parallel refinement
//! (`kway::refine_pass_parallel`, the `threads >= 2` regime of the k-way
//! dispatch), run against two independent sequential implementations:
//!
//! * `kway::refine_pass` — the production sequential pass (delta-maintained
//!   [`KwayGains`] container, LIFO tie-breaks, best-prefix rollback);
//! * `kway::refine_pass_reference` — the suite's test oracle, which
//!   recomputes every candidate gain from scratch and shares no gain
//!   bookkeeping with either production path.
//!
//! Over the same property-test corpus as `tests/kway_invariants.rs`
//! (0–50% fixed vertices drawn uniformly, k ∈ {2, 3, 4}), every engine
//! must return a *legal* solution — fixities honoured, balance satisfied,
//! and the reported cut equal to an independent `CutState` recompute — and
//! the parallel rounds must never worsen the input and must stay inside a
//! pinned envelope of the sequential cut.
//!
//! The second half adversarially attacks the round engine's conflict
//! resolution with equal-gain gadget swarms: hundreds of disjoint gadgets
//! proposing identical gains, so the `(gain desc, vertex id asc)` merge
//! order is the *only* thing deciding who moves. The outcome must be
//! byte-identical for every worker count (chunk boundaries shift with the
//! budget), each vertex must move at most once per round, and the applied
//! sequence must follow the merge order.

use std::collections::HashSet;

use vlsi_rng::{ChaCha8Rng, Rng, RngCore, SeedableRng};
use vlsi_testkit::gen::{distinct_sorted, RawInstance};
use vlsi_testkit::{prop_test, TestRng};

use fixed_vertices_repro::vlsi_hypergraph::{
    BalanceConstraint, CutState, FixedVertices, Fixity, Hypergraph, HypergraphBuilder, Objective,
    PartId, Tolerance, VertexId,
};
use fixed_vertices_repro::vlsi_partition::trace::{Event, VecSink};
use fixed_vertices_repro::vlsi_partition::{
    kway, random_initial, KwayRefiner, PartitionResult, Refiner, RunCtx,
};

// --- shared corpus (mirrors tests/kway_invariants.rs) --------------------

/// Instances with a *uniformly drawn* fixed fraction in 0–50%; the part
/// count is derived from the instance seed (k ∈ {2, 3, 4}).
fn instance_with_random_fix_fraction(rng: &mut TestRng) -> RawInstance {
    let n = rng.gen_range(60..140usize);
    let weights = vec![1u64; n];
    let num_nets = rng.gen_range(n..3 * n);
    let net_gen = distinct_sorted(n, 2..5);
    let nets: Vec<Vec<usize>> = (0..num_nets).map(|_| net_gen(rng)).collect();
    let frac = rng.gen_range(0.0..0.5);
    let fixities: Vec<Option<u8>> = (0..n)
        .map(|_| {
            if rng.gen_bool(frac) {
                Some(rng.gen_range(0..4u8))
            } else {
                None
            }
        })
        .collect();
    RawInstance {
        weights,
        nets,
        fixities,
        seed: rng.next_u64(),
    }
}

/// The instance's part count: k ∈ {2, 3, 4}, derived from its seed.
fn part_count(inst: &RawInstance) -> usize {
    2 + (inst.seed % 3) as usize
}

fn build(inst: &RawInstance, k: usize) -> (Hypergraph, FixedVertices) {
    let mut hb = HypergraphBuilder::new();
    for &w in &inst.weights {
        hb.add_vertex(w);
    }
    for net in &inst.nets {
        if net.len() >= 2 && net.iter().all(|&i| i < inst.weights.len()) {
            hb.add_net(1, net.iter().map(|&i| VertexId::from_index(i)))
                .expect("valid net");
        }
    }
    let hg = hb.build().expect("valid hypergraph");
    let fixities = inst
        .fixities
        .iter()
        .map(|f| match f {
            None => Fixity::Free,
            Some(p) => Fixity::Fixed(PartId((*p as usize % k) as u32)),
        })
        .chain(std::iter::repeat(Fixity::Free))
        .take(inst.weights.len())
        .collect();
    (hg, FixedVertices::from_fixities(fixities))
}

/// Even k-way balance with 10% per-part tolerance (the multiway sweep's
/// setting).
fn kway_balance(hg: &Hypergraph, k: usize) -> BalanceConstraint {
    BalanceConstraint::even(k, &[hg.total_weight()], Tolerance::Relative(0.1))
}

/// Full legality of a refinement result: every part id in range, every
/// fixity honoured, balance satisfied, and the reported cut equal to an
/// independent from-scratch recompute of the objective.
fn assert_legal(
    engine: &str,
    hg: &Hypergraph,
    fixed: &FixedVertices,
    balance: &BalanceConstraint,
    k: usize,
    objective: Objective,
    result: &PartitionResult,
) {
    let mut loads = vec![0u64; k];
    for v in hg.vertices() {
        let p = result.parts[v.index()];
        assert!(
            p.index() < k,
            "{engine}: vertex {v} assigned out-of-range part"
        );
        loads[p.index()] += hg.vertex_weight(v);
        if let Fixity::Fixed(fp) = fixed.fixity(v) {
            assert_eq!(p, fp, "{engine}: fixed vertex {v} left its assigned part");
        }
    }
    assert!(
        balance.is_satisfied(&loads),
        "{engine}: balance violated: loads {loads:?} of {}",
        hg.total_weight()
    );
    let recomputed = CutState::new(hg, k, &result.parts).value(objective);
    assert_eq!(
        result.cut, recomputed,
        "{engine}: reported {objective:?} diverged from recompute"
    );
}

// --- the differential property -------------------------------------------

/// Cut envelope: the round engine only takes strictly-positive-gain moves
/// under strict balance, while the sequential pass explores zero/negative
/// moves with best-prefix rollback, so the sequential cut can be better
/// (on this corpus the parallel cut actually wins more often than not).
/// The worst gap observed over the fixed corpora below is ~30% of the
/// sequential cut (seq 61 → par 79); the pinned bound grants a third plus
/// a small absolute slack for near-zero cuts.
fn cut_envelope(seq_cut: u64) -> u64 {
    seq_cut + seq_cut / 3 + 4
}

fn differential_case(inst: &RawInstance, objective: Objective) {
    let k = part_count(inst);
    let (hg, fixed) = build(inst, k);
    let balance = kway_balance(&hg, k);
    let mut rng = ChaCha8Rng::seed_from_u64(inst.seed);
    let Ok(initial) = random_initial(&hg, &fixed, &balance, k, &mut rng) else {
        return; // infeasible fixity mask — erroring out is the correct behaviour
    };
    let before = CutState::new(&hg, k, &initial).value(objective);

    let seq = kway::refine_pass(&hg, &fixed, &balance, initial.clone(), objective)
        .expect("sequential pass refines");
    let oracle = kway::refine_pass_reference(&hg, &fixed, &balance, initial.clone(), objective)
        .expect("reference oracle refines");
    let par = kway::refine_pass_parallel(&hg, &fixed, &balance, initial, objective, 4)
        .expect("parallel rounds refine");

    assert_legal("sequential", &hg, &fixed, &balance, k, objective, &seq);
    assert_legal(
        "reference-oracle",
        &hg,
        &fixed,
        &balance,
        k,
        objective,
        &oracle,
    );
    assert_legal("parallel-rounds", &hg, &fixed, &balance, k, objective, &par);

    assert!(
        par.cut <= before,
        "parallel rounds worsened {objective:?}: {before} -> {}",
        par.cut
    );
    assert!(
        par.cut <= cut_envelope(seq.cut),
        "parallel rounds left the sequential envelope: parallel {} vs sequential {} \
         (allowed {})",
        par.cut,
        seq.cut,
        cut_envelope(seq.cut)
    );
}

prop_test! {
    /// Cut objective: all three engines legal, parallel never worsens the
    /// input and stays inside the sequential envelope.
    #[cases(48)]
    fn parallel_rounds_match_sequential_oracles_cut(inst in instance_with_random_fix_fraction) {
        differential_case(&inst, Objective::Cut);
    }

    /// Same contract for the k−1 objective (the paper's multiway metric).
    #[cases(32)]
    fn parallel_rounds_match_sequential_oracles_kminus1(
        inst in instance_with_random_fix_fraction
    ) {
        differential_case(&inst, Objective::KMinus1);
    }
}

// --- adversarial equal-gain conflict resolution ---------------------------

/// Per-gadget type vector for [`gadget_instance`]: hundreds of disjoint
/// 4-vertex gadgets, drawn large enough (n = 4·|types| ≥ 2200) that the
/// proposal scan actually forks 2–3 workers and chunk boundaries shift
/// with the thread budget.
fn gadget_types(rng: &mut TestRng) -> Vec<u8> {
    let g = rng.gen_range(550..900usize);
    (0..g)
        .map(|_| if rng.gen_bool(0.5) { 2 } else { 1 })
        .collect()
}

/// Builds the equal-gain swarm. Gadget `g` owns vertices `4g..4g+4`
/// (`a, b, c, d`), initially `a, d → part 0` and `b, c → part 1`:
///
/// * type 2: nets `{a,b}` and `{a,c}`, both cut — moving `a` to part 1
///   gains exactly 2; moving `b` or `c` to part 0 gains exactly 1.
/// * type 1: net `{a,b}` only — every move gains exactly 1.
/// * `d` is an isolated filler keeping the initial assignment balanced.
///
/// Gadgets are pairwise disjoint, so every type-2 gadget proposes the same
/// gain-2 move and balance only admits ~10% of them per side: which ones
/// move is decided *purely* by the `(gain desc, vertex id asc)` merge
/// order — the adversarial case for chunking-dependent conflict
/// resolution.
fn gadget_instance(types: &[u8]) -> (Hypergraph, Vec<PartId>) {
    let mut hb = HypergraphBuilder::new();
    let n = types.len() * 4;
    for _ in 0..n {
        hb.add_vertex(1);
    }
    for (g, &t) in types.iter().enumerate() {
        let a = VertexId::from_index(4 * g);
        let b = VertexId::from_index(4 * g + 1);
        let c = VertexId::from_index(4 * g + 2);
        hb.add_net(1, [a, b]).expect("valid net");
        if t >= 2 {
            hb.add_net(1, [a, c]).expect("valid net");
        }
    }
    let hg = hb.build().expect("valid gadget swarm");
    let initial: Vec<PartId> = (0..n)
        .map(|i| PartId::from_index(if i % 4 == 0 || i % 4 == 3 { 0 } else { 1 }))
        .collect();
    (hg, initial)
}

prop_test! {
    /// The round engine's answer is a pure function of the merge order:
    /// any worker count — and therefore any chunk partition of the
    /// proposal scan — returns the byte-identical assignment.
    #[cases(12)]
    fn equal_gain_conflicts_resolve_identically_for_any_chunking(types in gadget_types) {
        let (hg, initial) = gadget_instance(&types);
        let k = 2;
        let fixed = FixedVertices::all_free(hg.num_vertices());
        let balance = kway_balance(&hg, k);
        let before = CutState::new(&hg, k, &initial).value(Objective::Cut);

        let base =
            kway::refine_pass_parallel(&hg, &fixed, &balance, initial.clone(), Objective::Cut, 1)
                .expect("gadget swarm refines");
        assert_legal("round-1worker", &hg, &fixed, &balance, k, Objective::Cut, &base);
        assert!(
            base.cut < before,
            "balance admits moves, so the swarm must improve: {before} -> {}",
            base.cut
        );
        for threads in [2usize, 3, 5, 8] {
            let r = kway::refine_pass_parallel(
                &hg, &fixed, &balance, initial.clone(), Objective::Cut, threads,
            )
            .expect("gadget swarm refines");
            assert_eq!(
                r.parts, base.parts,
                "{threads} threads resolved the equal-gain conflicts differently"
            );
            assert_eq!(r.cut, base.cut, "{threads} threads changed the cut");
        }
    }

    /// Round brackets in the trace stream: each vertex moves at most once
    /// per round, the applied count matches the bracket's `applied` field,
    /// the applied sequence follows the `(gain desc, vertex id asc)` merge
    /// order, and the whole event stream — not just the final assignment —
    /// is identical across thread budgets.
    #[cases(8)]
    fn round_brackets_move_each_vertex_once_in_merge_order(types in gadget_types) {
        let (hg, initial) = gadget_instance(&types);
        let fixed = FixedVertices::all_free(hg.num_vertices());
        let balance = kway_balance(&hg, 2);

        let run = |threads: usize| {
            let sink = VecSink::new();
            let mut rng = ChaCha8Rng::seed_from_u64(7); // unused by the refiner
            let r = KwayRefiner::default()
                .refine_ctx(
                    &hg,
                    &fixed,
                    &balance,
                    initial.clone(),
                    RunCtx::new(&mut rng).with_sink(&sink).with_threads(threads),
                )
                .expect("gadget swarm refines");
            (r, sink.take())
        };
        let (base, events) = run(2);

        let mut open: Option<(u32, u32)> = None;
        let mut seen: HashSet<u64> = HashSet::new();
        let mut moves_in_round = 0u64;
        let mut proposed_in_round = 0u64;
        let mut last: Option<(i64, u64)> = None;
        let mut rounds = 0u32;
        for ev in &events {
            match ev {
                Event::RoundStart { pass, round, proposed, .. } => {
                    assert!(open.is_none(), "nested round bracket");
                    assert!(*proposed > 0, "empty rounds must not be emitted");
                    open = Some((*pass, *round));
                    proposed_in_round = *proposed;
                    seen.clear();
                    moves_in_round = 0;
                    last = None;
                    rounds += 1;
                }
                Event::KwayMove { pass, vertex, gain, .. } => {
                    let (open_pass, _) = open.expect("move outside a round bracket");
                    assert_eq!(*pass, open_pass, "move stamped with the wrong pass");
                    assert!(
                        seen.insert(*vertex),
                        "vertex {vertex} moved twice in one round"
                    );
                    moves_in_round += 1;
                    // Gadgets are disjoint and at most one move per gadget
                    // is ever applied per round, so each applied move's
                    // fresh gain equals its frozen proposal gain — the
                    // apply sequence must follow the merge order exactly.
                    if let Some((prev_gain, prev_vertex)) = last {
                        assert!(
                            *gain < prev_gain || (*gain == prev_gain && *vertex > prev_vertex),
                            "moves applied out of (gain desc, id asc) merge order: \
                             ({prev_gain}, v{prev_vertex}) then ({gain}, v{vertex})"
                        );
                    }
                    last = Some((*gain, *vertex));
                }
                Event::RoundApplied { pass, round, applied, .. } => {
                    assert_eq!(
                        open.take(),
                        Some((*pass, *round)),
                        "round bracket mismatch"
                    );
                    assert_eq!(*applied, moves_in_round, "bracket applied-count is wrong");
                    assert!(
                        *applied <= proposed_in_round,
                        "more moves applied than proposed"
                    );
                }
                _ => {}
            }
        }
        assert!(open.is_none(), "unclosed round bracket");
        assert!(rounds > 0, "the swarm has positive gains, rounds must run");

        for threads in [4usize, 8] {
            let (r, ev) = run(threads);
            assert_eq!(r.parts, base.parts, "{threads} threads changed the answer");
            assert_eq!(ev, events, "{threads} threads changed the event stream");
        }
    }
}
