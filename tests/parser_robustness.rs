//! Robustness: the parsers must return errors — never panic — on
//! arbitrary malformed input, and must reject structured-but-inconsistent
//! files with informative messages.

use proptest::prelude::*;

use fixed_vertices_repro::vlsi_hypergraph::io::{read_fix, read_hgr, read_multi_are, read_netd};
use fixed_vertices_repro::vlsi_netgen::bookshelf::read_bookshelf;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn hgr_parser_never_panics(text in "[ -~\n]{0,400}") {
        let _ = read_hgr(text.as_bytes());
    }

    #[test]
    fn fix_parser_never_panics(text in "[ -~\n]{0,200}", n in 0usize..20) {
        let _ = read_fix(text.as_bytes(), n);
    }

    #[test]
    fn netd_parser_never_panics(text in "[ -~\n]{0,400}") {
        let _ = read_netd(text.as_bytes(), None::<&[u8]>);
    }

    #[test]
    fn multi_are_parser_never_panics(text in "[ -~\n]{0,200}", n in 0usize..20) {
        let _ = read_multi_are(text.as_bytes(), n);
    }

    #[test]
    fn bookshelf_parser_never_panics(
        nodes in "[ -~\n]{0,300}",
        nets in "[ -~\n]{0,300}",
    ) {
        let _ = read_bookshelf(nodes.as_bytes(), nets.as_bytes(), None::<&[u8]>);
    }

    #[test]
    fn hgr_parser_never_panics_on_numeric_soup(
        nums in proptest::collection::vec(0u32..1000, 0..60),
    ) {
        // Lines of random numbers: the shape of a real .hgr but with
        // arbitrary counts — must parse or fail cleanly.
        let text = nums
            .chunks(3)
            .map(|c| c.iter().map(u32::to_string).collect::<Vec<_>>().join(" "))
            .collect::<Vec<_>>()
            .join("\n");
        let _ = read_hgr(text.as_bytes());
    }
}

#[test]
fn error_messages_name_the_line() {
    let err = read_hgr("1 2\nbogus tokens\n".as_bytes()).unwrap_err();
    assert!(err.to_string().contains("line 2"), "{err}");

    let err = read_fix("1\nx\n".as_bytes(), 2).unwrap_err();
    assert!(err.to_string().contains("line 2"), "{err}");
}
