//! Robustness: the parsers must return errors — never panic — on
//! arbitrary malformed input, and must reject structured-but-inconsistent
//! files with informative messages.

use vlsi_rng::Rng;
use vlsi_testkit::gen::{ascii_text, vec_of};
use vlsi_testkit::{prop_test, TestRng};

use fixed_vertices_repro::vlsi_hypergraph::io::{read_fix, read_hgr, read_multi_are, read_netd};
use fixed_vertices_repro::vlsi_netgen::bookshelf::read_bookshelf;

fn text_and_count(max_len: usize) -> impl Fn(&mut TestRng) -> (String, usize) {
    move |rng| (ascii_text(max_len)(rng), rng.gen_range(0..20usize))
}

fn text_pair(max_len: usize) -> impl Fn(&mut TestRng) -> (String, String) {
    move |rng| (ascii_text(max_len)(rng), ascii_text(max_len)(rng))
}

prop_test! {
    #[cases(192)]
    fn hgr_parser_never_panics(text in ascii_text(400)) {
        let _ = read_hgr(text.as_bytes());
    }

    #[cases(192)]
    fn fix_parser_never_panics(case in text_and_count(200)) {
        let (text, n) = case;
        let _ = read_fix(text.as_bytes(), n);
    }

    #[cases(192)]
    fn netd_parser_never_panics(text in ascii_text(400)) {
        let _ = read_netd(text.as_bytes(), None::<&[u8]>);
    }

    #[cases(192)]
    fn multi_are_parser_never_panics(case in text_and_count(200)) {
        let (text, n) = case;
        let _ = read_multi_are(text.as_bytes(), n);
    }

    #[cases(192)]
    fn bookshelf_parser_never_panics(case in text_pair(300)) {
        let (nodes, nets) = case;
        let _ = read_bookshelf(nodes.as_bytes(), nets.as_bytes(), None::<&[u8]>);
    }

    #[cases(192)]
    fn hgr_parser_never_panics_on_numeric_soup(
        nums in vec_of(0..60, |r: &mut TestRng| r.gen_range(0u32..1000))
    ) {
        // Lines of random numbers: the shape of a real .hgr but with
        // arbitrary counts — must parse or fail cleanly.
        let text = nums
            .chunks(3)
            .map(|c| c.iter().map(u32::to_string).collect::<Vec<_>>().join(" "))
            .collect::<Vec<_>>()
            .join("\n");
        let _ = read_hgr(text.as_bytes());
    }
}

#[test]
fn error_messages_name_the_line() {
    let err = read_hgr("1 2\nbogus tokens\n".as_bytes()).unwrap_err();
    assert!(err.to_string().contains("line 2"), "{err}");

    let err = read_fix("1\nx\n".as_bytes(), 2).unwrap_err();
    assert!(err.to_string().contains("line 2"), "{err}");
}
