//! End-to-end reproduction smoke tests: tiny versions of the paper's
//! experiments must show the paper's qualitative trends.

use fixed_vertices_repro::vlsi_experiments::figures::{run_figure, FigureConfig};
use fixed_vertices_repro::vlsi_experiments::regimes::Regime;
use fixed_vertices_repro::vlsi_experiments::table1;
use fixed_vertices_repro::vlsi_experiments::table2::run_table2;
use fixed_vertices_repro::vlsi_netgen::instances::ibm01_like_scaled;
use fixed_vertices_repro::vlsi_partition::MultilevelConfig;

#[test]
fn table1_matches_the_closed_form() {
    let rows = table1::compute();
    // Spot-check against the formula T/(C+T) = threshold:
    // for p = 0.47, 20%: 3.5 C^0.47 = C/4 => C = 14^(1/0.53).
    let expected = 14f64.powf(1.0 / 0.53);
    let row = rows.iter().find(|r| r.p_milli == 470).expect("row exists");
    assert!(
        (row.c_20pct as f64 - expected).abs() <= expected * 0.02 + 2.0,
        "c_20pct = {} vs analytic {expected:.0}",
        row.c_20pct
    );
}

#[test]
fn figure_trends_reproduce_on_a_small_circuit() {
    let circuit = ibm01_like_scaled(0.035, 17); // ~440 cells
    let config = FigureConfig {
        percentages: vec![0.0, 20.0, 50.0],
        trials: 3,
        ml_config: MultilevelConfig {
            coarsest_size: 40,
            coarse_starts: 2,
            ..MultilevelConfig::default()
        },
        good_attempts: 4,
        seed: 99,
    };
    let fig = run_figure(&circuit.name, &circuit.hypergraph, &config).expect("sweep runs");

    // 1. Rand regime: the achievable cut rises sharply with random fixing.
    let rand = fig.regime_points(Regime::Random);
    assert!(
        rand.last().expect("points").raw[3] > rand.first().expect("points").raw[3] * 1.5,
        "rand-regime cut should rise steeply"
    );

    // 2. At 50% fixed the instance is easy: one start lands within ~25%
    //    (plus integer noise) of the eight-start average — the paper's
    //    "instances with 20% or more vertices fixed are essentially
    //    solvable in one or two starts".
    let good = fig.regime_points(Regime::Good);
    let at50 = good.last().expect("points");
    assert!(
        at50.raw[0] <= at50.raw[3] * 1.25 + 2.0,
        "one start should suffice at 50% fixed: {} vs {}",
        at50.raw[0],
        at50.raw[3]
    );

    // 3. Runtime falls as vertices are fixed (good regime; the paper's
    //    right-hand plots). Wall-clock is load-sensitive in CI, so allow
    //    generous slack — the precise trend lives in the criterion benches.
    assert!(
        good.last().expect("points").time_per_start
            <= good[0].time_per_start.mul_f64(1.5) + std::time::Duration::from_millis(20),
        "per-start time should fall with fixing: {:?} -> {:?}",
        good[0].time_per_start,
        good.last().expect("points").time_per_start
    );
}

#[test]
fn fixing_pads_behaves_like_fixing_random_vertices() {
    // The paper's control: "we could find no difference in any experiment
    // between fixing identified I/Os and fixing random vertices."
    use fixed_vertices_repro::vlsi_experiments::harness::{
        find_good_solution, paper_balance, run_trials,
    };
    use fixed_vertices_repro::vlsi_experiments::regimes::{FixSchedule, Regime};
    use fixed_vertices_repro::vlsi_partition::EngineConfig;
    use vlsi_rng::ChaCha8Rng;
    use vlsi_rng::SeedableRng;

    let circuit = ibm01_like_scaled(0.05, 41);
    let hg = &circuit.hypergraph;
    let balance = paper_balance(hg);
    let cfg = MultilevelConfig {
        coarsest_size: 40,
        coarse_starts: 2,
        ..MultilevelConfig::default()
    };
    let good = find_good_solution(hg, &balance, &cfg, 4, 3).expect("reference");
    let engine = EngineConfig::Multilevel(cfg);
    let mut rng = ChaCha8Rng::seed_from_u64(9);
    let pads: Vec<_> = circuit.pads().collect();
    let pad_schedule = FixSchedule::new_restricted(hg, Regime::Good, &good.parts, &pads, &mut rng);
    let any_schedule = FixSchedule::new(hg, Regime::Good, &good.parts, &mut rng);

    // A small percentage reachable from the pad pool alone.
    let pct = 100.0 * (pads.len() as f64 / 2.0) / hg.num_vertices() as f64;
    let pad_data = run_trials(
        hg,
        &pad_schedule.at_percent(pct),
        &balance,
        &engine,
        3,
        &[4],
        77,
    )
    .expect("pad trials");
    let any_data = run_trials(
        hg,
        &any_schedule.at_percent(pct),
        &balance,
        &engine,
        3,
        &[4],
        77,
    )
    .expect("random trials");
    let (a, b) = (pad_data.avg_best[0], any_data.avg_best[0]);
    let ratio = (a / b).max(b / a);
    assert!(
        ratio < 2.0,
        "pad fixing ({a:.1}) and random fixing ({b:.1}) should behave alike"
    );
}

#[test]
fn pass_statistics_trend_reproduces() {
    let circuit = ibm01_like_scaled(0.035, 23);
    let rows = run_table2(&circuit.hypergraph, &[0.0, 50.0], 4, 7).expect("table2 runs");
    // Percentage of nodes moved per (post-first) pass falls with fixing.
    assert!(
        rows[1].avg_pct_moved < rows[0].avg_pct_moved,
        "%moved should fall: {} -> {}",
        rows[0].avg_pct_moved,
        rows[1].avg_pct_moved
    );
}
