//! Cross-crate I/O tests: generated circuits survive round-trips through
//! every supported file format, and re-read instances partition to the
//! same solution space.

use vlsi_rng::Rng;
use vlsi_testkit::gen::{distinct_sorted, vec_of};
use vlsi_testkit::{prop_test, TestRng};

use fixed_vertices_repro::vlsi_hypergraph::io::{
    read_fix, read_hgr, read_netd, write_fix, write_hgr, write_netd, NetD,
};
use fixed_vertices_repro::vlsi_hypergraph::{
    CutState, FixedVertices, Fixity, HypergraphBuilder, PartId, PartSet, VertexId,
};
use fixed_vertices_repro::vlsi_netgen::blocks::standard_instances;
use fixed_vertices_repro::vlsi_netgen::synthetic::{Generator, GeneratorConfig};

#[test]
fn generated_circuit_roundtrips_through_hgr() {
    let circuit = Generator::new(GeneratorConfig {
        num_cells: 300,
        ..GeneratorConfig::default()
    })
    .generate(5);
    let hg = &circuit.hypergraph;

    let mut buf = Vec::new();
    write_hgr(&mut buf, hg).expect("write succeeds");
    let back = read_hgr(buf.as_slice()).expect("parse succeeds");

    assert_eq!(back.num_vertices(), hg.num_vertices());
    assert_eq!(back.num_nets(), hg.num_nets());
    assert_eq!(back.num_pins(), hg.num_pins());
    for v in hg.vertices() {
        assert_eq!(back.vertex_weight(v), hg.vertex_weight(v));
    }
    for n in hg.nets() {
        assert_eq!(back.net_pins(n), hg.net_pins(n));
        assert_eq!(back.net_weight(n), hg.net_weight(n));
    }
}

#[test]
fn extracted_block_roundtrips_with_fix_file() {
    let circuit = Generator::new(GeneratorConfig {
        num_cells: 400,
        ..GeneratorConfig::default()
    })
    .generate(6);
    let instances = standard_instances(&circuit, None);
    let inst = instances
        .iter()
        .find(|i| i.name.contains("_B_"))
        .expect("half-die instance exists");

    let (mut hgr, mut fix) = (Vec::new(), Vec::new());
    write_hgr(&mut hgr, &inst.hypergraph).expect("hgr written");
    write_fix(&mut fix, &inst.fixed).expect("fix written");

    let hg2 = read_hgr(hgr.as_slice()).expect("hgr parsed");
    let fx2 = read_fix(fix.as_slice(), hg2.num_vertices()).expect("fix parsed");
    assert_eq!(fx2, inst.fixed);

    // Cuts agree between the original and re-read instance for the same
    // assignment.
    let parts: Vec<PartId> = hg2
        .vertices()
        .map(|v| match fx2.fixity(v) {
            Fixity::Fixed(p) => p,
            _ => PartId(v.0 % 2),
        })
        .collect();
    assert_eq!(
        CutState::new(&inst.hypergraph, 2, &parts).cut(),
        CutState::new(&hg2, 2, &parts).cut()
    );
}

#[test]
fn netd_roundtrip_preserves_pads() {
    let circuit = Generator::new(GeneratorConfig {
        num_cells: 120,
        ..GeneratorConfig::default()
    })
    .generate(7);
    let inst = NetD {
        hypergraph: circuit.hypergraph.clone(),
        pad_offset: circuit.pad_offset,
    };
    let (mut netd, mut are) = (Vec::new(), Vec::new());
    write_netd(&mut netd, &mut are, &inst).expect("written");
    let back = read_netd(netd.as_slice(), Some(are.as_slice())).expect("parsed");
    assert_eq!(back.pad_offset, inst.pad_offset);
    assert_eq!(back.num_pads(), inst.num_pads());
    assert_eq!(back.hypergraph.num_nets(), inst.hypergraph.num_nets());
    for v in inst.hypergraph.vertices() {
        assert_eq!(
            back.hypergraph.vertex_weight(v),
            inst.hypergraph.vertex_weight(v)
        );
    }
}

fn graph_case_gen(rng: &mut TestRng) -> (Vec<Vec<usize>>, Vec<u64>) {
    let nets = vec_of(1..25, distinct_sorted(15, 1..5))(rng);
    let weights: Vec<u64> = (0..15).map(|_| rng.gen_range(1u64..100)).collect();
    (nets, weights)
}

prop_test! {
    #[cases(48)]
    fn arbitrary_fixities_roundtrip_fix_files(
        fixities in vec_of(1..40, |r: &mut TestRng| r.gen_range(0u8..4))
    ) {
        let table = FixedVertices::from_fixities(
            fixities
                .iter()
                .map(|&k| match k % 4 {
                    0 => Fixity::Free,
                    1 => Fixity::Fixed(PartId(0)),
                    2 => Fixity::Fixed(PartId(3)),
                    _ => Fixity::FixedAny(
                        [PartId(1), PartId(2)].into_iter().collect::<PartSet>(),
                    ),
                })
                .collect(),
        );
        if table.is_empty() {
            return; // shrinking can empty the vector; a 0-vertex table is trivial
        }
        let mut buf = Vec::new();
        write_fix(&mut buf, &table).expect("written");
        let back = read_fix(buf.as_slice(), table.len()).expect("parsed");
        assert_eq!(back, table);
    }

    #[cases(48)]
    fn arbitrary_graphs_roundtrip_hgr(case in graph_case_gen) {
        let (nets, weights) = case;
        // Shrinking may resize the weight vector or empty a net; skip
        // combinations outside the generator's domain.
        let nets: Vec<Vec<usize>> = nets.into_iter().filter(|n| !n.is_empty()).collect();
        if weights.is_empty() || nets.iter().flatten().any(|&i| i >= weights.len()) {
            return;
        }
        let mut b = HypergraphBuilder::new();
        for &w in &weights {
            b.add_vertex(w);
        }
        for net in &nets {
            b.add_net(1, net.iter().map(|&i| VertexId::from_index(i)))
                .expect("valid net");
        }
        let hg = b.build().expect("valid graph");
        let mut buf = Vec::new();
        write_hgr(&mut buf, &hg).expect("written");
        let back = read_hgr(buf.as_slice()).expect("parsed");
        assert_eq!(back, hg);
    }
}
