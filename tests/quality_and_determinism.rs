//! Solution-quality checks against brute force on tiny instances, and
//! bit-exact determinism of every seeded component.

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use fixed_vertices_repro::vlsi_hypergraph::{
    BalanceConstraint, CutState, FixedVertices, Fixity, Hypergraph, HypergraphBuilder, PartId,
    Tolerance, VertexId,
};
use fixed_vertices_repro::vlsi_netgen::instances::ibm01_like_scaled;
use fixed_vertices_repro::vlsi_partition::{
    multistart, BipartFm, FmConfig, MultilevelConfig, MultilevelPartitioner, PartitionResult,
};
use fixed_vertices_repro::vlsi_placer::{PlacerConfig, TopDownPlacer};

/// Exhaustive optimal bisection cut over all balanced assignments that
/// honour the fixities.
fn brute_force_best(
    hg: &Hypergraph,
    fixed: &FixedVertices,
    balance: &BalanceConstraint,
) -> Option<u64> {
    let n = hg.num_vertices();
    assert!(n <= 16, "brute force only for tiny instances");
    let mut best = None;
    for mask in 0u32..(1 << n) {
        let parts: Vec<PartId> = (0..n).map(|i| PartId((mask >> i) & 1)).collect();
        let ok = (0..n).all(|i| fixed.fixity(VertexId(i as u32)).allows(parts[i]));
        if !ok {
            continue;
        }
        let mut loads = [0u64; 2];
        for i in 0..n {
            loads[parts[i].index()] += hg.vertex_weight(VertexId(i as u32));
        }
        if !balance.is_satisfied(&loads) {
            continue;
        }
        let cut = CutState::new(hg, 2, &parts).cut();
        best = Some(best.map_or(cut, |b: u64| b.min(cut)));
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn fm_multistart_matches_brute_force_on_tiny_instances(
        nets in proptest::collection::vec(
            proptest::collection::btree_set(0usize..10, 2..4),
            2..20,
        ),
        fix_mask in proptest::collection::vec(proptest::option::weighted(0.2, 0u8..2), 10),
        seed in any::<u64>(),
    ) {
        let mut b = HypergraphBuilder::new();
        for _ in 0..10 {
            b.add_vertex(1);
        }
        for net in &nets {
            b.add_net(1, net.iter().map(|&i| VertexId::from_index(i)))
                .expect("valid net");
        }
        let hg = b.build().expect("valid graph");
        let fixed = FixedVertices::from_fixities(
            fix_mask
                .iter()
                .map(|f| match f {
                    None => Fixity::Free,
                    Some(p) => Fixity::Fixed(PartId(*p as u32)),
                })
                .collect(),
        );
        let balance = BalanceConstraint::bisection(10, Tolerance::Relative(0.2));
        let Some(optimal) = brute_force_best(&hg, &fixed, &balance) else {
            return Ok(()); // infeasible fixity/balance combination
        };
        let fm = BipartFm::new(FmConfig::default());
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let outcome = multistart(&hg, &fixed, &balance, 8, &mut rng, |hg, fx, bc, rng| {
            let r = fm.run_random(hg, fx, bc, rng)?;
            Ok(PartitionResult::new(r.parts, r.cut))
        });
        let Ok(outcome) = outcome else {
            return Ok(()); // random_initial could not balance this fixity mix
        };
        // 8-start FM on 10 vertices should essentially always be optimal;
        // tolerate at most one net of slack to keep the test non-flaky.
        prop_assert!(
            outcome.best.cut <= optimal + 1,
            "fm {} vs optimal {optimal}",
            outcome.best.cut
        );
        prop_assert!(outcome.best.cut >= optimal, "fm beat brute force?!");
    }
}

#[test]
fn multilevel_is_bit_deterministic() {
    let circuit = ibm01_like_scaled(0.05, 21);
    let hg = &circuit.hypergraph;
    let balance = BalanceConstraint::bisection(hg.total_weight(), Tolerance::Relative(0.05));
    let fixed = FixedVertices::all_free(hg.num_vertices());
    let ml = MultilevelPartitioner::new(MultilevelConfig::default());
    let run = || {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        ml.run(hg, &fixed, &balance, &mut rng).expect("runs")
    };
    let a = run();
    let b = run();
    assert_eq!(a.parts, b.parts);
    assert_eq!(a.cut, b.cut);
    assert_eq!(a.level_sizes, b.level_sizes);
}

#[test]
fn placer_is_bit_deterministic() {
    let circuit = ibm01_like_scaled(0.02, 22);
    let placer = TopDownPlacer::new(PlacerConfig {
        ml_config: MultilevelConfig {
            coarsest_size: 30,
            coarse_starts: 2,
            ..MultilevelConfig::default()
        },
        ..PlacerConfig::default()
    });
    let run = || {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        placer.place_circuit(&circuit, &mut rng).expect("places")
    };
    let a = run();
    let b = run();
    assert_eq!(a.positions, b.positions);
    assert_eq!(a.num_bisections, b.num_bisections);
}

#[test]
fn different_seeds_explore_different_solutions() {
    let circuit = ibm01_like_scaled(0.05, 23);
    let hg = &circuit.hypergraph;
    let balance = BalanceConstraint::bisection(hg.total_weight(), Tolerance::Relative(0.05));
    let fixed = FixedVertices::all_free(hg.num_vertices());
    let fm = BipartFm::new(FmConfig::default());
    let mut distinct = std::collections::HashSet::new();
    for seed in 0..6u64 {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let r = fm.run_random(hg, &fixed, &balance, &mut rng).expect("runs");
        distinct.insert(r.parts);
    }
    assert!(distinct.len() > 1, "flat FM should vary across seeds");
}
