//! Solution-quality checks against brute force on tiny instances, and
//! bit-exact determinism of every seeded component.

use vlsi_rng::{ChaCha8Rng, Rng, RngCore, SeedableRng};
use vlsi_testkit::gen::{distinct_sorted, option_weighted, vec_of};
use vlsi_testkit::{prop_test, TestRng};

use fixed_vertices_repro::vlsi_hypergraph::{
    BalanceConstraint, CutState, FixedVertices, Fixity, Hypergraph, HypergraphBuilder, PartId,
    Tolerance, VertexId,
};
use fixed_vertices_repro::vlsi_netgen::instances::ibm01_like_scaled;
use fixed_vertices_repro::vlsi_partition::{
    BipartFm, FmConfig, MultilevelConfig, MultilevelPartitioner, Multistart, PartitionResult,
    RunCtx,
};
use fixed_vertices_repro::vlsi_placer::{PlacerConfig, TopDownPlacer};

/// Exhaustive optimal bisection cut over all balanced assignments that
/// honour the fixities.
fn brute_force_best(
    hg: &Hypergraph,
    fixed: &FixedVertices,
    balance: &BalanceConstraint,
) -> Option<u64> {
    let n = hg.num_vertices();
    assert!(n <= 16, "brute force only for tiny instances");
    let mut best = None;
    for mask in 0u32..(1 << n) {
        let parts: Vec<PartId> = (0..n).map(|i| PartId((mask >> i) & 1)).collect();
        let ok = (0..n).all(|i| fixed.fixity(VertexId(i as u32)).allows(parts[i]));
        if !ok {
            continue;
        }
        let mut loads = [0u64; 2];
        for i in 0..n {
            loads[parts[i].index()] += hg.vertex_weight(VertexId(i as u32));
        }
        if !balance.is_satisfied(&loads) {
            continue;
        }
        let cut = CutState::new(hg, 2, &parts).cut();
        best = Some(best.map_or(cut, |b: u64| b.min(cut)));
    }
    best
}

fn tiny_case_gen(rng: &mut TestRng) -> (Vec<Vec<usize>>, Vec<Option<u8>>, u64) {
    let nets = vec_of(2..20, distinct_sorted(10, 2..4))(rng);
    let fix_mask: Vec<Option<u8>> = {
        let g = option_weighted(0.2, |r: &mut TestRng| r.gen_range(0u8..2));
        (0..10).map(|_| g(rng)).collect()
    };
    let seed = rng.next_u64();
    (nets, fix_mask, seed)
}

prop_test! {
    #[cases(48)]
    fn fm_multistart_matches_brute_force_on_tiny_instances(
        case in tiny_case_gen
    ) {
        let (nets, mut fix_mask, seed) = case;
        // Shrinking may resize the mask or empty a net; restore the
        // generator's domain (10 vertices, >=2-pin nets).
        fix_mask.resize(10, None);
        let nets: Vec<Vec<usize>> = nets.into_iter().filter(|n| n.len() >= 2).collect();
        let mut b = HypergraphBuilder::new();
        for _ in 0..10 {
            b.add_vertex(1);
        }
        for net in &nets {
            b.add_net(1, net.iter().map(|&i| VertexId::from_index(i)))
                .expect("valid net");
        }
        let hg = b.build().expect("valid graph");
        let fixed = FixedVertices::from_fixities(
            fix_mask
                .iter()
                .map(|f| match f {
                    None => Fixity::Free,
                    Some(p) => Fixity::Fixed(PartId((*p % 2) as u32)),
                })
                .collect(),
        );
        let balance = BalanceConstraint::bisection(10, Tolerance::Relative(0.2));
        let Some(optimal) = brute_force_best(&hg, &fixed, &balance) else {
            return; // infeasible fixity/balance combination
        };
        let fm = BipartFm::new(FmConfig::default());
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let outcome = Multistart::new(8).run_with(
            &hg,
            &fixed,
            &balance,
            RunCtx::new(&mut rng),
            |hg, fx, bc, rng| {
                let r = fm.run_random(hg, fx, bc, rng)?;
                Ok(PartitionResult::new(r.parts, r.cut))
            },
        );
        let Ok(outcome) = outcome else {
            return; // random_initial could not balance this fixity mix
        };
        // 8-start FM on 10 vertices should essentially always be optimal;
        // tolerate at most one net of slack to keep the test non-flaky.
        assert!(
            outcome.best.cut <= optimal + 1,
            "fm {} vs optimal {optimal}",
            outcome.best.cut
        );
        assert!(outcome.best.cut >= optimal, "fm beat brute force?!");
    }
}

#[test]
fn multilevel_is_bit_deterministic() {
    let circuit = ibm01_like_scaled(0.05, 21);
    let hg = &circuit.hypergraph;
    let balance = BalanceConstraint::bisection(hg.total_weight(), Tolerance::Relative(0.05));
    let fixed = FixedVertices::all_free(hg.num_vertices());
    let ml = MultilevelPartitioner::new(MultilevelConfig::default());
    let run = || {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        ml.run(hg, &fixed, &balance, &mut rng).expect("runs")
    };
    let a = run();
    let b = run();
    assert_eq!(a.parts, b.parts);
    assert_eq!(a.cut, b.cut);
    assert_eq!(a.level_sizes, b.level_sizes);
}

#[test]
fn placer_is_bit_deterministic() {
    let circuit = ibm01_like_scaled(0.02, 22);
    let placer = TopDownPlacer::new(PlacerConfig {
        ml_config: MultilevelConfig {
            coarsest_size: 30,
            coarse_starts: 2,
            ..MultilevelConfig::default()
        },
        ..PlacerConfig::default()
    });
    let run = || {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        placer.place_circuit(&circuit, &mut rng).expect("places")
    };
    let a = run();
    let b = run();
    assert_eq!(a.positions, b.positions);
    assert_eq!(a.num_bisections, b.num_bisections);
}

#[test]
fn different_seeds_explore_different_solutions() {
    let circuit = ibm01_like_scaled(0.05, 23);
    let hg = &circuit.hypergraph;
    let balance = BalanceConstraint::bisection(hg.total_weight(), Tolerance::Relative(0.05));
    let fixed = FixedVertices::all_free(hg.num_vertices());
    let fm = BipartFm::new(FmConfig::default());
    let mut distinct = std::collections::HashSet::new();
    for seed in 0..6u64 {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let r = fm.run_random(hg, &fixed, &balance, &mut rng).expect("runs");
        distinct.insert(r.parts);
    }
    assert!(distinct.len() > 1, "flat FM should vary across seeds");
}
