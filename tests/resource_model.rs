//! Heterogeneous resource-model invariants: the connectivity (km1)
//! objective and the multi-dimensional weight path.
//!
//! * **Objective dominance** — over a property corpus with 0–50% fixed
//!   vertices and k ∈ {2, 3, 4}, every engine solution satisfies
//!   `km1 == cut` at k = 2 and `km1 >= cut` at any k (each net spanning
//!   λ parts contributes `w` to the cut and `w·(λ−1) ≥ w` to km1).
//! * **Differential** — a single-resource instance pushed through the
//!   multi-resource side-table (`apply_multi_areas` at arity 1) must be
//!   byte-identical to the plain scalar instance for every engine and
//!   every thread count: the vector path is a strict superset, never a
//!   fork, of the scalar code.
//! * **Determinism** — the capacity-constrained km1 path keeps the
//!   repo's two-regime determinism contract: one answer at 1 thread,
//!   one (worker-count-invariant) answer across 2/4/8 threads.

use vlsi_rng::{ChaCha8Rng, Rng, RngCore, SeedableRng};
use vlsi_testkit::gen::{distinct_sorted, RawInstance};
use vlsi_testkit::{prop_test, TestRng};

use fixed_vertices_repro::vlsi_hypergraph::{
    io::apply_multi_areas, BalanceConstraint, CutState, FixedVertices, Fixity, Hypergraph,
    HypergraphBuilder, Objective, PartCapacities, PartId, Tolerance, VertexId,
};
use fixed_vertices_repro::vlsi_netgen::instances::ibm01_like_scaled;
use fixed_vertices_repro::vlsi_partition::{EngineConfig, Partitioner, RunCtx};

/// Instances with a uniformly drawn fixed fraction in 0–50% (the paper's
/// sweep range); k ∈ {2, 3, 4} is derived from the instance seed.
fn instance_with_random_fix_fraction(rng: &mut TestRng) -> RawInstance {
    let n = rng.gen_range(50..120usize);
    let weights = vec![1u64; n];
    let num_nets = rng.gen_range(n..2 * n);
    let net_gen = distinct_sorted(n, 2..5);
    let nets: Vec<Vec<usize>> = (0..num_nets).map(|_| net_gen(rng)).collect();
    let frac = rng.gen_range(0.0..0.5);
    let fixities: Vec<Option<u8>> = (0..n)
        .map(|_| {
            if rng.gen_bool(frac) {
                Some(rng.gen_range(0..4u8))
            } else {
                None
            }
        })
        .collect();
    RawInstance {
        weights,
        nets,
        fixities,
        seed: rng.next_u64(),
    }
}

fn part_count(inst: &RawInstance) -> usize {
    2 + (inst.seed % 3) as usize
}

fn build(inst: &RawInstance, k: usize) -> (Hypergraph, FixedVertices) {
    let mut b = HypergraphBuilder::new();
    for &w in &inst.weights {
        b.add_vertex(w);
    }
    for net in &inst.nets {
        if net.len() >= 2 && net.iter().all(|&i| i < inst.weights.len()) {
            b.add_net(1, net.iter().map(|&i| VertexId::from_index(i)))
                .expect("valid net");
        }
    }
    let hg = b.build().expect("valid hypergraph");
    let fixities = inst
        .fixities
        .iter()
        .map(|f| match f {
            None => Fixity::Free,
            Some(p) => Fixity::Fixed(PartId((*p as usize % k) as u32)),
        })
        .chain(std::iter::repeat(Fixity::Free))
        .take(inst.weights.len())
        .collect();
    (hg, FixedVertices::from_fixities(fixities))
}

prop_test! {
    /// The km1-optimizing k-way engine returns solutions whose reported
    /// value matches an independent `CutState` recomputation, with
    /// `km1 == cut` at k = 2 and `km1 >= cut` at every k. Instances the
    /// fixity mask makes infeasible are skipped — refusing them is the
    /// engine's correct behaviour, not a corpus failure.
    #[cases(24)]
    fn km1_equals_cut_at_two_parts_and_dominates_beyond(inst in instance_with_random_fix_fraction) {
        let k = part_count(&inst);
        let (hg, fixed) = build(&inst, k);
        let balance = BalanceConstraint::even(k, hg.total_weights(), Tolerance::Relative(0.1));
        let engine = EngineConfig::by_name("kway")
            .expect("kway is registered")
            .with_objective(Objective::KMinus1);
        let mut rng = ChaCha8Rng::seed_from_u64(inst.seed);
        let Ok(r) = engine.partition_ctx(&hg, &fixed, &balance, RunCtx::new(&mut rng)) else {
            return; // fixity mask made the instance infeasible
        };
        let cs = CutState::new(&hg, k, &r.parts);
        let (cut, km1) = (cs.value(Objective::Cut), cs.value(Objective::KMinus1));
        assert_eq!(r.cut, km1, "engine must report the km1 objective it optimized");
        assert!(km1 >= cut, "km1 {km1} < cut {cut} at k={k}");
        if k == 2 {
            assert_eq!(km1, cut, "every cut net spans exactly 2 parts at k=2");
        }
    }
}

/// Pushing a scalar instance through the multi-resource side-table at
/// arity 1 must not perturb any engine: identical parts and identical
/// value for every thread count in both determinism regimes.
#[test]
fn arity_one_vector_path_is_byte_identical_to_scalar() {
    let circuit = ibm01_like_scaled(0.04, 23);
    let scalar = &circuit.hypergraph;
    let weights: Vec<u64> = scalar.vertices().map(|v| scalar.vertex_weight(v)).collect();
    let vector = apply_multi_areas(scalar, 1, &weights).expect("arity-1 table applies");
    assert_eq!(vector.num_resources(), 1);

    let mut fixed = FixedVertices::all_free(scalar.num_vertices());
    for i in 0..scalar.num_vertices() / 25 {
        fixed.fix(VertexId((i * 11) as u32), PartId((i % 2) as u32));
    }

    for (engine_name, k) in [("ml", 2), ("rb", 4), ("kway", 4)] {
        let balance = if k == 2 {
            BalanceConstraint::bisection(scalar.total_weight(), Tolerance::Relative(0.1))
        } else {
            BalanceConstraint::even(k, scalar.total_weights(), Tolerance::Relative(0.1))
        };
        let engine = EngineConfig::by_name(engine_name).expect("registered engine");
        for threads in [1usize, 2, 4, 8] {
            let run = |hg: &Hypergraph| {
                let mut rng = ChaCha8Rng::seed_from_u64(5);
                engine
                    .partition_ctx(
                        hg,
                        &fixed,
                        &balance,
                        RunCtx::new(&mut rng).with_threads(threads),
                    )
                    .expect("engine runs")
            };
            let a = run(scalar);
            let b = run(&vector);
            assert_eq!(
                a.parts, b.parts,
                "{engine_name} at {threads} threads: arity-1 vector path diverged from scalar"
            );
            assert_eq!(
                a.cut, b.cut,
                "{engine_name} at {threads} threads: value diverged"
            );
        }
    }
}

/// Two-regime determinism for the capacity-constrained km1 path: the
/// sequential answer (1 thread) replays byte-identically, and the
/// synchronous-round parallel answer is invariant across 2/4/8 workers.
#[test]
fn constrained_km1_keeps_two_regime_determinism() {
    const K: usize = 4;
    const DIMS: usize = 2;
    let circuit = ibm01_like_scaled(0.04, 31);
    let base = &circuit.hypergraph;
    let flat: Vec<u64> = base
        .vertices()
        .flat_map(|v| [base.vertex_weight(v), 1 + (v.index() as u64 % 3)])
        .collect();
    let hg = apply_multi_areas(base, DIMS, &flat).expect("resource table applies");

    let mut fixed = FixedVertices::all_free(hg.num_vertices());
    for i in 0..hg.num_vertices() / 20 {
        fixed.fix(VertexId((i * 13) as u32), PartId((i % K) as u32));
    }

    let per_part: Vec<u64> = hg
        .total_weights()
        .iter()
        .map(|&t| ((t as f64) * 1.15 / K as f64).ceil() as u64)
        .collect();
    let caps = PartCapacities::uniform(K, &per_part);
    caps.check_feasible(hg.total_weights())
        .expect("feasible by construction");
    let balance = caps.to_balance();

    let engine = EngineConfig::by_name("kway")
        .expect("kway is registered")
        .with_objective(Objective::KMinus1);
    let run = |threads: usize| {
        let mut rng = ChaCha8Rng::seed_from_u64(77);
        engine
            .partition_ctx(
                &hg,
                &fixed,
                &balance,
                RunCtx::new(&mut rng).with_threads(threads),
            )
            .expect("constrained engine runs")
    };

    let seq_a = run(1);
    let seq_b = run(1);
    assert_eq!(
        seq_a.parts, seq_b.parts,
        "sequential regime must replay byte-identically"
    );

    let par = run(2);
    for threads in [4usize, 8] {
        let r = run(threads);
        assert_eq!(
            par.parts, r.parts,
            "{threads} workers changed the constrained km1 assignment"
        );
        assert_eq!(par.cut, r.cut);
    }

    // Every answer is legal under the capacity balance and reports km1.
    for r in [&seq_a, &par] {
        let mut loads = [0u64; K * DIMS];
        for (i, p) in r.parts.iter().enumerate() {
            for (d, &w) in hg
                .vertex_weights(VertexId::from_index(i))
                .iter()
                .enumerate()
            {
                loads[p.index() * DIMS + d] += w;
            }
        }
        for part in 0..K {
            for d in 0..DIMS {
                assert!(
                    loads[part * DIMS + d] <= caps.cap(PartId::from_index(part), d),
                    "part {part} resource {d} over capacity"
                );
            }
        }
        let cs = CutState::new(&hg, K, &r.parts);
        assert_eq!(r.cut, cs.value(Objective::KMinus1));
        assert!(cs.value(Objective::KMinus1) >= cs.value(Objective::Cut));
    }
}
