//! Property-based tests of the partitioning core: every engine, on random
//! hypergraphs with random fixities, must produce solutions that honour
//! fixities and balance, and report cuts that match a from-scratch
//! recomputation.

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use fixed_vertices_repro::vlsi_hypergraph::{
    validate_partitioning, BalanceConstraint, CutState, FixedVertices, Fixity, Hypergraph,
    HypergraphBuilder, Objective, PartId, Partitioning, Tolerance, VertexId,
};
use fixed_vertices_repro::vlsi_partition::annealing::{simulated_annealing, AnnealingConfig};
use fixed_vertices_repro::vlsi_partition::kl::{kernighan_lin, KlConfig};
use fixed_vertices_repro::vlsi_partition::terminal_cluster::cluster_terminals;
use fixed_vertices_repro::vlsi_partition::{
    kway, BipartFm, FmConfig, MultilevelConfig, MultilevelPartitioner, SelectionPolicy,
};

/// A random small instance description for proptest.
#[derive(Debug, Clone)]
struct RandomInstance {
    weights: Vec<u64>,
    nets: Vec<Vec<usize>>,
    /// fixity per vertex: None = free, Some(p) = fixed in partition p % 2.
    fixities: Vec<Option<u8>>,
    seed: u64,
}

fn instance_strategy(max_vertices: usize) -> impl Strategy<Value = RandomInstance> {
    (4..max_vertices).prop_flat_map(|n| {
        let weights = proptest::collection::vec(1u64..6, n);
        let nets = proptest::collection::vec(
            proptest::collection::btree_set(0..n, 2..=4.min(n)),
            1..(3 * n).max(2),
        )
        .prop_map(|nets| {
            nets.into_iter()
                .map(|s| s.into_iter().collect::<Vec<_>>())
                .collect::<Vec<_>>()
        });
        let fixities = proptest::collection::vec(proptest::option::weighted(0.3, 0u8..2), n);
        (weights, nets, fixities, any::<u64>()).prop_map(|(weights, nets, fixities, seed)| {
            RandomInstance {
                weights,
                nets,
                fixities,
                seed,
            }
        })
    })
}

fn build(inst: &RandomInstance) -> (Hypergraph, FixedVertices) {
    let mut b = HypergraphBuilder::new();
    for &w in &inst.weights {
        b.add_vertex(w);
    }
    for net in &inst.nets {
        b.add_net(1, net.iter().map(|&i| VertexId::from_index(i)))
            .expect("generated nets are valid");
    }
    let hg = b.build().expect("valid hypergraph");
    let fixities = inst
        .fixities
        .iter()
        .map(|f| match f {
            None => Fixity::Free,
            Some(p) => Fixity::Fixed(PartId(*p as u32)),
        })
        .collect();
    (hg, FixedVertices::from_fixities(fixities))
}

/// A generous balance that is feasible for any fixity pattern of the
/// generated instances.
fn loose_balance(hg: &Hypergraph) -> BalanceConstraint {
    BalanceConstraint::bisection(hg.total_weight(), Tolerance::Absolute(hg.total_weight()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn flat_fm_solutions_are_always_valid(inst in instance_strategy(24)) {
        let (hg, fixed) = build(&inst);
        let balance = loose_balance(&hg);
        let fm = BipartFm::new(FmConfig::default());
        let mut rng = ChaCha8Rng::seed_from_u64(inst.seed);
        let result = fm.run_random(&hg, &fixed, &balance, &mut rng).expect("fm runs");
        let p = Partitioning::from_parts(&hg, 2, result.parts.clone()).expect("valid parts");
        let report = validate_partitioning(&hg, &p, &balance, &fixed);
        prop_assert!(report.is_valid(), "{report}");
        prop_assert_eq!(report.recomputed_cut, result.cut);
    }

    #[test]
    fn clip_fm_solutions_are_always_valid(inst in instance_strategy(24)) {
        let (hg, fixed) = build(&inst);
        let balance = loose_balance(&hg);
        let fm = BipartFm::new(FmConfig {
            policy: SelectionPolicy::Clip,
            ..FmConfig::default()
        });
        let mut rng = ChaCha8Rng::seed_from_u64(inst.seed);
        let result = fm.run_random(&hg, &fixed, &balance, &mut rng).expect("fm runs");
        let p = Partitioning::from_parts(&hg, 2, result.parts.clone()).expect("valid parts");
        let report = validate_partitioning(&hg, &p, &balance, &fixed);
        prop_assert!(report.is_valid(), "{report}");
    }

    #[test]
    fn multilevel_solutions_are_always_valid(inst in instance_strategy(40)) {
        let (hg, fixed) = build(&inst);
        let balance = loose_balance(&hg);
        let ml = MultilevelPartitioner::new(MultilevelConfig {
            coarsest_size: 8,
            coarse_starts: 2,
            ..MultilevelConfig::default()
        });
        let mut rng = ChaCha8Rng::seed_from_u64(inst.seed);
        let result = ml.run(&hg, &fixed, &balance, &mut rng).expect("ml runs");
        let p = Partitioning::from_parts(&hg, 2, result.parts.clone()).expect("valid parts");
        let report = validate_partitioning(&hg, &p, &balance, &fixed);
        prop_assert!(report.is_valid(), "{report}");
        prop_assert_eq!(report.recomputed_cut, result.cut);
    }

    #[test]
    fn fm_never_worse_than_initial(inst in instance_strategy(24)) {
        // FM keeps the best prefix of each pass, so the final cut can never
        // exceed the initial cut.
        let (hg, fixed) = build(&inst);
        let balance = loose_balance(&hg);
        let mut rng = ChaCha8Rng::seed_from_u64(inst.seed);
        let initial = fixed_vertices_repro::vlsi_partition::random_initial(
            &hg, &fixed, &balance, 2, &mut rng,
        ).expect("feasible");
        let initial_cut = CutState::new(&hg, 2, &initial).cut();
        let fm = BipartFm::new(FmConfig::default());
        let result = fm.run(&hg, &fixed, &balance, initial).expect("fm runs");
        prop_assert!(result.cut <= initial_cut);
    }

    #[test]
    fn terminal_clustering_preserves_cut_of_projected_solutions(inst in instance_strategy(20)) {
        let (hg, fixed) = build(&inst);
        let clustered = cluster_terminals(&hg, &fixed).expect("transform");
        // Partition the clustered instance arbitrarily but legally.
        let cparts: Vec<PartId> = clustered
            .hypergraph
            .vertices()
            .map(|v| match clustered.fixed.fixity(v) {
                Fixity::Fixed(p) => p,
                _ => PartId(v.0 % 2),
            })
            .collect();
        let ccut = CutState::new(&clustered.hypergraph, 2, &cparts).cut();
        let projected = clustered.project(&cparts);
        let pcut = CutState::new(&hg, 2, &projected).cut();
        prop_assert_eq!(ccut, pcut);
    }

    #[test]
    fn kl_baseline_solutions_are_valid_and_monotone(inst in instance_strategy(20)) {
        let (hg, fixed) = build(&inst);
        let balance = loose_balance(&hg);
        let mut rng = ChaCha8Rng::seed_from_u64(inst.seed);
        let initial = fixed_vertices_repro::vlsi_partition::random_initial(
            &hg, &fixed, &balance, 2, &mut rng,
        ).expect("feasible");
        let before = CutState::new(&hg, 2, &initial).cut();
        let r = kernighan_lin(&hg, &fixed, &balance, initial, KlConfig::default())
            .expect("kl runs");
        prop_assert!(r.cut <= before);
        let p = Partitioning::from_parts(&hg, 2, r.parts).expect("valid parts");
        let report = validate_partitioning(&hg, &p, &balance, &fixed);
        prop_assert!(report.is_valid(), "{report}");
        prop_assert_eq!(report.recomputed_cut, r.cut);
    }

    #[test]
    fn annealing_solutions_are_valid_and_monotone(inst in instance_strategy(20)) {
        let (hg, fixed) = build(&inst);
        let balance = loose_balance(&hg);
        let mut rng = ChaCha8Rng::seed_from_u64(inst.seed);
        let initial = fixed_vertices_repro::vlsi_partition::random_initial(
            &hg, &fixed, &balance, 2, &mut rng,
        ).expect("feasible");
        let before = CutState::new(&hg, 2, &initial).cut();
        let cfg = AnnealingConfig { sweeps: 15, ..AnnealingConfig::default() };
        let r = simulated_annealing(&hg, &fixed, &balance, initial, cfg, &mut rng)
            .expect("sa runs");
        // SA keeps the best *balanced* state, which is never worse than a
        // balanced initial.
        prop_assert!(r.cut <= before);
        let p = Partitioning::from_parts(&hg, 2, r.parts).expect("valid parts");
        let report = validate_partitioning(&hg, &p, &balance, &fixed);
        prop_assert!(report.is_valid(), "{report}");
    }

    #[test]
    fn kway_refine_is_valid_and_monotone(inst in instance_strategy(18)) {
        let (hg, fixed) = build(&inst);
        // 3-way with loose balance; map fixities into range.
        let balance = BalanceConstraint::even(
            3,
            &[hg.total_weight()],
            Tolerance::Absolute(hg.total_weight()),
        );
        let mut rng = ChaCha8Rng::seed_from_u64(inst.seed);
        let initial = fixed_vertices_repro::vlsi_partition::random_initial(
            &hg, &fixed, &balance, 3, &mut rng,
        ).expect("feasible");
        let before = CutState::new(&hg, 3, &initial).value(Objective::KMinus1);
        let r = kway::refine(&hg, &fixed, &balance, initial, Objective::KMinus1, 4)
            .expect("refine runs");
        prop_assert!(r.cut <= before);
        for v in hg.vertices() {
            prop_assert!(fixed.fixity(v).allows(r.parts[v.index()]));
        }
    }
}
