//! Property-based tests of the partitioning core: every engine, on random
//! hypergraphs with random fixities, must produce solutions that honour
//! fixities and balance, and report cuts that match a from-scratch
//! recomputation.

use vlsi_rng::{ChaCha8Rng, SeedableRng};
use vlsi_testkit::gen::{instances, InstanceConfig, RawInstance};
use vlsi_testkit::{prop_test, TestRng};

use fixed_vertices_repro::vlsi_hypergraph::{
    validate_partitioning, BalanceConstraint, CutState, FixedVertices, Fixity, Hypergraph,
    HypergraphBuilder, Objective, PartId, Partitioning, Tolerance, VertexId,
};
use fixed_vertices_repro::vlsi_partition::annealing::{simulated_annealing, AnnealingConfig};
use fixed_vertices_repro::vlsi_partition::kl::{kernighan_lin, KlConfig};
use fixed_vertices_repro::vlsi_partition::terminal_cluster::cluster_terminals;
use fixed_vertices_repro::vlsi_partition::{
    kway, BipartFm, FmConfig, MultilevelConfig, MultilevelPartitioner, SelectionPolicy,
};

/// Instance generator matching the old proptest strategy: 4..max vertices,
/// weights 1..=5, 2–4-pin nets, ~30% of vertices fixed across 2 parts.
fn instance_gen(max_vertices: usize) -> impl Fn(&mut TestRng) -> RawInstance {
    instances(InstanceConfig {
        vertices: 4..max_vertices,
        ..InstanceConfig::default()
    })
}

fn build(inst: &RawInstance) -> (Hypergraph, FixedVertices) {
    let mut b = HypergraphBuilder::new();
    for &w in &inst.weights {
        b.add_vertex(w);
    }
    for net in &inst.nets {
        b.add_net(1, net.iter().map(|&i| VertexId::from_index(i)))
            .expect("generated nets are valid");
    }
    let hg = b.build().expect("valid hypergraph");
    let fixities = inst
        .fixities
        .iter()
        .map(|f| match f {
            None => Fixity::Free,
            Some(p) => Fixity::Fixed(PartId(*p as u32)),
        })
        .collect();
    (hg, FixedVertices::from_fixities(fixities))
}

/// A generous balance that is feasible for any fixity pattern of the
/// generated instances.
fn loose_balance(hg: &Hypergraph) -> BalanceConstraint {
    BalanceConstraint::bisection(hg.total_weight(), Tolerance::Absolute(hg.total_weight()))
}

prop_test! {
    #[cases(64)]
    fn flat_fm_solutions_are_always_valid(inst in instance_gen(24)) {
        let (hg, fixed) = build(&inst);
        let balance = loose_balance(&hg);
        let fm = BipartFm::new(FmConfig::default());
        let mut rng = ChaCha8Rng::seed_from_u64(inst.seed);
        let result = fm.run_random(&hg, &fixed, &balance, &mut rng).expect("fm runs");
        let p = Partitioning::from_parts(&hg, 2, result.parts.clone()).expect("valid parts");
        let report = validate_partitioning(&hg, &p, &balance, &fixed);
        assert!(report.is_valid(), "{report}");
        assert_eq!(report.recomputed_cut, result.cut);
    }

    #[cases(64)]
    fn clip_fm_solutions_are_always_valid(inst in instance_gen(24)) {
        let (hg, fixed) = build(&inst);
        let balance = loose_balance(&hg);
        let fm = BipartFm::new(FmConfig {
            policy: SelectionPolicy::Clip,
            ..FmConfig::default()
        });
        let mut rng = ChaCha8Rng::seed_from_u64(inst.seed);
        let result = fm.run_random(&hg, &fixed, &balance, &mut rng).expect("fm runs");
        let p = Partitioning::from_parts(&hg, 2, result.parts.clone()).expect("valid parts");
        let report = validate_partitioning(&hg, &p, &balance, &fixed);
        assert!(report.is_valid(), "{report}");
    }

    #[cases(64)]
    fn multilevel_solutions_are_always_valid(inst in instance_gen(40)) {
        let (hg, fixed) = build(&inst);
        let balance = loose_balance(&hg);
        let ml = MultilevelPartitioner::new(MultilevelConfig {
            coarsest_size: 8,
            coarse_starts: 2,
            ..MultilevelConfig::default()
        });
        let mut rng = ChaCha8Rng::seed_from_u64(inst.seed);
        let result = ml.run(&hg, &fixed, &balance, &mut rng).expect("ml runs");
        let p = Partitioning::from_parts(&hg, 2, result.parts.clone()).expect("valid parts");
        let report = validate_partitioning(&hg, &p, &balance, &fixed);
        assert!(report.is_valid(), "{report}");
        assert_eq!(report.recomputed_cut, result.cut);
    }

    #[cases(64)]
    fn fm_never_worse_than_initial(inst in instance_gen(24)) {
        // FM keeps the best prefix of each pass, so the final cut can never
        // exceed the initial cut.
        let (hg, fixed) = build(&inst);
        let balance = loose_balance(&hg);
        let mut rng = ChaCha8Rng::seed_from_u64(inst.seed);
        let initial = fixed_vertices_repro::vlsi_partition::random_initial(
            &hg, &fixed, &balance, 2, &mut rng,
        ).expect("feasible");
        let initial_cut = CutState::new(&hg, 2, &initial).cut();
        let fm = BipartFm::new(FmConfig::default());
        let result = fm.run(&hg, &fixed, &balance, initial).expect("fm runs");
        assert!(result.cut <= initial_cut);
    }

    #[cases(64)]
    fn terminal_clustering_preserves_cut_of_projected_solutions(inst in instance_gen(20)) {
        let (hg, fixed) = build(&inst);
        let clustered = cluster_terminals(&hg, &fixed).expect("transform");
        // Partition the clustered instance arbitrarily but legally.
        let cparts: Vec<PartId> = clustered
            .hypergraph
            .vertices()
            .map(|v| match clustered.fixed.fixity(v) {
                Fixity::Fixed(p) => p,
                _ => PartId(v.0 % 2),
            })
            .collect();
        let ccut = CutState::new(&clustered.hypergraph, 2, &cparts).cut();
        let projected = clustered.project(&cparts);
        let pcut = CutState::new(&hg, 2, &projected).cut();
        assert_eq!(ccut, pcut);
    }

    #[cases(64)]
    fn kl_baseline_solutions_are_valid_and_monotone(inst in instance_gen(20)) {
        let (hg, fixed) = build(&inst);
        let balance = loose_balance(&hg);
        let mut rng = ChaCha8Rng::seed_from_u64(inst.seed);
        let initial = fixed_vertices_repro::vlsi_partition::random_initial(
            &hg, &fixed, &balance, 2, &mut rng,
        ).expect("feasible");
        let before = CutState::new(&hg, 2, &initial).cut();
        let r = kernighan_lin(&hg, &fixed, &balance, initial, KlConfig::default())
            .expect("kl runs");
        assert!(r.cut <= before);
        let p = Partitioning::from_parts(&hg, 2, r.parts).expect("valid parts");
        let report = validate_partitioning(&hg, &p, &balance, &fixed);
        assert!(report.is_valid(), "{report}");
        assert_eq!(report.recomputed_cut, r.cut);
    }

    #[cases(64)]
    fn annealing_solutions_are_valid_and_monotone(inst in instance_gen(20)) {
        let (hg, fixed) = build(&inst);
        let balance = loose_balance(&hg);
        let mut rng = ChaCha8Rng::seed_from_u64(inst.seed);
        let initial = fixed_vertices_repro::vlsi_partition::random_initial(
            &hg, &fixed, &balance, 2, &mut rng,
        ).expect("feasible");
        let before = CutState::new(&hg, 2, &initial).cut();
        let cfg = AnnealingConfig { sweeps: 15, ..AnnealingConfig::default() };
        let r = simulated_annealing(&hg, &fixed, &balance, initial, cfg, &mut rng)
            .expect("sa runs");
        // SA keeps the best *balanced* state, which is never worse than a
        // balanced initial.
        assert!(r.cut <= before);
        let p = Partitioning::from_parts(&hg, 2, r.parts).expect("valid parts");
        let report = validate_partitioning(&hg, &p, &balance, &fixed);
        assert!(report.is_valid(), "{report}");
    }

    #[cases(64)]
    fn kway_refine_is_valid_and_monotone(inst in instance_gen(18)) {
        let (hg, fixed) = build(&inst);
        // 3-way with loose balance; map fixities into range.
        let balance = BalanceConstraint::even(
            3,
            &[hg.total_weight()],
            Tolerance::Absolute(hg.total_weight()),
        );
        let mut rng = ChaCha8Rng::seed_from_u64(inst.seed);
        let initial = fixed_vertices_repro::vlsi_partition::random_initial(
            &hg, &fixed, &balance, 3, &mut rng,
        ).expect("feasible");
        let before = CutState::new(&hg, 3, &initial).value(Objective::KMinus1);
        let r = kway::refine(&hg, &fixed, &balance, initial, Objective::KMinus1, 4)
            .expect("refine runs");
        assert!(r.cut <= before);
        for v in hg.vertices() {
            assert!(fixed.fixity(v).allows(r.parts[v.index()]));
        }
    }
}
