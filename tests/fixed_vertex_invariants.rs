//! The paper's core contract, property-tested: no matter how many vertices
//! are fixed (0–50%, drawn at random), every partitioner must return a
//! solution in which (a) every fixed vertex sits exactly in its assigned
//! part and (b) the paper's 2% balance constraint holds.

use vlsi_rng::{ChaCha8Rng, Rng, RngCore, SeedableRng};
use vlsi_testkit::gen::{distinct_sorted, RawInstance};
use vlsi_testkit::{prop_test, TestRng};

use fixed_vertices_repro::vlsi_hypergraph::{
    BalanceConstraint, FixedVertices, Fixity, Hypergraph, HypergraphBuilder, PartId, Tolerance,
    VertexId,
};
use fixed_vertices_repro::vlsi_partition::{
    BipartFm, FmConfig, MultilevelConfig, MultilevelPartitioner, SelectionPolicy,
};

/// Paper-scale instances for the 2% constraint: unit weights and enough
/// vertices that a 2% window is non-degenerate, with a *uniformly drawn*
/// fixed fraction in 0–50% (so the corpus covers the whole sweep range,
/// not just one density).
fn instance_with_random_fix_fraction(rng: &mut TestRng) -> RawInstance {
    let n = rng.gen_range(60..140usize);
    let weights = vec![1u64; n];
    let num_nets = rng.gen_range(n..3 * n);
    let net_gen = distinct_sorted(n, 2..5);
    let nets: Vec<Vec<usize>> = (0..num_nets).map(|_| net_gen(rng)).collect();
    let frac = rng.gen_range(0.0..0.5);
    let fixities: Vec<Option<u8>> = (0..n)
        .map(|_| {
            if rng.gen_bool(frac) {
                Some(rng.gen_range(0..2u8))
            } else {
                None
            }
        })
        .collect();
    RawInstance {
        weights,
        nets,
        fixities,
        seed: rng.next_u64(),
    }
}

fn build(inst: &RawInstance) -> (Hypergraph, FixedVertices) {
    let mut b = HypergraphBuilder::new();
    for &w in &inst.weights {
        b.add_vertex(w);
    }
    for net in &inst.nets {
        if net.len() >= 2 && net.iter().all(|&i| i < inst.weights.len()) {
            b.add_net(1, net.iter().map(|&i| VertexId::from_index(i)))
                .expect("valid net");
        }
    }
    let hg = b.build().expect("valid hypergraph");
    let fixities = inst
        .fixities
        .iter()
        .map(|f| match f {
            None => Fixity::Free,
            Some(p) => Fixity::Fixed(PartId((*p % 2) as u32)),
        })
        .chain(std::iter::repeat(Fixity::Free))
        .take(inst.weights.len())
        .collect();
    (hg, FixedVertices::from_fixities(fixities))
}

/// The paper's balance: bisection within a 2% tolerance.
fn paper_balance(hg: &Hypergraph) -> BalanceConstraint {
    BalanceConstraint::bisection(hg.total_weight(), Tolerance::Relative(0.02))
}

/// Asserts the two invariants on a solution. Shared by all engines.
fn assert_invariants(
    engine: &str,
    hg: &Hypergraph,
    fixed: &FixedVertices,
    balance: &BalanceConstraint,
    parts: &[PartId],
) {
    let mut loads = [0u64; 2];
    for v in hg.vertices() {
        loads[parts[v.index()].index()] += hg.vertex_weight(v);
        if let Fixity::Fixed(p) = fixed.fixity(v) {
            assert_eq!(
                parts[v.index()],
                p,
                "{engine}: fixed vertex {v} left its assigned part"
            );
        }
    }
    assert!(
        balance.is_satisfied(&loads),
        "{engine}: 2% balance violated: loads {loads:?} of {}",
        hg.total_weight()
    );
}

prop_test! {
    /// Flat FM (LIFO policy) honours fixities and the 2% balance at any
    /// fixed fraction. Instances the fixity mask makes infeasible under 2%
    /// (random fixing can overload a side) are skipped — the engine
    /// reporting an error instead of an invalid solution is itself the
    /// correct behaviour.
    #[cases(48)]
    fn flat_fm_preserves_fixities_and_balance(inst in instance_with_random_fix_fraction) {
        let (hg, fixed) = build(&inst);
        let balance = paper_balance(&hg);
        let fm = BipartFm::new(FmConfig::default());
        let mut rng = ChaCha8Rng::seed_from_u64(inst.seed);
        let Ok(result) = fm.run_random(&hg, &fixed, &balance, &mut rng) else {
            return;
        };
        assert_invariants("flat-fm", &hg, &fixed, &balance, &result.parts);
    }

    /// Same contract for the CLIP selection policy.
    #[cases(48)]
    fn clip_fm_preserves_fixities_and_balance(inst in instance_with_random_fix_fraction) {
        let (hg, fixed) = build(&inst);
        let balance = paper_balance(&hg);
        let fm = BipartFm::new(FmConfig {
            policy: SelectionPolicy::Clip,
            ..FmConfig::default()
        });
        let mut rng = ChaCha8Rng::seed_from_u64(inst.seed);
        let Ok(result) = fm.run_random(&hg, &fixed, &balance, &mut rng) else {
            return;
        };
        assert_invariants("clip-fm", &hg, &fixed, &balance, &result.parts);
    }

    /// The full multilevel pipeline — coarsening must not merge a fixed
    /// vertex across sides, refinement must not move one.
    #[cases(32)]
    fn multilevel_preserves_fixities_and_balance(inst in instance_with_random_fix_fraction) {
        let (hg, fixed) = build(&inst);
        let balance = paper_balance(&hg);
        let ml = MultilevelPartitioner::new(MultilevelConfig {
            coarsest_size: 20,
            coarse_starts: 2,
            ..MultilevelConfig::default()
        });
        let mut rng = ChaCha8Rng::seed_from_u64(inst.seed);
        let Ok(result) = ml.run(&hg, &fixed, &balance, &mut rng) else {
            return;
        };
        assert_invariants("multilevel", &hg, &fixed, &balance, &result.parts);
    }
}

/// A deterministic end-to-end sweep over the paper's exact percentages,
/// complementing the randomized properties above: at 0, 10, 20, 30, 40 and
/// 50% fixed, the invariants hold for every trial that runs.
#[test]
fn paper_percentage_sweep_preserves_invariants() {
    let mut rng = ChaCha8Rng::seed_from_u64(2024);
    let n = 100usize;
    let mut b = HypergraphBuilder::new();
    for _ in 0..n {
        b.add_vertex(1);
    }
    let net_gen = distinct_sorted(n, 2..5);
    let mut net_rng = TestRng::seed_from_u64(9);
    for _ in 0..2 * n {
        let net = net_gen(&mut net_rng);
        b.add_net(1, net.iter().map(|&i| VertexId::from_index(i)))
            .expect("valid net");
    }
    let hg = b.build().expect("valid hypergraph");
    let balance = paper_balance(&hg);
    let fm = BipartFm::new(FmConfig::default());

    let mut ran = 0;
    for pct in [0usize, 10, 20, 30, 40, 50] {
        let mut fixed = FixedVertices::all_free(n);
        // Balanced alternating assignment keeps every percentage feasible
        // under the 2% window.
        for i in 0..n * pct / 100 {
            fixed.fix(VertexId(i as u32), PartId((i % 2) as u32));
        }
        for _ in 0..4 {
            let result = fm
                .run_random(&hg, &fixed, &balance, &mut rng)
                .expect("feasible by construction");
            assert_invariants("sweep", &hg, &fixed, &balance, &result.parts);
            ran += 1;
        }
    }
    assert_eq!(ran, 24);
}
