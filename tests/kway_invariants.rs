//! The fixed-vertex contract, property-tested for the k-way engines: no
//! matter how many vertices are fixed (0–50%, drawn at random) and for any
//! k ∈ {2, 3, 4}, `kway::refine_pass` and `kway::recursive_bisection` must
//! return solutions in which (a) every fixed vertex sits exactly in its
//! assigned part and (b) the per-part balance constraint holds.

use vlsi_rng::{ChaCha8Rng, Rng, RngCore, SeedableRng};
use vlsi_testkit::gen::{distinct_sorted, RawInstance};
use vlsi_testkit::{prop_test, TestRng};

use fixed_vertices_repro::vlsi_hypergraph::{
    BalanceConstraint, CutState, FixedVertices, Fixity, Hypergraph, HypergraphBuilder, Objective,
    PartId, Tolerance, VertexId,
};
use fixed_vertices_repro::vlsi_partition::{kway, random_initial, MultilevelConfig};

/// Instances with a *uniformly drawn* fixed fraction in 0–50%, so the
/// corpus covers the whole sweep range. The part count is derived from the
/// instance seed (k ∈ {2, 3, 4}) and fixities land in `0..k`.
fn instance_with_random_fix_fraction(rng: &mut TestRng) -> RawInstance {
    let n = rng.gen_range(60..140usize);
    let weights = vec![1u64; n];
    let num_nets = rng.gen_range(n..3 * n);
    let net_gen = distinct_sorted(n, 2..5);
    let nets: Vec<Vec<usize>> = (0..num_nets).map(|_| net_gen(rng)).collect();
    let frac = rng.gen_range(0.0..0.5);
    let fixities: Vec<Option<u8>> = (0..n)
        .map(|_| {
            if rng.gen_bool(frac) {
                Some(rng.gen_range(0..4u8))
            } else {
                None
            }
        })
        .collect();
    RawInstance {
        weights,
        nets,
        fixities,
        seed: rng.next_u64(),
    }
}

/// The instance's part count: k ∈ {2, 3, 4}, derived from its seed.
fn part_count(inst: &RawInstance) -> usize {
    2 + (inst.seed % 3) as usize
}

fn build(inst: &RawInstance, k: usize) -> (Hypergraph, FixedVertices) {
    let mut b = HypergraphBuilder::new();
    for &w in &inst.weights {
        b.add_vertex(w);
    }
    for net in &inst.nets {
        if net.len() >= 2 && net.iter().all(|&i| i < inst.weights.len()) {
            b.add_net(1, net.iter().map(|&i| VertexId::from_index(i)))
                .expect("valid net");
        }
    }
    let hg = b.build().expect("valid hypergraph");
    let fixities = inst
        .fixities
        .iter()
        .map(|f| match f {
            None => Fixity::Free,
            Some(p) => Fixity::Fixed(PartId((*p as usize % k) as u32)),
        })
        .chain(std::iter::repeat(Fixity::Free))
        .take(inst.weights.len())
        .collect();
    (hg, FixedVertices::from_fixities(fixities))
}

/// Even k-way balance with 10% per-part tolerance (the multiway sweep's
/// setting).
fn kway_balance(hg: &Hypergraph, k: usize) -> BalanceConstraint {
    BalanceConstraint::even(k, &[hg.total_weight()], Tolerance::Relative(0.1))
}

/// Checks fixity and part-range on a k-way solution and returns the
/// per-part loads for the caller's balance check.
fn assert_fixities(
    engine: &str,
    hg: &Hypergraph,
    fixed: &FixedVertices,
    k: usize,
    parts: &[PartId],
) -> Vec<u64> {
    let mut loads = vec![0u64; k];
    for v in hg.vertices() {
        assert!(
            parts[v.index()].index() < k,
            "{engine}: vertex {v} assigned out-of-range part"
        );
        loads[parts[v.index()].index()] += hg.vertex_weight(v);
        if let Fixity::Fixed(p) = fixed.fixity(v) {
            assert_eq!(
                parts[v.index()],
                p,
                "{engine}: fixed vertex {v} left its assigned part"
            );
        }
    }
    loads
}

/// Asserts the two invariants on a k-way solution.
fn assert_invariants(
    engine: &str,
    hg: &Hypergraph,
    fixed: &FixedVertices,
    balance: &BalanceConstraint,
    k: usize,
    parts: &[PartId],
) {
    let loads = assert_fixities(engine, hg, fixed, k, parts);
    assert!(
        balance.is_satisfied(&loads),
        "{engine}: k-way balance violated: loads {loads:?} of {}",
        hg.total_weight()
    );
}

prop_test! {
    /// One k-way FM pass from a legal random assignment honours fixities
    /// and balance, and never worsens the cut objective. Instances the
    /// fixity mask makes infeasible are skipped — erroring out instead of
    /// returning an invalid solution is itself the correct behaviour.
    #[cases(48)]
    fn refine_pass_preserves_fixities_and_balance(inst in instance_with_random_fix_fraction) {
        let k = part_count(&inst);
        let (hg, fixed) = build(&inst, k);
        let balance = kway_balance(&hg, k);
        let mut rng = ChaCha8Rng::seed_from_u64(inst.seed);
        let Ok(initial) = random_initial(&hg, &fixed, &balance, k, &mut rng) else {
            return;
        };
        let before = CutState::new(&hg, k, &initial).value(Objective::Cut);
        let result = kway::refine_pass(&hg, &fixed, &balance, initial, Objective::Cut)
            .expect("legal input refines");
        assert_invariants("refine-pass", &hg, &fixed, &balance, k, &result.parts);
        assert!(
            result.cut <= before,
            "refine-pass worsened the cut: {before} -> {}",
            result.cut
        );
    }

    /// Same contract for the k−1 objective (the paper's multiway metric).
    #[cases(32)]
    fn refine_pass_kminus1_preserves_fixities_and_balance(
        inst in instance_with_random_fix_fraction
    ) {
        let k = part_count(&inst);
        let (hg, fixed) = build(&inst, k);
        let balance = kway_balance(&hg, k);
        let mut rng = ChaCha8Rng::seed_from_u64(inst.seed);
        let Ok(initial) = random_initial(&hg, &fixed, &balance, k, &mut rng) else {
            return;
        };
        let before = CutState::new(&hg, k, &initial).value(Objective::KMinus1);
        let result = kway::refine_pass(&hg, &fixed, &balance, initial, Objective::KMinus1)
            .expect("legal input refines");
        assert_invariants("refine-pass-km1", &hg, &fixed, &balance, k, &result.parts);
        assert!(
            result.cut <= before,
            "refine-pass worsened k-1: {before} -> {}",
            result.cut
        );
    }

    /// Recursive bisection builds a legal k-way solution from scratch:
    /// fixities always hold, and every part load stays within the engine's
    /// balance contract — the split tolerance compounds across the
    /// ⌈log₂ k⌉ bisection levels, each with a heaviest-cell slack floor.
    #[cases(32)]
    fn recursive_bisection_preserves_fixities_and_balance(
        inst in instance_with_random_fix_fraction
    ) {
        let k = part_count(&inst);
        let (hg, fixed) = build(&inst, k);
        let tolerance = 0.1;
        let ml = MultilevelConfig {
            coarsest_size: 20,
            coarse_starts: 2,
            ..MultilevelConfig::default()
        };
        let mut rng = ChaCha8Rng::seed_from_u64(inst.seed);
        let Ok(result) = kway::recursive_bisection(&hg, &fixed, k, tolerance, &ml, &mut rng)
        else {
            return;
        };
        let loads = assert_fixities("recursive-bisection", &hg, &fixed, k, &result.parts);
        let target = hg.total_weight() as f64 / k as f64;
        let levels = (k as f64).log2().ceil();
        // Per-part bound: tolerance compounded over the levels, plus one
        // heaviest-cell (unit weight) slack per level.
        let slack = target * ((1.0 + tolerance).powf(levels) - 1.0) + levels;
        for (p, &load) in loads.iter().enumerate() {
            assert!(
                (load as f64 - target).abs() <= slack + 1e-9,
                "recursive-bisection: part {p} load {load} outside {target:.1} ± {slack:.1} \
                 (loads {loads:?}, k = {k})"
            );
        }
    }
}

/// A deterministic sweep over the paper's percentages for the k-way pass,
/// complementing the randomized properties: at 0–50% fixed, the invariants
/// hold for every quadrisection trial that runs.
#[test]
fn kway_percentage_sweep_preserves_invariants() {
    let k = 4usize;
    let n = 120usize;
    let mut b = HypergraphBuilder::new();
    for _ in 0..n {
        b.add_vertex(1);
    }
    let net_gen = distinct_sorted(n, 2..5);
    let mut net_rng = TestRng::seed_from_u64(9);
    for _ in 0..2 * n {
        let net = net_gen(&mut net_rng);
        b.add_net(1, net.iter().map(|&i| VertexId::from_index(i)))
            .expect("valid net");
    }
    let hg = b.build().expect("valid hypergraph");
    let balance = kway_balance(&hg, k);
    let mut rng = ChaCha8Rng::seed_from_u64(2024);

    let mut ran = 0;
    for pct in [0usize, 10, 20, 30, 40, 50] {
        let mut fixed = FixedVertices::all_free(n);
        // Round-robin assignment keeps every percentage feasible under the
        // 10% window.
        for i in 0..n * pct / 100 {
            fixed.fix(VertexId(i as u32), PartId((i % k) as u32));
        }
        for _ in 0..4 {
            let initial = random_initial(&hg, &fixed, &balance, k, &mut rng)
                .expect("feasible by construction");
            let result = kway::refine_pass(&hg, &fixed, &balance, initial, Objective::Cut)
                .expect("legal input refines");
            assert_invariants("sweep", &hg, &fixed, &balance, k, &result.parts);
            ran += 1;
        }
    }
    assert_eq!(ran, 24);
}
