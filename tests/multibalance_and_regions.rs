//! Section IV feature tests: multi-balanced partitioning (k > 1 resource
//! types evenly distributed) and region-style "or" fixing (a terminal fixed
//! in the two left-side quadrants of a quadrisection).

use vlsi_rng::ChaCha8Rng;
use vlsi_rng::SeedableRng;

use fixed_vertices_repro::vlsi_hypergraph::io::{
    apply_multi_areas, read_multi_are, write_multi_are,
};
use fixed_vertices_repro::vlsi_hypergraph::{
    validate_partitioning, BalanceConstraint, FixedVertices, Fixity, HypergraphBuilder, PartId,
    PartSet, Partitioning, Tolerance, VertexId,
};
use fixed_vertices_repro::vlsi_partition::kway::recursive_bisection;
use fixed_vertices_repro::vlsi_partition::{BipartFm, FmConfig, MultilevelConfig};

/// The paper's hypothetical example: "cell area, cell pin count, and cell
/// power dissipation resource types — all of which must be evenly
/// distributed between the partitions."
#[test]
fn multibalanced_bisection_balances_every_resource() {
    let mut rng = ChaCha8Rng::seed_from_u64(77);
    let mut b = HypergraphBuilder::with_resources(3);
    let n = 60;
    let mut vertices = Vec::new();
    for i in 0..n {
        // area, pins, power — deliberately uncorrelated.
        let area = 1 + (i % 4) as u64;
        let pins = 1 + ((i * 7) % 5) as u64;
        let power = 1 + ((i * 13) % 3) as u64;
        vertices.push(b.add_vertex_multi(&[area, pins, power]).unwrap());
    }
    for w in vertices.windows(2) {
        b.add_net(1, [w[0], w[1]]).unwrap();
    }
    let hg = b.build().unwrap();

    let balance = BalanceConstraint::even(2, hg.total_weights(), Tolerance::Relative(0.10));
    let fixed = FixedVertices::all_free(n);
    let fm = BipartFm::new(FmConfig::default());
    let result = fm.run_random(&hg, &fixed, &balance, &mut rng).unwrap();

    let p = Partitioning::from_parts(&hg, 2, result.parts).unwrap();
    let report = validate_partitioning(&hg, &p, &balance, &fixed);
    assert!(report.is_valid(), "{report}");
    for r in 0..3 {
        for part in [PartId(0), PartId(1)] {
            let load = p.load(part, r);
            assert!(
                load >= balance.min(part, r) && load <= balance.max(part, r),
                "resource {r} of {part} out of bounds: {load}"
            );
        }
    }
}

#[test]
fn multi_area_file_drives_multibalanced_instances() {
    // Build a plain graph, attach a 2-resource multi-area file, partition
    // under the 2-resource constraint.
    let mut b = HypergraphBuilder::new();
    let v: Vec<_> = (0..20).map(|_| b.add_vertex(1)).collect();
    for w in v.windows(2) {
        b.add_net(1, [w[0], w[1]]).unwrap();
    }
    let hg = b.build().unwrap();

    // Resource 0 uniform, resource 1 concentrated on even vertices.
    let weights: Vec<u64> = (0..20)
        .flat_map(|i| [2, if i % 2 == 0 { 3 } else { 0 }])
        .collect();
    let upgraded = apply_multi_areas(&hg, 2, &weights).unwrap();

    // Round-trip the areas through the file format for good measure.
    let mut buf = Vec::new();
    write_multi_are(&mut buf, &upgraded).unwrap();
    let (k, w2) = read_multi_are(buf.as_slice(), 20).unwrap();
    assert_eq!(k, 2);
    assert_eq!(w2, weights);

    let balance = BalanceConstraint::even(2, upgraded.total_weights(), Tolerance::Relative(0.25));
    let fixed = FixedVertices::all_free(20);
    let fm = BipartFm::new(FmConfig::default());
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let result = fm
        .run_random(&upgraded, &fixed, &balance, &mut rng)
        .unwrap();
    let p = Partitioning::from_parts(&upgraded, 2, result.parts).unwrap();
    assert!(validate_partitioning(&upgraded, &p, &balance, &fixed).is_valid());
    // Resource 1 total is 30; each side must hold 15 ± 25%.
    let r1 = p.load(PartId(0), 1);
    assert!((12..=18).contains(&r1), "resource-1 load {r1}");
}

/// The paper's region example: "a propagated terminal can be fixed in the
/// two left-side quadrants of a quadrisection instance, so that the
/// partitioner is free to assign it to either left-side quadrant."
#[test]
fn quadrisection_or_fixing_keeps_terminal_on_the_left() {
    let mut b = HypergraphBuilder::new();
    // Four 6-cell cliques chained 0-1-2-3; a zero-area terminal tied to
    // clique 0's corner.
    let v: Vec<_> = (0..24).map(|_| b.add_vertex(1)).collect();
    for g in 0..4 {
        for i in 0..6 {
            for j in (i + 1)..6 {
                b.add_net(1, [v[g * 6 + i], v[g * 6 + j]]).unwrap();
            }
        }
    }
    for g in 1..4 {
        b.add_net(1, [v[(g - 1) * 6], v[g * 6]]).unwrap();
    }
    let term = b.add_vertex(0);
    b.add_net(5, [term, v[0]]).unwrap(); // heavy tie into clique 0
    let hg = b.build().unwrap();

    // Left side = quadrants 0 and 1 in the recursive numbering.
    let left: PartSet = [PartId(0), PartId(1)].into_iter().collect();
    let mut fixed = FixedVertices::all_free(hg.num_vertices());
    fixed.set(term, Fixity::FixedAny(left));

    let cfg = MultilevelConfig {
        coarsest_size: 12,
        ..MultilevelConfig::default()
    };
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let r = recursive_bisection(&hg, &fixed, 4, 0.2, &cfg, &mut rng).unwrap();

    // The terminal ended up in one of its two allowed quadrants...
    let tpart = r.parts[term.index()];
    assert!(left.contains(tpart), "terminal landed in {tpart}");
    // ...and the clique it is welded to shares that side of the top cut.
    let clique_part = r.parts[v[0].index()];
    assert!(
        left.contains(clique_part),
        "clique 0 should be pulled left, got {clique_part}"
    );
    // Every vertex got a quadrant and the cliques stayed intact.
    for g in 0..4 {
        let p0 = r.parts[v[g * 6].index()];
        for i in 1..6 {
            assert_eq!(r.parts[v[g * 6 + i].index()], p0, "clique {g} split");
        }
    }
    let _ = VertexId(0);
}
