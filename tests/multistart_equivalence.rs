//! The `Multistart` builder migration contract: each of the nine deprecated
//! `multistart*` free functions is a thin wrapper over the builder, so the
//! legacy spelling and the explicit builder call must replay
//! **byte-identical** outcomes (parts, cut, per-start records, retained top
//! list) for the same seed — on every registered engine, across a fixed-seed
//! corpus. A divergence here means a wrapper quietly changed behaviour
//! during the API redesign.
#![allow(deprecated)]

use vlsi_rng::{ChaCha8Rng, SeedableRng};

use fixed_vertices_repro::vlsi_hypergraph::{
    BalanceConstraint, FixedVertices, PartId, Tolerance, VertexId,
};
use fixed_vertices_repro::vlsi_netgen::instances::ibm01_like_scaled;
use fixed_vertices_repro::vlsi_partition::trace::{NullSink, VecSink};
use fixed_vertices_repro::vlsi_partition::{
    multistart, multistart_engine, multistart_engine_cancellable, multistart_engine_with_sink,
    multistart_parallel, multistart_parallel_engine, multistart_parallel_engine_cancellable,
    multistart_parallel_engine_instrumented, multistart_with_sink, CancelToken, EngineConfig,
    Multistart, MultistartOutcome, Partitioner, RunCtx, ENGINES,
};

/// A smallish instance with a sprinkle of fixed vertices, deterministic in
/// `seed`.
fn corpus_instance(
    seed: u64,
) -> (
    fixed_vertices_repro::vlsi_hypergraph::Hypergraph,
    FixedVertices,
) {
    let circuit = ibm01_like_scaled(0.015, seed);
    let hg = circuit.hypergraph;
    let mut fixed = FixedVertices::all_free(hg.num_vertices());
    for i in 0..hg.num_vertices() / 12 {
        fixed.fix(VertexId((i * 9) as u32), PartId((i % 2) as u32));
    }
    (hg, fixed)
}

fn assert_same(
    label: &str,
    engine_name: &str,
    legacy: &MultistartOutcome,
    new: &MultistartOutcome,
) {
    assert_eq!(
        legacy.best.parts, new.best.parts,
        "{label} diverged from the builder on engine {engine_name}"
    );
    assert_eq!(legacy.best.cut, new.best.cut, "{label} / {engine_name}");
    assert_eq!(
        legacy.starts.len(),
        new.starts.len(),
        "{label} / {engine_name}"
    );
    for (a, b) in legacy.starts.iter().zip(&new.starts) {
        assert_eq!(a.cut, b.cut, "{label} / {engine_name}");
    }
    assert_eq!(legacy.top, new.top, "{label} / {engine_name}");
}

const STARTS: usize = 3;

#[test]
fn sequential_engine_wrappers_match_builder() {
    let (hg, fixed) = corpus_instance(5);
    let balance = BalanceConstraint::bisection(hg.total_weight(), Tolerance::Relative(0.25));
    for info in ENGINES {
        let engine = EngineConfig::by_name(info.name).expect("registry name resolves");
        let via_builder = {
            let mut rng = ChaCha8Rng::seed_from_u64(9);
            Multistart::new(STARTS)
                .run(&hg, &fixed, &balance, &engine, RunCtx::new(&mut rng))
                .expect("engine runs")
        };
        let via_engine = {
            let mut rng = ChaCha8Rng::seed_from_u64(9);
            multistart_engine(&hg, &fixed, &balance, STARTS, &mut rng, &engine)
                .expect("engine runs")
        };
        let via_engine_sink = {
            let mut rng = ChaCha8Rng::seed_from_u64(9);
            multistart_engine_with_sink(&hg, &fixed, &balance, STARTS, &mut rng, &NullSink, &engine)
                .expect("engine runs")
        };
        let via_engine_cancellable = {
            let mut rng = ChaCha8Rng::seed_from_u64(9);
            let never = CancelToken::never();
            multistart_engine_cancellable(
                &hg, &fixed, &balance, STARTS, &mut rng, &NullSink, &engine, &never,
            )
            .expect("engine runs")
        };
        assert_same("multistart_engine", info.name, &via_engine, &via_builder);
        assert_same(
            "multistart_engine_with_sink",
            info.name,
            &via_engine_sink,
            &via_builder,
        );
        assert_same(
            "multistart_engine_cancellable",
            info.name,
            &via_engine_cancellable,
            &via_builder,
        );
    }
}

#[test]
fn sequential_closure_wrappers_match_builder() {
    let (hg, fixed) = corpus_instance(11);
    let balance = BalanceConstraint::bisection(hg.total_weight(), Tolerance::Relative(0.25));
    let engine = EngineConfig::by_name("fm").expect("fm registered");
    let closure = |hg: &fixed_vertices_repro::vlsi_hypergraph::Hypergraph,
                   fixed: &FixedVertices,
                   balance: &BalanceConstraint,
                   rng: &mut ChaCha8Rng| {
        engine.partition_ctx(hg, fixed, balance, RunCtx::new(rng))
    };
    let via_builder = {
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        Multistart::new(STARTS)
            .run_with(&hg, &fixed, &balance, RunCtx::new(&mut rng), closure)
            .expect("engine runs")
    };
    let via_multistart = {
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        multistart(&hg, &fixed, &balance, STARTS, &mut rng, closure).expect("engine runs")
    };
    let via_with_sink = {
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        multistart_with_sink(&hg, &fixed, &balance, STARTS, &mut rng, &NullSink, closure)
            .expect("engine runs")
    };
    assert_same("multistart", "fm", &via_multistart, &via_builder);
    assert_same("multistart_with_sink", "fm", &via_with_sink, &via_builder);
}

#[test]
fn parallel_wrappers_match_builder() {
    let (hg, fixed) = corpus_instance(17);
    let balance = BalanceConstraint::bisection(hg.total_weight(), Tolerance::Relative(0.25));
    for info in ENGINES {
        let engine = EngineConfig::by_name(info.name).expect("registry name resolves");
        for threads in [1usize, 2, 4] {
            let never = CancelToken::never();
            let via_builder = Multistart::new(STARTS)
                .run_parallel(
                    &hg, &fixed, &balance, threads, 33, &engine, &NullSink, &NullSink, &never,
                )
                .expect("engine runs");
            let closure = |hg: &fixed_vertices_repro::vlsi_hypergraph::Hypergraph,
                           fixed: &FixedVertices,
                           balance: &BalanceConstraint,
                           rng: &mut ChaCha8Rng| {
                engine.partition_ctx(hg, fixed, balance, RunCtx::new(rng))
            };
            let via_parallel =
                multistart_parallel(&hg, &fixed, &balance, STARTS, threads, 33, &closure)
                    .expect("engine runs");
            let via_parallel_engine =
                multistart_parallel_engine(&hg, &fixed, &balance, STARTS, threads, 33, &engine)
                    .expect("engine runs");
            let summary = VecSink::new();
            let via_cancellable = multistart_parallel_engine_cancellable(
                &hg, &fixed, &balance, STARTS, threads, 33, &engine, &summary, &never,
            )
            .expect("engine runs");
            let via_instrumented = multistart_parallel_engine_instrumented(
                &hg, &fixed, &balance, STARTS, threads, 33, &engine, &NullSink, &NullSink, &never,
            )
            .expect("engine runs");
            let label = format!("threads={threads}");
            assert_same(
                &format!("multistart_parallel {label}"),
                info.name,
                &via_parallel,
                &via_builder,
            );
            assert_same(
                &format!("multistart_parallel_engine {label}"),
                info.name,
                &via_parallel_engine,
                &via_builder,
            );
            assert_same(
                &format!("multistart_parallel_engine_cancellable {label}"),
                info.name,
                &via_cancellable,
                &via_builder,
            );
            assert_same(
                &format!("multistart_parallel_engine_instrumented {label}"),
                info.name,
                &via_instrumented,
                &via_builder,
            );
            // The cancellable wrapper's summary stream reports exactly the
            // executed starts, in ascending order.
            let events = summary.take();
            let reported: Vec<u32> = events
                .iter()
                .filter_map(|e| match e {
                    fixed_vertices_repro::vlsi_partition::trace::Event::StartFinished {
                        start,
                        ..
                    } => Some(*start),
                    _ => None,
                })
                .collect();
            assert_eq!(reported, vec![0, 1, 2], "{} {label}", info.name);
        }
    }
}
