//! The `RunCtx` migration contract: every deprecated legacy entry point
//! (`partition` / `partition_with_sink` / `partition_cancellable` and the
//! `refine_*` triplet) is a thin wrapper over the `*_ctx` method, so the
//! legacy spelling and an explicitly-built default [`RunCtx`] must replay
//! **byte-identical** results for the same seed — on every registered
//! engine, across a fixed-seed corpus of generated instances. A divergence
//! here means a wrapper quietly changed behaviour during the migration.
#![allow(deprecated)]

use vlsi_rng::{ChaCha8Rng, SeedableRng};

use fixed_vertices_repro::vlsi_hypergraph::{
    BalanceConstraint, FixedVertices, PartId, Tolerance, VertexId,
};
use fixed_vertices_repro::vlsi_netgen::instances::ibm01_like_scaled;
use fixed_vertices_repro::vlsi_partition::trace::NullSink;
use fixed_vertices_repro::vlsi_partition::{
    BipartFm, CancelToken, EngineConfig, FmConfig, FmStack, MultilevelConfig, Partitioner, Refiner,
    RunCtx, ENGINES,
};

/// A smallish instance with a sprinkle of fixed vertices, deterministic in
/// `seed`.
fn corpus_instance(
    seed: u64,
) -> (
    fixed_vertices_repro::vlsi_hypergraph::Hypergraph,
    FixedVertices,
) {
    let circuit = ibm01_like_scaled(0.015, seed);
    let hg = circuit.hypergraph;
    let mut fixed = FixedVertices::all_free(hg.num_vertices());
    for i in 0..hg.num_vertices() / 12 {
        fixed.fix(VertexId((i * 9) as u32), PartId((i % 2) as u32));
    }
    (hg, fixed)
}

#[test]
fn partition_ctx_matches_every_legacy_entry_point() {
    for corpus_seed in [3u64, 11, 42] {
        let (hg, fixed) = corpus_instance(corpus_seed);
        for info in ENGINES {
            let engine = EngineConfig::by_name(info.name).expect("registry name resolves");
            // Every registered engine supports bisection; the k-way engines
            // treat k = 2 as a single split.
            let balance =
                BalanceConstraint::bisection(hg.total_weight(), Tolerance::Relative(0.25));
            let run_seed = 7 + corpus_seed;

            let via_ctx = {
                let mut rng = ChaCha8Rng::seed_from_u64(run_seed);
                engine
                    .partition_ctx(&hg, &fixed, &balance, RunCtx::new(&mut rng))
                    .expect("engine runs")
            };
            let via_partition = {
                let mut rng = ChaCha8Rng::seed_from_u64(run_seed);
                engine
                    .partition(&hg, &fixed, &balance, &mut rng)
                    .expect("engine runs")
            };
            let via_sink = {
                let mut rng = ChaCha8Rng::seed_from_u64(run_seed);
                engine
                    .partition_with_sink(&hg, &fixed, &balance, &mut rng, &NullSink)
                    .expect("engine runs")
            };
            let via_cancellable = {
                let mut rng = ChaCha8Rng::seed_from_u64(run_seed);
                engine
                    .partition_cancellable(
                        &hg,
                        &fixed,
                        &balance,
                        &mut rng,
                        &NullSink,
                        &CancelToken::never(),
                    )
                    .expect("engine runs")
            };

            for (label, legacy) in [
                ("partition", &via_partition),
                ("partition_with_sink", &via_sink),
                ("partition_cancellable", &via_cancellable),
            ] {
                assert_eq!(
                    legacy.parts, via_ctx.parts,
                    "{} diverged from partition_ctx on engine {} (corpus seed {})",
                    label, info.name, corpus_seed
                );
                assert_eq!(legacy.cut, via_ctx.cut);
            }
        }
    }
}

#[test]
fn refine_ctx_matches_every_legacy_entry_point() {
    for corpus_seed in [3u64, 11] {
        let (hg, fixed) = corpus_instance(corpus_seed);
        let balance = BalanceConstraint::bisection(hg.total_weight(), Tolerance::Relative(0.25));
        // A legal-but-poor initial assignment for the refiners to improve,
        // honouring the corpus fixities.
        let initial: Vec<PartId> = {
            let mut rng = ChaCha8Rng::seed_from_u64(corpus_seed);
            fixed_vertices_repro::vlsi_partition::random_initial(&hg, &fixed, &balance, 2, &mut rng)
                .expect("feasible instance")
        };

        // `Refiner` is not object-safe (generic methods), so each refiner
        // goes through a generic checker instead of a dyn loop.
        fn check<Rf: Refiner>(
            label: &str,
            corpus_seed: u64,
            refiner: &Rf,
            hg: &fixed_vertices_repro::vlsi_hypergraph::Hypergraph,
            fixed: &FixedVertices,
            balance: &BalanceConstraint,
            initial: &[PartId],
        ) {
            let via_ctx = {
                let mut rng = ChaCha8Rng::seed_from_u64(0);
                refiner
                    .refine_ctx(hg, fixed, balance, initial.to_vec(), RunCtx::new(&mut rng))
                    .expect("refiner runs")
            };
            let via_refine = refiner
                .refine(hg, fixed, balance, initial.to_vec())
                .expect("refiner runs");
            let via_sink = refiner
                .refine_with_sink(hg, fixed, balance, initial.to_vec(), &NullSink)
                .expect("refiner runs");
            let via_cancellable = refiner
                .refine_cancellable(
                    hg,
                    fixed,
                    balance,
                    initial.to_vec(),
                    &NullSink,
                    &CancelToken::never(),
                )
                .expect("refiner runs");

            for (legacy_label, legacy) in [
                ("refine", &via_refine),
                ("refine_with_sink", &via_sink),
                ("refine_cancellable", &via_cancellable),
            ] {
                assert_eq!(
                    legacy.parts, via_ctx.parts,
                    "{legacy_label} diverged from refine_ctx on {label} (corpus seed {corpus_seed})"
                );
                assert_eq!(legacy.cut, via_ctx.cut);
            }
        }

        let fm = BipartFm::new(FmConfig::default());
        let stack = FmStack::new(FmConfig::default(), Some(FmConfig::default()));
        check("fm", corpus_seed, &fm, &hg, &fixed, &balance, &initial);
        check(
            "fm-stack",
            corpus_seed,
            &stack,
            &hg,
            &fixed,
            &balance,
            &initial,
        );
    }
}

#[test]
fn default_multilevel_config_matches_threaded_ctx_defaults() {
    // RunCtx::new defaults to one thread; an engine whose config also says
    // one thread must therefore behave exactly like the legacy path even
    // when the ctx is built piecewise with the builders.
    let (hg, fixed) = corpus_instance(19);
    let balance = BalanceConstraint::bisection(hg.total_weight(), Tolerance::Relative(0.05));
    let engine = EngineConfig::Multilevel(MultilevelConfig {
        coarsest_size: 40,
        ..MultilevelConfig::default()
    });

    let plain = {
        let mut rng = ChaCha8Rng::seed_from_u64(12);
        engine
            .partition_ctx(&hg, &fixed, &balance, RunCtx::new(&mut rng))
            .expect("engine runs")
    };
    let piecewise = {
        let mut rng = ChaCha8Rng::seed_from_u64(12);
        let never = CancelToken::never();
        let ctx = RunCtx::new(&mut rng)
            .with_sink(&NullSink)
            .with_cancel(&never)
            .with_threads(1);
        engine
            .partition_ctx(&hg, &fixed, &balance, ctx)
            .expect("engine runs")
    };
    assert_eq!(plain.parts, piecewise.parts);
    assert_eq!(plain.cut, piecewise.cut);
}
