//! Checks every relative markdown link in the repo's documentation.
//!
//! Scans the root-level `*.md` files and everything under `docs/`,
//! extracts `[text](target)` links and `[ref]: target` definitions, and
//! asserts each non-URL target exists on disk (fragments are stripped —
//! anchor validity is the renderer's problem, file existence is ours).
//! A doc that moves or a file that is renamed without updating its
//! references fails here instead of rotting silently.

use std::path::PathBuf;

/// Repo root: this test file lives at `<root>/tests/doc_links.rs`.
fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

fn markdown_files() -> Vec<PathBuf> {
    let root = repo_root();
    let mut files: Vec<PathBuf> = std::fs::read_dir(&root)
        .expect("read repo root")
        .chain(std::fs::read_dir(root.join("docs")).expect("read docs/"))
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "md"))
        .collect();
    files.sort();
    assert!(
        files.iter().any(|p| p.ends_with("docs/PROTOCOL.md")),
        "sanity: the scan must include docs/"
    );
    files
}

/// Extracts link targets: inline `[text](target)` plus `[ref]: target`
/// reference definitions. Skips fenced code blocks, where bracket syntax
/// is code, not markup.
fn link_targets(text: &str) -> Vec<String> {
    let mut targets = Vec::new();
    let mut in_fence = false;
    for line in text.lines() {
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence {
            continue;
        }
        // Reference definitions: `[name]: target`
        let trimmed = line.trim_start();
        if trimmed.starts_with('[') {
            if let Some(close) = trimmed.find("]:") {
                if !trimmed[1..close].contains('[') {
                    let target = trimmed[close + 2..].trim();
                    if !target.is_empty() {
                        targets.push(target.to_string());
                        continue;
                    }
                }
            }
        }
        // Inline links: `](target)`
        let mut rest = line;
        while let Some(open) = rest.find("](") {
            rest = &rest[open + 2..];
            if let Some(close) = rest.find(')') {
                targets.push(rest[..close].to_string());
                rest = &rest[close + 1..];
            } else {
                break;
            }
        }
    }
    targets
}

fn is_external(target: &str) -> bool {
    target.starts_with("http://") || target.starts_with("https://") || target.starts_with("mailto:")
}

#[test]
fn every_relative_doc_link_resolves_to_a_file() {
    let mut broken = Vec::new();
    let mut checked = 0usize;
    for file in markdown_files() {
        let text = std::fs::read_to_string(&file)
            .unwrap_or_else(|e| panic!("read {}: {e}", file.display()));
        let dir = file.parent().expect("md file has a parent");
        for target in link_targets(&text) {
            if is_external(&target) {
                continue;
            }
            // Strip `#anchor`; a bare-fragment link targets this file.
            let path_part = target.split('#').next().unwrap_or("");
            if path_part.is_empty() {
                continue;
            }
            checked += 1;
            if !dir.join(path_part).exists() {
                broken.push(format!("{}: {target}", file.display()));
            }
        }
    }
    assert!(
        checked >= 10,
        "sanity: expected to check at least 10 relative links, found {checked}"
    );
    assert!(
        broken.is_empty(),
        "broken relative links:\n  {}",
        broken.join("\n  ")
    );
}

#[test]
fn the_doc_set_cross_references_itself() {
    // The service doc set is a web, not islands: the protocol reference
    // and the operations guide must be reachable from the entry points.
    let must_link: &[(&str, &[&str])] = &[
        ("README.md", &["docs/PROTOCOL.md", "docs/OPERATIONS.md"]),
        ("docs/SERVICE.md", &["PROTOCOL.md", "OPERATIONS.md"]),
        ("docs/PROTOCOL.md", &["OPERATIONS.md", "SERVICE.md"]),
        ("docs/OPERATIONS.md", &["PROTOCOL.md", "SERVICE.md"]),
    ];
    for (file, expected) in must_link {
        let text = std::fs::read_to_string(repo_root().join(file))
            .unwrap_or_else(|e| panic!("read {file}: {e}"));
        let targets = link_targets(&text);
        for link in *expected {
            assert!(
                targets.iter().any(|t| t.split('#').next() == Some(*link)),
                "{file} must link to {link}"
            );
        }
    }
}
