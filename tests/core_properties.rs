//! Model-based property tests for the partitioning core's data structures:
//! the gain-bucket array against a naive reference model, and coarsening
//! invariants on random hypergraphs.

use std::collections::HashMap;

use vlsi_rng::{ChaCha8Rng, Rng, SeedableRng};
use vlsi_testkit::gen::{instances, InstanceConfig, RawInstance};
use vlsi_testkit::{prop_test, Shrink, TestRng};

use fixed_vertices_repro::vlsi_hypergraph::{
    CutState, FixedVertices, Fixity, HypergraphBuilder, PartId, VertexId,
};
use fixed_vertices_repro::vlsi_partition::multilevel::{coarsen_once, CoarsenParams};
use fixed_vertices_repro::vlsi_partition::GainBuckets;

/// Operations for the gain-bucket model test.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Op {
    Insert(u32, i64),
    Remove(u32),
    Update(u32, i64),
    Adjust(u32, i64),
    Select,
}

impl Shrink for Op {
    fn shrink(&self) -> Vec<Self> {
        // Simplify any operation to a plain Select; the Vec<Op> shrinker
        // handles dropping operations altogether.
        if *self == Op::Select {
            Vec::new()
        } else {
            vec![Op::Select]
        }
    }
}

fn op_gen(num_vertices: u32, bound: i64) -> impl Fn(&mut TestRng) -> Op {
    move |rng| match rng.gen_range(0..5u8) {
        0 => Op::Insert(
            rng.gen_range(0..num_vertices),
            rng.gen_range(-bound..=bound),
        ),
        1 => Op::Remove(rng.gen_range(0..num_vertices)),
        2 => Op::Update(
            rng.gen_range(0..num_vertices),
            rng.gen_range(-bound..=bound),
        ),
        3 => Op::Adjust(rng.gen_range(0..num_vertices), rng.gen_range(-3i64..=3)),
        _ => Op::Select,
    }
}

fn ops_gen(num_vertices: u32, bound: i64) -> impl Fn(&mut TestRng) -> Vec<Op> {
    move |rng| {
        let n = rng.gen_range(1..120usize);
        let g = op_gen(num_vertices, bound);
        (0..n).map(|_| g(rng)).collect()
    }
}

prop_test! {
    #[cases(128)]
    fn gain_buckets_match_reference_model(ops in ops_gen(12, 6)) {
        // Model: map vertex -> (key, insertion_stamp); select = max key,
        // ties by most recent stamp. Keys clamped to the structure bound.
        const BOUND: i64 = 16;
        let mut gb = GainBuckets::new(12, BOUND);
        let mut model: HashMap<u32, (i64, u64)> = HashMap::new();
        let mut stamp = 0u64;
        for op in ops {
            match op {
                Op::Insert(v, k) => {
                    model.entry(v).or_insert_with(|| {
                        gb.insert(VertexId(v), k);
                        stamp += 1;
                        (k, stamp)
                    });
                }
                Op::Remove(v) => {
                    gb.remove(VertexId(v));
                    gb.decay_max();
                    model.remove(&v);
                }
                Op::Update(v, k) => {
                    gb.update(VertexId(v), k);
                    if let Some(entry) = model.get_mut(&v) {
                        if entry.0 != k {
                            stamp += 1;
                            *entry = (k, stamp);
                        }
                    }
                }
                Op::Adjust(v, d) => {
                    let new_key = model.get(&v).map(|&(k, _)| k + d);
                    if let Some(nk) = new_key {
                        if nk.abs() <= BOUND {
                            gb.adjust(VertexId(v), d);
                            if d != 0 {
                                stamp += 1;
                                model.insert(v, (nk, stamp));
                            }
                        }
                    }
                }
                Op::Select => {
                    let got = gb.select(|_| true);
                    let want = model
                        .iter()
                        .max_by_key(|(_, &(k, s))| (k, s))
                        .map(|(&v, &(k, _))| (VertexId(v), k));
                    assert_eq!(got, want);
                }
            }
            assert_eq!(gb.len(), model.len());
            for (&v, &(k, _)) in &model {
                assert!(gb.contains(VertexId(v)));
                assert_eq!(gb.key(VertexId(v)), k);
            }
        }
    }

    #[cases(64)]
    fn coarsening_preserves_weight_and_cut_structure(
        inst in instances(InstanceConfig {
            vertices: 6..30,
            max_weight: 4,
            max_net_size: 3,
            fix_prob: 0.25,
            ..InstanceConfig::default()
        })
    ) {
        let RawInstance { weights, nets, fixities, seed } = inst;
        let mut b = HypergraphBuilder::new();
        for &w in &weights {
            b.add_vertex(w);
        }
        for net in &nets {
            b.add_net(1, net.iter().map(|&i| VertexId::from_index(i)))
                .expect("valid net");
        }
        let hg = b.build().expect("valid graph");
        let fixed = FixedVertices::from_fixities(
            fixities
                .iter()
                .map(|f| match f {
                    None => Fixity::Free,
                    Some(p) => Fixity::Fixed(PartId(*p as u32)),
                })
                .collect(),
        );
        let params = CoarsenParams {
            max_cluster_weight: u64::MAX,
            max_cluster_weights: Vec::new(),
            max_net_size_for_matching: 64,
            max_fixed_part_weight: Vec::new(),
            allow_free_fixed_merge: false,
            threads: 1,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let Some(level) = coarsen_once(&hg, &fixed, &params, 1.01, None, &mut rng) else {
            // A stall is legal; nothing to check.
            return;
        };

        // Invariant 1: total weight preserved.
        assert_eq!(level.hg.total_weight(), hg.total_weight());

        // Invariant 2: fixities merged soundly — every fine vertex's fixity
        // allows whatever its coarse cluster's fixity allows.
        for v in hg.vertices() {
            let cf = level.fixed.fixity(level.map[v.index()]);
            match (fixed.fixity(v), cf) {
                (Fixity::Fixed(p), Fixity::Fixed(q)) => assert_eq!(p, q),
                (Fixity::Fixed(_), other) => {
                    panic!("fixed vertex lost its pin: {other:?}")
                }
                _ => {}
            }
        }

        // Invariant 3: any coarse assignment projects to a fine assignment
        // with the same cut.
        let coarse_parts: Vec<PartId> = level
            .hg
            .vertices()
            .map(|v| match level.fixed.fixity(v) {
                Fixity::Fixed(p) => PartId(p.0 % 2),
                _ => PartId(v.0 % 2),
            })
            .collect();
        let coarse_cut = CutState::new(&level.hg, 2, &coarse_parts).cut();
        let fine_parts = level.project(&coarse_parts);
        let fine_cut = CutState::new(&hg, 2, &fine_parts).cut();
        assert_eq!(coarse_cut, fine_cut);
    }
}
