//! Model-based property tests for the partitioning core's data structures:
//! the gain-bucket array against a naive reference model, and coarsening
//! invariants on random hypergraphs.

use std::collections::HashMap;

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use fixed_vertices_repro::vlsi_hypergraph::{
    CutState, FixedVertices, Fixity, HypergraphBuilder, PartId, VertexId,
};
use fixed_vertices_repro::vlsi_partition::multilevel::{coarsen_once, CoarsenParams};
use fixed_vertices_repro::vlsi_partition::GainBuckets;

/// Operations for the gain-bucket model test.
#[derive(Debug, Clone)]
enum Op {
    Insert(u32, i64),
    Remove(u32),
    Update(u32, i64),
    Adjust(u32, i64),
    Select,
}

fn op_strategy(num_vertices: u32, bound: i64) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..num_vertices, -bound..=bound).prop_map(|(v, k)| Op::Insert(v, k)),
        (0..num_vertices).prop_map(Op::Remove),
        (0..num_vertices, -bound..=bound).prop_map(|(v, k)| Op::Update(v, k)),
        (0..num_vertices, -3i64..=3).prop_map(|(v, d)| Op::Adjust(v, d)),
        Just(Op::Select),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn gain_buckets_match_reference_model(
        ops in proptest::collection::vec(op_strategy(12, 6), 1..120),
    ) {
        // Model: map vertex -> (key, insertion_stamp); select = max key,
        // ties by most recent stamp. Keys clamped to the structure bound.
        const BOUND: i64 = 16;
        let mut gb = GainBuckets::new(12, BOUND);
        let mut model: HashMap<u32, (i64, u64)> = HashMap::new();
        let mut stamp = 0u64;
        for op in ops {
            match op {
                Op::Insert(v, k) => {
                    model.entry(v).or_insert_with(|| {
                        gb.insert(VertexId(v), k);
                        stamp += 1;
                        (k, stamp)
                    });
                }
                Op::Remove(v) => {
                    gb.remove(VertexId(v));
                    gb.decay_max();
                    model.remove(&v);
                }
                Op::Update(v, k) => {
                    gb.update(VertexId(v), k);
                    if let Some(entry) = model.get_mut(&v) {
                        if entry.0 != k {
                            stamp += 1;
                            *entry = (k, stamp);
                        }
                    }
                }
                Op::Adjust(v, d) => {
                    let new_key = model.get(&v).map(|&(k, _)| k + d);
                    if let Some(nk) = new_key {
                        if nk.abs() <= BOUND {
                            gb.adjust(VertexId(v), d);
                            if d != 0 {
                                stamp += 1;
                                model.insert(v, (nk, stamp));
                            }
                        }
                    }
                }
                Op::Select => {
                    let got = gb.select(|_| true);
                    let want = model
                        .iter()
                        .max_by_key(|(_, &(k, s))| (k, s))
                        .map(|(&v, &(k, _))| (VertexId(v), k));
                    prop_assert_eq!(got, want);
                }
            }
            prop_assert_eq!(gb.len(), model.len());
            for (&v, &(k, _)) in &model {
                prop_assert!(gb.contains(VertexId(v)));
                prop_assert_eq!(gb.key(VertexId(v)), k);
            }
        }
    }
}

/// Random instance for coarsening tests.
#[allow(clippy::type_complexity)]
fn graph_strategy() -> impl Strategy<Value = (Vec<u64>, Vec<Vec<usize>>, Vec<Option<u8>>, u64)> {
    (6usize..30).prop_flat_map(|n| {
        (
            proptest::collection::vec(1u64..5, n),
            proptest::collection::vec(proptest::collection::btree_set(0..n, 2..=3.min(n)), 2..40)
                .prop_map(|nets| {
                    nets.into_iter()
                        .map(|s| s.into_iter().collect::<Vec<_>>())
                        .collect::<Vec<_>>()
                }),
            proptest::collection::vec(proptest::option::weighted(0.25, 0u8..2), n),
            any::<u64>(),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn coarsening_preserves_weight_and_cut_structure(
        (weights, nets, fixities, seed) in graph_strategy(),
    ) {
        let mut b = HypergraphBuilder::new();
        for &w in &weights {
            b.add_vertex(w);
        }
        for net in &nets {
            b.add_net(1, net.iter().map(|&i| VertexId::from_index(i)))
                .expect("valid net");
        }
        let hg = b.build().expect("valid graph");
        let fixed = FixedVertices::from_fixities(
            fixities
                .iter()
                .map(|f| match f {
                    None => Fixity::Free,
                    Some(p) => Fixity::Fixed(PartId(*p as u32)),
                })
                .collect(),
        );
        let params = CoarsenParams {
            max_cluster_weight: u64::MAX,
            max_net_size_for_matching: 64,
            max_fixed_part_weight: Vec::new(),
            allow_free_fixed_merge: false,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let Some(level) = coarsen_once(&hg, &fixed, &params, 1.01, None, &mut rng) else {
            // A stall is legal; nothing to check.
            return Ok(());
        };

        // Invariant 1: total weight preserved.
        prop_assert_eq!(level.hg.total_weight(), hg.total_weight());

        // Invariant 2: fixities merged soundly — every fine vertex's fixity
        // allows whatever its coarse cluster's fixity allows.
        for v in hg.vertices() {
            let cf = level.fixed.fixity(level.map[v.index()]);
            match (fixed.fixity(v), cf) {
                (Fixity::Fixed(p), Fixity::Fixed(q)) => prop_assert_eq!(p, q),
                (Fixity::Fixed(_), other) => {
                    prop_assert!(false, "fixed vertex lost its pin: {other:?}")
                }
                _ => {}
            }
        }

        // Invariant 3: any coarse assignment projects to a fine assignment
        // with the same cut.
        let coarse_parts: Vec<PartId> = level
            .hg
            .vertices()
            .map(|v| match level.fixed.fixity(v) {
                Fixity::Fixed(p) => PartId(p.0 % 2),
                _ => PartId(v.0 % 2),
            })
            .collect();
        let coarse_cut = CutState::new(&level.hg, 2, &coarse_parts).cut();
        let fine_parts = level.project(&coarse_parts);
        let fine_cut = CutState::new(&hg, 2, &fine_parts).cut();
        prop_assert_eq!(coarse_cut, fine_cut);
    }
}
