//! Differential tests pinning the streaming byte-scanner parsers to the
//! line-based parsers they replaced.
//!
//! The `reference` module below is a port of the pre-rewrite readers
//! (`BufRead::lines()`, per-line `String`s, `split_whitespace`). The
//! properties drive both implementations over the testkit instance
//! corpus — serialized by the streaming writers and then deliberately
//! uglified with comments, blank lines, and whitespace noise — plus a
//! structured-random token soup, and require the results to be equal
//! (`PartialEq` on `Hypergraph` / `FixedVertices`) or to fail together.
//! A million-cell write→parse round-trip anchors the same guarantee at
//! the scale the streaming rewrite exists for.
//!
//! One historical quirk is deliberately out of scope: `str::parse::<u64>`
//! accepted a leading `+` sign, the byte-level scanner does not. The
//! random-text alphabet therefore excludes `+`.

use vlsi_rng::Rng;
use vlsi_testkit::gen::{instances, InstanceConfig, RawInstance};
use vlsi_testkit::{prop_test, TestRng};

use fixed_vertices_repro::vlsi_hypergraph::io::{
    read_fix, read_hgr, read_multi_are, write_fix, write_hgr, write_multi_are,
};
use fixed_vertices_repro::vlsi_hypergraph::{
    FixedVertices, Fixity, Hypergraph, HypergraphBuilder, PartId, PartSet, VertexId,
};
use fixed_vertices_repro::vlsi_netgen::instances::million_cells_scaled;

/// Line-based ports of the pre-streaming parsers. Errors are reduced to
/// `String`: the differential contract covers *whether* an input parses
/// and *what* it parses to, not the message text (the streaming errors
/// deliberately say more — byte offsets, overflow detail).
mod reference {
    use super::*;

    fn content_lines<'a>(text: &'a str, comments: &[char]) -> Vec<&'a str> {
        text.lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with(comments))
            .collect()
    }

    fn parse_tok<T: std::str::FromStr>(tok: Option<&str>, what: &str) -> Result<T, String> {
        let tok = tok.ok_or_else(|| format!("missing {what}"))?;
        tok.parse().map_err(|_| format!("bad {what} `{tok}`"))
    }

    pub fn read_hgr_lines(text: &str) -> Result<Hypergraph, String> {
        let lines = content_lines(text, &['%']);
        let mut it = lines.into_iter();
        let header = it.next().ok_or("missing header line")?;
        let mut hdr = header.split_whitespace();
        let num_nets: usize = parse_tok(hdr.next(), "net count")?;
        let num_vertices: usize = parse_tok(hdr.next(), "vertex count")?;
        let (net_weights, vertex_weights) = match hdr.next() {
            None => (false, false),
            Some(tok) => match tok.parse::<u64>().map_err(|_| format!("bad fmt `{tok}`"))? {
                0 => (false, false),
                1 => (true, false),
                10 => (false, true),
                11 => (true, true),
                other => return Err(format!("unsupported fmt `{other}`")),
            },
        };

        // The historical parser reserved `num_nets` up front — the
        // unbounded-allocation hazard the streaming rewrite caps with
        // MAX_HEADER_RESERVE. Grow incrementally here so a soup header
        // like `99999 0` errors on the missing lines instead of
        // aborting the test process.
        let mut weights = vec![1u64; num_vertices];
        let mut nets: Vec<(u64, Vec<VertexId>)> = Vec::new();
        for _ in 0..num_nets {
            let line = it.next().ok_or("fewer net lines than declared")?;
            let mut toks = line.split_whitespace();
            let weight: u64 = if net_weights {
                parse_tok(toks.next(), "net weight")?
            } else {
                1
            };
            let mut pins = Vec::new();
            for tok in toks {
                let idx: usize = tok
                    .parse()
                    .map_err(|_| format!("bad vertex index `{tok}`"))?;
                if idx == 0 || idx > num_vertices {
                    return Err(format!("vertex index {idx} out of range"));
                }
                pins.push(VertexId::from_index(idx - 1));
            }
            if pins.is_empty() {
                return Err("net with no pins".to_string());
            }
            nets.push((weight, pins));
        }
        if vertex_weights {
            for w in weights.iter_mut() {
                let line = it.next().ok_or("fewer vertex-weight lines than declared")?;
                *w = parse_tok(line.split_whitespace().next(), "vertex weight")?;
            }
        }

        let mut builder = HypergraphBuilder::new();
        for &w in &weights {
            builder.add_vertex(w);
        }
        for (w, pins) in nets {
            builder.add_net_dedup(w, pins).map_err(|e| e.to_string())?;
        }
        builder.build().map_err(|e| e.to_string())
    }

    pub fn read_fix_lines(text: &str, num_vertices: usize) -> Result<FixedVertices, String> {
        let mut fixities = Vec::with_capacity(num_vertices);
        for line in content_lines(text, &['%']) {
            if fixities.len() == num_vertices {
                return Err(format!("more than {num_vertices} fixity entries"));
            }
            if line == "-1" {
                fixities.push(Fixity::Free);
                continue;
            }
            let mut set = PartSet::new();
            for tok in line.split(',') {
                let p: u32 = tok
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad partition index `{tok}`"))?;
                if p as usize >= PartSet::MAX_PARTS {
                    return Err(format!("partition index {p} exceeds the maximum of 63"));
                }
                set.insert(PartId(p));
            }
            fixities.push(if set.len() == 1 {
                Fixity::Fixed(set.iter().next().expect("non-empty set"))
            } else {
                Fixity::FixedAny(set)
            });
        }
        if fixities.len() != num_vertices {
            return Err(format!(
                "expected {num_vertices} fixity entries, found {}",
                fixities.len()
            ));
        }
        Ok(FixedVertices::from_fixities(fixities))
    }

    pub fn read_multi_are_lines(
        text: &str,
        num_vertices: usize,
    ) -> Result<(usize, Vec<u64>), String> {
        let mut num_resources = 0usize;
        let mut weights: Vec<u64> = Vec::new();
        let mut rows = 0usize;
        for line in content_lines(text, &['%', '#']) {
            let row: Result<Vec<u64>, _> = line.split_whitespace().map(str::parse).collect();
            let row = row.map_err(|_| "bad area value".to_string())?;
            if rows == 0 {
                num_resources = row.len();
            } else if row.len() != num_resources {
                return Err(format!(
                    "line has {} areas, expected {num_resources}",
                    row.len()
                ));
            }
            if rows == num_vertices {
                return Err(format!("more than {num_vertices} area lines"));
            }
            weights.extend(row);
            rows += 1;
        }
        if rows != num_vertices {
            return Err(format!("expected {num_vertices} area lines, found {rows}"));
        }
        Ok((num_resources, weights))
    }
}

fn build(inst: &RawInstance) -> Hypergraph {
    let mut b = HypergraphBuilder::new();
    let vs: Vec<VertexId> = inst.weights.iter().map(|&w| b.add_vertex(w)).collect();
    for net in &inst.nets {
        b.add_net(1 + (net.len() as u64 % 3), net.iter().map(|&i| vs[i]))
            .expect("generated nets are valid");
    }
    b.build().expect("generated instance builds")
}

fn fixities_of(inst: &RawInstance) -> FixedVertices {
    let mut fx = FixedVertices::all_free(inst.weights.len());
    for (i, f) in inst.fixities.iter().enumerate() {
        match f {
            None => {}
            Some(p) if i % 3 == 0 => {
                // Exercise the multi-part "or" entries too.
                let mut set = PartSet::new();
                set.insert(PartId(u32::from(*p)));
                set.insert(PartId(u32::from(*p) + 7));
                fx.fix_any(VertexId::from_index(i), set);
            }
            Some(p) => fx.fix(VertexId::from_index(i), PartId(u32::from(*p))),
        }
    }
    fx
}

/// Uglifies canonical writer output without changing its meaning under
/// either parser: comment lines, blank lines, leading/trailing horizontal
/// whitespace, `\r\n` endings, and sometimes a missing final newline.
fn uglify(canonical: &str, rng: &mut TestRng, comment: char) -> String {
    let mut out = String::with_capacity(canonical.len() * 2);
    for line in canonical.lines() {
        while rng.gen_bool(0.15) {
            out.push_str(&format!("{comment} noise {}\n", rng.gen_range(0..1000)));
        }
        if rng.gen_bool(0.1) {
            out.push('\n');
        }
        if rng.gen_bool(0.2) {
            out.push_str(if rng.gen_bool(0.5) { "  " } else { "\t" });
        }
        out.push_str(line);
        if rng.gen_bool(0.2) {
            out.push_str(if rng.gen_bool(0.5) { " " } else { "\t " });
        }
        if rng.gen_bool(0.15) {
            out.push('\r');
        }
        out.push('\n');
    }
    if rng.gen_bool(0.1) && out.ends_with('\n') {
        out.pop();
    }
    out
}

/// Token soup over the grammar's own alphabet: far denser in
/// almost-parseable inputs than printable-ASCII noise. Excludes `+`
/// (see the module docs) and keeps numeric tokens at ≤ 4 digits — a
/// *valid* soup header like `0 4000000000` would make both parsers
/// faithfully build a four-billion-vertex graph.
fn token_soup(max_len: usize) -> impl Fn(&mut TestRng) -> String {
    const OTHER: &[u8] = b" \t\n\n%#,-x";
    move |rng| {
        let n = rng.gen_range(0..max_len.max(1) + 1);
        let mut out = String::new();
        while out.len() < n {
            if rng.gen_bool(0.55) {
                out.push_str(&rng.gen_range(0u32..10_000).to_string());
                // Never let two numbers concatenate into a longer one.
                out.push(if rng.gen_bool(0.7) { ' ' } else { '\n' });
            } else {
                out.push(OTHER[rng.gen_range(0..OTHER.len())] as char);
            }
        }
        out
    }
}

fn instance_and_noise() -> impl Fn(&mut TestRng) -> (RawInstance, u64) {
    let gen = instances(InstanceConfig {
        vertices: 2..40,
        max_weight: 9,
        ..InstanceConfig::default()
    });
    move |rng| {
        let inst = gen(rng);
        let noise = rng.gen_range(0..u64::MAX);
        (inst, noise)
    }
}

prop_test! {
    #[cases(96)]
    fn hgr_streaming_matches_line_reference_on_corpus(case in instance_and_noise()) {
        let (inst, noise) = case;
        let hg = build(&inst);
        let mut text = Vec::new();
        write_hgr(&mut text, &hg).expect("write to memory");
        let canonical = String::from_utf8(text).expect("writer emits ASCII");
        let mut rng = <TestRng as vlsi_rng::SeedableRng>::seed_from_u64(noise);
        let ugly = uglify(&canonical, &mut rng, '%');

        for input in [canonical.as_str(), ugly.as_str()] {
            let streamed = read_hgr(input.as_bytes()).expect("streaming parser accepts");
            let referenced = reference::read_hgr_lines(input).expect("reference parser accepts");
            assert_eq!(streamed, referenced, "parsers disagree on:\n{input}");
            assert_eq!(streamed, hg, "round-trip lost information");
        }
    }

    #[cases(96)]
    fn fix_streaming_matches_line_reference_on_corpus(case in instance_and_noise()) {
        let (inst, noise) = case;
        let fx = fixities_of(&inst);
        let n = inst.weights.len();
        let mut text = Vec::new();
        write_fix(&mut text, &fx).expect("write to memory");
        let canonical = String::from_utf8(text).expect("writer emits ASCII");
        let mut rng = <TestRng as vlsi_rng::SeedableRng>::seed_from_u64(noise);
        let ugly = uglify(&canonical, &mut rng, '%');

        for input in [canonical.as_str(), ugly.as_str()] {
            let streamed = read_fix(input.as_bytes(), n).expect("streaming parser accepts");
            let referenced =
                reference::read_fix_lines(input, n).expect("reference parser accepts");
            assert_eq!(streamed, referenced, "parsers disagree on:\n{input}");
            assert_eq!(streamed, fx, "round-trip lost information");
        }
    }

    #[cases(96)]
    fn multi_are_streaming_matches_line_reference_on_corpus(case in instance_and_noise()) {
        let (inst, noise) = case;
        let n = inst.weights.len();
        let mut b = HypergraphBuilder::with_resources(3);
        for (i, &w) in inst.weights.iter().enumerate() {
            b.add_vertex_multi(&[w, (i as u64) % 5, w * 2])
                .expect("three weights per vertex");
        }
        let hg = b.build().expect("vertex-only graph builds");
        let mut text = Vec::new();
        write_multi_are(&mut text, &hg).expect("write to memory");
        let canonical = String::from_utf8(text).expect("writer emits ASCII");
        let mut rng = <TestRng as vlsi_rng::SeedableRng>::seed_from_u64(noise);
        let ugly = uglify(&canonical, &mut rng, '#');

        for input in [canonical.as_str(), ugly.as_str()] {
            let streamed = read_multi_are(input.as_bytes(), n).expect("streaming parser accepts");
            let referenced =
                reference::read_multi_are_lines(input, n).expect("reference parser accepts");
            assert_eq!(streamed, referenced, "parsers disagree on:\n{input}");
            assert_eq!(streamed.0, 3);
        }
    }

    // On arbitrary token soup the two implementations must agree on
    // *acceptance*, and byte-for-byte on the value when both accept.
    #[cases(256)]
    fn hgr_acceptance_agrees_on_token_soup(text in token_soup(300)) {
        let streamed = read_hgr(text.as_bytes());
        let referenced = reference::read_hgr_lines(&text);
        assert_eq!(
            streamed.is_ok(),
            referenced.is_ok(),
            "acceptance disagrees on:\n{text}\nstreaming: {streamed:?}\nreference: {referenced:?}"
        );
        if let (Ok(s), Ok(r)) = (streamed, referenced) {
            assert_eq!(s, r, "accepted values disagree on:\n{text}");
        }
    }

    #[cases(256)]
    fn fix_acceptance_agrees_on_token_soup(text in token_soup(200)) {
        for n in [0usize, 1, 3, 7] {
            let streamed = read_fix(text.as_bytes(), n);
            let referenced = reference::read_fix_lines(&text, n);
            assert_eq!(
                streamed.is_ok(),
                referenced.is_ok(),
                "acceptance disagrees at n={n} on:\n{text}\nstreaming: {streamed:?}\nreference: {referenced:?}"
            );
            if let (Ok(s), Ok(r)) = (streamed, referenced) {
                assert_eq!(s, r, "accepted values disagree at n={n} on:\n{text}");
            }
        }
    }

    #[cases(256)]
    fn multi_are_acceptance_agrees_on_token_soup(text in token_soup(200)) {
        for n in [0usize, 1, 3, 7] {
            let streamed = read_multi_are(text.as_bytes(), n);
            let referenced = reference::read_multi_are_lines(&text, n);
            assert_eq!(
                streamed.is_ok(),
                referenced.is_ok(),
                "acceptance disagrees at n={n} on:\n{text}\nstreaming: {streamed:?}\nreference: {referenced:?}"
            );
            if let (Ok(s), Ok(r)) = (streamed, referenced) {
                assert_eq!(s, r, "accepted values disagree at n={n} on:\n{text}");
            }
        }
    }
}

/// The guarantee the streaming rewrite exists for: a million-cell
/// Rent-faithful instance (~2M nets, ~4.2M pins, a ~35 MB file image)
/// survives write→parse with nothing lost. Runs in about a second even
/// unoptimized — the streaming generator and scanner are why.
#[test]
fn million_cell_preset_roundtrips_through_hgr() {
    let circuit = million_cells_scaled(1.0, 7);
    let hg = &circuit.hypergraph;

    let mut text = Vec::new();
    write_hgr(&mut text, hg).expect("write to memory");
    let back = read_hgr(text.as_slice()).expect("parse back");
    assert_eq!(
        &back, hg,
        "write→parse round-trip must be the identity at scale"
    );
}
