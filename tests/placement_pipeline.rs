//! Integration of the whole pipeline: generate → place (top-down with
//! terminal propagation) → derive fixed-terminal benchmarks from the
//! *placer's* placement (exactly the paper's Section IV flow) → partition
//! the derived instances.

use vlsi_rng::ChaCha8Rng;
use vlsi_rng::SeedableRng;

use fixed_vertices_repro::vlsi_experiments::harness::paper_balance;
use fixed_vertices_repro::vlsi_hypergraph::{validate_partitioning, FixedVertices, Partitioning};
use fixed_vertices_repro::vlsi_netgen::blocks::standard_instances;
use fixed_vertices_repro::vlsi_netgen::instances::ibm01_like_scaled;
use fixed_vertices_repro::vlsi_partition::{MultilevelConfig, MultilevelPartitioner};
use fixed_vertices_repro::vlsi_placer::{hpwl, PlacerConfig, TopDownPlacer};

#[test]
fn place_then_derive_then_partition() {
    let circuit = ibm01_like_scaled(0.03, 31); // ~375 cells
    let placer = TopDownPlacer::new(PlacerConfig {
        ml_config: MultilevelConfig {
            coarsest_size: 30,
            coarse_starts: 2,
            ..MultilevelConfig::default()
        },
        ..PlacerConfig::default()
    });
    let mut rng = ChaCha8Rng::seed_from_u64(8);
    let placement = placer
        .place_circuit(&circuit, &mut rng)
        .expect("placement succeeds");
    assert!(placement.total_terminals > 0);
    assert!(hpwl(&circuit.hypergraph, &placement.positions) > 0.0);

    // Derive benchmarks from the placer's own placement, as the paper
    // derives its benchmarks from IBM's actual placements.
    let instances = standard_instances(&circuit, Some(&placement.positions));
    assert!(!instances.is_empty());

    let ml = MultilevelPartitioner::new(MultilevelConfig {
        coarsest_size: 30,
        coarse_starts: 2,
        ..MultilevelConfig::default()
    });
    for inst in instances
        .iter()
        .filter(|i| i.hypergraph.num_vertices() > 20)
    {
        let balance = paper_balance(&inst.hypergraph);
        let result = ml
            .run(&inst.hypergraph, &inst.fixed, &balance, &mut rng)
            .expect("derived instance partitions");
        let p =
            Partitioning::from_parts(&inst.hypergraph, 2, result.parts).expect("valid assignment");
        let report = validate_partitioning(&inst.hypergraph, &p, &balance, &inst.fixed);
        assert!(report.is_valid(), "{}: {report}", inst.name);
    }
}

#[test]
fn placer_instances_live_in_the_fixed_terminals_regime() {
    // The quantitative version of the paper's Table I motivation: the
    // average bisection instance of a top-down placement run carries a
    // substantial fixed fraction.
    let circuit = ibm01_like_scaled(0.04, 33);
    let placer = TopDownPlacer::new(PlacerConfig {
        ml_config: MultilevelConfig {
            coarsest_size: 30,
            coarse_starts: 2,
            ..MultilevelConfig::default()
        },
        ..PlacerConfig::default()
    });
    let mut rng = ChaCha8Rng::seed_from_u64(9);
    let placement = placer
        .place_circuit(&circuit, &mut rng)
        .expect("placement succeeds");
    let frac = placement.avg_fixed_fraction();
    assert!(
        frac > 0.10,
        "expected a terminal-heavy regime, got {frac:.3}"
    );
}

#[test]
fn derived_instances_have_nested_terminal_structure() {
    let circuit = ibm01_like_scaled(0.04, 37);
    let instances = standard_instances(&circuit, None);
    // Blocks deeper in the hierarchy have proportionally more terminals —
    // the geometric realisation of Table I.
    let fixed_frac = |tag: &str| {
        let inst = instances
            .iter()
            .find(|i| i.name.contains(tag))
            .expect("instance");
        inst.fixed.num_fixed() as f64 / inst.hypergraph.num_vertices() as f64
    };
    assert!(fixed_frac("_D_V") > fixed_frac("_B_V"));
    assert!(fixed_frac("_B_V") > fixed_frac("_A_V"));
    let _ = FixedVertices::all_free(0); // keep the import used in all cfgs
}
