//! Bit-exact reproducibility of the seeded pipelines. The paper's results
//! are averages over 50 seeded trials of multistart FM — those numbers are
//! only meaningful if the same u64 seed replays the identical trajectory,
//! so these tests require byte-identical partition vectors (not merely
//! equal cuts) across two runs.

use vlsi_rng::{ChaCha8Rng, SeedableRng};

use fixed_vertices_repro::vlsi_hypergraph::{
    BalanceConstraint, FixedVertices, Fixity, PartId, Tolerance, VertexId,
};
use fixed_vertices_repro::vlsi_netgen::instances::ibm01_like_scaled;
use fixed_vertices_repro::vlsi_partition::{
    multistart, BipartFm, FmConfig, MultilevelConfig, MultilevelPartitioner, PartitionResult,
    SelectionPolicy,
};

#[test]
fn multilevel_fm_is_byte_identical_across_runs() {
    let circuit = ibm01_like_scaled(0.05, 42);
    let hg = &circuit.hypergraph;
    let balance = BalanceConstraint::bisection(hg.total_weight(), Tolerance::Relative(0.02));
    // Pin a few vertices so the fixed-vertex code paths are exercised too.
    let mut fixed = FixedVertices::all_free(hg.num_vertices());
    for i in 0..hg.num_vertices() / 20 {
        fixed.fix(VertexId((i * 7) as u32), PartId((i % 2) as u32));
    }
    let ml = MultilevelPartitioner::new(MultilevelConfig {
        coarsest_size: 40,
        coarse_starts: 2,
        ..MultilevelConfig::default()
    });

    let run = |seed: u64| {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        ml.run(hg, &fixed, &balance, &mut rng).expect("ml runs")
    };
    let a = run(1999);
    let b = run(1999);
    assert_eq!(a.parts, b.parts, "same seed must replay byte-identically");
    assert_eq!(a.cut, b.cut);
    assert_eq!(a.level_sizes, b.level_sizes);

    // Sanity: a different seed explores a different trajectory (collisions
    // on the partition vector are astronomically unlikely at this size).
    let c = run(2000);
    assert_ne!(a.parts, c.parts, "distinct seeds should diverge");
}

#[test]
fn multistart_fm_is_byte_identical_across_runs() {
    let circuit = ibm01_like_scaled(0.04, 17);
    let hg = &circuit.hypergraph;
    let balance = BalanceConstraint::bisection(hg.total_weight(), Tolerance::Relative(0.02));
    let fixed = FixedVertices::all_free(hg.num_vertices());
    let fm = BipartFm::new(FmConfig {
        policy: SelectionPolicy::Clip,
        ..FmConfig::default()
    });

    let run = |seed: u64| {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        multistart(hg, &fixed, &balance, 8, &mut rng, |hg, fx, bc, rng| {
            let r = fm.run_random(hg, fx, bc, rng)?;
            Ok(PartitionResult::new(r.parts, r.cut))
        })
        .expect("multistart runs")
    };
    let a = run(7);
    let b = run(7);
    assert_eq!(a.best.parts, b.best.parts);
    assert_eq!(a.best.cut, b.best.cut);
}

#[test]
fn determinism_survives_fixed_vertices_in_multistart() {
    let circuit = ibm01_like_scaled(0.04, 29);
    let hg = &circuit.hypergraph;
    let balance = BalanceConstraint::bisection(hg.total_weight(), Tolerance::Relative(0.05));
    let mut fixed = FixedVertices::all_free(hg.num_vertices());
    let mut seed_rng = ChaCha8Rng::seed_from_u64(3);
    use vlsi_rng::Rng;
    for v in hg.vertices() {
        if seed_rng.gen_bool(0.15) {
            fixed.fix(v, PartId(seed_rng.gen_range(0..2u32)));
        }
    }
    let fm = BipartFm::new(FmConfig::default());
    let run = |seed: u64| {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        multistart(hg, &fixed, &balance, 4, &mut rng, |hg, fx, bc, rng| {
            let r = fm.run_random(hg, fx, bc, rng)?;
            Ok(PartitionResult::new(r.parts, r.cut))
        })
        .expect("multistart runs")
    };
    let a = run(11);
    let b = run(11);
    assert_eq!(a.best.parts, b.best.parts);
    assert_eq!(a.best.cut, b.best.cut);
    // The fixities themselves were honoured in the reproduced solution.
    for v in hg.vertices() {
        if let Fixity::Fixed(p) = fixed.fixity(v) {
            assert_eq!(a.best.parts[v.index()], p);
        }
    }
}
