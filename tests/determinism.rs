//! Bit-exact reproducibility of the seeded pipelines. The paper's results
//! are averages over 50 seeded trials of multistart FM — those numbers are
//! only meaningful if the same u64 seed replays the identical trajectory,
//! so these tests require byte-identical partition vectors (not merely
//! equal cuts) across two runs.

use vlsi_rng::{ChaCha8Rng, SeedableRng};

use fixed_vertices_repro::vlsi_hypergraph::{
    BalanceConstraint, FixedVertices, Fixity, PartId, Tolerance, VertexId,
};
use fixed_vertices_repro::vlsi_netgen::instances::ibm01_like_scaled;
use fixed_vertices_repro::vlsi_partition::{
    BipartFm, FmConfig, MultilevelConfig, MultilevelPartitioner, Multistart, PartitionResult,
    RunCtx, SelectionPolicy,
};

#[test]
fn multilevel_fm_is_byte_identical_across_runs() {
    let circuit = ibm01_like_scaled(0.05, 42);
    let hg = &circuit.hypergraph;
    let balance = BalanceConstraint::bisection(hg.total_weight(), Tolerance::Relative(0.02));
    // Pin a few vertices so the fixed-vertex code paths are exercised too.
    let mut fixed = FixedVertices::all_free(hg.num_vertices());
    for i in 0..hg.num_vertices() / 20 {
        fixed.fix(VertexId((i * 7) as u32), PartId((i % 2) as u32));
    }
    let ml = MultilevelPartitioner::new(MultilevelConfig {
        coarsest_size: 40,
        coarse_starts: 2,
        ..MultilevelConfig::default()
    });

    let run = |seed: u64| {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        ml.run(hg, &fixed, &balance, &mut rng).expect("ml runs")
    };
    let a = run(1999);
    let b = run(1999);
    assert_eq!(a.parts, b.parts, "same seed must replay byte-identically");
    assert_eq!(a.cut, b.cut);
    assert_eq!(a.level_sizes, b.level_sizes);

    // Sanity: a different seed explores a different trajectory (collisions
    // on the partition vector are astronomically unlikely at this size).
    let c = run(2000);
    assert_ne!(a.parts, c.parts, "distinct seeds should diverge");
}

#[test]
fn multistart_fm_is_byte_identical_across_runs() {
    let circuit = ibm01_like_scaled(0.04, 17);
    let hg = &circuit.hypergraph;
    let balance = BalanceConstraint::bisection(hg.total_weight(), Tolerance::Relative(0.02));
    let fixed = FixedVertices::all_free(hg.num_vertices());
    let fm = BipartFm::new(FmConfig {
        policy: SelectionPolicy::Clip,
        ..FmConfig::default()
    });

    let run = |seed: u64| {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        Multistart::new(8)
            .run_with(
                hg,
                &fixed,
                &balance,
                RunCtx::new(&mut rng),
                |hg, fx, bc, rng| {
                    let r = fm.run_random(hg, fx, bc, rng)?;
                    Ok(PartitionResult::new(r.parts, r.cut))
                },
            )
            .expect("multistart runs")
    };
    let a = run(7);
    let b = run(7);
    assert_eq!(a.best.parts, b.best.parts);
    assert_eq!(a.best.cut, b.best.cut);
}

#[test]
fn determinism_survives_fixed_vertices_in_multistart() {
    let circuit = ibm01_like_scaled(0.04, 29);
    let hg = &circuit.hypergraph;
    let balance = BalanceConstraint::bisection(hg.total_weight(), Tolerance::Relative(0.05));
    let mut fixed = FixedVertices::all_free(hg.num_vertices());
    let mut seed_rng = ChaCha8Rng::seed_from_u64(3);
    use vlsi_rng::Rng;
    for v in hg.vertices() {
        if seed_rng.gen_bool(0.15) {
            fixed.fix(v, PartId(seed_rng.gen_range(0..2u32)));
        }
    }
    let fm = BipartFm::new(FmConfig::default());
    let run = |seed: u64| {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        Multistart::new(4)
            .run_with(
                hg,
                &fixed,
                &balance,
                RunCtx::new(&mut rng),
                |hg, fx, bc, rng| {
                    let r = fm.run_random(hg, fx, bc, rng)?;
                    Ok(PartitionResult::new(r.parts, r.cut))
                },
            )
            .expect("multistart runs")
    };
    let a = run(11);
    let b = run(11);
    assert_eq!(a.best.parts, b.best.parts);
    assert_eq!(a.best.cut, b.best.cut);
    // The fixities themselves were honoured in the reproduced solution.
    for v in hg.vertices() {
        if let Fixity::Fixed(p) = fixed.fixity(v) {
            assert_eq!(a.best.parts[v.index()], p);
        }
    }
}

#[test]
fn multistart_parallel_is_thread_count_invariant() {
    use fixed_vertices_repro::vlsi_partition::trace::NullSink;
    use fixed_vertices_repro::vlsi_partition::{CancelToken, EngineConfig};

    let circuit = ibm01_like_scaled(0.04, 23);
    let hg = &circuit.hypergraph;
    let balance = BalanceConstraint::bisection(hg.total_weight(), Tolerance::Relative(0.05));
    let mut fixed = FixedVertices::all_free(hg.num_vertices());
    for i in 0..hg.num_vertices() / 25 {
        fixed.fix(VertexId((i * 11) as u32), PartId((i % 2) as u32));
    }
    let engine = EngineConfig::by_name("fm").expect("fm is registered");

    // Start i always seeds its own RNG with base_seed + i, so scheduling
    // the 8 starts on 1, 2 or 4 OS threads must not change anything — not
    // just the best cut, but the byte-identical assignment and the full
    // per-start cut profile.
    let run = |threads: usize| {
        let never = CancelToken::never();
        Multistart::new(8)
            .run_parallel(
                hg, &fixed, &balance, threads, 99, &engine, &NullSink, &NullSink, &never,
            )
            .expect("parallel multistart runs")
    };
    let base = run(1);
    assert_eq!(base.starts.len(), 8);
    for threads in [2, 4] {
        let r = run(threads);
        assert_eq!(
            r.best.cut, base.best.cut,
            "{threads} threads changed the best cut"
        );
        assert_eq!(
            r.best.parts, base.best.parts,
            "{threads} threads changed the assignment"
        );
        let base_cuts: Vec<u64> = base.starts.iter().map(|s| s.cut).collect();
        let cuts: Vec<u64> = r.starts.iter().map(|s| s.cut).collect();
        assert_eq!(cuts, base_cuts, "{threads} threads changed a start's cut");
    }
}

#[test]
fn parallel_multilevel_is_byte_identical_across_thread_counts() {
    // The engine-internal parallelism (heavy-edge matching, contraction and
    // gain initialization on worker threads) is required to compute exactly
    // what the sequential code computes — not merely an equally good cut.
    // One run per thread count, all compared byte-for-byte against the
    // single-threaded partition vector.
    use fixed_vertices_repro::vlsi_partition::{Partitioner, RunCtx};

    let circuit = ibm01_like_scaled(0.06, 5);
    let hg = &circuit.hypergraph;
    let balance = BalanceConstraint::bisection(hg.total_weight(), Tolerance::Relative(0.02));
    let mut fixed = FixedVertices::all_free(hg.num_vertices());
    for i in 0..hg.num_vertices() / 15 {
        fixed.fix(VertexId((i * 5) as u32), PartId((i % 2) as u32));
    }

    let run = |threads: usize| {
        let ml = MultilevelPartitioner::new(MultilevelConfig {
            coarsest_size: 40,
            coarse_starts: 2,
            threads,
            ..MultilevelConfig::default()
        });
        let mut rng = ChaCha8Rng::seed_from_u64(1999);
        ml.partition_ctx(hg, &fixed, &balance, RunCtx::new(&mut rng))
            .expect("ml runs")
    };

    let base = run(1);
    for threads in [2, 4, 8] {
        let r = run(threads);
        assert_eq!(
            r.parts, base.parts,
            "{threads} internal threads changed the partition vector"
        );
        assert_eq!(r.cut, base.cut);
    }
}

/// A k-way instance large enough (~8900 vertices) that the round engine's
/// proposal scan actually forks the full worker budget at 8 threads, with
/// a round-robin slice of fixed vertices so the frozen-snapshot path sees
/// immovables too.
fn kway_refinement_fixture() -> (
    fixed_vertices_repro::vlsi_hypergraph::Hypergraph,
    FixedVertices,
    BalanceConstraint,
    Vec<PartId>,
) {
    use fixed_vertices_repro::vlsi_partition::random_initial;

    let circuit = ibm01_like_scaled(0.7, 11);
    let hg = circuit.hypergraph;
    let k = 4;
    let balance = BalanceConstraint::even(k, &[hg.total_weight()], Tolerance::Relative(0.1));
    let mut fixed = FixedVertices::all_free(hg.num_vertices());
    for i in 0..hg.num_vertices() / 17 {
        fixed.fix(VertexId((i * 17) as u32), PartId((i % k) as u32));
    }
    let mut rng = ChaCha8Rng::seed_from_u64(4242);
    let initial = random_initial(&hg, &fixed, &balance, k, &mut rng).expect("feasible fixture");
    (hg, fixed, balance, initial)
}

#[test]
fn kway_round_refinement_is_byte_identical_across_thread_counts() {
    // The synchronous-round engine must be worker-count invariant *as an
    // algorithm*: proposals are pure reads of frozen state and the merge
    // order is a strict total order, so 1, 2, 4 and 8 workers — different
    // chunk boundaries — must produce the byte-identical assignment.
    use fixed_vertices_repro::vlsi_hypergraph::Objective;
    use fixed_vertices_repro::vlsi_partition::kway;

    let (hg, fixed, balance, initial) = kway_refinement_fixture();
    let run = |threads: usize| {
        kway::refine_pass_parallel(
            &hg,
            &fixed,
            &balance,
            initial.clone(),
            Objective::Cut,
            threads,
        )
        .expect("round engine runs")
    };
    let base = run(1);
    assert!(base.cut > 0, "fixture should leave a non-trivial cut");
    for threads in [2, 4, 8] {
        let r = run(threads);
        assert_eq!(
            r.parts, base.parts,
            "{threads} workers changed the round engine's assignment"
        );
        assert_eq!(r.cut, base.cut, "{threads} workers changed the cut");
    }
}

#[test]
fn kway_round_refinement_ignores_an_armed_cancel_token() {
    // An armed-but-unfired CancelToken is only ever *polled* by the round
    // engine, so its presence must not perturb the result at any thread
    // count; a token fired before the run must return the input unchanged
    // (best-so-far semantics with zero rounds run).
    use fixed_vertices_repro::vlsi_hypergraph::{CutState, Objective};
    use fixed_vertices_repro::vlsi_partition::{CancelToken, KwayRefiner, Refiner, RunCtx};

    let (hg, fixed, balance, initial) = kway_refinement_fixture();
    let refiner = KwayRefiner::default();
    let run = |threads: usize, cancel: &CancelToken| {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        refiner
            .refine_ctx(
                &hg,
                &fixed,
                &balance,
                initial.clone(),
                RunCtx::new(&mut rng)
                    .with_threads(threads)
                    .with_cancel(cancel),
            )
            .expect("refiner runs")
    };

    let base = run(4, &CancelToken::never());
    for threads in [2, 4, 8] {
        let armed = CancelToken::new();
        let r = run(threads, &armed);
        assert_eq!(
            r.parts, base.parts,
            "an armed token perturbed the result at {threads} threads"
        );
        assert_eq!(r.cut, base.cut);
    }

    let before = CutState::new(&hg, 4, &initial).value(Objective::Cut);
    for threads in [1, 2, 8] {
        let fired = CancelToken::new();
        fired.cancel();
        let r = run(threads, &fired);
        assert_eq!(
            r.parts, initial,
            "a pre-fired token must return the input unchanged ({threads} threads)"
        );
        assert_eq!(r.cut, before);
    }
}

/// A fixed-vertex bisection instance for the V-cycle invariant tests.
fn vcycle_fixture() -> (
    fixed_vertices_repro::vlsi_hypergraph::Hypergraph,
    FixedVertices,
    BalanceConstraint,
) {
    let circuit = ibm01_like_scaled(0.05, 31);
    let hg = circuit.hypergraph;
    let balance = BalanceConstraint::bisection(hg.total_weight(), Tolerance::Relative(0.05));
    let mut fixed = FixedVertices::all_free(hg.num_vertices());
    for i in 0..hg.num_vertices() / 10 {
        fixed.fix(VertexId((i * 7) as u32), PartId((i % 2) as u32));
    }
    (hg, fixed, balance)
}

#[test]
fn vcycles_preserve_fixity_and_legality_and_never_raise_the_cut() {
    // Three invariants of the iterated-multilevel quality phase, checked
    // through the driver's own trace stream plus an independent referee:
    // (1) every fixity survives re-coarsening/re-refinement, (2) the final
    // partition is balance-legal, (3) the best value is monotone
    // non-increasing across cycles — restricted coarsening preserves the
    // seed partition exactly, so a cycle can only improve or stand still.
    use fixed_vertices_repro::vlsi_hypergraph::validate_partitioning;
    use fixed_vertices_repro::vlsi_hypergraph::Partitioning;
    use fixed_vertices_repro::vlsi_partition::trace::{Event, NullSink, VecSink};
    use fixed_vertices_repro::vlsi_partition::{CancelToken, EngineConfig};

    let (hg, fixed, balance) = vcycle_fixture();
    let engine = EngineConfig::by_name("fm").expect("fm is registered");
    let sink = VecSink::new();
    let never = CancelToken::never();
    let quality = Multistart::new(4)
        .vcycles(3)
        .run_parallel(
            &hg, &fixed, &balance, 2, 55, &engine, &sink, &NullSink, &never,
        )
        .expect("quality run succeeds");
    let plain = Multistart::new(4)
        .run_parallel(
            &hg, &fixed, &balance, 2, 55, &engine, &NullSink, &NullSink, &never,
        )
        .expect("plain run succeeds");

    // (3) Never worse than the plain multistart best, and each recorded
    // cycle bracket is itself non-increasing, cycle over cycle.
    assert!(quality.best.cut <= plain.best.cut);
    let events = sink.take();
    let mut last_end: Option<u64> = None;
    let mut cycles = 0;
    for e in &events {
        match e {
            Event::VCycleStart { value, .. } => {
                if let Some(prev) = last_end {
                    assert!(*value <= prev, "cycle started above the previous best");
                }
            }
            Event::VCycleEnd { value, .. } => {
                cycles += 1;
                last_end = Some(*value);
            }
            _ => {}
        }
    }
    assert!(cycles >= 1, "at least one V-cycle ran");
    assert_eq!(last_end, Some(quality.best.cut), "trace matches the result");

    // (1) Fixities survived the restricted re-coarsening.
    for v in hg.vertices() {
        if let Fixity::Fixed(p) = fixed.fixity(v) {
            assert_eq!(quality.best.parts[v.index()], p, "fixity violated");
        }
    }
    // (2) Independent legality referee.
    let p = Partitioning::from_parts(&hg, 2, quality.best.parts.clone())
        .expect("well-formed partition");
    let report = validate_partitioning(&hg, &p, &balance, &fixed);
    assert!(report.is_valid(), "V-cycled partition must stay legal");
}

#[test]
fn vcycles_and_ensemble_are_thread_count_invariant() {
    // The whole quality phase draws from an RNG derived from base_seed and
    // runs only worker-count-invariant machinery, so the full run —
    // starts, recombination, V-cycles — must be byte-identical on 1, 2, 4
    // and 8 OS threads.
    use fixed_vertices_repro::vlsi_partition::trace::NullSink;
    use fixed_vertices_repro::vlsi_partition::{CancelToken, EngineConfig};

    let (hg, fixed, balance) = vcycle_fixture();
    let engine = EngineConfig::by_name("fm").expect("fm is registered");
    let run = |threads: usize| {
        let never = CancelToken::never();
        Multistart::new(8)
            .vcycles(2)
            .ensemble(true)
            .run_parallel(
                &hg, &fixed, &balance, threads, 7, &engine, &NullSink, &NullSink, &never,
            )
            .expect("quality run succeeds")
    };
    let base = run(1);
    for threads in [2, 4, 8] {
        let r = run(threads);
        assert_eq!(
            r.best.parts, base.best.parts,
            "{threads} threads changed the quality-phase assignment"
        );
        assert_eq!(r.best.cut, base.best.cut);
        assert_eq!(r.top, base.top, "{threads} threads changed the top list");
    }
}
