//! Umbrella crate for the reproduction of *Hypergraph Partitioning with
//! Fixed Vertices* (Alpert, Caldwell, Kahng, Markov; DAC 1999 / IEEE TCAD
//! 19(2), Feb. 2000).
//!
//! Re-exports the workspace libraries so the examples and integration
//! tests can depend on a single crate:
//!
//! * [`vlsi_hypergraph`] — hypergraph data structures, fixed vertices,
//!   balance constraints, cut objectives, instance I/O.
//! * [`vlsi_partition`] — FM / CLIP / multilevel / k-way partitioning.
//! * [`vlsi_netgen`] — Rent's-rule synthetic circuits and benchmark
//!   derivation.
//! * [`vlsi_placer`] — top-down placement with terminal propagation.
//! * [`vlsi_experiments`] — the per-table/figure experiment harness.
//!
//! # Example
//!
//! ```
//! use fixed_vertices_repro::vlsi_netgen::synthetic::{Generator, GeneratorConfig};
//!
//! let circuit = Generator::new(GeneratorConfig {
//!     num_cells: 64,
//!     ..GeneratorConfig::default()
//! })
//! .generate(0);
//! assert_eq!(circuit.num_cells(), 64);
//! ```

#![forbid(unsafe_code)]

pub use vlsi_experiments;
pub use vlsi_hypergraph;
pub use vlsi_netgen;
pub use vlsi_partition;
pub use vlsi_placer;
