//! Cell-area distributions.
//!
//! The IBM benchmarks have strongly non-uniform areas: "there are often
//! individual cells that occupy several percent of the total area" (the
//! paper, Section II), which is why the authors run with actual areas and
//! why `Max%` is a column of Table IV. This module samples such skewed
//! distributions.

use vlsi_rng::Rng;

/// A skewed cell-area distribution: a unit-ish body plus a heavy tail and a
/// handful of macro-sized giants.
///
/// # Example
/// ```
/// use vlsi_rng::SeedableRng;
/// use vlsi_netgen::areas::AreaDistribution;
///
/// let mut rng = vlsi_rng::ChaCha8Rng::seed_from_u64(1);
/// let dist = AreaDistribution::ibm_like();
/// let areas = dist.sample(&mut rng, 5000);
/// let total: u64 = areas.iter().sum();
/// let max = *areas.iter().max().unwrap();
/// let max_pct = 100.0 * max as f64 / total as f64;
/// assert!(max_pct > 1.0 && max_pct < 15.0, "max% was {max_pct}");
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaDistribution {
    /// Fraction of cells drawn from the small-cell body (area 1..=6).
    pub body_fraction: f64,
    /// Geometric-tail continuation probability for mid-size cells.
    pub tail_continue: f64,
    /// Number of macro cells, each sized `macro_share` of the expected total.
    pub num_macros: usize,
    /// Approximate fraction of total area occupied by each macro.
    pub macro_share: f64,
}

impl AreaDistribution {
    /// Parameters tuned so the largest cell lands at a few percent of the
    /// total, like the IBM benchmarks (Table IV's `Max%` ranges ~1–10%).
    pub fn ibm_like() -> Self {
        AreaDistribution {
            body_fraction: 0.95,
            tail_continue: 0.80,
            num_macros: 3,
            macro_share: 0.025,
        }
    }

    /// A unit-area distribution (for the unit-area control experiments the
    /// paper argues against but which remain useful in tests).
    pub fn unit() -> Self {
        AreaDistribution {
            body_fraction: 1.0,
            tail_continue: 0.0,
            num_macros: 0,
            macro_share: 0.0,
        }
    }

    /// Samples `n` cell areas.
    ///
    /// # Panics
    /// Panics if `n == 0` and macros were requested.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<u64> {
        let mut areas: Vec<u64> = (0..n)
            .map(|_| {
                if rng.gen_bool(self.body_fraction.clamp(0.0, 1.0)) {
                    rng.gen_range(1..=6)
                } else {
                    // Geometric tail starting at 8.
                    let mut a = 8u64;
                    while rng.gen_bool(self.tail_continue.clamp(0.0, 0.999)) && a < 4096 {
                        a *= 2;
                    }
                    a
                }
            })
            .collect();
        if self.num_macros > 0 {
            assert!(n > 0, "cannot place macros in an empty circuit");
            let body_total: u64 = areas.iter().sum();
            let macro_area = ((body_total as f64 * self.macro_share)
                / (1.0 - self.macro_share * self.num_macros as f64).max(0.1))
            .max(1.0) as u64;
            for _ in 0..self.num_macros.min(n) {
                let idx = rng.gen_range(0..n);
                areas[idx] = areas[idx].max(macro_area);
            }
        }
        areas
    }
}

impl Default for AreaDistribution {
    fn default() -> Self {
        Self::ibm_like()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vlsi_rng::ChaCha8Rng;
    use vlsi_rng::SeedableRng;

    #[test]
    fn unit_distribution_is_small() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let areas = AreaDistribution::unit().sample(&mut rng, 100);
        assert!(areas.iter().all(|&a| (1..=6).contains(&a)));
    }

    #[test]
    fn ibm_like_has_heavy_tail() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let areas = AreaDistribution::ibm_like().sample(&mut rng, 10_000);
        let total: u64 = areas.iter().sum();
        let max = *areas.iter().max().unwrap();
        let pct = 100.0 * max as f64 / total as f64;
        assert!(pct >= 1.0, "expected a giant cell, max% = {pct}");
        // Median stays tiny.
        let mut sorted = areas.clone();
        sorted.sort_unstable();
        assert!(sorted[areas.len() / 2] <= 6);
    }

    #[test]
    fn sample_is_seed_deterministic() {
        let d = AreaDistribution::ibm_like();
        let a = d.sample(&mut ChaCha8Rng::seed_from_u64(9), 50);
        let b = d.sample(&mut ChaCha8Rng::seed_from_u64(9), 50);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_sample_ok_without_macros() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        assert!(AreaDistribution::unit().sample(&mut rng, 0).is_empty());
    }
}
