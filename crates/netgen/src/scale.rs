//! Million-cell-scale Rent-faithful generation with *streaming emission*.
//!
//! [`synthetic::Generator`](crate::synthetic::Generator) keeps every net it
//! has ever created in a `Vec<Vec<u32>>` until the whole circuit is done —
//! fine at ISPD-98 sizes, ruinous at 10^7 cells. This module re-implements
//! the same hierarchical Rent construction with an **emit-on-close** slab:
//! a net lives in memory only while an open endpoint can still extend it,
//! and the moment it closes it is handed to a caller-supplied sink and its
//! slot recycled. Because Rent's rule bounds the open endpoints of the
//! recursion to `O(k·n^p)` (tens of thousands at 10^7 cells, not tens of
//! millions), the working set of the netlist state stays tiny no matter how
//! large the circuit is — the sink decides what, if anything, to retain.
//!
//! [`build_circuit`] is the standard sink: it feeds a
//! [`HypergraphBuilder`] directly, so the only full-size allocations are
//! the final CSR arenas and the placement.

use vlsi_rng::seq::SliceRandom;
use vlsi_rng::ChaCha8Rng;
use vlsi_rng::Rng;
use vlsi_rng::SeedableRng;

use vlsi_hypergraph::{HypergraphBuilder, VertexId};

use crate::circuit::Circuit;
use crate::geometry::{Point, Rect};
use crate::synthetic::{perimeter_point, take_random, GeneratorConfig};

/// Only hierarchy blocks of at least this many cells contribute a Rent
/// sample, keeping the stats `O(n / 32)` instead of `O(n)`.
const RENT_SAMPLE_MIN_BLOCK: usize = 32;

/// Observations from one streaming emission run.
#[derive(Debug, Clone, Default)]
pub struct EmitStats {
    /// Nets handed to the sink.
    pub nets_emitted: usize,
    /// Total pins across emitted nets.
    pub pins_emitted: usize,
    /// High-water mark of simultaneously open nets — the live netlist
    /// state, `O(k·n^p)` by construction.
    pub max_open_nets: usize,
    /// `(block_size, external_terminals)` for hierarchy blocks of at
    /// least `RENT_SAMPLE_MIN_BLOCK` cells (same regression input as
    /// [`GenStats`](crate::synthetic::GenStats)).
    pub rent_samples: Vec<(usize, usize)>,
}

impl EmitStats {
    /// Least-squares estimate of the realised Rent exponent (see
    /// [`GenStats::fitted_rent_exponent`](crate::synthetic::GenStats::fitted_rent_exponent)).
    pub fn fitted_rent_exponent(&self, min_block: usize) -> Option<f64> {
        let mut g = crate::synthetic::GenStats::default();
        g.rent_samples.clone_from(&self.rent_samples);
        g.fitted_rent_exponent(min_block)
    }
}

/// An open connection endpoint of a block.
#[derive(Debug, Clone, Copy)]
enum Endpoint {
    /// An unconnected pin of a cell.
    Pin(u32),
    /// A slab slot holding a net that still reaches the block boundary.
    Net(u32),
}

/// Streams the Rent-faithful netlist of `cfg` to `sink`, one closed net at
/// a time. Every emitted net has ≥ 2 distinct pins (cells in
/// `0..num_cells`, pads in `num_cells..num_cells + num_pads`) and is
/// emitted exactly once. If `placement` is non-empty it must hold
/// `num_cells` slots and receives the native leaf placement.
///
/// # Panics
/// Panics if `cfg.num_cells == 0` or `cfg.leaf_size == 0`.
pub fn emit_nets<F: FnMut(&[u32])>(cfg: &GeneratorConfig, seed: u64, mut sink: F) -> EmitStats {
    emit_impl(cfg, seed, &mut sink, None)
}

/// [`emit_nets`] that also fills `placement` (resized to `num_cells`) with
/// the leaf grid positions inside the die square `[0, ceil(sqrt(n))]²`.
pub fn emit_nets_placed<F: FnMut(&[u32])>(
    cfg: &GeneratorConfig,
    seed: u64,
    sink: &mut F,
    placement: &mut Vec<Point>,
) -> EmitStats {
    emit_impl(cfg, seed, sink, Some(placement))
}

fn emit_impl<F: FnMut(&[u32])>(
    cfg: &GeneratorConfig,
    seed: u64,
    sink: &mut F,
    placement: Option<&mut Vec<Point>>,
) -> EmitStats {
    assert!(cfg.num_cells > 0, "need at least one cell");
    assert!(cfg.leaf_size > 0, "leaf size must be positive");
    let n = cfg.num_cells;
    let mut placement = placement;
    if let Some(p) = placement.as_mut() {
        p.clear();
        p.resize(n, Point::default());
    }

    let die_side = (n as f64).sqrt().ceil().max(1.0);
    let die = Rect::new(0.0, 0.0, die_side, die_side);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut st = StreamState {
        cfg,
        rng: &mut rng,
        open: Vec::new(),
        free: Vec::new(),
        sink,
        placement,
        stats: EmitStats::default(),
    };
    let mut endpoints = st.build_block(0, n as u32, die, 0);

    // Attach remaining endpoints to pads on the die boundary, closing the
    // nets they kept open.
    let num_pads = cfg.num_pads.min(endpoints.len().max(1));
    endpoints.shuffle(st.rng);
    for (i, ep) in endpoints.iter().enumerate() {
        let pad = if num_pads > 0 {
            Some(n as u32 + (i % num_pads) as u32)
        } else {
            None
        };
        match *ep {
            Endpoint::Pin(cell) => {
                if let Some(pad) = pad {
                    st.emit(&[cell, pad]);
                }
            }
            Endpoint::Net(slot) => {
                if let Some(pad) = pad {
                    if !st.open[slot as usize].contains(&pad) {
                        st.open[slot as usize].push(pad);
                    }
                }
                st.close(slot);
            }
        }
    }
    debug_assert_eq!(st.free.len(), st.open.len(), "all nets closed");
    st.stats
}

struct StreamState<'a, R: Rng, F: FnMut(&[u32])> {
    cfg: &'a GeneratorConfig,
    rng: &'a mut R,
    /// Slab of open nets; closed slots are recycled through `free`.
    open: Vec<Vec<u32>>,
    free: Vec<u32>,
    sink: &'a mut F,
    placement: Option<&'a mut Vec<Point>>,
    stats: EmitStats,
}

impl<R: Rng, F: FnMut(&[u32])> StreamState<'_, R, F> {
    /// Emits a finished pin set straight to the sink.
    fn emit(&mut self, pins: &[u32]) {
        if pins.len() >= 2 {
            self.stats.nets_emitted += 1;
            self.stats.pins_emitted += pins.len();
            (self.sink)(pins);
        }
    }

    /// Opens a fresh 2-pin net in the slab, reusing a free slot.
    fn open_net(&mut self, a: u32, b: u32) -> u32 {
        if let Some(slot) = self.free.pop() {
            let pins = &mut self.open[slot as usize];
            pins.clear();
            pins.push(a);
            pins.push(b);
            slot
        } else {
            self.open.push(vec![a, b]);
            let live = self.open.len() - self.free.len();
            self.stats.max_open_nets = self.stats.max_open_nets.max(live);
            (self.open.len() - 1) as u32
        }
    }

    /// Closes an open net: emits it and recycles the slot.
    fn close(&mut self, slot: u32) {
        let pins = std::mem::take(&mut self.open[slot as usize]);
        self.emit(&pins);
        self.open[slot as usize] = pins; // hand the allocation back for reuse
        self.open[slot as usize].clear();
        self.free.push(slot);
    }

    /// Recursively builds the block of cells `[lo, hi)`, returning its open
    /// endpoints. Mirrors `synthetic::GenState::build_block`, but any net
    /// whose last endpoint is consumed is emitted immediately.
    fn build_block(&mut self, lo: u32, hi: u32, rect: Rect, depth: usize) -> Vec<Endpoint> {
        let count = (hi - lo) as usize;
        if count <= self.cfg.leaf_size {
            return self.build_leaf(lo, hi, rect);
        }
        let mid = lo + (hi - lo) / 2;
        let (ra, rb) = if depth.is_multiple_of(2) {
            rect.split_vertical()
        } else {
            rect.split_horizontal()
        };
        let mut left = self.build_block(lo, mid, ra, depth + 1);
        let mut right = self.build_block(mid, hi, rb, depth + 1);

        let t_target = (self.cfg.pins_per_cell * (count as f64).powf(self.cfg.rent_exponent))
            .round()
            .max(1.0) as usize;
        let have = left.len() + right.len();
        let mut to_consume = have.saturating_sub(t_target);
        let mut merged: Vec<Endpoint> = Vec::with_capacity(t_target + 2);

        while to_consume > 0 && !left.is_empty() && !right.is_empty() {
            let el = take_random(&mut left, self.rng);
            let er = take_random(&mut right, self.rng);
            let consumed = self.join(el, er, &mut merged);
            to_consume = to_consume.saturating_sub(consumed);
        }
        merged.extend(left);
        merged.extend(right);
        if count >= RENT_SAMPLE_MIN_BLOCK {
            self.stats.rent_samples.push((count, merged.len()));
        }
        merged
    }

    /// Joins one endpoint from each side; nets that lose their last
    /// endpoint are closed (emitted) on the spot.
    fn join(&mut self, el: Endpoint, er: Endpoint, merged: &mut Vec<Endpoint>) -> usize {
        use Endpoint::*;
        let keep_open = self.rng.gen_bool(self.cfg.keep_open_probability);
        match (el, er) {
            (Pin(a), Pin(b)) => {
                if keep_open {
                    let slot = self.open_net(a, b);
                    merged.push(Net(slot));
                    1
                } else {
                    self.emit(&[a, b]);
                    2
                }
            }
            (Pin(a), Net(n)) | (Net(n), Pin(a)) => {
                let extend = self.rng.gen_bool(self.cfg.extend_probability);
                if extend {
                    if !self.open[n as usize].contains(&a) {
                        self.open[n as usize].push(a);
                    }
                    if keep_open {
                        merged.push(Net(n));
                        1
                    } else {
                        self.close(n);
                        2
                    }
                } else {
                    // Keep the net open, spend the pin on a fresh 2-pin net
                    // with a random member of the net (local connection).
                    let other = *self.open[n as usize]
                        .as_slice()
                        .choose(self.rng)
                        .expect("open nets are non-empty");
                    if other != a {
                        self.emit(&[a, other]);
                    }
                    merged.push(Net(n));
                    1
                }
            }
            (Net(n1), Net(n2)) => {
                // Keep one of the two boundary nets open at random; the
                // other can never grow again, so it is done.
                if self.rng.gen_bool(0.5) {
                    merged.push(Net(n1));
                    self.close(n2);
                } else {
                    merged.push(Net(n2));
                    self.close(n1);
                }
                1
            }
        }
    }

    /// Builds a leaf block: optionally places its cells in `rect` and
    /// exposes ~k open pins per cell.
    fn build_leaf(&mut self, lo: u32, hi: u32, rect: Rect) -> Vec<Endpoint> {
        let count = (hi - lo) as usize;
        if let Some(placement) = self.placement.as_deref_mut() {
            let cols = (count as f64).sqrt().ceil() as usize;
            let rows = count.div_ceil(cols.max(1));
            for (i, cell) in (lo..hi).enumerate() {
                let (r, c) = (i / cols, i % cols);
                let x = rect.x0 + rect.width() * (c as f64 + 0.5) / cols as f64;
                let y = rect.y0 + rect.height() * (r as f64 + 0.5) / rows.max(1) as f64;
                placement[cell as usize] = Point::new(x, y);
            }
        }
        let k = self.cfg.pins_per_cell;
        let base = k.floor() as usize;
        let frac = k - base as f64;
        let mut endpoints = Vec::with_capacity(count * (base + 1));
        for cell in lo..hi {
            let pins = base + usize::from(self.rng.gen_bool(frac));
            for _ in 0..pins {
                endpoints.push(Endpoint::Pin(cell));
            }
        }
        endpoints
    }
}

/// Builds a full [`Circuit`] by streaming the netlist straight into a
/// [`HypergraphBuilder`] — the only `O(n)` allocations are the final CSR
/// arenas, the cell areas and the placement.
///
/// # Panics
/// Panics if `cfg.num_cells == 0` or `cfg.leaf_size == 0`, or if the
/// circuit would exceed the `u32` pin-arena range.
pub fn build_circuit(cfg: &GeneratorConfig, seed: u64) -> Circuit {
    let n = cfg.num_cells;
    let die_side = (n as f64).sqrt().ceil().max(1.0);
    let die = Rect::new(0.0, 0.0, die_side, die_side);

    // Areas come from an rng stream independent of the netlist recursion so
    // connectivity is a function of (cfg, seed) alone.
    let mut area_rng = ChaCha8Rng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
    let areas = cfg.areas.sample(&mut area_rng, n);

    let expected_pins = (n as f64 * cfg.pins_per_cell * 1.25) as usize;
    let mut builder = HypergraphBuilder::with_capacity(n + cfg.num_pads, n, expected_pins);
    for &a in &areas {
        builder.add_vertex(a);
    }
    drop(areas);
    for _ in 0..cfg.num_pads {
        builder.add_vertex(0);
    }

    let mut placement = Vec::with_capacity(n);
    {
        let mut sink = |pins: &[u32]| {
            builder
                .add_net(1, pins.iter().copied().map(VertexId))
                .expect("streaming generator stays within the pin arena");
        };
        emit_nets_placed(cfg, seed, &mut sink, &mut placement);
    }
    let hypergraph = builder.build().expect("streaming generator is valid");

    // Pads evenly spaced along the perimeter.
    let perimeter = 2.0 * (die.width() + die.height());
    for i in 0..cfg.num_pads {
        let d = perimeter * i as f64 / cfg.num_pads.max(1) as f64;
        placement.push(perimeter_point(&die, d));
    }

    Circuit {
        name: cfg.name.clone(),
        hypergraph,
        placement,
        pad_offset: n,
        die,
        target_rent_exponent: cfg.rent_exponent,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(cells: usize, p: f64) -> GeneratorConfig {
        GeneratorConfig {
            name: "scale-test".into(),
            num_cells: cells,
            rent_exponent: p,
            num_pads: (3.8 * (cells as f64).powf(p)).round() as usize,
            ..GeneratorConfig::default()
        }
    }

    #[test]
    fn every_net_emitted_once_and_closed() {
        let mut nets = 0usize;
        let mut pins = 0usize;
        let stats = emit_nets(&cfg(5000, 0.62), 3, |ps| {
            assert!(ps.len() >= 2);
            let mut sorted = ps.to_vec();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), ps.len(), "duplicate pin in emitted net");
            nets += 1;
            pins += ps.len();
        });
        assert_eq!(stats.nets_emitted, nets);
        assert_eq!(stats.pins_emitted, pins);
        assert!(nets > 2500, "too few nets: {nets}");
    }

    #[test]
    fn open_state_is_sublinear() {
        // The whole point: live netlist state tracks k·n^p, not n.
        let c = cfg(100_000, 0.62);
        let stats = emit_nets(&c, 7, |_| {});
        let rent_bound = (c.pins_per_cell * (c.num_cells as f64).powf(c.rent_exponent)) as usize;
        assert!(
            stats.max_open_nets < 4 * rent_bound,
            "open high-water {} vs Rent bound {rent_bound}",
            stats.max_open_nets
        );
        assert!(
            stats.max_open_nets * 20 < stats.nets_emitted,
            "open high-water {} should be far below total {}",
            stats.max_open_nets,
            stats.nets_emitted
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let collect = |seed| {
            let mut v: Vec<Vec<u32>> = Vec::new();
            emit_nets(&cfg(2000, 0.6), seed, |ps| v.push(ps.to_vec()));
            v
        };
        assert_eq!(collect(9), collect(9));
        assert_ne!(collect(9), collect(10));
    }

    #[test]
    fn realised_rent_exponent_tracks_target() {
        for &p in &[0.55, 0.68] {
            let stats = emit_nets(&cfg(32_768, p), 5, |_| {});
            let fitted = stats.fitted_rent_exponent(64).expect("enough samples");
            assert!((fitted - p).abs() < 0.12, "target {p}, fitted {fitted}");
        }
    }

    #[test]
    fn build_circuit_shape_and_placement() {
        let c = build_circuit(&cfg(4096, 0.62), 11);
        assert_eq!(c.num_cells(), 4096);
        assert!(c.num_pads() > 0);
        for pad in c.pads() {
            assert_eq!(c.hypergraph.vertex_weight(pad), 0);
        }
        for cell in c.cells() {
            assert!(c.die.contains(c.location(cell)), "cell off-die");
        }
        let avg_pins = c
            .cells()
            .map(|v| c.hypergraph.vertex_degree(v))
            .sum::<usize>() as f64
            / c.num_cells() as f64;
        assert!(
            (2.0..=4.5).contains(&avg_pins),
            "avg pins per cell {avg_pins}"
        );
        let giant = vlsi_hypergraph::largest_component_size(&c.hypergraph);
        assert!(giant as f64 > 0.95 * c.hypergraph.num_vertices() as f64);
    }

    #[test]
    fn build_circuit_deterministic() {
        let a = build_circuit(&cfg(1500, 0.6), 2);
        let b = build_circuit(&cfg(1500, 0.6), 2);
        assert_eq!(a.hypergraph, b.hypergraph);
    }
}
