//! Rent's rule (`T = k · C^p`) and the block-size thresholds of Table I.
//!
//! Section I of the paper: "in a layout with Rent parameter `p`, on average
//! a block of `C` cells will have `T = k·C^p` propagated or external
//! terminals. This corresponds to a partitioning instance of `C + T`
//! vertices, of which `T` are fixed." Table I lists, for each Rent
//! parameter, the block sizes below which the expected number of fixed
//! vertices exceeds 5%, 10% or 20% of all vertices.

/// A Rent's-rule model: `terminals(C) = k · C^p`.
///
/// # Example
/// ```
/// use vlsi_netgen::rent::RentModel;
/// // The paper's modern-design parameters: k = 3.5, p ≈ 0.68.
/// let m = RentModel::new(3.5, 0.68);
/// assert!((m.terminals(1000.0) - 3.5 * 1000f64.powf(0.68)).abs() < 1e-9);
/// assert!(m.fixed_fraction(1000.0) > 0.25);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RentModel {
    /// Average pins per cell (`k`, ≈ 3.5 for the paper's modern designs).
    pub pins_per_cell: f64,
    /// Rent exponent (`p`).
    pub exponent: f64,
}

impl RentModel {
    /// Creates a model with the given `k` and `p`.
    ///
    /// # Panics
    /// Panics if `pins_per_cell <= 0` or `exponent` is outside `(0, 1]`.
    pub fn new(pins_per_cell: f64, exponent: f64) -> Self {
        assert!(pins_per_cell > 0.0, "k must be positive");
        assert!(
            exponent > 0.0 && exponent <= 1.0,
            "rent exponent must be in (0, 1]"
        );
        RentModel {
            pins_per_cell,
            exponent,
        }
    }

    /// Expected number of external terminals of a block of `cells` cells.
    pub fn terminals(&self, cells: f64) -> f64 {
        self.pins_per_cell * cells.powf(self.exponent)
    }

    /// Expected fraction of fixed vertices in the partitioning instance
    /// induced by a block of `cells` cells: `T / (C + T)`.
    pub fn fixed_fraction(&self, cells: f64) -> f64 {
        let t = self.terminals(cells);
        t / (cells + t)
    }

    /// The largest block size `C` whose expected fixed fraction still
    /// *exceeds* `threshold` — the entries of the paper's Table I.
    ///
    /// `fixed_fraction` is strictly decreasing in `C` (for `p < 1`), so a
    /// binary search suffices. Returns 0 if even a 1-cell block is below
    /// the threshold, and `u64::MAX` if the fraction never drops below it
    /// (`p = 1`).
    ///
    /// # Example
    /// ```
    /// use vlsi_netgen::rent::RentModel;
    /// let m = RentModel::new(3.5, 0.68);
    /// let c = m.block_size_threshold(0.20);
    /// // Just below the threshold the fraction exceeds 20 %...
    /// assert!(m.fixed_fraction(c as f64) > 0.20);
    /// // ...and just above it no longer does.
    /// assert!(m.fixed_fraction((c + 1) as f64) <= 0.20);
    /// ```
    pub fn block_size_threshold(&self, threshold: f64) -> u64 {
        assert!((0.0..1.0).contains(&threshold), "threshold in [0,1)");
        if (self.exponent - 1.0).abs() < 1e-12 {
            // T/C is constant: either always above or always below.
            return if self.fixed_fraction(1.0) > threshold {
                u64::MAX
            } else {
                0
            };
        }
        if self.fixed_fraction(1.0) <= threshold {
            return 0;
        }
        let (mut lo, mut hi) = (1u64, 2u64);
        while self.fixed_fraction(hi as f64) > threshold {
            lo = hi;
            hi = hi.saturating_mul(2);
            if hi == u64::MAX {
                return u64::MAX;
            }
        }
        // Invariant: fraction(lo) > threshold >= fraction(hi).
        while hi - lo > 1 {
            let mid = lo + (hi - lo) / 2;
            if self.fixed_fraction(mid as f64) > threshold {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        lo
    }
}

/// One row of the paper's Table I: a Rent parameter and the block sizes
/// below which the expected fixed fraction exceeds 5%, 10% and 20%.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TableOneRow {
    /// Rent parameter `p`, in thousandths (e.g. 680 for 0.68) to keep the
    /// row hashable and exactly comparable.
    pub p_milli: u32,
    /// Block size below which ≥ 5% of vertices are expected fixed.
    pub c_5pct: u64,
    /// Block size below which ≥ 10% of vertices are expected fixed.
    pub c_10pct: u64,
    /// Block size below which ≥ 20% of vertices are expected fixed.
    pub c_20pct: u64,
}

/// Computes the full Table I for the given Rent parameters and `k = 3.5`
/// (the paper's stated assumption).
///
/// # Example
/// ```
/// use vlsi_netgen::rent::table_one;
/// let rows = table_one(&[0.47, 0.68]);
/// assert_eq!(rows.len(), 2);
/// // Higher Rent parameter => terminals dominate to larger block sizes.
/// assert!(rows[1].c_20pct > rows[0].c_20pct);
/// ```
pub fn table_one(rent_parameters: &[f64]) -> Vec<TableOneRow> {
    rent_parameters
        .iter()
        .map(|&p| {
            let m = RentModel::new(3.5, p);
            TableOneRow {
                p_milli: (p * 1000.0).round() as u32,
                c_5pct: m.block_size_threshold(0.05),
                c_10pct: m.block_size_threshold(0.10),
                c_20pct: m.block_size_threshold(0.20),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminals_formula() {
        let m = RentModel::new(3.5, 0.5);
        assert!((m.terminals(100.0) - 35.0).abs() < 1e-9);
    }

    #[test]
    fn fixed_fraction_decreases_with_block_size() {
        let m = RentModel::new(3.5, 0.68);
        let mut prev = 1.0f64;
        for c in [10.0, 100.0, 1000.0, 10000.0, 100000.0] {
            let f = m.fixed_fraction(c);
            assert!(f < prev, "fraction must strictly decrease");
            prev = f;
        }
    }

    #[test]
    fn threshold_is_tight() {
        for p in [0.47, 0.55, 0.62, 0.68] {
            let m = RentModel::new(3.5, p);
            for t in [0.05, 0.10, 0.20] {
                let c = m.block_size_threshold(t);
                assert!(m.fixed_fraction(c as f64) > t, "p={p} t={t}");
                assert!(m.fixed_fraction((c + 1) as f64) <= t, "p={p} t={t}");
            }
        }
    }

    #[test]
    fn thresholds_ordered() {
        let m = RentModel::new(3.5, 0.68);
        let (a, b, c) = (
            m.block_size_threshold(0.05),
            m.block_size_threshold(0.10),
            m.block_size_threshold(0.20),
        );
        assert!(a > b && b > c, "stricter thresholds need smaller blocks");
    }

    #[test]
    fn table_one_monotone_in_p() {
        let rows = table_one(&[0.47, 0.55, 0.62, 0.68]);
        for w in rows.windows(2) {
            assert!(w[1].c_5pct > w[0].c_5pct);
            assert!(w[1].c_20pct > w[0].c_20pct);
        }
    }

    #[test]
    fn table_one_magnitudes_match_paper_scale() {
        // For p = 0.68, k = 3.5: 20% threshold solves 3.5 C^0.68 = 0.25 C
        // => C = 14^(1/0.32) ≈ 3.8e3. The paper's Table I is built on the
        // same formula, so our row must be in that range.
        let rows = table_one(&[0.68]);
        assert!(rows[0].c_20pct > 2_000 && rows[0].c_20pct < 10_000);
        // 5%: 3.5 C^0.68 = C/19 => C = 66.5^(1/0.32) ≈ 5e5.
        assert!(rows[0].c_5pct > 100_000 && rows[0].c_5pct < 2_000_000);
    }

    #[test]
    fn degenerate_exponent_one() {
        let m = RentModel::new(3.5, 1.0);
        assert_eq!(m.block_size_threshold(0.2), u64::MAX);
    }

    #[test]
    #[should_panic(expected = "rent exponent")]
    fn invalid_exponent_rejected() {
        let _ = RentModel::new(3.5, 1.5);
    }
}
