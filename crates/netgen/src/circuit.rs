//! The generated circuit: hypergraph + placement + pad bookkeeping.

use vlsi_hypergraph::{Hypergraph, VertexId};

use crate::geometry::{Point, Rect};

/// A synthetic circuit: the netlist hypergraph, a legal-by-construction
/// placement, and the cell/pad split.
///
/// Cells occupy vertex indices `0..num_cells`; pads occupy
/// `num_cells..num_vertices` and have zero area (exactly like the paper's
/// zero-area pad terminals).
#[derive(Debug, Clone)]
pub struct Circuit {
    /// Human-readable name (e.g. `"ibm01-like"`).
    pub name: String,
    /// The netlist.
    pub hypergraph: Hypergraph,
    /// Placement location of every vertex (cells inside the die, pads on
    /// the boundary).
    pub placement: Vec<Point>,
    /// Index of the first pad vertex.
    pub pad_offset: usize,
    /// The die rectangle.
    pub die: Rect,
    /// The Rent exponent the generator targeted.
    pub target_rent_exponent: f64,
}

impl Circuit {
    /// Number of movable cells.
    pub fn num_cells(&self) -> usize {
        self.pad_offset
    }

    /// Number of pads.
    pub fn num_pads(&self) -> usize {
        self.hypergraph.num_vertices() - self.pad_offset
    }

    /// Returns `true` if `vertex` is a pad.
    pub fn is_pad(&self, vertex: VertexId) -> bool {
        vertex.index() >= self.pad_offset
    }

    /// Location of a vertex.
    ///
    /// # Panics
    /// Panics if `vertex` is out of range.
    pub fn location(&self, vertex: VertexId) -> Point {
        self.placement[vertex.index()]
    }

    /// Iterator over the cell vertex ids.
    pub fn cells(&self) -> impl ExactSizeIterator<Item = VertexId> + Clone {
        (0..self.pad_offset as u32).map(VertexId)
    }

    /// Iterator over the pad vertex ids.
    pub fn pads(&self) -> impl ExactSizeIterator<Item = VertexId> + Clone + '_ {
        (self.pad_offset as u32..self.hypergraph.num_vertices() as u32).map(VertexId)
    }

    /// Replaces the placement (e.g. with the output of the top-down placer).
    ///
    /// # Panics
    /// Panics if the new placement has the wrong length.
    pub fn with_placement(mut self, placement: Vec<Point>) -> Self {
        assert_eq!(placement.len(), self.hypergraph.num_vertices());
        self.placement = placement;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vlsi_hypergraph::HypergraphBuilder;

    fn tiny() -> Circuit {
        let mut b = HypergraphBuilder::new();
        let c0 = b.add_vertex(2);
        let c1 = b.add_vertex(1);
        let p0 = b.add_vertex(0);
        b.add_net(1, [c0, c1, p0]).unwrap();
        Circuit {
            name: "tiny".into(),
            hypergraph: b.build().unwrap(),
            placement: vec![
                Point::new(1.0, 1.0),
                Point::new(2.0, 2.0),
                Point::new(0.0, 0.0),
            ],
            pad_offset: 2,
            die: Rect::new(0.0, 0.0, 4.0, 4.0),
            target_rent_exponent: 0.6,
        }
    }

    #[test]
    fn cell_pad_split() {
        let c = tiny();
        assert_eq!(c.num_cells(), 2);
        assert_eq!(c.num_pads(), 1);
        assert!(c.is_pad(VertexId(2)));
        assert!(!c.is_pad(VertexId(1)));
        assert_eq!(c.cells().count(), 2);
        assert_eq!(c.pads().collect::<Vec<_>>(), vec![VertexId(2)]);
    }

    #[test]
    fn placement_replacement() {
        let c = tiny();
        let new_placement = vec![Point::default(); 3];
        let c = c.with_placement(new_placement);
        assert_eq!(c.location(VertexId(0)), Point::default());
    }
}
