//! Rent's-rule-driven synthetic netlist, placement and fixed-terminal
//! benchmark generation.
//!
//! This crate substitutes for the proprietary ISPD-98 IBM circuits used in
//! *Hypergraph Partitioning with Fixed Vertices* (Alpert et al., DAC 1999):
//!
//! * [`rent`] — the Rent's-rule model (`T = k·C^p`) behind the paper's
//!   Table I, including the block sizes below which the expected fixed
//!   fraction exceeds a threshold.
//! * [`synthetic`] — a gnl-style hierarchical netlist generator with a
//!   controllable Rent exponent, realistic net-size distribution, skewed
//!   cell areas ([`areas`]) and a *native geometric placement* produced by
//!   the same recursion that creates the connectivity.
//! * [`instances`] — presets `ibm01_like()`…`ibm05_like()` matching the
//!   published vertex/net counts of the ISPD-98 suite, plus Rent-faithful
//!   `million_cells()`/`ten_million_cells()` scale presets.
//! * [`scale`] — the streaming emit-on-close generator behind the scale
//!   presets: live netlist state is `O(k·n^p)`, so circuits far beyond
//!   the ISPD-98 sizes build in bounded memory.
//! * [`blocks`] — the paper's Section IV methodology: lay a block and a
//!   cutline over a placement and derive a partitioning instance whose
//!   external cells/pads become zero-area terminals fixed in the closest
//!   partition (Table IV).
//!
//! # Example
//!
//! ```
//! use vlsi_netgen::synthetic::{Generator, GeneratorConfig};
//!
//! let config = GeneratorConfig {
//!     num_cells: 400,
//!     rent_exponent: 0.6,
//!     ..GeneratorConfig::default()
//! };
//! let circuit = Generator::new(config).generate(7);
//! assert_eq!(circuit.num_cells(), 400);
//! assert!(circuit.hypergraph.num_nets() > 300);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod areas;
pub mod blocks;
pub mod bookshelf;
mod circuit;
mod geometry;
pub mod instances;
pub mod rent;
pub mod scale;
pub mod synthetic;

pub use circuit::Circuit;
pub use geometry::{Cutline, Point, Rect};
