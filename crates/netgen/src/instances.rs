//! Presets mirroring the ISPD-98 circuits used in the paper.
//!
//! The published sizes of the benchmarks (Alpert, ISPD-98):
//!
//! | circuit | cells  | nets   | pads |
//! |---------|--------|--------|------|
//! | IBM01   | 12 506 | 14 111 | 246  |
//! | IBM02   | 19 342 | 19 584 | 259  |
//! | IBM03   | 22 853 | 27 401 | 283  |
//! | IBM04   | 27 220 | 31 970 | 287  |
//! | IBM05   | 28 146 | 28 446 | 1201 |
//!
//! The presets reproduce the cell/pad counts (net counts emerge from the
//! Rent construction and land in the right ballpark). `scaled` presets
//! shrink the instances for fast experiment iterations while preserving
//! the Rent exponent and pad fraction.

use crate::synthetic::{Generator, GeneratorConfig};
use crate::Circuit;

/// Builds the generator configuration for one of the IBM-like presets.
fn preset(name: &str, cells: usize, pads: usize, rent_p: f64, scale: f64) -> GeneratorConfig {
    let s = scale.clamp(0.001, 1.0);
    GeneratorConfig {
        name: if s < 1.0 {
            format!("{name}-s{s:.2}")
        } else {
            name.to_string()
        },
        num_cells: ((cells as f64 * s).round() as usize).max(16),
        num_pads: ((pads as f64 * s).round() as usize).max(4),
        rent_exponent: rent_p,
        pins_per_cell: 3.9,
        ..GeneratorConfig::default()
    }
}

macro_rules! ibm_preset {
    ($full:ident, $scaled:ident, $name:literal, $cells:literal, $pads:literal, $p:literal) => {
        /// Full-size preset (see the module table for the mirrored counts).
        pub fn $full(seed: u64) -> Circuit {
            Generator::new(preset($name, $cells, $pads, $p, 1.0)).generate(seed)
        }

        /// Scaled preset: same Rent exponent and pad fraction, `scale` times
        /// the cell count (clamped to at least 16 cells).
        pub fn $scaled(scale: f64, seed: u64) -> Circuit {
            Generator::new(preset($name, $cells, $pads, $p, scale)).generate(seed)
        }
    };
}

ibm_preset!(
    ibm01_like,
    ibm01_like_scaled,
    "ibm01-like",
    12506,
    246,
    0.60
);
ibm_preset!(
    ibm02_like,
    ibm02_like_scaled,
    "ibm02-like",
    19342,
    259,
    0.62
);
ibm_preset!(
    ibm03_like,
    ibm03_like_scaled,
    "ibm03-like",
    22853,
    283,
    0.64
);
ibm_preset!(
    ibm04_like,
    ibm04_like_scaled,
    "ibm04-like",
    27220,
    287,
    0.62
);
ibm_preset!(
    ibm05_like,
    ibm05_like_scaled,
    "ibm05-like",
    28146,
    1201,
    0.66
);

/// Builds the configuration for a Rent-faithful scale preset: pad count
/// follows Rent's rule (`T = k·n^p`) instead of a published circuit.
fn scale_preset(name: &str, cells: usize, rent_p: f64, scale: f64) -> GeneratorConfig {
    let s = scale.clamp(0.001, 1.0);
    let num_cells = ((cells as f64 * s).round() as usize).max(16);
    let pins_per_cell = 3.9;
    GeneratorConfig {
        name: if s < 1.0 {
            format!("{name}-s{s:.2}")
        } else {
            name.to_string()
        },
        num_cells,
        num_pads: (pins_per_cell * (num_cells as f64).powf(rent_p)).round() as usize,
        rent_exponent: rent_p,
        pins_per_cell,
        ..GeneratorConfig::default()
    }
}

macro_rules! scale_preset {
    ($full:ident, $scaled:ident, $name:literal, $cells:literal, $p:literal) => {
        /// Rent-faithful scale preset, built with the streaming
        /// [`scale`](crate::scale) generator (live state `O(k·n^p)`).
        pub fn $full(seed: u64) -> Circuit {
            crate::scale::build_circuit(&scale_preset($name, $cells, $p, 1.0), seed)
        }

        /// Scaled variant: same Rent exponent, `scale` times the cells
        /// (clamped to at least 16), pads re-derived from Rent's rule.
        pub fn $scaled(scale: f64, seed: u64) -> Circuit {
            crate::scale::build_circuit(&scale_preset($name, $cells, $p, scale), seed)
        }
    };
}

scale_preset!(
    million_cells,
    million_cells_scaled,
    "rent-1m",
    1_000_000,
    0.62
);
scale_preset!(
    ten_million_cells,
    ten_million_cells_scaled,
    "rent-10m",
    10_000_000,
    0.62
);

/// All five full-size presets, generated with consecutive seeds.
pub fn all_full(seed: u64) -> Vec<Circuit> {
    vec![
        ibm01_like(seed),
        ibm02_like(seed + 1),
        ibm03_like(seed + 2),
        ibm04_like(seed + 3),
        ibm05_like(seed + 4),
    ]
}

/// Looks a preset up by name (`"ibm01"`…`"ibm05"`), at the given scale.
///
/// Returns `None` for unknown names.
///
/// # Example
/// ```
/// use vlsi_netgen::instances::by_name;
/// let c = by_name("ibm01", 0.1, 7).unwrap();
/// assert!(c.num_cells() > 1000);
/// assert!(by_name("ibm99", 1.0, 7).is_none());
/// ```
pub fn by_name(name: &str, scale: f64, seed: u64) -> Option<Circuit> {
    match name {
        "ibm01" | "ibm01-like" => Some(ibm01_like_scaled(scale, seed)),
        "ibm02" | "ibm02-like" => Some(ibm02_like_scaled(scale, seed)),
        "ibm03" | "ibm03-like" => Some(ibm03_like_scaled(scale, seed)),
        "ibm04" | "ibm04-like" => Some(ibm04_like_scaled(scale, seed)),
        "ibm05" | "ibm05-like" => Some(ibm05_like_scaled(scale, seed)),
        "1m" | "1M" | "rent-1m" => Some(million_cells_scaled(scale, seed)),
        "10m" | "10M" | "rent-10m" => Some(ten_million_cells_scaled(scale, seed)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ibm01_counts_match_published() {
        let c = ibm01_like_scaled(1.0, 1);
        assert_eq!(c.num_cells(), 12506);
        assert_eq!(c.num_pads(), 246);
        // Net count should land in the ballpark of the published 14111.
        let nets = c.hypergraph.num_nets();
        assert!((8_000..26_000).contains(&nets), "ibm01-like nets = {nets}");
    }

    #[test]
    fn pads_below_one_percent() {
        // The paper: "the number of I/Os is typically very small (less than
        // one percent of all vertices)".
        for c in [ibm01_like_scaled(0.2, 2), ibm03_like_scaled(0.2, 3)] {
            let frac = c.num_pads() as f64 / c.hypergraph.num_vertices() as f64;
            assert!(frac < 0.03, "{}: pad fraction {frac}", c.name);
        }
    }

    #[test]
    fn scaled_preserves_name_tagging() {
        let c = ibm02_like_scaled(0.5, 0);
        assert!(c.name.starts_with("ibm02-like-s0.50"));
        let f = ibm02_like(0);
        assert_eq!(f.name, "ibm02-like");
    }

    #[test]
    fn by_name_variants() {
        assert!(by_name("ibm04", 0.05, 1).is_some());
        assert!(by_name("ibm05-like", 0.05, 1).is_some());
        assert!(by_name("nope", 1.0, 1).is_none());
    }

    #[test]
    fn scale_presets_resolve_and_follow_rent() {
        // 1% of the 1M preset = 10k cells — big enough to check the shape
        // without slowing the suite down.
        let c = by_name("1M", 0.01, 5).unwrap();
        assert_eq!(c.num_cells(), 10_000);
        assert!(c.name.starts_with("rent-1m-s0.01"));
        // Pads track Rent's rule, not a fixed published count.
        let expect = 3.9 * 10_000f64.powf(0.62);
        let pads = c.num_pads() as f64;
        assert!(
            (pads - expect).abs() < expect * 0.5,
            "pads {pads} vs Rent {expect}"
        );
        assert!(by_name("10m", 0.001, 5).is_some());
    }

    #[test]
    fn scale_clamps() {
        let c = ibm01_like_scaled(0.0, 1);
        assert!(c.num_cells() >= 16);
        assert!(c.num_pads() >= 4);
    }
}
