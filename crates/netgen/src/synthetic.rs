//! Gnl-style hierarchical netlist generation with a controllable Rent
//! exponent and a native placement.
//!
//! The generator builds a balanced binary hierarchy over the cells. Each
//! leaf cell exposes ~`k` open pins. When two sibling blocks of combined
//! size `C` merge, Rent's rule says the combined block should expose only
//! `T = k·C^p` terminals, so the surplus open endpoints are *consumed* by
//! creating nets that join the two sides (or by extending nets that already
//! reach the boundary). Endpoints remaining at the root are attached to
//! boundary pads. Because the same recursion assigns each block a
//! rectangle of the die, the resulting placement has exactly the spatial
//! locality the connectivity implies — which is what the paper's Section IV
//! block-extraction methodology needs.

use vlsi_rng::seq::SliceRandom;
use vlsi_rng::ChaCha8Rng;
use vlsi_rng::Rng;
use vlsi_rng::SeedableRng;

use vlsi_hypergraph::{HypergraphBuilder, VertexId};

use crate::areas::AreaDistribution;
use crate::circuit::Circuit;
use crate::geometry::{Point, Rect};

/// Configuration of the synthetic generator.
///
/// # Example
/// ```
/// use vlsi_netgen::synthetic::GeneratorConfig;
/// let cfg = GeneratorConfig::default();
/// assert_eq!(cfg.rent_exponent, 0.62);
/// assert!(cfg.pins_per_cell > 3.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratorConfig {
    /// Name given to the generated circuit.
    pub name: String,
    /// Number of movable cells.
    pub num_cells: usize,
    /// Target Rent exponent `p`.
    pub rent_exponent: f64,
    /// Average pins per cell `k` (the paper: ≈ 3.5–4 for modern designs).
    pub pins_per_cell: f64,
    /// Number of I/O pads (the paper: typically < 1% of all vertices).
    pub num_pads: usize,
    /// Probability that joining endpoints extends an existing boundary net
    /// instead of creating a fresh 2-pin net (controls net fanout).
    pub extend_probability: f64,
    /// Probability that a newly created or extended net stays open (keeps
    /// counting as a terminal of the merged block).
    pub keep_open_probability: f64,
    /// Cell-area distribution.
    pub areas: AreaDistribution,
    /// Cells per leaf block of the hierarchy.
    pub leaf_size: usize,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            name: "synthetic".into(),
            num_cells: 1000,
            rent_exponent: 0.62,
            pins_per_cell: 3.8,
            num_pads: 64,
            extend_probability: 0.45,
            keep_open_probability: 0.45,
            areas: AreaDistribution::ibm_like(),
            leaf_size: 4,
        }
    }
}

/// Observations collected while generating, used to verify the realised
/// Rent exponent.
#[derive(Debug, Clone, Default)]
pub struct GenStats {
    /// `(block_size, external_terminals)` for every internal hierarchy node.
    pub rent_samples: Vec<(usize, usize)>,
}

impl GenStats {
    /// Least-squares estimate of the realised Rent exponent from the
    /// `log T = log k + p·log C` regression over the collected samples
    /// (blocks of at least `min_block` cells).
    pub fn fitted_rent_exponent(&self, min_block: usize) -> Option<f64> {
        let pts: Vec<(f64, f64)> = self
            .rent_samples
            .iter()
            .filter(|&&(c, t)| c >= min_block && t > 0)
            .map(|&(c, t)| ((c as f64).ln(), (t as f64).ln()))
            .collect();
        if pts.len() < 3 {
            return None;
        }
        let n = pts.len() as f64;
        let sx: f64 = pts.iter().map(|p| p.0).sum();
        let sy: f64 = pts.iter().map(|p| p.1).sum();
        let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
        let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
        let denom = n * sxx - sx * sx;
        (denom.abs() > 1e-12).then(|| (n * sxy - sx * sy) / denom)
    }
}

/// An open connection endpoint of a block.
#[derive(Debug, Clone, Copy)]
enum Endpoint {
    /// An unconnected pin of a cell.
    Pin(u32),
    /// A net (index into the net list) that still reaches the boundary.
    Net(u32),
}

/// The synthetic circuit generator.
///
/// # Example
/// ```
/// use vlsi_netgen::synthetic::{Generator, GeneratorConfig};
/// let circuit = Generator::new(GeneratorConfig {
///     num_cells: 256,
///     ..GeneratorConfig::default()
/// })
/// .generate(42);
/// assert_eq!(circuit.num_cells(), 256);
/// // Pads sit after the cells and have zero area.
/// let pad = circuit.pads().next().unwrap();
/// assert_eq!(circuit.hypergraph.vertex_weight(pad), 0);
/// ```
#[derive(Debug, Clone)]
pub struct Generator {
    config: GeneratorConfig,
}

impl Generator {
    /// Creates a generator.
    ///
    /// # Panics
    /// Panics if `num_cells == 0` or `leaf_size == 0`.
    pub fn new(config: GeneratorConfig) -> Self {
        assert!(config.num_cells > 0, "need at least one cell");
        assert!(config.leaf_size > 0, "leaf size must be positive");
        Generator { config }
    }

    /// The generator's configuration.
    pub fn config(&self) -> &GeneratorConfig {
        &self.config
    }

    /// Generates a circuit from the given seed.
    pub fn generate(&self, seed: u64) -> Circuit {
        self.generate_with_stats(seed).0
    }

    /// Generates a circuit and the Rent observations of the construction.
    pub fn generate_with_stats(&self, seed: u64) -> (Circuit, GenStats) {
        let cfg = &self.config;
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let n = cfg.num_cells;

        let die_side = (n as f64).sqrt().ceil().max(1.0);
        let die = Rect::new(0.0, 0.0, die_side, die_side);

        let mut gen = GenState {
            cfg,
            rng: &mut rng,
            nets: Vec::new(),
            placement: vec![Point::default(); n],
            stats: GenStats::default(),
        };
        let mut endpoints = gen.build_block(0, n as u32, die, 0);

        // Attach remaining endpoints to pads on the die boundary.
        let num_pads = cfg.num_pads.min(endpoints.len().max(1));
        let pad_ids: Vec<u32> = (0..num_pads as u32).map(|i| n as u32 + i).collect();
        endpoints.shuffle(gen.rng);
        for (i, ep) in endpoints.iter().enumerate() {
            let pad = pad_ids[i % pad_ids.len().max(1)];
            match *ep {
                Endpoint::Pin(cell) => gen.nets.push(vec![cell, pad]),
                Endpoint::Net(idx) => {
                    let net = &mut gen.nets[idx as usize];
                    if !net.contains(&pad) {
                        net.push(pad);
                    }
                }
            }
        }

        let nets = std::mem::take(&mut gen.nets);
        let placement_cells = std::mem::take(&mut gen.placement);
        let stats = std::mem::take(&mut gen.stats);
        drop(gen);

        // Build the hypergraph: cells with areas, pads with zero area.
        let areas = cfg.areas.sample(&mut rng, n);
        let mut builder = HypergraphBuilder::with_capacity(
            n + num_pads,
            nets.len(),
            nets.iter().map(Vec::len).sum(),
        );
        for &a in &areas {
            builder.add_vertex(a);
        }
        for _ in 0..num_pads {
            builder.add_vertex(0);
        }
        for pins in nets {
            if pins.len() >= 2 {
                builder
                    .add_net_dedup(1, pins.into_iter().map(VertexId))
                    .expect("generator produces valid nets");
            }
        }
        let hypergraph = builder.build().expect("generator produces a valid graph");

        // Pads evenly spaced along the perimeter.
        let mut placement = placement_cells;
        let perimeter = 2.0 * (die.width() + die.height());
        for i in 0..num_pads {
            let d = perimeter * i as f64 / num_pads as f64;
            placement.push(perimeter_point(&die, d));
        }

        (
            Circuit {
                name: cfg.name.clone(),
                hypergraph,
                placement,
                pad_offset: n,
                die,
                target_rent_exponent: cfg.rent_exponent,
            },
            stats,
        )
    }
}

/// Walks a distance `d` along the perimeter of `r` counter-clockwise from
/// the bottom-left corner.
pub(crate) fn perimeter_point(r: &Rect, d: f64) -> Point {
    let (w, h) = (r.width(), r.height());
    let d = d % (2.0 * (w + h));
    if d < w {
        Point::new(r.x0 + d, r.y0)
    } else if d < w + h {
        Point::new(r.x1, r.y0 + (d - w))
    } else if d < 2.0 * w + h {
        Point::new(r.x1 - (d - w - h), r.y1)
    } else {
        Point::new(r.x0, r.y1 - (d - 2.0 * w - h))
    }
}

struct GenState<'a, R: Rng> {
    cfg: &'a GeneratorConfig,
    rng: &'a mut R,
    nets: Vec<Vec<u32>>,
    placement: Vec<Point>,
    stats: GenStats,
}

impl<R: Rng> GenState<'_, R> {
    /// Recursively builds the block of cells `[lo, hi)` inside `rect`,
    /// returning its open endpoints.
    fn build_block(&mut self, lo: u32, hi: u32, rect: Rect, depth: usize) -> Vec<Endpoint> {
        let count = (hi - lo) as usize;
        if count <= self.cfg.leaf_size {
            return self.build_leaf(lo, hi, rect);
        }
        let mid = lo + (hi - lo) / 2;
        let (ra, rb) = if depth.is_multiple_of(2) {
            rect.split_vertical()
        } else {
            rect.split_horizontal()
        };
        let mut left = self.build_block(lo, mid, ra, depth + 1);
        let mut right = self.build_block(mid, hi, rb, depth + 1);

        let t_target = (self.cfg.pins_per_cell * (count as f64).powf(self.cfg.rent_exponent))
            .round()
            .max(1.0) as usize;
        let have = left.len() + right.len();
        let mut to_consume = have.saturating_sub(t_target);
        let mut merged: Vec<Endpoint> = Vec::with_capacity(t_target + 2);

        while to_consume > 0 && !left.is_empty() && !right.is_empty() {
            let el = take_random(&mut left, self.rng);
            let er = take_random(&mut right, self.rng);
            let consumed = self.join(el, er, &mut merged);
            to_consume = to_consume.saturating_sub(consumed);
        }
        merged.extend(left);
        merged.extend(right);
        // If still over budget (one side ran dry), silently keep the extra
        // endpoints — the realised Rent exponent simply ends up a bit higher.
        self.stats.rent_samples.push((count, merged.len()));
        merged
    }

    /// Joins one endpoint from each side, pushing any surviving endpoint
    /// onto `merged`. Returns how many endpoints were net-consumed.
    fn join(&mut self, el: Endpoint, er: Endpoint, merged: &mut Vec<Endpoint>) -> usize {
        use Endpoint::*;
        let keep_open = self.rng.gen_bool(self.cfg.keep_open_probability);
        match (el, er) {
            (Pin(a), Pin(b)) => {
                let idx = self.nets.len() as u32;
                self.nets.push(vec![a, b]);
                if keep_open {
                    merged.push(Net(idx));
                    1
                } else {
                    2
                }
            }
            (Pin(a), Net(n)) | (Net(n), Pin(a)) => {
                let extend = self.rng.gen_bool(self.cfg.extend_probability);
                if extend {
                    let net = &mut self.nets[n as usize];
                    if !net.contains(&a) {
                        net.push(a);
                    }
                    if keep_open {
                        merged.push(Net(n));
                        1
                    } else {
                        2
                    }
                } else {
                    // Keep the net open, spend the pin on a fresh 2-pin net
                    // with a random member of the net (local connection).
                    let other = *self.nets[n as usize]
                        .as_slice()
                        .choose(self.rng)
                        .expect("nets are non-empty");
                    if other != a {
                        self.nets.push(vec![a, other]);
                    }
                    merged.push(Net(n));
                    1
                }
            }
            (Net(n1), Net(n2)) => {
                // Close one of the two net endpoints at random.
                if self.rng.gen_bool(0.5) {
                    merged.push(Net(n1));
                } else {
                    merged.push(Net(n2));
                }
                1
            }
        }
    }

    /// Builds a leaf block: places its cells in `rect` and exposes ~k open
    /// pins per cell.
    fn build_leaf(&mut self, lo: u32, hi: u32, rect: Rect) -> Vec<Endpoint> {
        let count = (hi - lo) as usize;
        let cols = (count as f64).sqrt().ceil() as usize;
        let rows = count.div_ceil(cols.max(1));
        for (i, cell) in (lo..hi).enumerate() {
            let (r, c) = (i / cols, i % cols);
            let x = rect.x0 + rect.width() * (c as f64 + 0.5) / cols as f64;
            let y = rect.y0 + rect.height() * (r as f64 + 0.5) / rows.max(1) as f64;
            self.placement[cell as usize] = Point::new(x, y);
        }
        let k = self.cfg.pins_per_cell;
        let base = k.floor() as usize;
        let frac = k - base as f64;
        let mut endpoints = Vec::with_capacity(count * (base + 1));
        for cell in lo..hi {
            let pins = base + usize::from(self.rng.gen_bool(frac));
            for _ in 0..pins {
                endpoints.push(Endpoint::Pin(cell));
            }
        }
        endpoints
    }
}

pub(crate) fn take_random<T, R: Rng>(v: &mut Vec<T>, rng: &mut R) -> T {
    let i = rng.gen_range(0..v.len());
    v.swap_remove(i)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn generate(cells: usize, p: f64, seed: u64) -> (Circuit, GenStats) {
        Generator::new(GeneratorConfig {
            num_cells: cells,
            rent_exponent: p,
            ..GeneratorConfig::default()
        })
        .generate_with_stats(seed)
    }

    #[test]
    fn basic_shape() {
        let (c, _) = generate(500, 0.6, 1);
        assert_eq!(c.num_cells(), 500);
        assert!(c.num_pads() > 0 && c.num_pads() <= 64);
        assert!(c.hypergraph.num_nets() >= 250, "too few nets");
        // All pads have zero weight; total = cell areas only.
        for pad in c.pads() {
            assert_eq!(c.hypergraph.vertex_weight(pad), 0);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let (a, _) = generate(300, 0.6, 9);
        let (b, _) = generate(300, 0.6, 9);
        assert_eq!(a.hypergraph, b.hypergraph);
        let (c, _) = generate(300, 0.6, 10);
        assert_ne!(a.hypergraph, c.hypergraph);
    }

    #[test]
    fn avg_pins_per_cell_near_k() {
        let (c, _) = generate(2000, 0.62, 3);
        // Pins on cell vertices only.
        let cell_pins: usize = c.cells().map(|v| c.hypergraph.vertex_degree(v)).sum();
        let avg = cell_pins as f64 / c.num_cells() as f64;
        assert!(
            (2.0..=4.5).contains(&avg),
            "avg pins per cell {avg} out of plausible range"
        );
    }

    #[test]
    fn net_sizes_have_two_pin_body_and_a_tail() {
        let (c, _) = generate(2000, 0.62, 4);
        let hg = &c.hypergraph;
        let sizes: Vec<usize> = hg.nets().map(|n| hg.net_size(n)).collect();
        let two = sizes.iter().filter(|&&s| s == 2).count();
        let big = sizes.iter().filter(|&&s| s >= 4).count();
        assert!(two * 2 > sizes.len(), "2-pin nets should dominate");
        assert!(big > 0, "some multi-pin nets expected");
        let avg = sizes.iter().sum::<usize>() as f64 / sizes.len() as f64;
        assert!((2.0..4.5).contains(&avg), "avg net size {avg}");
    }

    #[test]
    fn realised_rent_exponent_tracks_target() {
        for &p in &[0.55, 0.68] {
            let (_, stats) = generate(4096, p, 5);
            let fitted = stats.fitted_rent_exponent(32).expect("enough samples");
            assert!((fitted - p).abs() < 0.12, "target {p}, fitted {fitted}");
        }
    }

    #[test]
    fn placement_inside_die_and_pads_on_boundary() {
        let (c, _) = generate(400, 0.6, 6);
        for cell in c.cells() {
            assert!(c.die.contains(c.location(cell)), "cell off-die");
        }
        for pad in c.pads() {
            let p = c.location(pad);
            let on_edge = p.x == c.die.x0 || p.x == c.die.x1 || p.y == c.die.y0 || p.y == c.die.y1;
            assert!(on_edge, "pad not on boundary: {p:?}");
        }
    }

    #[test]
    fn placement_is_local() {
        // Cells sharing a net should be much closer on average than random
        // pairs — the property the block-extraction methodology relies on.
        let (c, _) = generate(1024, 0.6, 8);
        let hg = &c.hypergraph;
        let mut net_dist = 0.0;
        let mut pairs = 0usize;
        for n in hg.nets() {
            let pins = hg.net_pins(n);
            for w in pins.windows(2) {
                if c.is_pad(w[0]) || c.is_pad(w[1]) {
                    continue;
                }
                let (a, b) = (c.location(w[0]), c.location(w[1]));
                net_dist += ((a.x - b.x).powi(2) + (a.y - b.y).powi(2)).sqrt();
                pairs += 1;
            }
        }
        let net_avg = net_dist / pairs as f64;
        let die_diag = (c.die.width().powi(2) + c.die.height().powi(2)).sqrt();
        assert!(
            net_avg < die_diag * 0.25,
            "net avg distance {net_avg} vs diagonal {die_diag}"
        );
    }

    #[test]
    fn circuits_are_essentially_connected() {
        // The hierarchical construction links every sibling pair, so the
        // giant component must dominate (isolated cells can only arise
        // from pins that never joined any net).
        let (c, _) = generate(1500, 0.62, 14);
        let giant = vlsi_hypergraph::largest_component_size(&c.hypergraph);
        assert!(
            giant as f64 > 0.95 * c.hypergraph.num_vertices() as f64,
            "giant component {giant} of {}",
            c.hypergraph.num_vertices()
        );
    }

    #[test]
    fn no_duplicate_pins_within_nets() {
        let (c, _) = generate(600, 0.65, 11);
        let hg = &c.hypergraph;
        for n in hg.nets() {
            let pins = hg.net_pins(n);
            let mut sorted: Vec<_> = pins.to_vec();
            sorted.sort();
            sorted.dedup();
            assert_eq!(sorted.len(), pins.len(), "duplicate pin in {n}");
        }
    }

    #[test]
    fn perimeter_point_walks_all_edges() {
        let r = Rect::new(0.0, 0.0, 4.0, 2.0);
        assert_eq!(perimeter_point(&r, 0.0), Point::new(0.0, 0.0));
        assert_eq!(perimeter_point(&r, 4.0), Point::new(4.0, 0.0));
        assert_eq!(perimeter_point(&r, 6.0), Point::new(4.0, 2.0));
        assert_eq!(perimeter_point(&r, 10.0), Point::new(0.0, 2.0));
        assert_eq!(perimeter_point(&r, 11.0), Point::new(0.0, 1.0));
    }
}
