//! GSRC Bookshelf netlist/placement I/O (`.nodes` / `.nets` / `.pl`).
//!
//! Section IV of the paper: "Detailed descriptions of new file formats are
//! available in the Gigascale Silicon Research Center (GSRC) bookshelf for
//! VLSI CAD algorithms." This module implements the classic trio used by
//! the placement community:
//!
//! * `.nodes` — `name width height [terminal]` (terminals are pads);
//! * `.nets` — `NetDegree : d [name]` headers followed by one pin line per
//!   member;
//! * `.pl` — `name x y : orientation [/FIXED]` placements.
//!
//! Round-tripping a [`Circuit`] through these files preserves the
//! hypergraph, the cell/pad split, and the placement.

use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Read, Write};

use vlsi_hypergraph::io::ParseError;
use vlsi_hypergraph::{HypergraphBuilder, VertexId};

use crate::circuit::Circuit;
use crate::geometry::{Point, Rect};

/// Writes the `.nodes` file of a circuit.
///
/// Cell areas are emitted as `width = area`, `height = 1`; pads get
/// `0 0 terminal`.
///
/// # Errors
/// Propagates I/O errors.
pub fn write_nodes<W: Write>(mut w: W, circuit: &Circuit) -> std::io::Result<()> {
    let hg = &circuit.hypergraph;
    writeln!(w, "UCLA nodes 1.0")?;
    writeln!(w, "NumNodes : {}", hg.num_vertices())?;
    writeln!(w, "NumTerminals : {}", circuit.num_pads())?;
    for v in hg.vertices() {
        if circuit.is_pad(v) {
            writeln!(w, "  p{} 0 0 terminal", v.index() - circuit.pad_offset)?;
        } else {
            writeln!(w, "  a{} {} 1", v.index(), hg.vertex_weight(v))?;
        }
    }
    Ok(())
}

/// Writes the `.nets` file of a circuit.
///
/// # Errors
/// Propagates I/O errors.
pub fn write_nets<W: Write>(mut w: W, circuit: &Circuit) -> std::io::Result<()> {
    let hg = &circuit.hypergraph;
    writeln!(w, "UCLA nets 1.0")?;
    writeln!(w, "NumNets : {}", hg.num_nets())?;
    writeln!(w, "NumPins : {}", hg.num_pins())?;
    for n in hg.nets() {
        writeln!(w, "NetDegree : {} n{}", hg.net_size(n), n.index())?;
        for (i, &p) in hg.net_pins(n).iter().enumerate() {
            let name = node_name(circuit, p);
            let dir = if i == 0 { "O" } else { "I" };
            writeln!(w, "  {name} {dir}")?;
        }
    }
    Ok(())
}

/// Writes the `.pl` placement file of a circuit (pads marked `/FIXED`).
///
/// # Errors
/// Propagates I/O errors.
pub fn write_pl<W: Write>(mut w: W, circuit: &Circuit, positions: &[Point]) -> std::io::Result<()> {
    assert_eq!(positions.len(), circuit.hypergraph.num_vertices());
    writeln!(w, "UCLA pl 1.0")?;
    for v in circuit.hypergraph.vertices() {
        let name = node_name(circuit, v);
        let p = positions[v.index()];
        let suffix = if circuit.is_pad(v) { " /FIXED" } else { "" };
        writeln!(w, "{name} {} {} : N{suffix}", p.x, p.y)?;
    }
    Ok(())
}

fn node_name(circuit: &Circuit, v: VertexId) -> String {
    let mut s = String::new();
    if circuit.is_pad(v) {
        let _ = write!(s, "p{}", v.index() - circuit.pad_offset);
    } else {
        let _ = write!(s, "a{}", v.index());
    }
    s
}

/// Parsed node table: name → (index, is_terminal, area).
struct NodeTable {
    names: Vec<String>,
    areas: Vec<u64>,
    terminal: Vec<bool>,
}

fn parse_nodes<R: Read>(reader: R) -> Result<NodeTable, ParseError> {
    let buf = BufReader::new(reader);
    let mut table = NodeTable {
        names: Vec::new(),
        areas: Vec::new(),
        terminal: Vec::new(),
    };
    for (idx, line) in buf.lines().enumerate() {
        let line_no = idx + 1;
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') || t.starts_with("UCLA") {
            continue;
        }
        if t.starts_with("NumNodes") || t.starts_with("NumTerminals") {
            continue;
        }
        let mut toks = t.split_whitespace();
        let name = toks
            .next()
            .ok_or_else(|| ParseError::malformed(line_no, "missing node name"))?;
        let width: f64 = toks
            .next()
            .ok_or_else(|| ParseError::malformed(line_no, "missing width"))?
            .parse()
            .map_err(|_| ParseError::malformed(line_no, "bad width"))?;
        let height: f64 = toks
            .next()
            .ok_or_else(|| ParseError::malformed(line_no, "missing height"))?
            .parse()
            .map_err(|_| ParseError::malformed(line_no, "bad height"))?;
        let is_terminal = toks.next() == Some("terminal");
        table.names.push(name.to_string());
        table.areas.push((width * height.max(1.0)).round() as u64);
        table.terminal.push(is_terminal);
    }
    Ok(table)
}

/// Reads a Bookshelf circuit from its `.nodes`, `.nets` and `.pl` streams.
///
/// # Errors
/// Returns [`ParseError`] for malformed content, unknown node names in the
/// nets or placement, or count mismatches.
///
/// # Example
/// ```
/// use vlsi_netgen::bookshelf::{read_bookshelf, write_nets, write_nodes, write_pl};
/// use vlsi_netgen::synthetic::{Generator, GeneratorConfig};
///
/// let circuit = Generator::new(GeneratorConfig {
///     num_cells: 50,
///     ..GeneratorConfig::default()
/// })
/// .generate(3);
/// let (mut nodes, mut nets, mut pl) = (Vec::new(), Vec::new(), Vec::new());
/// write_nodes(&mut nodes, &circuit).unwrap();
/// write_nets(&mut nets, &circuit).unwrap();
/// write_pl(&mut pl, &circuit, &circuit.placement).unwrap();
/// let back = read_bookshelf(nodes.as_slice(), nets.as_slice(), Some(pl.as_slice())).unwrap();
/// assert_eq!(back.hypergraph.num_nets(), circuit.hypergraph.num_nets());
/// assert_eq!(back.num_pads(), circuit.num_pads());
/// ```
pub fn read_bookshelf<N: Read, E: Read, P: Read>(
    nodes: N,
    nets: E,
    pl: Option<P>,
) -> Result<Circuit, ParseError> {
    let table = parse_nodes(nodes)?;
    let n = table.names.len();

    // Cells first, pads after, mirroring the Circuit layout.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| (table.terminal[i], i));
    let mut new_index = vec![0usize; n];
    for (new, &old) in order.iter().enumerate() {
        new_index[old] = new;
    }
    let pad_offset = table.terminal.iter().filter(|&&t| !t).count();

    let mut builder = HypergraphBuilder::new();
    let mut name_to_new = std::collections::HashMap::with_capacity(n);
    for &old in &order {
        let v = builder.add_vertex(if table.terminal[old] {
            0
        } else {
            table.areas[old].max(1)
        });
        builder.set_vertex_name(v, table.names[old].clone());
        name_to_new.insert(table.names[old].clone(), v);
    }

    // Parse .nets.
    let buf = BufReader::new(nets);
    let mut declared_nets = None::<usize>;
    let mut current: Vec<VertexId> = Vec::new();
    let mut pending = 0usize;
    let mut nets_done = 0usize;
    for (idx, line) in buf.lines().enumerate() {
        let line_no = idx + 1;
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') || t.starts_with("UCLA") || t.starts_with("NumPins") {
            continue;
        }
        if let Some(rest) = t.strip_prefix("NumNets") {
            let v = rest.trim_start_matches([':', ' ']).trim();
            declared_nets = Some(
                v.parse()
                    .map_err(|_| ParseError::malformed(line_no, "bad NumNets"))?,
            );
            continue;
        }
        if let Some(rest) = t.strip_prefix("NetDegree") {
            if pending > 0 {
                return Err(ParseError::malformed(
                    line_no,
                    "previous net has missing pins",
                ));
            }
            if !current.is_empty() {
                builder.add_net_dedup(1, current.drain(..))?;
                nets_done += 1;
            }
            let v = rest.trim_start_matches([':', ' ']).trim();
            let degree_tok = v.split_whitespace().next().unwrap_or("");
            pending = degree_tok
                .parse()
                .map_err(|_| ParseError::malformed(line_no, "bad NetDegree"))?;
            continue;
        }
        // A pin line.
        if pending == 0 {
            return Err(ParseError::malformed(line_no, "pin outside a net"));
        }
        let name = t
            .split_whitespace()
            .next()
            .ok_or_else(|| ParseError::malformed(line_no, "missing pin name"))?;
        let v = *name_to_new
            .get(name)
            .ok_or_else(|| ParseError::malformed(line_no, format!("unknown node `{name}`")))?;
        current.push(v);
        pending -= 1;
    }
    if pending > 0 {
        return Err(ParseError::malformed(0, "last net has missing pins"));
    }
    if !current.is_empty() {
        builder.add_net_dedup(1, current.drain(..))?;
        nets_done += 1;
    }
    if let Some(d) = declared_nets {
        if d != nets_done {
            return Err(ParseError::malformed(
                0,
                format!("NumNets declared {d}, found {nets_done}"),
            ));
        }
    }
    let hypergraph = builder.build()?;

    // Parse .pl (optional).
    let mut placement = vec![Point::default(); hypergraph.num_vertices()];
    if let Some(pl) = pl {
        let buf = BufReader::new(pl);
        for (idx, line) in buf.lines().enumerate() {
            let line_no = idx + 1;
            let line = line?;
            let t = line.trim();
            if t.is_empty() || t.starts_with('#') || t.starts_with("UCLA") {
                continue;
            }
            let mut toks = t.split_whitespace();
            let name = toks
                .next()
                .ok_or_else(|| ParseError::malformed(line_no, "missing node name"))?;
            let x: f64 = toks
                .next()
                .ok_or_else(|| ParseError::malformed(line_no, "missing x"))?
                .parse()
                .map_err(|_| ParseError::malformed(line_no, "bad x"))?;
            let y: f64 = toks
                .next()
                .ok_or_else(|| ParseError::malformed(line_no, "missing y"))?
                .parse()
                .map_err(|_| ParseError::malformed(line_no, "bad y"))?;
            let v = *name_to_new
                .get(name)
                .ok_or_else(|| ParseError::malformed(line_no, format!("unknown node `{name}`")))?;
            placement[v.index()] = Point::new(x, y);
        }
    }

    // Die = bounding box of the placement (or a unit box when absent).
    let (mut x1, mut y1) = (1.0f64, 1.0f64);
    for p in &placement {
        x1 = x1.max(p.x);
        y1 = y1.max(p.y);
    }

    Ok(Circuit {
        name: "bookshelf".into(),
        hypergraph,
        placement,
        pad_offset,
        die: Rect::new(0.0, 0.0, x1, y1),
        target_rent_exponent: f64::NAN,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{Generator, GeneratorConfig};

    fn circuit() -> Circuit {
        Generator::new(GeneratorConfig {
            num_cells: 120,
            num_pads: 10,
            ..GeneratorConfig::default()
        })
        .generate(9)
    }

    fn roundtrip(c: &Circuit) -> Circuit {
        let (mut nodes, mut nets, mut pl) = (Vec::new(), Vec::new(), Vec::new());
        write_nodes(&mut nodes, c).unwrap();
        write_nets(&mut nets, c).unwrap();
        write_pl(&mut pl, c, &c.placement).unwrap();
        read_bookshelf(nodes.as_slice(), nets.as_slice(), Some(pl.as_slice())).unwrap()
    }

    #[test]
    fn full_roundtrip_preserves_structure() {
        let c = circuit();
        let back = roundtrip(&c);
        assert_eq!(back.hypergraph.num_vertices(), c.hypergraph.num_vertices());
        assert_eq!(back.hypergraph.num_nets(), c.hypergraph.num_nets());
        assert_eq!(back.hypergraph.num_pins(), c.hypergraph.num_pins());
        assert_eq!(back.num_pads(), c.num_pads());
        assert_eq!(back.pad_offset, c.pad_offset);
        // Areas, placement and pad flags survive.
        for v in c.hypergraph.vertices() {
            assert_eq!(
                back.hypergraph.vertex_weight(v),
                c.hypergraph.vertex_weight(v),
                "{v}"
            );
            let (a, b) = (back.placement[v.index()], c.placement[v.index()]);
            assert!((a.x - b.x).abs() < 1e-9 && (a.y - b.y).abs() < 1e-9);
        }
    }

    #[test]
    fn nets_preserved_exactly() {
        let c = circuit();
        let back = roundtrip(&c);
        for n in c.hypergraph.nets() {
            assert_eq!(back.hypergraph.net_pins(n), c.hypergraph.net_pins(n));
        }
    }

    #[test]
    fn missing_pl_yields_default_positions() {
        let c = circuit();
        let (mut nodes, mut nets) = (Vec::new(), Vec::new());
        write_nodes(&mut nodes, &c).unwrap();
        write_nets(&mut nets, &c).unwrap();
        let back = read_bookshelf(nodes.as_slice(), nets.as_slice(), None::<&[u8]>).unwrap();
        assert!(back.placement.iter().all(|p| p.x == 0.0 && p.y == 0.0));
    }

    #[test]
    fn unknown_pin_name_rejected() {
        let nodes = "UCLA nodes 1.0\n a0 2 1\n";
        let nets = "UCLA nets 1.0\nNumNets : 1\nNetDegree : 2 n0\n a0 O\n zz I\n";
        let err = read_bookshelf(nodes.as_bytes(), nets.as_bytes(), None::<&[u8]>).unwrap_err();
        assert!(err.to_string().contains("unknown node"));
    }

    #[test]
    fn net_count_mismatch_rejected() {
        let nodes = "UCLA nodes 1.0\n a0 2 1\n a1 2 1\n";
        let nets = "UCLA nets 1.0\nNumNets : 2\nNetDegree : 2\n a0 O\n a1 I\n";
        let err = read_bookshelf(nodes.as_bytes(), nets.as_bytes(), None::<&[u8]>).unwrap_err();
        assert!(err.to_string().contains("NumNets"));
    }

    #[test]
    fn truncated_net_rejected() {
        let nodes = "UCLA nodes 1.0\n a0 2 1\n a1 2 1\n";
        let nets = "UCLA nets 1.0\nNumNets : 1\nNetDegree : 3\n a0 O\n a1 I\n";
        assert!(read_bookshelf(nodes.as_bytes(), nets.as_bytes(), None::<&[u8]>).is_err());
    }

    #[test]
    fn terminals_have_zero_area_after_read() {
        let c = circuit();
        let back = roundtrip(&c);
        for pad in back.pads() {
            assert_eq!(back.hypergraph.vertex_weight(pad), 0);
        }
    }
}
