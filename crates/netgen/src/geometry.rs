//! Minimal planar geometry for placements and block extraction.

/// A point in the placement plane.
///
/// # Example
/// ```
/// use vlsi_netgen::Point;
/// let p = Point::new(1.0, 2.0);
/// assert_eq!(p.x, 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

impl Point {
    /// Creates a point.
    pub fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }
}

/// An axis-parallel rectangle `[x0, x1) × [y0, y1)`.
///
/// # Example
/// ```
/// use vlsi_netgen::{Point, Rect};
/// let r = Rect::new(0.0, 0.0, 10.0, 4.0);
/// assert!(r.contains(Point::new(5.0, 2.0)));
/// assert!(!r.contains(Point::new(10.0, 2.0)));
/// let (left, right) = r.split_vertical();
/// assert_eq!(left.x1, 5.0);
/// assert_eq!(right.x0, 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rect {
    /// Left edge.
    pub x0: f64,
    /// Bottom edge.
    pub y0: f64,
    /// Right edge (exclusive).
    pub x1: f64,
    /// Top edge (exclusive).
    pub y1: f64,
}

impl Rect {
    /// Creates a rectangle.
    ///
    /// # Panics
    /// Panics if the rectangle is inverted.
    pub fn new(x0: f64, y0: f64, x1: f64, y1: f64) -> Self {
        assert!(x0 <= x1 && y0 <= y1, "inverted rectangle");
        Rect { x0, y0, x1, y1 }
    }

    /// Width of the rectangle.
    pub fn width(&self) -> f64 {
        self.x1 - self.x0
    }

    /// Height of the rectangle.
    pub fn height(&self) -> f64 {
        self.y1 - self.y0
    }

    /// Center point.
    pub fn center(&self) -> Point {
        Point::new((self.x0 + self.x1) / 2.0, (self.y0 + self.y1) / 2.0)
    }

    /// Returns `true` if `p` lies inside (left/bottom inclusive).
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.x0 && p.x < self.x1 && p.y >= self.y0 && p.y < self.y1
    }

    /// Splits at the vertical mid-line into (left, right).
    pub fn split_vertical(&self) -> (Rect, Rect) {
        let mid = (self.x0 + self.x1) / 2.0;
        (
            Rect::new(self.x0, self.y0, mid, self.y1),
            Rect::new(mid, self.y0, self.x1, self.y1),
        )
    }

    /// Splits at the horizontal mid-line into (bottom, top).
    pub fn split_horizontal(&self) -> (Rect, Rect) {
        let mid = (self.y0 + self.y1) / 2.0;
        (
            Rect::new(self.x0, self.y0, self.x1, mid),
            Rect::new(self.x0, mid, self.x1, self.y1),
        )
    }

    /// Clamps a point into the rectangle (used to snap pad locations).
    pub fn clamp(&self, p: Point) -> Point {
        Point::new(p.x.clamp(self.x0, self.x1), p.y.clamp(self.y0, self.y1))
    }
}

/// Orientation of a cutline through a block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cutline {
    /// A vertical cutline: partitions are left (0) / right (1).
    Vertical,
    /// A horizontal cutline: partitions are bottom (0) / top (1).
    Horizontal,
}

impl Cutline {
    /// Side of the cutline bisecting `rect` on which `p` falls:
    /// 0 = left/bottom, 1 = right/top.
    pub fn side(&self, rect: &Rect, p: Point) -> u32 {
        match self {
            Cutline::Vertical => u32::from(p.x >= (rect.x0 + rect.x1) / 2.0),
            Cutline::Horizontal => u32::from(p.y >= (rect.y0 + rect.y1) / 2.0),
        }
    }

    /// Single-letter tag used in instance names (`V`/`H`).
    pub fn tag(&self) -> &'static str {
        match self {
            Cutline::Vertical => "V",
            Cutline::Horizontal => "H",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_cover_the_rect() {
        let r = Rect::new(0.0, 0.0, 8.0, 6.0);
        let (l, rr) = r.split_vertical();
        assert_eq!(l.width() + rr.width(), r.width());
        let (b, t) = r.split_horizontal();
        assert_eq!(b.height() + t.height(), r.height());
        assert_eq!(r.center(), Point::new(4.0, 3.0));
    }

    #[test]
    fn cutline_sides() {
        let r = Rect::new(0.0, 0.0, 10.0, 10.0);
        assert_eq!(Cutline::Vertical.side(&r, Point::new(2.0, 9.0)), 0);
        assert_eq!(Cutline::Vertical.side(&r, Point::new(7.0, 1.0)), 1);
        assert_eq!(Cutline::Horizontal.side(&r, Point::new(2.0, 9.0)), 1);
        assert_eq!(Cutline::Horizontal.side(&r, Point::new(2.0, 4.0)), 0);
        assert_eq!(Cutline::Vertical.tag(), "V");
        assert_eq!(Cutline::Horizontal.tag(), "H");
    }

    #[test]
    fn clamp_snaps_outside_points() {
        let r = Rect::new(0.0, 0.0, 4.0, 4.0);
        assert_eq!(r.clamp(Point::new(-1.0, 9.0)), Point::new(0.0, 4.0));
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn inverted_rect_rejected() {
        let _ = Rect::new(1.0, 0.0, 0.0, 1.0);
    }
}
