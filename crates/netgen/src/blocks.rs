//! Section IV's benchmark-construction methodology: derive fixed-terminal
//! partitioning instances from a placement.
//!
//! "A block is defined by a rectangular axis-parallel bounding box. An
//! axis-parallel cutline bisects a given block. Each cell contained in the
//! block induces a movable vertex of the hypergraph. Each pad adjacent to
//! some cell in the block induces a zero-area terminal vertex of the
//! hypergraph, fixed in the closest partition; adjacent cells not in the
//! block similarly induce terminal vertices."

use std::collections::HashMap;

use vlsi_hypergraph::stats::InstanceStats;
use vlsi_hypergraph::{FixedVertices, Hypergraph, HypergraphBuilder, PartId, VertexId};

use crate::circuit::Circuit;
use crate::geometry::{Cutline, Point, Rect};

/// A fixed-terminal partitioning instance extracted from a placed circuit.
#[derive(Debug, Clone)]
pub struct BlockInstance {
    /// Instance name, e.g. `"ibm01-like_B_V"`.
    pub name: String,
    /// The extracted hypergraph: movable cells first, then zero-area
    /// terminals.
    pub hypergraph: Hypergraph,
    /// Fixities: every terminal fixed in the cutline side closest to its
    /// placement location; cells free.
    pub fixed: FixedVertices,
    /// Map from instance vertex to the parent circuit vertex.
    pub to_parent: Vec<VertexId>,
    /// The block bounding box.
    pub block: Rect,
    /// The cutline used for terminal assignment.
    pub cutline: Cutline,
}

impl BlockInstance {
    /// The paper's Table IV row for this instance.
    pub fn stats(&self) -> InstanceStats {
        InstanceStats::compute(&self.hypergraph, &self.fixed)
    }
}

/// Extracts the partitioning instance induced by `block` under `cutline`.
///
/// `placement` overrides the circuit's native placement when given (so the
/// instances can also be derived from a top-down placer's output, as the
/// paper does from IBM's actual placements). Returns `None` when the block
/// contains no cells.
///
/// # Panics
/// Panics if `placement` is given with the wrong length.
///
/// # Example
/// ```
/// use vlsi_netgen::blocks::extract_block;
/// use vlsi_netgen::synthetic::{Generator, GeneratorConfig};
/// use vlsi_netgen::Cutline;
///
/// let circuit = Generator::new(GeneratorConfig {
///     num_cells: 256,
///     ..GeneratorConfig::default()
/// })
/// .generate(1);
/// // Left half of the die, vertical terminal assignment.
/// let (left, _) = circuit.die.split_vertical();
/// let inst = extract_block(&circuit, None, left, Cutline::Vertical, "demo").unwrap();
/// assert!(inst.fixed.num_fixed() > 0, "propagated terminals expected");
/// ```
pub fn extract_block(
    circuit: &Circuit,
    placement: Option<&[Point]>,
    block: Rect,
    cutline: Cutline,
    name: &str,
) -> Option<BlockInstance> {
    let hg = &circuit.hypergraph;
    let locs = placement.unwrap_or(&circuit.placement);
    assert_eq!(locs.len(), hg.num_vertices(), "placement length");

    // Movable vertices: cells inside the block.
    let mut inside = vec![false; hg.num_vertices()];
    let mut to_parent: Vec<VertexId> = Vec::new();
    let mut new_id = vec![None::<VertexId>; hg.num_vertices()];
    let mut builder = HypergraphBuilder::new();
    for v in circuit.cells() {
        if block.contains(locs[v.index()]) {
            inside[v.index()] = true;
            let nv = builder.add_vertex(hg.vertex_weight(v));
            new_id[v.index()] = Some(nv);
            to_parent.push(v);
        }
    }
    if to_parent.is_empty() {
        return None;
    }
    let num_cells = to_parent.len();

    // Terminals: one per external entity adjacent to an inside cell.
    let mut terminal_of: HashMap<u32, VertexId> = HashMap::new();
    let mut terminal_fix: Vec<PartId> = Vec::new();
    let mut nets: Vec<(u64, Vec<VertexId>)> = Vec::new();
    for n in hg.nets() {
        let pins = hg.net_pins(n);
        if !pins.iter().any(|&p| inside[p.index()]) {
            continue;
        }
        let mut new_pins: Vec<VertexId> = Vec::with_capacity(pins.len());
        for &p in pins {
            if inside[p.index()] {
                new_pins.push(new_id[p.index()].expect("inside cells are mapped"));
            } else {
                let next_index = num_cells + terminal_of.len();
                let t = *terminal_of.entry(p.0).or_insert_with(|| {
                    terminal_fix.push(PartId(cutline.side(&block, locs[p.index()])));
                    VertexId::from_index(next_index)
                });
                if !new_pins.contains(&t) {
                    new_pins.push(t);
                }
            }
        }
        if new_pins.len() >= 2 {
            nets.push((hg.net_weight(n), new_pins));
        }
    }

    // Materialise terminal vertices (zero area) and record parents.
    let mut terminals: Vec<(VertexId, u32)> = terminal_of.iter().map(|(&p, &t)| (t, p)).collect();
    terminals.sort();
    for &(_, parent) in &terminals {
        builder.add_vertex(0);
        to_parent.push(VertexId(parent));
    }
    for (w, pins) in nets {
        builder
            .add_net(w, pins)
            .expect("extracted nets reference valid vertices");
    }
    let hypergraph = builder.build().expect("valid extracted hypergraph");

    let mut fixed = FixedVertices::all_free(hypergraph.num_vertices());
    for (i, &side) in terminal_fix.iter().enumerate() {
        fixed.fix(VertexId::from_index(num_cells + i), side);
    }

    Some(BlockInstance {
        name: name.to_string(),
        hypergraph,
        fixed,
        to_parent,
        block,
        cutline,
    })
}

/// The four standard blocks the reproduction derives per circuit, mirroring
/// the paper's `IBMxxA–IBMxxD` (one block per hierarchy level):
///
/// * `A` — the whole die (level 0),
/// * `B` — the left half (`L1_V0`),
/// * `C` — the bottom-left quadrant (`L2_V0_H0`),
/// * `D` — the left half of that quadrant (`L3_V0_H0_V0`).
pub fn standard_blocks(die: Rect) -> Vec<(&'static str, Rect)> {
    let (b, _) = die.split_vertical();
    let (c, _) = b.split_horizontal();
    let (d, _) = c.split_vertical();
    vec![("A", die), ("B", b), ("C", c), ("D", d)]
}

/// Extracts all eight instances (4 blocks × 2 cutlines) of a circuit —
/// the full Table IV battery for one IBMxx.
pub fn standard_instances(circuit: &Circuit, placement: Option<&[Point]>) -> Vec<BlockInstance> {
    let mut out = Vec::with_capacity(8);
    for (tag, rect) in standard_blocks(circuit.die) {
        for cutline in [Cutline::Vertical, Cutline::Horizontal] {
            let name = format!("{}_{}_{}", circuit.name, tag, cutline.tag());
            if let Some(inst) = extract_block(circuit, placement, rect, cutline, &name) {
                out.push(inst);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{Generator, GeneratorConfig};
    use vlsi_hypergraph::Fixity;

    fn circuit(cells: usize, seed: u64) -> Circuit {
        Generator::new(GeneratorConfig {
            num_cells: cells,
            ..GeneratorConfig::default()
        })
        .generate(seed)
    }

    #[test]
    fn whole_die_block_has_only_pad_terminals() {
        let c = circuit(300, 1);
        let inst = extract_block(&c, None, c.die, Cutline::Vertical, "A_V").unwrap();
        let s = inst.stats();
        assert_eq!(s.num_cells, c.num_cells());
        // Every terminal's parent is a pad.
        for t in s.num_cells..s.num_vertices {
            let parent = inst.to_parent[t];
            assert!(c.is_pad(parent), "terminal parent {parent} is not a pad");
        }
    }

    #[test]
    fn half_die_block_gains_propagated_terminals() {
        let c = circuit(600, 2);
        let (left, _) = c.die.split_vertical();
        let inst = extract_block(&c, None, left, Cutline::Vertical, "B_V").unwrap();
        let s = inst.stats();
        assert!(s.num_cells < c.num_cells());
        // Some terminals must come from cells outside the block.
        let from_cells = (s.num_cells..s.num_vertices)
            .filter(|&t| !c.is_pad(inst.to_parent[t]))
            .count();
        assert!(from_cells > 0, "expected propagated cell terminals");
    }

    #[test]
    fn terminals_are_zero_area_and_fixed() {
        let c = circuit(400, 3);
        let (left, _) = c.die.split_vertical();
        let inst = extract_block(&c, None, left, Cutline::Horizontal, "B_H").unwrap();
        for (i, fixity) in inst.fixed.as_slice().iter().enumerate() {
            let v = VertexId::from_index(i);
            match fixity {
                Fixity::Free => assert!(inst.hypergraph.vertex_weight(v) > 0),
                Fixity::Fixed(p) => {
                    assert_eq!(inst.hypergraph.vertex_weight(v), 0);
                    // Side must match the parent's location.
                    let parent = inst.to_parent[i];
                    let side = Cutline::Horizontal.side(&inst.block, c.location(parent));
                    assert_eq!(p.0, side);
                }
                other => panic!("unexpected fixity {other}"),
            }
        }
    }

    #[test]
    fn more_terminal_vertices_than_external_nets() {
        // The paper: "Our construction creates more pad vertices in the
        // hypergraph than there are external nets."
        let c = circuit(800, 4);
        let (left, _) = c.die.split_vertical();
        let inst = extract_block(&c, None, left, Cutline::Vertical, "B_V").unwrap();
        let s = inst.stats();
        assert!(
            s.num_pads >= s.num_external_nets / 2,
            "pads {} vs external nets {}",
            s.num_pads,
            s.num_external_nets
        );
    }

    #[test]
    fn standard_instances_covers_eight() {
        let c = circuit(500, 5);
        let instances = standard_instances(&c, None);
        assert_eq!(instances.len(), 8);
        let names: Vec<&str> = instances.iter().map(|i| i.name.as_str()).collect();
        assert!(names.iter().any(|n| n.ends_with("_A_V")));
        assert!(names.iter().any(|n| n.ends_with("_D_H")));
        // Deeper blocks have fewer cells.
        let cells_a = instances[0].stats().num_cells;
        let cells_d = instances[6].stats().num_cells;
        assert!(cells_d < cells_a);
    }

    #[test]
    fn deeper_blocks_have_higher_fixed_fraction() {
        // Exactly the paper's Table I phenomenon, realised geometrically.
        let c = circuit(2000, 6);
        let instances = standard_instances(&c, None);
        let frac = |tag: &str| {
            let inst = instances
                .iter()
                .find(|i| i.name.contains(tag))
                .expect("instance exists");
            let s = inst.stats();
            s.num_pads as f64 / s.num_vertices as f64
        };
        assert!(
            frac("_D_V") > frac("_A_V"),
            "fixed fraction should grow as blocks shrink"
        );
    }

    #[test]
    fn empty_block_returns_none() {
        let c = circuit(100, 7);
        let empty = Rect::new(-10.0, -10.0, -5.0, -5.0);
        assert!(extract_block(&c, None, empty, Cutline::Vertical, "x").is_none());
    }
}
