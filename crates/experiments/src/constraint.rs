//! Quantifying the "degree of constraint" of a fixed-terminals instance.
//!
//! The paper's conclusions: "it is not yet clear how to measure the
//! strength of fixed terminals [...] a bipartitioning instance with an
//! arbitrary number/percent of fixed terminals can be represented by an
//! equivalent instance with only two terminals [...] we therefore need to
//! quantify the degree of constraint in an invariant way."
//!
//! This module provides candidate metrics. The naive fixed-vertex
//! *fraction* is **not** invariant under the terminal-clustering
//! equivalence; the adjacency- and pull-based metrics are, because they
//! only look at how terminals touch the free vertices through nets.

use vlsi_hypergraph::{FixedVertices, Fixity, Hypergraph};

/// Candidate constraint-strength metrics for a bipartitioning instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConstraintMetrics {
    /// Fraction of vertices that are fixed (the paper's x-axis; *not*
    /// invariant under terminal clustering).
    pub fixed_fraction: f64,
    /// Fraction of *free* vertices incident to at least one net that
    /// touches a fixed vertex (invariant).
    pub terminal_adjacency: f64,
    /// Mean absolute terminal pull over the free vertices: for each free
    /// vertex, |w(nets shared with side-0 terminals) − w(nets shared with
    /// side-1 terminals)| / (total incident net weight); 0 = unbiased,
    /// 1 = every incident net is anchored to one side (invariant).
    pub mean_pull: f64,
    /// Fraction of total net weight on nets touching ≥ 1 fixed vertex
    /// (the share of the objective that terminals participate in;
    /// invariant).
    pub anchored_weight_fraction: f64,
}

/// Computes the constraint metrics of `(hg, fixed)` for a bipartitioning.
///
/// `FixedAny` vertices count as fixed for adjacency/weight purposes but
/// exert no directional pull (their side is not decided).
///
/// # Example
/// ```
/// use vlsi_hypergraph::{FixedVertices, HypergraphBuilder, PartId};
/// use vlsi_experiments::constraint::constraint_metrics;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = HypergraphBuilder::new();
/// let free = b.add_vertex(1);
/// let term = b.add_vertex(0);
/// b.add_net(1, [free, term])?;
/// let hg = b.build()?;
/// let mut fx = FixedVertices::all_free(2);
/// fx.fix(term, PartId(0));
/// let m = constraint_metrics(&hg, &fx);
/// assert_eq!(m.terminal_adjacency, 1.0);
/// assert_eq!(m.mean_pull, 1.0);
/// # Ok(())
/// # }
/// ```
pub fn constraint_metrics(hg: &Hypergraph, fixed: &FixedVertices) -> ConstraintMetrics {
    let n = hg.num_vertices();
    if n == 0 {
        return ConstraintMetrics {
            fixed_fraction: 0.0,
            terminal_adjacency: 0.0,
            mean_pull: 0.0,
            anchored_weight_fraction: 0.0,
        };
    }
    let is_fixed = |v: vlsi_hypergraph::VertexId| fixed.fixity(v).is_fixed();
    let side_of = |v: vlsi_hypergraph::VertexId| match fixed.fixity(v) {
        Fixity::Fixed(p) => Some(p),
        _ => None,
    };

    // Per-net: does it touch a terminal, and of which sides?
    let mut net_touches = vec![false; hg.num_nets()];
    let mut net_side: Vec<[bool; 2]> = vec![[false; 2]; hg.num_nets()];
    let mut anchored_weight = 0u64;
    let mut total_weight = 0u64;
    for net in hg.nets() {
        total_weight += hg.net_weight(net);
        for &p in hg.net_pins(net) {
            if is_fixed(p) {
                net_touches[net.index()] = true;
            }
            if let Some(side) = side_of(p) {
                if side.index() < 2 {
                    net_side[net.index()][side.index()] = true;
                }
            }
        }
        if net_touches[net.index()] {
            anchored_weight += hg.net_weight(net);
        }
    }

    let mut num_free = 0usize;
    let mut adjacent = 0usize;
    let mut pull_sum = 0.0;
    for v in hg.vertices() {
        if is_fixed(v) {
            continue;
        }
        num_free += 1;
        let mut incident = 0u64;
        let mut pull0 = 0u64;
        let mut pull1 = 0u64;
        let mut touches = false;
        for &net in hg.vertex_nets(v) {
            let w = hg.net_weight(net);
            incident += w;
            if net_touches[net.index()] {
                touches = true;
            }
            // A net anchored to both sides pulls in neither direction.
            match (net_side[net.index()][0], net_side[net.index()][1]) {
                (true, false) => pull0 += w,
                (false, true) => pull1 += w,
                _ => {}
            }
        }
        if touches {
            adjacent += 1;
        }
        if incident > 0 {
            pull_sum += pull0.abs_diff(pull1) as f64 / incident as f64;
        }
    }

    ConstraintMetrics {
        fixed_fraction: fixed.num_fixed() as f64 / n as f64,
        terminal_adjacency: if num_free > 0 {
            adjacent as f64 / num_free as f64
        } else {
            1.0
        },
        mean_pull: if num_free > 0 {
            pull_sum / num_free as f64
        } else {
            1.0
        },
        anchored_weight_fraction: if total_weight > 0 {
            anchored_weight as f64 / total_weight as f64
        } else {
            0.0
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vlsi_hypergraph::{HypergraphBuilder, PartId, VertexId};
    use vlsi_partition::terminal_cluster::cluster_terminals;
    use vlsi_rng::ChaCha8Rng;
    use vlsi_rng::SeedableRng;

    use crate::regimes::{FixSchedule, Regime};

    fn fixture() -> (Hypergraph, FixedVertices) {
        // 6 free vertices in a chain plus 4 terminals (2 per side) attached
        // to the chain ends.
        let mut b = HypergraphBuilder::new();
        let v: Vec<_> = (0..6).map(|_| b.add_vertex(1)).collect();
        let t: Vec<_> = (0..4).map(|_| b.add_vertex(0)).collect();
        for w in v.windows(2) {
            b.add_net(1, [w[0], w[1]]).unwrap();
        }
        b.add_net(1, [t[0], v[0]]).unwrap();
        b.add_net(1, [t[1], v[0]]).unwrap();
        b.add_net(1, [t[2], v[5]]).unwrap();
        b.add_net(1, [t[3], v[5]]).unwrap();
        let hg = b.build().unwrap();
        let mut fx = FixedVertices::all_free(10);
        fx.fix(VertexId(6), PartId(0));
        fx.fix(VertexId(7), PartId(0));
        fx.fix(VertexId(8), PartId(1));
        fx.fix(VertexId(9), PartId(1));
        (hg, fx)
    }

    #[test]
    fn metrics_on_fixture() {
        let (hg, fx) = fixture();
        let m = constraint_metrics(&hg, &fx);
        assert!((m.fixed_fraction - 0.4).abs() < 1e-12);
        // Only the two chain ends touch terminals.
        assert!((m.terminal_adjacency - 2.0 / 6.0).abs() < 1e-12);
        // v0: pull = 2 (both nets to side-0 terminals) / 3 incident.
        assert!(m.mean_pull > 0.2 && m.mean_pull < 0.3);
        assert!((m.anchored_weight_fraction - 4.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn adjacency_and_pull_invariant_under_terminal_clustering() {
        let (hg, fx) = fixture();
        let before = constraint_metrics(&hg, &fx);
        let clustered = cluster_terminals(&hg, &fx).unwrap();
        let after = constraint_metrics(&clustered.hypergraph, &clustered.fixed);
        // The paper's point: the naive fraction changes wildly...
        assert!(after.fixed_fraction < before.fixed_fraction);
        // ...while the structural metrics are invariant.
        assert!((after.terminal_adjacency - before.terminal_adjacency).abs() < 1e-9);
        assert!((after.mean_pull - before.mean_pull).abs() < 1e-9);
        assert!((after.anchored_weight_fraction - before.anchored_weight_fraction).abs() < 1e-9);
    }

    #[test]
    fn pull_vanishes_when_terminals_balance() {
        // One free vertex tied equally to both sides: zero net pull.
        let mut b = HypergraphBuilder::new();
        let free = b.add_vertex(1);
        let t0 = b.add_vertex(0);
        let t1 = b.add_vertex(0);
        b.add_net(1, [free, t0]).unwrap();
        b.add_net(1, [free, t1]).unwrap();
        let hg = b.build().unwrap();
        let mut fx = FixedVertices::all_free(3);
        fx.fix(t0, PartId(0));
        fx.fix(t1, PartId(1));
        let m = constraint_metrics(&hg, &fx);
        assert_eq!(m.mean_pull, 0.0);
        assert_eq!(m.terminal_adjacency, 1.0);
    }

    #[test]
    fn metrics_grow_with_fixed_percentage() {
        let mut b = HypergraphBuilder::new();
        let v: Vec<_> = (0..100).map(|_| b.add_vertex(1)).collect();
        for w in v.windows(2) {
            b.add_net(1, [w[0], w[1]]).unwrap();
        }
        let hg = b.build().unwrap();
        let good: Vec<PartId> = (0..100).map(|i| PartId((i >= 50) as u32)).collect();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let sched = FixSchedule::new(&hg, Regime::Good, &good, &mut rng);
        let m10 = constraint_metrics(&hg, &sched.at_percent(10.0));
        let m50 = constraint_metrics(&hg, &sched.at_percent(50.0));
        assert!(m50.terminal_adjacency > m10.terminal_adjacency);
        assert!(m50.mean_pull > m10.mean_pull);
        assert!(m50.anchored_weight_fraction > m10.anchored_weight_fraction);
    }

    #[test]
    fn empty_instance() {
        let hg = HypergraphBuilder::new().build().unwrap();
        let m = constraint_metrics(&hg, &FixedVertices::all_free(0));
        assert_eq!(m.fixed_fraction, 0.0);
    }
}
