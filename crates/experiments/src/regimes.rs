//! The paper's experimental fixing protocol.
//!
//! "In our experiments we choose to fix a subset of random vertices from
//! the netlist. We either 1) fix the chosen vertices independently into
//! random partitions (*rand*) or 2) fix the chosen vertices according to
//! where they are assigned in the best min-cut solution we could find for
//! the instance when no vertices were fixed (*good*). [...] We
//! incrementally fix additional vertices, e.g., all vertices fixed at 1.0%
//! are also fixed at 2.0%."

use vlsi_rng::seq::SliceRandom;
use vlsi_rng::Rng;

use vlsi_hypergraph::{FixedVertices, Hypergraph, PartId, VertexId};

/// The two fixing regimes of Figures 1 and 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Regime {
    /// Fix vertices where the best known free solution places them.
    Good,
    /// Fix vertices into independent uniformly random partitions.
    Random,
}

impl Regime {
    /// Short label used in reports (`good` / `rand`).
    pub fn label(&self) -> &'static str {
        match self {
            Regime::Good => "good",
            Regime::Random => "rand",
        }
    }
}

/// The percentages swept in the paper's Figures 1 and 2.
pub const PAPER_PERCENTAGES: [f64; 12] = [
    0.0, 0.1, 0.5, 1.0, 2.0, 5.0, 10.0, 15.0, 20.0, 30.0, 40.0, 50.0,
];

/// An incremental fixing schedule: one random vertex order and one
/// per-vertex partition assignment, from which the fixity table for any
/// percentage can be materialised. Because the order is shared, the fixed
/// sets are nested exactly as in the paper.
///
/// # Example
/// ```
/// use vlsi_rng::SeedableRng;
/// use vlsi_hypergraph::{HypergraphBuilder, PartId};
/// use vlsi_experiments::regimes::{FixSchedule, Regime};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = HypergraphBuilder::new();
/// for _ in 0..100 {
///     b.add_vertex(1);
/// }
/// let hg = b.build()?;
/// let good = vec![PartId(0); 100];
/// let mut rng = vlsi_rng::ChaCha8Rng::seed_from_u64(1);
/// let sched = FixSchedule::new(&hg, Regime::Good, &good, &mut rng);
/// let at10 = sched.at_percent(10.0);
/// assert_eq!(at10.num_fixed(), 10);
/// // Nesting: everything fixed at 5% is also fixed at 10%.
/// let at5 = sched.at_percent(5.0);
/// for (v, _) in at5.iter_fixed() {
///     assert!(at10.fixity(v).is_fixed());
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct FixSchedule {
    order: Vec<VertexId>,
    assignment: Vec<PartId>,
    num_vertices: usize,
}

impl FixSchedule {
    /// Draws a schedule for `hg` under `regime`. `good_solution` supplies
    /// the target partitions for [`Regime::Good`] (it is also consulted for
    /// the partition count under [`Regime::Random`]).
    ///
    /// # Panics
    /// Panics if `good_solution.len() != hg.num_vertices()`.
    pub fn new<R: Rng + ?Sized>(
        hg: &Hypergraph,
        regime: Regime,
        good_solution: &[PartId],
        rng: &mut R,
    ) -> Self {
        let all: Vec<VertexId> = hg.vertices().collect();
        Self::new_restricted(hg, regime, good_solution, &all, rng)
    }

    /// Like [`FixSchedule::new`] but drawing the fixing order only from
    /// `candidates` — e.g. the identified I/O pads, as in the paper's
    /// control experiment ("we could find no difference in any experiment
    /// between fixing identified I/Os and fixing random vertices").
    /// Percentages remain relative to the whole vertex set, so the largest
    /// reachable percentage is `candidates.len() / num_vertices` (the paper
    /// likewise stops at the pad count).
    ///
    /// # Panics
    /// Panics if `good_solution.len() != hg.num_vertices()`.
    pub fn new_restricted<R: Rng + ?Sized>(
        hg: &Hypergraph,
        regime: Regime,
        good_solution: &[PartId],
        candidates: &[VertexId],
        rng: &mut R,
    ) -> Self {
        assert_eq!(good_solution.len(), hg.num_vertices(), "solution length");
        let num_parts = good_solution
            .iter()
            .map(|p| p.index() + 1)
            .max()
            .unwrap_or(2)
            .max(2);
        let mut order: Vec<VertexId> = candidates.to_vec();
        order.shuffle(rng);
        let assignment = match regime {
            Regime::Good => good_solution.to_vec(),
            Regime::Random => (0..hg.num_vertices())
                .map(|_| PartId(rng.gen_range(0..num_parts as u32)))
                .collect(),
        };
        FixSchedule {
            order,
            assignment,
            num_vertices: hg.num_vertices(),
        }
    }

    /// Number of vertices fixed at `percent` (rounded to nearest; capped
    /// at the candidate pool size).
    pub fn count_at_percent(&self, percent: f64) -> usize {
        ((self.num_vertices as f64 * percent / 100.0).round() as usize).min(self.order.len())
    }

    /// Materialises the fixity table with the first `percent`% of the
    /// schedule fixed.
    pub fn at_percent(&self, percent: f64) -> FixedVertices {
        let k = self.count_at_percent(percent);
        let mut fixed = FixedVertices::all_free(self.num_vertices);
        for &v in &self.order[..k] {
            fixed.fix(v, self.assignment[v.index()]);
        }
        fixed
    }

    /// The underlying per-vertex target assignment.
    pub fn assignment(&self) -> &[PartId] {
        &self.assignment
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vlsi_hypergraph::HypergraphBuilder;
    use vlsi_rng::ChaCha8Rng;
    use vlsi_rng::SeedableRng;

    fn hg(n: usize) -> Hypergraph {
        let mut b = HypergraphBuilder::new();
        for _ in 0..n {
            b.add_vertex(1);
        }
        b.build().unwrap()
    }

    #[test]
    fn good_regime_uses_solution_parts() {
        let g = hg(50);
        let good: Vec<PartId> = (0..50).map(|i| PartId(i % 2)).collect();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let s = FixSchedule::new(&g, Regime::Good, &good, &mut rng);
        let fx = s.at_percent(100.0);
        for v in g.vertices() {
            assert!(fx.fixity(v).allows(good[v.index()]));
        }
    }

    #[test]
    fn random_regime_differs_from_good() {
        let g = hg(200);
        let good: Vec<PartId> = vec![PartId(0); 200];
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let s = FixSchedule::new(&g, Regime::Random, &good, &mut rng);
        let fx = s.at_percent(100.0);
        let ones = g
            .vertices()
            .filter(|&v| fx.fixity(v) == vlsi_hypergraph::Fixity::Fixed(PartId(1)))
            .count();
        assert!(ones > 50, "random fixing should hit both partitions");
    }

    #[test]
    fn nesting_holds_across_all_paper_percentages() {
        let g = hg(1000);
        let good: Vec<PartId> = (0..1000).map(|i| PartId(i % 2)).collect();
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let s = FixSchedule::new(&g, Regime::Random, &good, &mut rng);
        let mut prev_count = 0;
        for &pct in &PAPER_PERCENTAGES {
            let fx = s.at_percent(pct);
            assert!(fx.num_fixed() >= prev_count);
            prev_count = fx.num_fixed();
        }
        assert_eq!(s.at_percent(50.0).num_fixed(), 500);
    }

    #[test]
    fn restricted_schedule_fixes_only_candidates() {
        let g = hg(100);
        let good: Vec<PartId> = (0..100).map(|i| PartId(i % 2)).collect();
        let pads: Vec<VertexId> = (90..100).map(VertexId).collect();
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let s = FixSchedule::new_restricted(&g, Regime::Good, &good, &pads, &mut rng);
        // 5% of 100 vertices = 5 fixed, all drawn from the pads.
        let fx = s.at_percent(5.0);
        assert_eq!(fx.num_fixed(), 5);
        for (v, _) in fx.iter_fixed() {
            assert!(pads.contains(&v), "{v} is not a pad");
        }
        // Percentages beyond the pool size cap at the pool, as the paper
        // does ("the percentage is limited by the total number of pads").
        assert_eq!(s.at_percent(50.0).num_fixed(), 10);
    }

    #[test]
    fn zero_percent_is_free() {
        let g = hg(10);
        let good = vec![PartId(0); 10];
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let s = FixSchedule::new(&g, Regime::Good, &good, &mut rng);
        assert_eq!(s.at_percent(0.0).num_fixed(), 0);
    }

    #[test]
    fn labels() {
        assert_eq!(Regime::Good.label(), "good");
        assert_eq!(Regime::Random.label(), "rand");
    }
}
