//! Closing the loop on Table I: does a *real* top-down placement run
//! produce bisection instances whose fixed fractions match Rent's-rule
//! expectations?
//!
//! The paper derives Table I analytically ("this corresponds to a
//! partitioning instance of `C + T` vertices, of which `T` are fixed") and
//! argues that placement-generated instances live deep in the
//! fixed-terminals regime. Here we instrument the placer, bucket its
//! bisection instances by movable-vertex count, and report measured fixed
//! fractions next to the [`vlsi_netgen::rent::RentModel`] prediction.

use vlsi_rng::ChaCha8Rng;
use vlsi_rng::SeedableRng;

use vlsi_netgen::rent::RentModel;
use vlsi_netgen::Circuit;
use vlsi_partition::PartitionError;
use vlsi_placer::{PlacerConfig, TopDownPlacer};

use crate::report::{fmt_f64, Table};

/// One size bucket of placement-generated bisection instances.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HierarchyRow {
    /// Lower bound (inclusive) of the movable-count bucket.
    pub bucket_lo: usize,
    /// Upper bound (exclusive).
    pub bucket_hi: usize,
    /// Number of bisection instances in the bucket.
    pub instances: usize,
    /// Mean measured fixed fraction of the instances.
    pub measured_fixed_fraction: f64,
    /// Rent's-rule prediction at the bucket's geometric-mean size.
    pub predicted_fixed_fraction: f64,
}

/// Instrumented placer run: returns `(movables, terminals)` per bisection.
///
/// # Errors
/// Propagates placement failures.
pub fn collect_bisection_profile(
    circuit: &Circuit,
    config: &PlacerConfig,
    seed: u64,
) -> Result<Vec<(usize, usize)>, PartitionError> {
    let placer = TopDownPlacer::new(config.clone());
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let placement = placer.place_circuit(circuit, &mut rng)?;
    // The `Placement` aggregates totals; per-instance data comes from the
    // per-bisection callback below.
    let _ = placement;
    let placer = TopDownPlacer::new(config.clone());
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    placer.place_circuit_profiled(circuit, &mut rng)
}

/// Buckets a bisection profile by movable count (powers of two) and
/// compares against the Rent model.
pub fn bucket_profile(profile: &[(usize, usize)], model: &RentModel) -> Vec<HierarchyRow> {
    let mut rows = Vec::new();
    let mut lo = 8usize;
    while lo <= profile.iter().map(|&(m, _)| m).max().unwrap_or(0) {
        let hi = lo * 2;
        let in_bucket: Vec<&(usize, usize)> = profile
            .iter()
            .filter(|&&(m, _)| m >= lo && m < hi)
            .collect();
        if !in_bucket.is_empty() {
            let measured = in_bucket
                .iter()
                .map(|&&(m, t)| t as f64 / (m + t) as f64)
                .sum::<f64>()
                / in_bucket.len() as f64;
            let mid = (lo as f64 * hi as f64).sqrt();
            rows.push(HierarchyRow {
                bucket_lo: lo,
                bucket_hi: hi,
                instances: in_bucket.len(),
                measured_fixed_fraction: measured,
                predicted_fixed_fraction: model.fixed_fraction(mid),
            });
        }
        lo = hi;
    }
    rows
}

/// Renders the hierarchy comparison.
pub fn render(circuit: &str, rows: &[HierarchyRow]) -> Table {
    let mut t = Table::new(vec![
        "circuit".into(),
        "block size".into(),
        "instances".into(),
        "measured fixed%".into(),
        "Rent predicted%".into(),
    ]);
    for r in rows {
        t.row(vec![
            circuit.into(),
            format!("{}..{}", r.bucket_lo, r.bucket_hi),
            r.instances.to_string(),
            fmt_f64(100.0 * r.measured_fixed_fraction, 1),
            fmt_f64(100.0 * r.predicted_fixed_fraction, 1),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use vlsi_netgen::instances::ibm01_like_scaled;
    use vlsi_partition::MultilevelConfig;

    #[test]
    fn placement_instances_track_rent_expectations() {
        let circuit = ibm01_like_scaled(0.05, 13);
        let config = PlacerConfig {
            ml_config: MultilevelConfig {
                coarsest_size: 30,
                coarse_starts: 2,
                ..MultilevelConfig::default()
            },
            ..PlacerConfig::default()
        };
        let profile = collect_bisection_profile(&circuit, &config, 5).unwrap();
        assert!(!profile.is_empty());
        let model = RentModel::new(3.9, circuit.target_rent_exponent);
        let rows = bucket_profile(&profile, &model);
        assert!(!rows.is_empty());
        // Smaller blocks have larger fixed fractions (the Table I shape).
        let first = rows.first().unwrap();
        let last = rows.last().unwrap();
        assert!(
            first.measured_fixed_fraction > last.measured_fixed_fraction,
            "fixed fraction should fall with block size: {} vs {}",
            first.measured_fixed_fraction,
            last.measured_fixed_fraction
        );
        // And the measured fractions are in the same regime as predicted:
        // within a factor of ~3 on the mid buckets. The largest bucket is
        // excluded: it holds the die-level bisections, whose only terminals
        // are the I/O pads — Rent's rule models terminals of *interior*
        // blocks and structurally overpredicts at the root.
        for r in rows.iter().take(rows.len() - 1) {
            if r.instances >= 4 && r.predicted_fixed_fraction > 0.05 {
                let ratio = r.measured_fixed_fraction / r.predicted_fixed_fraction;
                assert!(
                    (0.2..5.0).contains(&ratio),
                    "bucket {}..{}: measured {} vs predicted {}",
                    r.bucket_lo,
                    r.bucket_hi,
                    r.measured_fixed_fraction,
                    r.predicted_fixed_fraction
                );
            }
        }
    }

    #[test]
    fn bucketing_math() {
        let profile = vec![(10, 10), (12, 4), (100, 10)];
        let model = RentModel::new(3.5, 0.6);
        let rows = bucket_profile(&profile, &model);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].instances, 2);
        assert!((rows[0].measured_fixed_fraction - (0.5 + 0.25) / 2.0).abs() < 1e-12);
    }
}
