//! Table IV: parameters of the new fixed-terminal benchmarks derived from
//! placements (cells, pads, nets, external nets, `Max%`).

use vlsi_netgen::blocks::{standard_instances, BlockInstance};
use vlsi_netgen::Circuit;
use vlsi_netgen::Point;

use crate::report::{fmt_f64, Table};

/// Derives the eight standard instances (blocks A–D × cutlines V/H) for a
/// circuit using the given placement (or the circuit's native one).
pub fn derive(circuit: &Circuit, placement: Option<&[Point]>) -> Vec<BlockInstance> {
    standard_instances(circuit, placement)
}

/// Renders the Table IV rows for a batch of instances.
///
/// # Example
/// ```
/// use vlsi_netgen::synthetic::{Generator, GeneratorConfig};
/// use vlsi_experiments::table4;
///
/// let c = Generator::new(GeneratorConfig {
///     num_cells: 300,
///     ..GeneratorConfig::default()
/// })
/// .generate(1);
/// let instances = table4::derive(&c, None);
/// let t = table4::render(&instances);
/// assert_eq!(t.len(), instances.len());
/// ```
pub fn render(instances: &[BlockInstance]) -> Table {
    let mut t = Table::new(vec![
        "instance".into(),
        "cells".into(),
        "pads".into(),
        "nets".into(),
        "ext nets".into(),
        "pins".into(),
        "Max%".into(),
        "fixed%".into(),
    ]);
    for inst in instances {
        let s = inst.stats();
        t.row(vec![
            inst.name.clone(),
            s.num_cells.to_string(),
            s.num_pads.to_string(),
            s.num_nets.to_string(),
            s.num_external_nets.to_string(),
            s.num_pins.to_string(),
            fmt_f64(s.max_weight_percent, 2),
            fmt_f64(100.0 * s.num_pads as f64 / s.num_vertices as f64, 1),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use vlsi_netgen::synthetic::{Generator, GeneratorConfig};

    #[test]
    fn eight_rows_per_circuit() {
        let c = Generator::new(GeneratorConfig {
            num_cells: 400,
            ..GeneratorConfig::default()
        })
        .generate(3);
        let instances = derive(&c, None);
        let t = render(&instances);
        assert_eq!(t.len(), 8);
        let text = t.to_text();
        assert!(text.contains("_A_V"));
        assert!(text.contains("_D_H"));
    }

    #[test]
    fn external_nets_reported() {
        let c = Generator::new(GeneratorConfig {
            num_cells: 500,
            ..GeneratorConfig::default()
        })
        .generate(4);
        let instances = derive(&c, None);
        // Sub-die blocks must have external nets.
        let b = instances.iter().find(|i| i.name.contains("_B_")).unwrap();
        assert!(b.stats().num_external_nets > 0);
    }
}
