//! Table III: effects of hard pass cutoffs (after the first pass) on
//! average cut and CPU time of single LIFO-FM starts.

use std::time::{Duration, Instant};

use vlsi_rng::ChaCha8Rng;
use vlsi_rng::SeedableRng;

use vlsi_hypergraph::Hypergraph;
use vlsi_partition::trace::{NullSink, Sink};
use vlsi_partition::{
    BipartFm, FmConfig, MultilevelConfig, PartitionError, PassCutoff, SelectionPolicy,
};

use crate::harness::{find_good_solution, paper_balance};
use crate::regimes::{FixSchedule, Regime};
use crate::report::{fmt_f64, Table};

/// The cutoffs of the paper's Table III (unlimited plus 50/25/10/5 %).
pub const PAPER_CUTOFFS: [PassCutoff; 5] = [
    PassCutoff::Unlimited,
    PassCutoff::Fraction(0.50),
    PassCutoff::Fraction(0.25),
    PassCutoff::Fraction(0.10),
    PassCutoff::Fraction(0.05),
];

/// One Table III cell: average cut and time at one (percentage, cutoff).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table3Cell {
    /// Percentage of fixed vertices.
    pub percent: f64,
    /// The pass cutoff in force.
    pub cutoff: PassCutoff,
    /// Average cut over the runs.
    pub avg_cut: f64,
    /// Average CPU (wall-clock) time per run.
    pub avg_time: Duration,
}

/// Runs the Table III experiment for one circuit: `runs` single LIFO-FM
/// starts per (percentage, cutoff) cell, good-regime fixing.
///
/// # Errors
/// Propagates partitioning failures.
pub fn run_table3(
    hg: &Hypergraph,
    percentages: &[f64],
    cutoffs: &[PassCutoff],
    runs: usize,
    seed: u64,
) -> Result<Vec<Table3Cell>, PartitionError> {
    run_table3_with_sink(hg, percentages, cutoffs, runs, seed, &NullSink)
}

/// [`run_table3`], streaming the trace of every measured FM run into
/// `sink`. Note the timing column measures the *traced* runs, so a heavy
/// sink (e.g. JSONL to disk) inflates the reported times; counters and the
/// null sink do not measurably.
///
/// # Errors
/// Propagates partitioning failures.
pub fn run_table3_with_sink<S: Sink>(
    hg: &Hypergraph,
    percentages: &[f64],
    cutoffs: &[PassCutoff],
    runs: usize,
    seed: u64,
    sink: &S,
) -> Result<Vec<Table3Cell>, PartitionError> {
    let balance = paper_balance(hg);
    let good = find_good_solution(hg, &balance, &MultilevelConfig::default(), 4, seed)?;
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x7AB1E3);
    let schedule = FixSchedule::new(hg, Regime::Good, &good.parts, &mut rng);

    let mut cells = Vec::with_capacity(percentages.len() * cutoffs.len());
    for &pct in percentages {
        let fixed = schedule.at_percent(pct);
        for &cutoff in cutoffs {
            let fm = BipartFm::new(FmConfig {
                policy: SelectionPolicy::Lifo,
                cutoff,
                // Run passes to natural termination (no improvement), as the
                // paper does: short cut-off passes need more of them.
                max_passes: 10_000,
                ..FmConfig::default()
            });
            let mut cut_sum = 0.0;
            let mut time_sum = Duration::ZERO;
            for run in 0..runs {
                // Same per-run seed across cutoffs: identical initial
                // solutions, so the comparison isolates the cutoff.
                let mut run_rng =
                    ChaCha8Rng::seed_from_u64(seed ^ (run as u64 + 1).wrapping_mul(0xC0FF_EE11));
                let t0 = Instant::now();
                let result = fm.run_random_with_sink(hg, &fixed, &balance, &mut run_rng, sink)?;
                time_sum += t0.elapsed();
                cut_sum += result.cut as f64;
            }
            cells.push(Table3Cell {
                percent: pct,
                cutoff,
                avg_cut: cut_sum / runs as f64,
                avg_time: time_sum / runs as u32,
            });
        }
    }
    Ok(cells)
}

/// Renders Table III in the paper's layout: one row per percentage, one
/// column per cutoff, cells as `cut (seconds)`.
pub fn render(circuit: &str, cells: &[Table3Cell], cutoffs: &[PassCutoff]) -> Table {
    let mut header = vec!["circuit".to_string(), "fixed%".to_string()];
    header.extend(cutoffs.iter().map(|c| c.to_string()));
    let mut t = Table::new(header);

    let mut percentages: Vec<f64> = cells.iter().map(|c| c.percent).collect();
    percentages.dedup();
    for pct in percentages {
        let mut row = vec![circuit.to_string(), fmt_f64(pct, 1)];
        for &cutoff in cutoffs {
            let cell = cells
                .iter()
                .find(|c| c.percent == pct && c.cutoff == cutoff)
                .expect("cell exists for every (pct, cutoff)");
            row.push(format!(
                "{} ({})",
                fmt_f64(cell.avg_cut, 1),
                fmt_f64(cell.avg_time.as_secs_f64(), 3)
            ));
        }
        t.row(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use vlsi_netgen::synthetic::{Generator, GeneratorConfig};

    #[test]
    fn cutoffs_hurt_without_terminals_but_are_safer_with() {
        // The paper's Table III claim is *relative*: "For instances without
        // sufficient terminals, early stopping has a detrimental effect on
        // solution quality, but with sufficient terminals [much less] effect
        // is seen. In all cases, limiting the number of moves in a pass
        // improves runtime." At small scales the effect needs a few
        // thousand cells to measure, hence the instance size here.
        let c = Generator::new(GeneratorConfig {
            num_cells: 1500,
            num_pads: 20,
            ..GeneratorConfig::default()
        })
        .generate(9);
        let cells = run_table3(
            &c.hypergraph,
            &[0.0, 50.0],
            &[PassCutoff::Unlimited, PassCutoff::Fraction(0.05)],
            4,
            21,
        )
        .unwrap();
        assert_eq!(cells.len(), 4);
        let get = |pct: f64, cutoff: PassCutoff| {
            cells
                .iter()
                .find(|c| c.percent == pct && c.cutoff == cutoff)
                .copied()
                .unwrap()
        };
        let free_unlimited = get(0.0, PassCutoff::Unlimited);
        let free_cut5 = get(0.0, PassCutoff::Fraction(0.05));
        let fixed_unlimited = get(50.0, PassCutoff::Unlimited);
        let fixed_cut5 = get(50.0, PassCutoff::Fraction(0.05));
        // Without terminals the cutoff degrades quality.
        assert!(
            free_cut5.avg_cut > free_unlimited.avg_cut,
            "free instance: cutoff should hurt quality"
        );
        // With 50% fixed the *relative* degradation is clearly smaller.
        let deg_free = free_cut5.avg_cut / free_unlimited.avg_cut.max(1.0);
        let deg_fixed = fixed_cut5.avg_cut / fixed_unlimited.avg_cut.max(1.0);
        assert!(
            deg_fixed < deg_free,
            "cutoff should be relatively safer with terminals: {deg_fixed:.2}x vs {deg_free:.2}x"
        );
        // And the cutoff reduces runtime on both regimes at this size.
        assert!(fixed_cut5.avg_time < fixed_unlimited.avg_time);
        assert!(free_cut5.avg_time < free_unlimited.avg_time);
    }

    #[test]
    fn render_layout() {
        let cutoffs = [PassCutoff::Unlimited, PassCutoff::Fraction(0.5)];
        let cells = vec![
            Table3Cell {
                percent: 0.0,
                cutoff: PassCutoff::Unlimited,
                avg_cut: 10.0,
                avg_time: Duration::from_millis(120),
            },
            Table3Cell {
                percent: 0.0,
                cutoff: PassCutoff::Fraction(0.5),
                avg_cut: 11.0,
                avg_time: Duration::from_millis(60),
            },
        ];
        let t = render("ibm01", &cells, &cutoffs);
        assert_eq!(t.len(), 1);
        let text = t.to_text();
        assert!(text.contains("10.0 (0.120)"));
        assert!(text.contains("11.0 (0.060)"));
    }
}
