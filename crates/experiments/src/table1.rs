//! Table I: block sizes below which the expected number of fixed vertices
//! exceeds 5%, 10% or 20% of all vertices, for a range of Rent parameters
//! (`k = 3.5`).

use vlsi_netgen::rent::{table_one, TableOneRow};

use crate::report::Table;

/// The Rent parameters the paper tabulates (0.47 is the classic Landman–
/// Russo logic value; 0.68 the modern-design estimate it cites).
pub const PAPER_RENT_PARAMETERS: [f64; 8] = [0.47, 0.50, 0.55, 0.57, 0.60, 0.62, 0.65, 0.68];

/// Computes the Table I rows.
pub fn compute() -> Vec<TableOneRow> {
    table_one(&PAPER_RENT_PARAMETERS)
}

/// Renders Table I.
///
/// # Example
/// ```
/// let t = vlsi_experiments::table1::render();
/// assert!(t.to_text().contains("0.68"));
/// ```
pub fn render() -> Table {
    let mut t = Table::new(vec![
        "p".into(),
        "C (5% fixed)".into(),
        "C (10% fixed)".into(),
        "C (20% fixed)".into(),
    ]);
    for row in compute() {
        t.row(vec![
            format!("{:.2}", row.p_milli as f64 / 1000.0),
            row.c_5pct.to_string(),
            row.c_10pct.to_string(),
            row.c_20pct.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_all_rows() {
        let t = render();
        assert_eq!(t.len(), PAPER_RENT_PARAMETERS.len());
    }

    #[test]
    fn rows_increase_with_p() {
        let rows = compute();
        for w in rows.windows(2) {
            assert!(w[1].c_10pct > w[0].c_10pct);
        }
    }

    #[test]
    fn sizable_blocks_have_high_fixed_share() {
        // The paper's headline: "even rather sizable subblocks of the design
        // can be expected to have a high proportion of fixed terminals."
        let rows = compute();
        let p068 = rows.last().unwrap();
        assert!(
            p068.c_20pct > 1000,
            "20% threshold at p=0.68 should exceed 1000 cells"
        );
    }
}
