//! Minimal command-line option parsing shared by the experiment binaries,
//! plus the `--trace` plumbing that turns a path into a live
//! [`JsonlSink`].
//!
//! No external CLI dependency is warranted for five binaries with a
//! handful of flags, so this is a tiny hand-rolled parser.

use std::path::Path;

use vlsi_partition::trace::{JsonlSink, NullSink, Sink};

/// Options common to all experiment binaries.
///
/// # Example
/// ```
/// use vlsi_experiments::opts::Options;
/// let o = Options::parse(["--scale", "0.25", "--trials", "3", "--circuit", "ibm03"]
///     .iter()
///     .map(|s| s.to_string()))
///     .unwrap();
/// assert_eq!(o.scale, 0.25);
/// assert_eq!(o.trials, 3);
/// assert_eq!(o.circuits, vec!["ibm03".to_string()]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Options {
    /// Instance scale factor (1.0 = the paper's full circuit sizes).
    pub scale: f64,
    /// Trials per data point (the paper averages 50).
    pub trials: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// Circuits to run (`ibm01`…`ibm05`).
    pub circuits: Vec<String>,
    /// Emit CSV instead of the aligned text table.
    pub csv: bool,
    /// Write a structured JSONL trace of the measured runs to this path.
    pub trace: Option<std::path::PathBuf>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            scale: 0.12,
            trials: 5,
            seed: 1999, // the paper's year — a fixed default for replicability
            circuits: vec!["ibm01".into(), "ibm03".into()],
            csv: false,
            trace: None,
        }
    }
}

impl Options {
    /// Parses the given arguments (excluding the program name).
    ///
    /// Recognised flags: `--scale F`, `--trials N`, `--seed N`,
    /// `--circuit NAME` (repeatable), `--paper` (full scale, 50 trials),
    /// `--csv`.
    ///
    /// # Errors
    /// Returns a human-readable message for unknown flags or bad values.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Options, String> {
        let mut o = Options::default();
        let mut explicit_circuits = false;
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--scale" => o.scale = take(&mut it, "--scale")?,
                "--trials" => o.trials = take(&mut it, "--trials")?,
                "--seed" => o.seed = take(&mut it, "--seed")?,
                "--circuit" => {
                    if !explicit_circuits {
                        o.circuits.clear();
                        explicit_circuits = true;
                    }
                    o.circuits.push(it.next().ok_or("--circuit needs a value")?);
                }
                "--paper" => {
                    o.scale = 1.0;
                    o.trials = 50;
                }
                "--csv" => o.csv = true,
                "--trace" => {
                    o.trace = Some(it.next().ok_or("--trace needs a path")?.into());
                }
                "--help" | "-h" => return Err(USAGE.to_string()),
                other => return Err(format!("unknown flag `{other}`\n{USAGE}")),
            }
        }
        if o.trials == 0 {
            return Err("--trials must be at least 1".into());
        }
        if !(0.0..=1.0).contains(&o.scale) || o.scale <= 0.0 {
            return Err("--scale must be in (0, 1]".into());
        }
        Ok(o)
    }

    /// Parses `std::env::args()`, printing usage and exiting on error.
    pub fn from_env() -> Options {
        match Options::parse(std::env::args().skip(1)) {
            Ok(o) => o,
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(2);
            }
        }
    }
}

const USAGE: &str =
    "usage: [--scale F] [--trials N] [--seed N] [--circuit NAME]... [--paper] [--csv] [--trace PATH]
  --scale F       instance scale, 1.0 = paper-size circuits (default 0.12)
  --trials N      trials per data point (default 5; the paper used 50)
  --seed N        base RNG seed (default 1999)
  --circuit NAME  ibm01..ibm05, repeatable (default: ibm01 ibm03)
  --paper         shorthand for --scale 1.0 --trials 50
  --csv           machine-readable CSV output
  --trace PATH    write a JSONL event trace of the measured runs to PATH
                  (see docs/TRACING.md for the schema)";

/// A sink-generic experiment body for [`run_with_trace`]. A plain closure
/// cannot be generic over the sink type, so binaries implement this
/// one-method trait on a small carrier struct instead.
pub trait TraceRun {
    /// What the experiment returns.
    type Output;
    /// Runs the experiment, streaming trace events into `sink`.
    fn run<S: Sink>(self, sink: &S) -> Self::Output;
}

/// Runs `job` against a [`JsonlSink`] writing to `trace` when a path was
/// given (flushing it and reporting write errors on stderr afterwards), or
/// against the zero-cost [`NullSink`] otherwise. Exits the process when
/// the trace file cannot be created.
pub fn run_with_trace<J: TraceRun>(trace: Option<&Path>, job: J) -> J::Output {
    match trace {
        Some(path) => {
            let sink = match JsonlSink::create(path) {
                Ok(sink) => sink,
                Err(e) => {
                    eprintln!("cannot create trace file {}: {e}", path.display());
                    std::process::exit(2);
                }
            };
            let out = job.run(&sink);
            sink.flush();
            if sink.write_errors() > 0 {
                eprintln!(
                    "warning: {} trace write errors; {} is incomplete",
                    sink.write_errors(),
                    path.display()
                );
            } else {
                eprintln!("trace written to {}", path.display());
            }
            out
        }
        None => job.run(&NullSink),
    }
}

fn take<I: Iterator<Item = String>, T: std::str::FromStr>(
    it: &mut I,
    flag: &str,
) -> Result<T, String> {
    it.next()
        .ok_or(format!("{flag} needs a value"))?
        .parse()
        .map_err(|_| format!("bad value for {flag}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Options, String> {
        Options::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let o = parse(&[]).unwrap();
        assert_eq!(o.trials, 5);
        assert_eq!(o.circuits.len(), 2);
        assert!(!o.csv);
    }

    #[test]
    fn paper_mode() {
        let o = parse(&["--paper"]).unwrap();
        assert_eq!(o.scale, 1.0);
        assert_eq!(o.trials, 50);
    }

    #[test]
    fn circuit_replaces_defaults() {
        let o = parse(&["--circuit", "ibm05", "--circuit", "ibm02"]).unwrap();
        assert_eq!(o.circuits, vec!["ibm05", "ibm02"]);
    }

    #[test]
    fn rejects_unknown_and_bad() {
        assert!(parse(&["--frobnicate"]).is_err());
        assert!(parse(&["--trials", "0"]).is_err());
        assert!(parse(&["--scale", "2.0"]).is_err());
        assert!(parse(&["--scale"]).is_err());
        assert!(parse(&["--trace"]).is_err());
    }

    #[test]
    fn run_with_trace_writes_jsonl() {
        use vlsi_partition::trace::Event;
        struct Emit;
        impl TraceRun for Emit {
            type Output = u32;
            fn run<S: Sink>(self, sink: &S) -> u32 {
                sink.record(&Event::StartFinished {
                    start: 0,
                    cut: 7,
                    micros: 1,
                });
                42
            }
        }
        let path =
            std::env::temp_dir().join(format!("vlsi-opts-trace-test-{}.jsonl", std::process::id()));
        assert_eq!(run_with_trace(Some(&path), Emit), 42);
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"ev\":\"start\""), "got: {text}");
        std::fs::remove_file(&path).ok();
        assert_eq!(run_with_trace(None, Emit), 42);
    }

    #[test]
    fn trace_path() {
        let o = parse(&["--trace", "results/trace/run.jsonl"]).unwrap();
        assert_eq!(
            o.trace.as_deref(),
            Some(std::path::Path::new("results/trace/run.jsonl"))
        );
        assert_eq!(parse(&[]).unwrap().trace, None);
    }
}
