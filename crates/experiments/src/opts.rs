//! Minimal command-line option parsing shared by the experiment binaries.
//!
//! No external CLI dependency is warranted for five binaries with a
//! handful of flags, so this is a tiny hand-rolled parser.

/// Options common to all experiment binaries.
///
/// # Example
/// ```
/// use vlsi_experiments::opts::Options;
/// let o = Options::parse(["--scale", "0.25", "--trials", "3", "--circuit", "ibm03"]
///     .iter()
///     .map(|s| s.to_string()))
///     .unwrap();
/// assert_eq!(o.scale, 0.25);
/// assert_eq!(o.trials, 3);
/// assert_eq!(o.circuits, vec!["ibm03".to_string()]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Options {
    /// Instance scale factor (1.0 = the paper's full circuit sizes).
    pub scale: f64,
    /// Trials per data point (the paper averages 50).
    pub trials: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// Circuits to run (`ibm01`…`ibm05`).
    pub circuits: Vec<String>,
    /// Emit CSV instead of the aligned text table.
    pub csv: bool,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            scale: 0.12,
            trials: 5,
            seed: 1999, // the paper's year — a fixed default for replicability
            circuits: vec!["ibm01".into(), "ibm03".into()],
            csv: false,
        }
    }
}

impl Options {
    /// Parses the given arguments (excluding the program name).
    ///
    /// Recognised flags: `--scale F`, `--trials N`, `--seed N`,
    /// `--circuit NAME` (repeatable), `--paper` (full scale, 50 trials),
    /// `--csv`.
    ///
    /// # Errors
    /// Returns a human-readable message for unknown flags or bad values.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Options, String> {
        let mut o = Options::default();
        let mut explicit_circuits = false;
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--scale" => o.scale = take(&mut it, "--scale")?,
                "--trials" => o.trials = take(&mut it, "--trials")?,
                "--seed" => o.seed = take(&mut it, "--seed")?,
                "--circuit" => {
                    if !explicit_circuits {
                        o.circuits.clear();
                        explicit_circuits = true;
                    }
                    o.circuits.push(it.next().ok_or("--circuit needs a value")?);
                }
                "--paper" => {
                    o.scale = 1.0;
                    o.trials = 50;
                }
                "--csv" => o.csv = true,
                "--help" | "-h" => return Err(USAGE.to_string()),
                other => return Err(format!("unknown flag `{other}`\n{USAGE}")),
            }
        }
        if o.trials == 0 {
            return Err("--trials must be at least 1".into());
        }
        if !(0.0..=1.0).contains(&o.scale) || o.scale <= 0.0 {
            return Err("--scale must be in (0, 1]".into());
        }
        Ok(o)
    }

    /// Parses `std::env::args()`, printing usage and exiting on error.
    pub fn from_env() -> Options {
        match Options::parse(std::env::args().skip(1)) {
            Ok(o) => o,
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(2);
            }
        }
    }
}

const USAGE: &str =
    "usage: [--scale F] [--trials N] [--seed N] [--circuit NAME]... [--paper] [--csv]
  --scale F       instance scale, 1.0 = paper-size circuits (default 0.12)
  --trials N      trials per data point (default 5; the paper used 50)
  --seed N        base RNG seed (default 1999)
  --circuit NAME  ibm01..ibm05, repeatable (default: ibm01 ibm03)
  --paper         shorthand for --scale 1.0 --trials 50
  --csv           machine-readable CSV output";

fn take<I: Iterator<Item = String>, T: std::str::FromStr>(
    it: &mut I,
    flag: &str,
) -> Result<T, String> {
    it.next()
        .ok_or(format!("{flag} needs a value"))?
        .parse()
        .map_err(|_| format!("bad value for {flag}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Options, String> {
        Options::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let o = parse(&[]).unwrap();
        assert_eq!(o.trials, 5);
        assert_eq!(o.circuits.len(), 2);
        assert!(!o.csv);
    }

    #[test]
    fn paper_mode() {
        let o = parse(&["--paper"]).unwrap();
        assert_eq!(o.scale, 1.0);
        assert_eq!(o.trials, 50);
    }

    #[test]
    fn circuit_replaces_defaults() {
        let o = parse(&["--circuit", "ibm05", "--circuit", "ibm02"]).unwrap();
        assert_eq!(o.circuits, vec!["ibm05", "ibm02"]);
    }

    #[test]
    fn rejects_unknown_and_bad() {
        assert!(parse(&["--frobnicate"]).is_err());
        assert!(parse(&["--trials", "0"]).is_err());
        assert!(parse(&["--scale", "2.0"]).is_err());
        assert!(parse(&["--scale"]).is_err());
    }
}
