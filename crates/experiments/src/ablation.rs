//! Quality ablations of the multilevel engine's design choices.
//!
//! The criterion benches measure *time*; this module measures *cut* for
//! each variant DESIGN.md calls out (refinement policy, V-cycling,
//! free–fixed merging in coarsening), at several fixed percentages, so the
//! trade-offs the reproduction discovered are recorded as data.

use std::time::{Duration, Instant};

use vlsi_rng::ChaCha8Rng;
use vlsi_rng::SeedableRng;

use vlsi_hypergraph::Hypergraph;
use vlsi_partition::{
    EngineConfig, FmConfig, MultilevelConfig, PartitionError, Partitioner, RunCtx, SelectionPolicy,
};

use crate::harness::{find_good_solution, paper_balance};
use crate::regimes::{FixSchedule, Regime};
use crate::report::{fmt_f64, Table};

/// An engine variant under ablation.
#[derive(Debug, Clone)]
pub struct Variant {
    /// Display name.
    pub name: &'static str,
    /// The configuration it runs with.
    pub config: MultilevelConfig,
}

/// The standard ablation battery.
pub fn standard_variants() -> Vec<Variant> {
    let base = MultilevelConfig::default();
    let clip_only = MultilevelConfig {
        refine_fm: FmConfig {
            policy: SelectionPolicy::Clip,
            max_passes: 8,
            ..FmConfig::default()
        },
        refine_fm2: None,
        ..base
    };
    let lifo_only = MultilevelConfig {
        refine_fm: FmConfig {
            policy: SelectionPolicy::Lifo,
            max_passes: 8,
            ..FmConfig::default()
        },
        refine_fm2: None,
        ..base
    };
    vec![
        Variant {
            name: "default (CLIP+LIFO)",
            config: base,
        },
        Variant {
            name: "refine CLIP only",
            config: clip_only,
        },
        Variant {
            name: "refine LIFO only",
            config: lifo_only,
        },
        Variant {
            name: "with 1 V-cycle",
            config: MultilevelConfig { vcycles: 1, ..base },
        },
    ]
}

/// One measured ablation cell.
#[derive(Debug, Clone, PartialEq)]
pub struct AblationCell {
    /// Variant name.
    pub variant: &'static str,
    /// Fixed percentage of the instance.
    pub percent: f64,
    /// Average cut over the runs.
    pub avg_cut: f64,
    /// Average wall-clock time per run.
    pub avg_time: Duration,
}

/// Runs the ablation battery: `runs` multilevel runs per (variant, fixed%),
/// good-regime fixing.
///
/// # Errors
/// Propagates partitioning failures.
pub fn run_ablation(
    hg: &Hypergraph,
    variants: &[Variant],
    percentages: &[f64],
    runs: usize,
    seed: u64,
) -> Result<Vec<AblationCell>, PartitionError> {
    let balance = paper_balance(hg);
    let good = find_good_solution(hg, &balance, &MultilevelConfig::default(), 4, seed)?;
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xAB1A);
    let schedule = FixSchedule::new(hg, Regime::Good, &good.parts, &mut rng);

    let mut cells = Vec::new();
    for variant in variants {
        let engine = EngineConfig::Multilevel(variant.config);
        for &pct in percentages {
            let fixed = schedule.at_percent(pct);
            let mut cut_sum = 0.0;
            let mut time_sum = Duration::ZERO;
            for run in 0..runs {
                let mut run_rng =
                    ChaCha8Rng::seed_from_u64(seed ^ (run as u64 + 1).wrapping_mul(0xAB1A_7E57));
                let t0 = Instant::now();
                let r = engine.partition_ctx(hg, &fixed, &balance, RunCtx::new(&mut run_rng))?;
                time_sum += t0.elapsed();
                cut_sum += r.cut as f64;
            }
            cells.push(AblationCell {
                variant: variant.name,
                percent: pct,
                avg_cut: cut_sum / runs as f64,
                avg_time: time_sum / runs as u32,
            });
        }
    }
    Ok(cells)
}

/// Renders the ablation results: one row per variant, cut (time) columns
/// per percentage.
pub fn render(circuit: &str, cells: &[AblationCell], percentages: &[f64]) -> Table {
    let mut header = vec!["circuit".to_string(), "variant".to_string()];
    header.extend(percentages.iter().map(|p| format!("{p}% fixed")));
    let mut t = Table::new(header);
    let mut variants: Vec<&'static str> = cells.iter().map(|c| c.variant).collect();
    variants.dedup();
    for v in variants {
        let mut row = vec![circuit.to_string(), v.to_string()];
        for &pct in percentages {
            let cell = cells
                .iter()
                .find(|c| c.variant == v && c.percent == pct)
                .expect("cell exists");
            row.push(format!(
                "{} ({})",
                fmt_f64(cell.avg_cut, 1),
                fmt_f64(cell.avg_time.as_secs_f64(), 3)
            ));
        }
        t.row(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use vlsi_netgen::synthetic::{Generator, GeneratorConfig};

    #[test]
    fn ablation_reproduces_the_refinement_finding() {
        let c = Generator::new(GeneratorConfig {
            num_cells: 600,
            num_pads: 16,
            ..GeneratorConfig::default()
        })
        .generate(31);
        let variants = standard_variants();
        let cells = run_ablation(&c.hypergraph, &variants, &[30.0], 3, 17).unwrap();
        let get = |name: &str| {
            cells
                .iter()
                .find(|x| x.variant == name && x.percent == 30.0)
                .expect("cell")
                .avg_cut
        };
        // On a fixed-terminal instance the stacked default must not be
        // worse than CLIP-only refinement (the engineering finding).
        assert!(
            get("default (CLIP+LIFO)") <= get("refine CLIP only") + 1e-9,
            "stacked {} vs clip-only {}",
            get("default (CLIP+LIFO)"),
            get("refine CLIP only")
        );
    }

    #[test]
    fn render_layout() {
        let cells = vec![
            AblationCell {
                variant: "a",
                percent: 0.0,
                avg_cut: 10.0,
                avg_time: Duration::from_millis(5),
            },
            AblationCell {
                variant: "a",
                percent: 30.0,
                avg_cut: 12.0,
                avg_time: Duration::from_millis(3),
            },
        ];
        let t = render("x", &cells, &[0.0, 30.0]);
        assert_eq!(t.len(), 1);
        assert!(t.to_text().contains("10.0 (0.005)"));
    }
}
