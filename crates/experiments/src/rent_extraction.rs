//! Partitioning-based Rent-exponent extraction.
//!
//! The standard empirical procedure (Landman & Russo, and the wire-length
//! literature the paper cites): recursively bisect the netlist with a
//! min-cut partitioner, record `(block size, external nets)` for every
//! block of the partitioning hierarchy, and fit `log T = log k + p·log C`.
//! Applied to our synthetic circuits this measures the *realised* Rent
//! exponent with machinery completely independent of the generator's own
//! bookkeeping — the honest check that the IBM-substitute circuits really
//! have the structure the experiments assume.

use vlsi_rng::ChaCha8Rng;
use vlsi_rng::SeedableRng;

use vlsi_hypergraph::{
    induced_subgraph, BalanceConstraint, FixedVertices, Hypergraph, PartId, Tolerance, VertexId,
};
use vlsi_partition::{MultilevelConfig, MultilevelPartitioner, PartitionError};

/// One observation: a block of `cells` vertices with `external` nets
/// crossing its boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RentSample {
    /// Number of vertices in the block.
    pub cells: usize,
    /// Number of nets with pins both inside and outside the block.
    pub external: usize,
}

/// Recursively bisects `hg` down to `min_block` vertices, recording a
/// [`RentSample`] for every block of the hierarchy.
///
/// # Errors
/// Propagates partitioning failures.
pub fn rent_samples(
    hg: &Hypergraph,
    min_block: usize,
    ml_config: &MultilevelConfig,
    seed: u64,
) -> Result<Vec<RentSample>, PartitionError> {
    let mut samples = Vec::new();
    let all: Vec<VertexId> = hg.vertices().collect();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    recurse(hg, &all, min_block, ml_config, &mut rng, &mut samples)?;
    Ok(samples)
}

fn recurse(
    hg: &Hypergraph,
    block: &[VertexId],
    min_block: usize,
    ml_config: &MultilevelConfig,
    rng: &mut ChaCha8Rng,
    samples: &mut Vec<RentSample>,
) -> Result<(), PartitionError> {
    if block.len() < hg.num_vertices() {
        // Count nets crossing the block boundary.
        let mut inside = vec![false; hg.num_vertices()];
        for &v in block {
            inside[v.index()] = true;
        }
        let external = hg
            .nets()
            .filter(|&n| {
                let pins = hg.net_pins(n);
                let ins = pins.iter().filter(|p| inside[p.index()]).count();
                ins > 0 && ins < pins.len()
            })
            .count();
        samples.push(RentSample {
            cells: block.len(),
            external,
        });
    }
    if block.len() <= min_block.max(2) {
        return Ok(());
    }

    let mut inside = vec![false; hg.num_vertices()];
    for &v in block {
        inside[v.index()] = true;
    }
    let sub = induced_subgraph(hg, 2, |v| inside[v.index()]);
    if sub.hg.num_vertices() < 4 {
        return Ok(());
    }
    let wmax = sub
        .hg
        .vertices()
        .map(|v| sub.hg.vertex_weight(v))
        .max()
        .unwrap_or(0);
    let slack = ((sub.hg.total_weight() as f64) * 0.05) as u64;
    let balance =
        BalanceConstraint::bisection(sub.hg.total_weight(), Tolerance::Absolute(slack.max(wmax)));
    let free = FixedVertices::all_free(sub.hg.num_vertices());
    let ml = MultilevelPartitioner::new(*ml_config);
    let result = ml.run(&sub.hg, &free, &balance, rng)?;

    let mut left = Vec::new();
    let mut right = Vec::new();
    for (sv, &pv) in sub.to_parent.iter().enumerate() {
        if result.parts[sv] == PartId(0) {
            left.push(pv);
        } else {
            right.push(pv);
        }
    }
    if left.is_empty() || right.is_empty() {
        return Ok(()); // degenerate split: stop recursing here
    }
    recurse(hg, &left, min_block, ml_config, rng, samples)?;
    recurse(hg, &right, min_block, ml_config, rng, samples)?;
    Ok(())
}

/// Mean external-net count over the samples whose block size lies in
/// `[lo, hi)`. Unlike the two-parameter power-law fit (where `k` and `p`
/// trade off over a limited size range), this is a robust, directly
/// comparable observable: richer Rent structure means more external nets
/// at any fixed block size.
pub fn band_average(samples: &[RentSample], lo: usize, hi: usize) -> Option<f64> {
    let in_band: Vec<&RentSample> = samples
        .iter()
        .filter(|s| s.cells >= lo && s.cells < hi)
        .collect();
    if in_band.is_empty() {
        return None;
    }
    Some(in_band.iter().map(|s| s.external as f64).sum::<f64>() / in_band.len() as f64)
}

/// Least-squares fit of the Rent exponent over samples with at least
/// `min_cells` vertices. Returns `(exponent, coefficient k)`; `None` with
/// fewer than three usable samples.
pub fn fit_rent(samples: &[RentSample], min_cells: usize) -> Option<(f64, f64)> {
    let pts: Vec<(f64, f64)> = samples
        .iter()
        .filter(|s| s.cells >= min_cells && s.external > 0)
        .map(|s| ((s.cells as f64).ln(), (s.external as f64).ln()))
        .collect();
    if pts.len() < 3 {
        return None;
    }
    let n = pts.len() as f64;
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return None;
    }
    let p = (n * sxy - sx * sy) / denom;
    let logk = (sy - p * sx) / n;
    Some((p, logk.exp()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use vlsi_netgen::synthetic::{Generator, GeneratorConfig};

    #[test]
    fn extraction_orders_with_generator_target() {
        // The two-parameter power-law fit is collinear over a limited size
        // range (k and p trade off), so the robust observable is the mean
        // external-net count in a fixed size band: a richer Rent structure
        // must show more boundary nets at any fixed block size. The fitted
        // exponent itself is checked only for plausibility.
        let extract = |target: f64| {
            let circuit = Generator::new(GeneratorConfig {
                num_cells: 2048,
                rent_exponent: target,
                num_pads: 32,
                ..GeneratorConfig::default()
            })
            .generate(5);
            let cfg = MultilevelConfig {
                coarsest_size: 40,
                coarse_starts: 2,
                ..MultilevelConfig::default()
            };
            let samples = rent_samples(&circuit.hypergraph, 32, &cfg, 9).unwrap();
            assert!(samples.len() > 20, "need a real hierarchy");
            let band = band_average(&samples, 128, 512).expect("band populated");
            let (p, _) = fit_rent(&samples, 48).expect("fit succeeds");
            (band, p)
        };
        let (band_low, p_low) = extract(0.50);
        let (band_high, p_high) = extract(0.68);
        assert!(
            band_high > band_low * 1.3,
            "external nets at fixed size must grow with the target: {band_low:.1} vs {band_high:.1}"
        );
        for p in [p_low, p_high] {
            assert!((0.25..0.85).contains(&p), "implausible exponent {p}");
        }
    }

    #[test]
    fn fit_rejects_degenerate_input() {
        assert!(fit_rent(&[], 1).is_none());
        let flat = vec![
            RentSample {
                cells: 10,
                external: 5,
            };
            5
        ];
        assert!(fit_rent(&flat, 1).is_none(), "zero variance in x");
    }

    #[test]
    fn fit_recovers_exact_power_law() {
        let samples: Vec<RentSample> = (3..12)
            .map(|i| {
                let c = 1usize << i;
                RentSample {
                    cells: c,
                    external: (3.5 * (c as f64).powf(0.6)).round() as usize,
                }
            })
            .collect();
        let (p, k) = fit_rent(&samples, 1).unwrap();
        assert!((p - 0.6).abs() < 0.02, "p = {p}");
        assert!((k - 3.5).abs() < 0.5, "k = {k}");
    }
}
