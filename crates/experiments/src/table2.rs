//! Table II: average number of passes per run and average percentage of
//! nodes moved per pass (excluding the first pass), for LIFO-FM runs at
//! increasing fixed-vertex percentages.
//!
//! The statistics are aggregated from the structured trace stream: every
//! run records into a [`VecSink`], the stream is folded to per-pass
//! summaries with [`pass_summaries`], and the Table II columns are
//! computed from those summaries. An optional forwarding sink receives
//! the same events (e.g. a [`vlsi_partition::trace::JsonlSink`] behind
//! `--trace`).

use vlsi_rng::ChaCha8Rng;
use vlsi_rng::SeedableRng;

use vlsi_hypergraph::Hypergraph;
use vlsi_partition::trace::replay::pass_summaries;
use vlsi_partition::trace::{NullSink, Sink, Tee, VecSink};
use vlsi_partition::{BipartFm, FmConfig, MultilevelConfig, PartitionError, SelectionPolicy};

use crate::harness::{find_good_solution, paper_balance};
use crate::regimes::{FixSchedule, Regime};
use crate::report::{fmt_f64, Table};

/// The fixed-vertex percentages of the paper's Table II.
pub const PAPER_TABLE2_PERCENTAGES: [f64; 7] = [0.0, 5.0, 10.0, 20.0, 30.0, 40.0, 50.0];

/// One Table II row: pass statistics at one fixed percentage.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2Row {
    /// Percentage of fixed vertices.
    pub percent: f64,
    /// Average number of passes per run.
    pub avg_passes: f64,
    /// Average percentage of movable nodes moved per pass, excluding the
    /// first pass.
    pub avg_pct_moved: f64,
    /// Average position of the best prefix within later passes (extra
    /// observable backing "improvements occur near the beginning").
    pub avg_best_prefix: f64,
    /// Average final cut (context).
    pub avg_cut: f64,
}

/// Runs the Table II experiment for one circuit.
///
/// `runs` LIFO-FM runs are performed per percentage (the paper: 50); fixed
/// vertices follow the *good* regime, nested across percentages.
///
/// # Errors
/// Propagates partitioning failures.
pub fn run_table2(
    hg: &Hypergraph,
    percentages: &[f64],
    runs: usize,
    seed: u64,
) -> Result<Vec<Table2Row>, PartitionError> {
    run_table2_with_sink(hg, percentages, runs, seed, &NullSink)
}

/// [`run_table2`], forwarding every trace event of the measured FM runs to
/// `forward` as well (the aggregation itself always happens on an internal
/// [`VecSink`]). The schedule-construction multilevel run is not traced —
/// only the measured LIFO-FM runs are.
///
/// # Errors
/// Propagates partitioning failures.
pub fn run_table2_with_sink<S: Sink>(
    hg: &Hypergraph,
    percentages: &[f64],
    runs: usize,
    seed: u64,
    forward: &S,
) -> Result<Vec<Table2Row>, PartitionError> {
    let balance = paper_balance(hg);
    let good = find_good_solution(hg, &balance, &MultilevelConfig::default(), 4, seed)?;
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x7AB1E2);
    let schedule = FixSchedule::new(hg, Regime::Good, &good.parts, &mut rng);
    let fm = BipartFm::new(FmConfig {
        policy: SelectionPolicy::Lifo,
        ..FmConfig::default()
    });

    let mut rows = Vec::with_capacity(percentages.len());
    for &pct in percentages {
        let fixed = schedule.at_percent(pct);
        let mut passes_sum = 0.0;
        let mut pct_moved_sum = 0.0;
        let mut pct_moved_count = 0usize;
        let mut prefix_sum = 0.0;
        let mut prefix_count = 0usize;
        let mut cut_sum = 0.0;
        let n = hg.num_vertices() as f64;
        for run in 0..runs {
            let mut run_rng =
                ChaCha8Rng::seed_from_u64(seed ^ (run as u64 + 1).wrapping_mul(0xA24B_AED4));
            let record = VecSink::new();
            let tee = Tee::new(&record, forward);
            let result = fm.run_random_with_sink(hg, &fixed, &balance, &mut run_rng, &tee)?;
            let passes = pass_summaries(&record.take());
            passes_sum += passes.len() as f64;
            // Per the paper's Table II, the percentage is of *nodes* of the
            // instance, so fixed terminals count in the denominator: a
            // classic FM pass moves every movable vertex, and the decline
            // with the fixed fraction is exactly the point.
            let later = passes.get(1..).unwrap_or(&[]);
            if !later.is_empty() {
                pct_moved_sum += later
                    .iter()
                    .map(|p| 100.0 * p.moves as f64 / n)
                    .sum::<f64>()
                    / later.len() as f64;
                pct_moved_count += 1;
            }
            // Mean kept/made over later passes that made a move — the same
            // quantity as `RunStats::avg_best_prefix_fraction_excl_first`.
            if passes.len() >= 2 {
                let fracs: Vec<f64> = passes[1..]
                    .iter()
                    .filter_map(|p| p.kept_fraction())
                    .collect();
                if !fracs.is_empty() {
                    prefix_sum += fracs.iter().sum::<f64>() / fracs.len() as f64;
                    prefix_count += 1;
                }
            }
            cut_sum += result.cut as f64;
        }
        rows.push(Table2Row {
            percent: pct,
            avg_passes: passes_sum / runs as f64,
            avg_pct_moved: if pct_moved_count > 0 {
                pct_moved_sum / pct_moved_count as f64
            } else {
                0.0
            },
            avg_best_prefix: if prefix_count > 0 {
                prefix_sum / prefix_count as f64
            } else {
                0.0
            },
            avg_cut: cut_sum / runs as f64,
        });
    }
    Ok(rows)
}

/// Renders Table II rows.
pub fn render(circuit: &str, rows: &[Table2Row]) -> Table {
    let mut t = Table::new(vec![
        "circuit".into(),
        "fixed%".into(),
        "avg passes/run".into(),
        "avg %moved/pass".into(),
        "best-prefix frac".into(),
        "avg cut".into(),
    ]);
    for r in rows {
        t.row(vec![
            circuit.into(),
            fmt_f64(r.percent, 1),
            fmt_f64(r.avg_passes, 2),
            fmt_f64(r.avg_pct_moved, 1),
            fmt_f64(r.avg_best_prefix, 3),
            fmt_f64(r.avg_cut, 1),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use vlsi_netgen::synthetic::{Generator, GeneratorConfig};

    #[test]
    fn pct_moved_falls_with_fixed_fraction() {
        let c = Generator::new(GeneratorConfig {
            num_cells: 300,
            num_pads: 12,
            ..GeneratorConfig::default()
        })
        .generate(4);
        let rows = run_table2(&c.hypergraph, &[0.0, 40.0], 4, 11).unwrap();
        assert_eq!(rows.len(), 2);
        // The paper's Table II trend: more fixed terminals => smaller
        // fraction of nodes moved per (post-first) pass.
        assert!(
            rows[1].avg_pct_moved < rows[0].avg_pct_moved,
            "moved%% should fall: {} -> {}",
            rows[0].avg_pct_moved,
            rows[1].avg_pct_moved
        );
    }

    #[test]
    fn sinked_run_matches_plain_run() {
        use vlsi_partition::trace::CounterSink;
        let c = Generator::new(GeneratorConfig {
            num_cells: 200,
            num_pads: 8,
            ..GeneratorConfig::default()
        })
        .generate(9);
        let plain = run_table2(&c.hypergraph, &[0.0, 30.0], 3, 5).unwrap();
        let counters = CounterSink::new();
        let forwarded = run_table2_with_sink(&c.hypergraph, &[0.0, 30.0], 3, 5, &counters).unwrap();
        assert_eq!(plain, forwarded);
        let snap = counters.snapshot();
        assert!(snap.passes > 0);
        assert!(snap.moves_tried >= snap.moves_committed);
    }

    #[test]
    fn render_shape() {
        let rows = vec![Table2Row {
            percent: 0.0,
            avg_passes: 4.5,
            avg_pct_moved: 62.0,
            avg_best_prefix: 0.4,
            avg_cut: 300.0,
        }];
        let t = render("ibm01", &rows);
        assert_eq!(t.len(), 1);
        assert!(t.to_text().contains("62.0"));
    }
}
