//! Table II: average number of passes per run and average percentage of
//! nodes moved per pass (excluding the first pass), for LIFO-FM runs at
//! increasing fixed-vertex percentages.

use vlsi_rng::ChaCha8Rng;
use vlsi_rng::SeedableRng;

use vlsi_hypergraph::Hypergraph;
use vlsi_partition::{BipartFm, FmConfig, MultilevelConfig, PartitionError, SelectionPolicy};

use crate::harness::{find_good_solution, paper_balance};
use crate::regimes::{FixSchedule, Regime};
use crate::report::{fmt_f64, Table};

/// The fixed-vertex percentages of the paper's Table II.
pub const PAPER_TABLE2_PERCENTAGES: [f64; 7] = [0.0, 5.0, 10.0, 20.0, 30.0, 40.0, 50.0];

/// One Table II row: pass statistics at one fixed percentage.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2Row {
    /// Percentage of fixed vertices.
    pub percent: f64,
    /// Average number of passes per run.
    pub avg_passes: f64,
    /// Average percentage of movable nodes moved per pass, excluding the
    /// first pass.
    pub avg_pct_moved: f64,
    /// Average position of the best prefix within later passes (extra
    /// observable backing "improvements occur near the beginning").
    pub avg_best_prefix: f64,
    /// Average final cut (context).
    pub avg_cut: f64,
}

/// Runs the Table II experiment for one circuit.
///
/// `runs` LIFO-FM runs are performed per percentage (the paper: 50); fixed
/// vertices follow the *good* regime, nested across percentages.
///
/// # Errors
/// Propagates partitioning failures.
pub fn run_table2(
    hg: &Hypergraph,
    percentages: &[f64],
    runs: usize,
    seed: u64,
) -> Result<Vec<Table2Row>, PartitionError> {
    let balance = paper_balance(hg);
    let good = find_good_solution(hg, &balance, &MultilevelConfig::default(), 4, seed)?;
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x7AB1E2);
    let schedule = FixSchedule::new(hg, Regime::Good, &good.parts, &mut rng);
    let fm = BipartFm::new(FmConfig {
        policy: SelectionPolicy::Lifo,
        ..FmConfig::default()
    });

    let mut rows = Vec::with_capacity(percentages.len());
    for &pct in percentages {
        let fixed = schedule.at_percent(pct);
        let mut passes_sum = 0.0;
        let mut pct_moved_sum = 0.0;
        let mut pct_moved_count = 0usize;
        let mut prefix_sum = 0.0;
        let mut prefix_count = 0usize;
        let mut cut_sum = 0.0;
        let n = hg.num_vertices() as f64;
        for run in 0..runs {
            let mut run_rng =
                ChaCha8Rng::seed_from_u64(seed ^ (run as u64 + 1).wrapping_mul(0xA24B_AED4));
            let result = fm.run_random(hg, &fixed, &balance, &mut run_rng)?;
            passes_sum += result.stats.num_passes() as f64;
            // Per the paper's Table II, the percentage is of *nodes* of the
            // instance, so fixed terminals count in the denominator: a
            // classic FM pass moves every movable vertex, and the decline
            // with the fixed fraction is exactly the point.
            let later = result.stats.passes.get(1..).unwrap_or(&[]);
            if !later.is_empty() {
                pct_moved_sum += later
                    .iter()
                    .map(|p| 100.0 * p.moves_made as f64 / n)
                    .sum::<f64>()
                    / later.len() as f64;
                pct_moved_count += 1;
            }
            if let Some(p) = result.stats.avg_best_prefix_fraction_excl_first() {
                prefix_sum += p;
                prefix_count += 1;
            }
            cut_sum += result.cut as f64;
        }
        rows.push(Table2Row {
            percent: pct,
            avg_passes: passes_sum / runs as f64,
            avg_pct_moved: if pct_moved_count > 0 {
                pct_moved_sum / pct_moved_count as f64
            } else {
                0.0
            },
            avg_best_prefix: if prefix_count > 0 {
                prefix_sum / prefix_count as f64
            } else {
                0.0
            },
            avg_cut: cut_sum / runs as f64,
        });
    }
    Ok(rows)
}

/// Renders Table II rows.
pub fn render(circuit: &str, rows: &[Table2Row]) -> Table {
    let mut t = Table::new(vec![
        "circuit".into(),
        "fixed%".into(),
        "avg passes/run".into(),
        "avg %moved/pass".into(),
        "best-prefix frac".into(),
        "avg cut".into(),
    ]);
    for r in rows {
        t.row(vec![
            circuit.into(),
            fmt_f64(r.percent, 1),
            fmt_f64(r.avg_passes, 2),
            fmt_f64(r.avg_pct_moved, 1),
            fmt_f64(r.avg_best_prefix, 3),
            fmt_f64(r.avg_cut, 1),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use vlsi_netgen::synthetic::{Generator, GeneratorConfig};

    #[test]
    fn pct_moved_falls_with_fixed_fraction() {
        let c = Generator::new(GeneratorConfig {
            num_cells: 300,
            num_pads: 12,
            ..GeneratorConfig::default()
        })
        .generate(4);
        let rows = run_table2(&c.hypergraph, &[0.0, 40.0], 4, 11).unwrap();
        assert_eq!(rows.len(), 2);
        // The paper's Table II trend: more fixed terminals => smaller
        // fraction of nodes moved per (post-first) pass.
        assert!(
            rows[1].avg_pct_moved < rows[0].avg_pct_moved,
            "moved%% should fall: {} -> {}",
            rows[0].avg_pct_moved,
            rows[1].avg_pct_moved
        );
    }

    #[test]
    fn render_shape() {
        let rows = vec![Table2Row {
            percent: 0.0,
            avg_passes: 4.5,
            avg_pct_moved: 62.0,
            avg_best_prefix: 0.4,
            avg_cut: 300.0,
        }];
        let t = render("ibm01", &rows);
        assert_eq!(t.len(), 1);
        assert!(t.to_text().contains("62.0"));
    }
}
