//! The paper's future-work question 1: "determining whether multiway
//! partitioning is as affected by fixed terminals".
//!
//! The experiment mirrors the Figures 1–2 protocol for k-way partitioning:
//! find a good free k-way solution by recursive bisection, fix growing
//! subsets of vertices (good/rand), and measure the best achievable k−1
//! objective and runtime against the fixed percentage.

use std::time::{Duration, Instant};

use vlsi_rng::ChaCha8Rng;
use vlsi_rng::SeedableRng;

use vlsi_hypergraph::{
    BalanceConstraint, CutState, FixedVertices, Hypergraph, Objective, Tolerance,
};
use vlsi_partition::{
    KwayConfig, MultilevelConfig, PartitionError, Partitioner, RecursiveBisection, RunCtx,
};

use crate::regimes::{FixSchedule, Regime};
use crate::report::{fmt_f64, fmt_secs, Table};

/// One data point of the multiway sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiwayPoint {
    /// Fixing regime.
    pub regime: Regime,
    /// Percentage of fixed vertices.
    pub percent: f64,
    /// Average k−1 objective over the trials.
    pub avg_kminus1: f64,
    /// Normalised to the regime's base (good solution / best seen).
    pub normalized: f64,
    /// Mean wall-clock time per trial.
    pub time_per_trial: Duration,
}

/// Configuration of the multiway sweep.
#[derive(Debug, Clone)]
pub struct MultiwayConfig {
    /// Number of partitions (the paper's natural choice is quadrisection).
    pub k: usize,
    /// Balance tolerance per block.
    pub tolerance: f64,
    /// Percentages to sweep.
    pub percentages: Vec<f64>,
    /// Trials per point.
    pub trials: usize,
    /// Multilevel settings for the recursive bisections.
    pub ml_config: MultilevelConfig,
    /// Refinement passes after recursive bisection.
    pub refine_passes: usize,
    /// Base seed.
    pub seed: u64,
}

impl Default for MultiwayConfig {
    fn default() -> Self {
        MultiwayConfig {
            k: 4,
            tolerance: 0.1,
            percentages: vec![0.0, 5.0, 10.0, 20.0, 30.0, 50.0],
            trials: 3,
            ml_config: MultilevelConfig::default(),
            refine_passes: 4,
            seed: 1999,
        }
    }
}

/// A full multiway sweep result.
#[derive(Debug, Clone)]
pub struct MultiwaySweep {
    /// Circuit name.
    pub circuit: String,
    /// Number of partitions.
    pub k: usize,
    /// The reference good solution's k−1 objective.
    pub good_kminus1: u64,
    /// All points.
    pub points: Vec<MultiwayPoint>,
}

/// The trial engine: recursive bisection with k−1-objective k-way FM
/// cleanup, expressed through the trait layer.
fn trial_engine(config: &MultiwayConfig) -> RecursiveBisection {
    RecursiveBisection(KwayConfig {
        tolerance: config.tolerance,
        ml: config.ml_config,
        refine_passes: config.refine_passes,
        objective: Objective::KMinus1,
    })
}

/// Runs one k-way partitioning trial (recursive bisection + refinement).
fn solve_once(
    hg: &Hypergraph,
    fixed: &FixedVertices,
    balance: &BalanceConstraint,
    config: &MultiwayConfig,
    seed: u64,
) -> Result<u64, PartitionError> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let refined = trial_engine(config).partition_ctx(hg, fixed, balance, RunCtx::new(&mut rng))?;
    Ok(refined.cut)
}

/// Runs the multiway sweep for one circuit.
///
/// # Errors
/// Propagates partitioning failures.
pub fn run_multiway(
    name: &str,
    hg: &Hypergraph,
    config: &MultiwayConfig,
) -> Result<MultiwaySweep, PartitionError> {
    let balance = BalanceConstraint::even(
        config.k,
        &[hg.total_weight()],
        Tolerance::Relative(config.tolerance),
    );
    // Reference good solution on the free instance.
    let free = FixedVertices::all_free(hg.num_vertices());
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let good = trial_engine(config).partition_ctx(hg, &free, &balance, RunCtx::new(&mut rng))?;
    let good_kminus1 = CutState::new(hg, config.k, &good.parts).value(Objective::KMinus1);

    let mut points = Vec::new();
    for regime in [Regime::Good, Regime::Random] {
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed ^ 0xD1CE);
        let schedule = FixSchedule::new(hg, regime, &good.parts, &mut rng);
        for &pct in &config.percentages {
            let fixed = schedule.at_percent(pct);
            let mut sum = 0.0;
            let mut best = u64::MAX;
            let mut time = Duration::ZERO;
            for t in 0..config.trials {
                let t0 = Instant::now();
                let v = solve_once(
                    hg,
                    &fixed,
                    &balance,
                    config,
                    config.seed ^ (t as u64 + 1).wrapping_mul(0xBEEF_55AA),
                )?;
                time += t0.elapsed();
                sum += v as f64;
                best = best.min(v);
            }
            let avg = sum / config.trials as f64;
            let base = match regime {
                Regime::Good => (good_kminus1 as f64).max(1.0),
                Regime::Random => (best as f64).max(1.0),
            };
            points.push(MultiwayPoint {
                regime,
                percent: pct,
                avg_kminus1: avg,
                normalized: avg / base,
                time_per_trial: time / config.trials as u32,
            });
        }
    }
    Ok(MultiwaySweep {
        circuit: name.to_string(),
        k: config.k,
        good_kminus1,
        points,
    })
}

impl MultiwaySweep {
    /// Renders the sweep as a table.
    pub fn render(&self) -> Table {
        let mut t = Table::new(vec![
            "circuit".into(),
            "k".into(),
            "regime".into(),
            "fixed%".into(),
            "avg k-1".into(),
            "norm".into(),
            "s/trial".into(),
        ]);
        for p in &self.points {
            t.row(vec![
                self.circuit.clone(),
                self.k.to_string(),
                p.regime.label().into(),
                fmt_f64(p.percent, 1),
                fmt_f64(p.avg_kminus1, 1),
                fmt_f64(p.normalized, 3),
                fmt_secs(p.time_per_trial),
            ]);
        }
        t
    }

    /// Points of one regime in sweep order.
    pub fn regime_points(&self, regime: Regime) -> Vec<&MultiwayPoint> {
        self.points.iter().filter(|p| p.regime == regime).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vlsi_netgen::synthetic::{Generator, GeneratorConfig};

    #[test]
    fn multiway_sweep_shows_the_same_trends() {
        let c = Generator::new(GeneratorConfig {
            num_cells: 200,
            num_pads: 8,
            ..GeneratorConfig::default()
        })
        .generate(13);
        let config = MultiwayConfig {
            percentages: vec![0.0, 50.0],
            trials: 2,
            ml_config: MultilevelConfig {
                coarsest_size: 24,
                coarse_starts: 2,
                ..MultilevelConfig::default()
            },
            refine_passes: 2,
            ..MultiwayConfig::default()
        };
        let sweep = run_multiway("test", &c.hypergraph, &config).unwrap();
        assert_eq!(sweep.points.len(), 4);
        // Random fixing raises the k−1 objective in 4-way too.
        let rand = sweep.regime_points(Regime::Random);
        assert!(
            rand[1].avg_kminus1 > rand[0].avg_kminus1,
            "rand fixing should raise the multiway objective: {} -> {}",
            rand[0].avg_kminus1,
            rand[1].avg_kminus1
        );
        let t = sweep.render();
        assert_eq!(t.len(), 4);
    }
}
