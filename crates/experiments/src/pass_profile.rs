//! Within-pass improvement profiles — the analysis behind Section III.
//!
//! "A motivating observation is that in the absence of sufficient fixed
//! terminals, FM may occasionally produce passes in which nearly every
//! vertex is moved [...] if there are sufficiently many vertices adjacent
//! to fixed terminals, such a near-flip is very unlikely to be improving."
//!
//! This module measures *where inside a pass* the best solution occurs, as
//! a function of the fixed-vertex percentage, by recording the structured
//! trace of every FM run and folding the per-move cut trajectory with
//! [`pass_summaries`].

use vlsi_rng::ChaCha8Rng;
use vlsi_rng::SeedableRng;

use vlsi_hypergraph::Hypergraph;
use vlsi_partition::trace::replay::pass_summaries;
use vlsi_partition::trace::{NullSink, Sink, Tee, VecSink};
use vlsi_partition::{BipartFm, FmConfig, MultilevelConfig, PartitionError, SelectionPolicy};

use crate::harness::{find_good_solution, paper_balance};
use crate::regimes::{FixSchedule, Regime};
use crate::report::{fmt_f64, Table};

/// Profile of within-pass improvement at one fixed percentage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PassProfileRow {
    /// Percentage of fixed vertices.
    pub percent: f64,
    /// Mean best-prefix position (fraction of the pass) over *first* passes.
    pub first_pass_best_pos: f64,
    /// Mean best-prefix position over later passes.
    pub later_pass_best_pos: f64,
    /// Fraction of later passes whose best prefix lies in the first 10% of
    /// the pass's moves.
    pub later_best_within_10pct: f64,
}

/// Runs the pass-profile experiment: `runs` LIFO-FM runs per percentage,
/// good-regime fixing.
///
/// # Errors
/// Propagates partitioning failures.
pub fn run_pass_profile(
    hg: &Hypergraph,
    percentages: &[f64],
    runs: usize,
    seed: u64,
) -> Result<Vec<PassProfileRow>, PartitionError> {
    run_pass_profile_with_sink(hg, percentages, runs, seed, &NullSink)
}

/// [`run_pass_profile`], forwarding every trace event of the measured FM
/// runs to `forward` as well (the profile itself is always derived from an
/// internal [`VecSink`]).
///
/// # Errors
/// Propagates partitioning failures.
pub fn run_pass_profile_with_sink<S: Sink>(
    hg: &Hypergraph,
    percentages: &[f64],
    runs: usize,
    seed: u64,
    forward: &S,
) -> Result<Vec<PassProfileRow>, PartitionError> {
    let balance = paper_balance(hg);
    let good = find_good_solution(hg, &balance, &MultilevelConfig::default(), 4, seed)?;
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x9A55);
    let schedule = FixSchedule::new(hg, Regime::Good, &good.parts, &mut rng);
    let fm = BipartFm::new(FmConfig {
        policy: SelectionPolicy::Lifo,
        ..FmConfig::default()
    });

    let mut rows = Vec::with_capacity(percentages.len());
    for &pct in percentages {
        let fixed = schedule.at_percent(pct);
        let mut first_sum = 0.0;
        let mut first_n = 0usize;
        let mut later_sum = 0.0;
        let mut later_n = 0usize;
        let mut later_early = 0usize;
        for run in 0..runs {
            let mut run_rng =
                ChaCha8Rng::seed_from_u64(seed ^ (run as u64 + 1).wrapping_mul(0x51C0_FFEE));
            let initial = vlsi_partition::random_initial(hg, &fixed, &balance, 2, &mut run_rng)?;
            let record = VecSink::new();
            let tee = Tee::new(&record, forward);
            fm.run_with_sink(hg, &fixed, &balance, initial, &tee)?;
            for trace in &pass_summaries(&record.take()) {
                let Some(pos) = trace.best_position_fraction() else {
                    continue;
                };
                if trace.pass == 0 {
                    first_sum += pos;
                    first_n += 1;
                } else {
                    later_sum += pos;
                    later_n += 1;
                    if pos <= 0.10 {
                        later_early += 1;
                    }
                }
            }
        }
        rows.push(PassProfileRow {
            percent: pct,
            first_pass_best_pos: if first_n > 0 {
                first_sum / first_n as f64
            } else {
                0.0
            },
            later_pass_best_pos: if later_n > 0 {
                later_sum / later_n as f64
            } else {
                0.0
            },
            later_best_within_10pct: if later_n > 0 {
                later_early as f64 / later_n as f64
            } else {
                0.0
            },
        });
    }
    Ok(rows)
}

/// Renders the profile rows.
pub fn render(circuit: &str, rows: &[PassProfileRow]) -> Table {
    let mut t = Table::new(vec![
        "circuit".into(),
        "fixed%".into(),
        "best pos, pass 1".into(),
        "best pos, later".into(),
        "later best in first 10%".into(),
    ]);
    for r in rows {
        t.row(vec![
            circuit.into(),
            fmt_f64(r.percent, 1),
            fmt_f64(r.first_pass_best_pos, 3),
            fmt_f64(r.later_pass_best_pos, 3),
            fmt_f64(r.later_best_within_10pct, 2),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use vlsi_netgen::synthetic::{Generator, GeneratorConfig};

    #[test]
    fn improvements_move_toward_pass_start_with_fixing() {
        let c = Generator::new(GeneratorConfig {
            num_cells: 400,
            num_pads: 16,
            ..GeneratorConfig::default()
        })
        .generate(21);
        let rows = run_pass_profile(&c.hypergraph, &[0.0, 50.0], 4, 3).unwrap();
        assert_eq!(rows.len(), 2);
        // With half the vertices fixed, later-pass improvements concentrate
        // earlier in the pass than in the free case.
        assert!(
            rows[1].later_pass_best_pos <= rows[0].later_pass_best_pos + 1e-9,
            "best position should move toward the start: {} -> {}",
            rows[0].later_pass_best_pos,
            rows[1].later_pass_best_pos
        );
    }

    #[test]
    fn render_shape() {
        let rows = vec![PassProfileRow {
            percent: 10.0,
            first_pass_best_pos: 0.8,
            later_pass_best_pos: 0.2,
            later_best_within_10pct: 0.5,
        }];
        let t = render("ibm01", &rows);
        assert_eq!(t.len(), 1);
        assert!(t.to_text().contains("0.200"));
    }
}
