//! Batch partitioning server CLI — the `vlsi-service` front end.
//!
//! ```text
//! usage: serve [--stdio | --tcp ADDR] [--workers N] [--queue N]
//!              [--cache N] [--trace FILE] [--high-water N]
//!              [--rate R] [--burst N] [--max-pins N]
//!              [--idle-timeout SECS]
//! ```
//!
//! Speaks the line-delimited JSON protocol documented in
//! `docs/PROTOCOL.md`: one request object per line in, one response
//! object per line out. `--stdio` (the default) serves a single session
//! on stdin/stdout and exits at EOF or `{"op":"shutdown"}`; `--tcp`
//! accepts any number of concurrent connections on the epoll event loop
//! until a client sends shutdown. `--high-water`, `--rate`, `--burst` and
//! `--max-pins` enable admission control (load shedding, per-client rate
//! limits and a per-request instance-size cap — see `docs/OPERATIONS.md`
//! for tuning). On exit the final metrics
//! snapshot is printed to stderr.

use std::process::exit;
use std::time::Duration;

use vlsi_service::{serve_stdio, serve_tcp, ServiceConfig};

const USAGE: &str = "usage: serve [--stdio | --tcp ADDR] [--workers N] [--queue N] [--cache N] \
                     [--trace FILE] [--high-water N] [--rate R] [--burst N] [--max-pins N] \
                     [--idle-timeout SECS]";

struct Args {
    tcp: Option<String>,
    config: ServiceConfig,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        tcp: None,
        config: ServiceConfig::default(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| it.next().ok_or(format!("{flag} needs a value"));
        match arg.as_str() {
            "--stdio" => args.tcp = None,
            "--tcp" => args.tcp = Some(value("--tcp")?),
            "--workers" => {
                args.config.workers = value("--workers")?.parse().map_err(|_| "bad --workers")?
            }
            "--queue" => {
                args.config.queue_capacity = value("--queue")?.parse().map_err(|_| "bad --queue")?
            }
            "--cache" => {
                args.config.cache_capacity = value("--cache")?.parse().map_err(|_| "bad --cache")?
            }
            "--trace" => args.config.trace_path = Some(value("--trace")?.into()),
            "--high-water" => {
                args.config.admission.high_water = value("--high-water")?
                    .parse()
                    .map_err(|_| "bad --high-water")?
            }
            "--rate" => {
                args.config.admission.rate_per_sec =
                    value("--rate")?.parse().map_err(|_| "bad --rate")?
            }
            "--burst" => {
                args.config.admission.burst =
                    value("--burst")?.parse().map_err(|_| "bad --burst")?
            }
            "--max-pins" => {
                args.config.admission.max_pins =
                    value("--max-pins")?.parse().map_err(|_| "bad --max-pins")?
            }
            "--idle-timeout" => {
                args.config.idle_timeout = Duration::from_secs(
                    value("--idle-timeout")?
                        .parse()
                        .map_err(|_| "bad --idle-timeout")?,
                )
            }
            "--help" | "-h" => return Err(USAGE.into()),
            other => return Err(format!("unknown flag `{other}`\n{USAGE}")),
        }
    }
    if args.config.workers == 0 {
        return Err("--workers must be at least 1".into());
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            exit(2);
        }
    };
    let served = match &args.tcp {
        Some(addr) => {
            eprintln!("serving on tcp://{addr} ({} workers)", args.config.workers);
            serve_tcp(args.config, addr.as_str())
        }
        None => serve_stdio(args.config),
    };
    match served {
        Ok(snapshot) => {
            eprintln!(
                "served {} jobs ({} failed, {} cache hits, {} deadline expirations); \
                 latency p50 {}us p99 {}us",
                snapshot.jobs_ok,
                snapshot.jobs_failed,
                snapshot.cache_hits,
                snapshot.deadline_expirations,
                snapshot.p50_us,
                snapshot.p99_us
            );
        }
        Err(e) => {
            eprintln!("serve: {e}");
            exit(1);
        }
    }
}
