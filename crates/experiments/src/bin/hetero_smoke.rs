//! Bounded heterogeneous-partitioning smoke for the tier-1 gate
//! (`scripts/ci.sh`).
//!
//! Generates a scaled `ibm01-like` netgen instance, attaches three
//! resource dimensions per vertex (area, unit cell count, a deterministic
//! synthetic congestion class), fixes a spread of vertices across parts,
//! and runs the direct k-way engine at `k = 4` under the **connectivity
//! (km1) objective** with explicit, mildly asymmetric per-part capacity
//! vectors. The run fails (non-zero exit) unless:
//!
//! * the returned assignment passes the independent legality referee
//!   under the capacity balance (fixity + per-part per-resource maxima),
//! * every hand-summed per-part per-resource load fits its capacity row,
//! * the reported objective matches an independent `CutState`
//!   recomputation and `km1 >= cut` holds.
//!
//! Tunables: `HETERO_SMOKE_SCALE` (netgen scale factor, default `0.1` ≈
//! 1.3k cells) keeps the run bounded on tiny builders.

use std::process::exit;

use vlsi_hypergraph::{
    io::apply_multi_areas, validate_partitioning, CutState, FixedVertices, Hypergraph, Objective,
    PartCapacities, PartId, Partitioning, VertexId,
};
use vlsi_partition::trace::NullSink;
use vlsi_partition::{CancelToken, EngineConfig, Multistart};

const K: usize = 4;
const DIMS: usize = 3;
const SEED: u64 = 9;

/// Per-vertex resource vectors derived deterministically from the
/// instance: `[area, 1, congestion class 0..=3]`.
fn resource_vectors(hg: &Hypergraph) -> Vec<u64> {
    let mut flat = Vec::with_capacity(hg.num_vertices() * DIMS);
    for v in hg.vertices() {
        let area = hg.vertex_weight(v);
        flat.push(area);
        flat.push(1);
        flat.push((v.index() as u64).wrapping_mul(2654435761) % 4);
    }
    flat
}

fn main() {
    let scale: f64 = std::env::var("HETERO_SMOKE_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.1);
    let circuit = vlsi_netgen::instances::ibm01_like_scaled(scale, SEED);
    let flat = resource_vectors(&circuit.hypergraph);
    let hg = apply_multi_areas(&circuit.hypergraph, DIMS, &flat).expect("resource table applies");

    // Fix ~5% of the cells round-robin across all four parts — the
    // paper's fixed-vertices regime on a heterogeneous instance.
    let mut fixed = FixedVertices::all_free(hg.num_vertices());
    let stride = (hg.num_vertices() / (hg.num_vertices() / 20).max(1)).max(1);
    let mut pinned = 0usize;
    for (slot, v) in (0..hg.num_vertices()).step_by(stride).enumerate() {
        fixed.fix(VertexId::from_index(v), PartId::from_index(slot % K));
        pinned += 1;
    }

    // Mildly asymmetric capacity rows: part 0 is a "large" region with
    // ~36% of each resource, the rest get ~28% each (sums to ~120% of
    // the totals, so the matrix is feasible but far from uniform).
    let totals = hg.total_weights().to_vec();
    let row = |frac: f64| -> Vec<u64> {
        totals
            .iter()
            .map(|&t| ((t as f64) * frac).ceil().max(1.0) as u64)
            .collect::<Vec<u64>>()
    };
    let mut caps_flat = row(0.36);
    for _ in 1..K {
        caps_flat.extend(row(0.28));
    }
    let caps = PartCapacities::explicit(K, DIMS, caps_flat).expect("well-shaped capacity matrix");
    caps.check_feasible(hg.total_weights())
        .expect("smoke capacities are feasible by construction");
    let balance = caps.to_balance();

    println!(
        "hetero smoke: {} vertices ({} fixed), {} nets, {} resources, k={K}, objective=km1",
        hg.num_vertices(),
        pinned,
        hg.num_nets(),
        hg.num_resources(),
    );

    let engine = EngineConfig::by_name("kway")
        .expect("kway is registered")
        .with_objective(Objective::KMinus1);
    let never = CancelToken::never();
    let outcome = match Multistart::new(2).run_parallel(
        &hg, &fixed, &balance, 2, SEED, &engine, &NullSink, &NullSink, &never,
    ) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("hetero smoke: partitioning failed: {e}");
            exit(1);
        }
    };

    // Independent legality referee under the capacity balance.
    let p = Partitioning::from_parts(&hg, K, outcome.best.parts.clone())
        .expect("engine output is well-formed");
    let report = validate_partitioning(&hg, &p, &balance, &fixed);
    if !report.is_valid() {
        eprintln!("hetero smoke: referee rejected the partition: {report}");
        exit(1);
    }

    // Hand-summed per-part per-resource loads against the capacity rows.
    let mut loads = [0u64; K * DIMS];
    for (i, part) in outcome.best.parts.iter().enumerate() {
        let weights = hg.vertex_weights(VertexId::from_index(i));
        for (r, &w) in weights.iter().enumerate() {
            loads[part.index() * DIMS + r] += w;
        }
    }
    for part in 0..K {
        for r in 0..DIMS {
            let load = loads[part * DIMS + r];
            let cap = caps.cap(PartId::from_index(part), r);
            if load > cap {
                eprintln!("hetero smoke: part {part} resource {r}: load {load} > capacity {cap}");
                exit(1);
            }
        }
    }

    // The reported value is the km1 objective, re-derived independently.
    let cs = CutState::new(&hg, K, &outcome.best.parts);
    let (cut, km1) = (cs.value(Objective::Cut), cs.value(Objective::KMinus1));
    if outcome.best.cut != km1 {
        eprintln!(
            "hetero smoke: engine reported objective {} but recomputed km1 is {km1}",
            outcome.best.cut
        );
        exit(1);
    }
    if km1 < cut {
        eprintln!("hetero smoke: km1 {km1} < cut {cut} — connectivity must dominate");
        exit(1);
    }

    println!("hetero smoke: legal + feasible; cut {cut}, km1 {km1}");
}
