//! Prints instance statistics and constraint-strength metrics for any
//! hMetis `.hgr` instance (optionally with a `.fix` fixed-vertex file).
//!
//! ```text
//! usage: stats --hgr FILE [--fix FILE]
//! ```

use std::fs::File;
use std::process::exit;

use vlsi_experiments::constraint::constraint_metrics;
use vlsi_hypergraph::io::{read_fix, read_hgr};
use vlsi_hypergraph::stats::{net_size_histogram, vertex_degree_histogram, InstanceStats};
use vlsi_hypergraph::FixedVertices;

fn main() {
    let mut hgr = None::<String>;
    let mut fix = None::<String>;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--hgr" => hgr = it.next(),
            "--fix" => fix = it.next(),
            other => {
                eprintln!("unknown flag `{other}`\nusage: stats --hgr FILE [--fix FILE]");
                exit(2);
            }
        }
    }
    let Some(hgr) = hgr else {
        eprintln!("usage: stats --hgr FILE [--fix FILE]");
        exit(2);
    };

    let hg = match File::open(&hgr)
        .map_err(|e| e.to_string())
        .and_then(|f| read_hgr(f).map_err(|e| e.to_string()))
    {
        Ok(hg) => hg,
        Err(e) => {
            eprintln!("{hgr}: {e}");
            exit(1);
        }
    };
    let fixed = match &fix {
        None => FixedVertices::all_free(hg.num_vertices()),
        Some(path) => match File::open(path)
            .map_err(|e| e.to_string())
            .and_then(|f| read_fix(f, hg.num_vertices()).map_err(|e| e.to_string()))
        {
            Ok(fx) => fx,
            Err(e) => {
                eprintln!("{path}: {e}");
                exit(1);
            }
        },
    };

    let s = InstanceStats::compute(&hg, &fixed);
    println!("instance            {hgr}");
    println!("vertices            {}", s.num_vertices);
    println!("  movable           {}", s.num_cells);
    println!("  fixed             {}", s.num_pads);
    println!("nets                {}", s.num_nets);
    println!("  external          {}", s.num_external_nets);
    println!("pins                {}", s.num_pins);
    println!("avg pins/vertex     {:.2}", s.avg_pins_per_vertex);
    println!("avg pins/net        {:.2}", s.avg_pins_per_net);
    println!("max net size        {}", s.max_net_size);
    println!("max vertex degree   {}", s.max_vertex_degree);
    println!("max weight %        {:.2}", s.max_weight_percent);

    let m = constraint_metrics(&hg, &fixed);
    println!("\nconstraint strength (see the paper's conclusions):");
    println!("  fixed fraction           {:.3}", m.fixed_fraction);
    println!("  terminal adjacency       {:.3}", m.terminal_adjacency);
    println!("  mean terminal pull       {:.3}", m.mean_pull);
    println!(
        "  anchored weight fraction {:.3}",
        m.anchored_weight_fraction
    );

    println!("\nnet-size histogram (2..=10, last bucket = 10+):");
    let hist = net_size_histogram(&hg, 10);
    for (size, count) in hist.iter().enumerate().skip(2) {
        println!("  {size:>3}{} {count}", if size == 10 { "+" } else { " " });
    }
    println!("\ndegree histogram (0..=10, last bucket = 10+):");
    let hist = vertex_degree_histogram(&hg, 10);
    for (deg, count) in hist.iter().enumerate() {
        println!("  {deg:>3}{} {count}", if deg == 10 { "+" } else { " " });
    }
}
