//! Within-pass improvement profiles (Section III analysis).

use vlsi_experiments::opts::Options;
use vlsi_experiments::pass_profile::{render, run_pass_profile};
use vlsi_experiments::table2::PAPER_TABLE2_PERCENTAGES;
use vlsi_netgen::instances::by_name;

fn main() {
    let opts = Options::from_env();
    println!(
        "Within-pass improvement profiles (LIFO-FM, good-regime fixing),\n\
         {} runs, scale {}\n",
        opts.trials, opts.scale
    );
    for name in &opts.circuits {
        let Some(circuit) = by_name(name, opts.scale, opts.seed) else {
            eprintln!("unknown circuit `{name}`");
            std::process::exit(2);
        };
        match run_pass_profile(
            &circuit.hypergraph,
            &PAPER_TABLE2_PERCENTAGES,
            opts.trials,
            opts.seed,
        ) {
            Ok(rows) => println!("{}", render(&circuit.name, &rows).render(opts.csv)),
            Err(e) => {
                eprintln!("{name}: {e}");
                std::process::exit(1);
            }
        }
    }
}
