//! Within-pass improvement profiles (Section III analysis).

use vlsi_experiments::opts::{run_with_trace, Options, TraceRun};
use vlsi_experiments::pass_profile::{render, run_pass_profile_with_sink};
use vlsi_experiments::table2::PAPER_TABLE2_PERCENTAGES;
use vlsi_netgen::instances::by_name;
use vlsi_partition::trace::Sink;

fn main() {
    let opts = Options::from_env();
    let trace = opts.trace.clone();
    run_with_trace(trace.as_deref(), Job(&opts));
}

struct Job<'a>(&'a Options);

impl TraceRun for Job<'_> {
    type Output = ();

    fn run<S: Sink>(self, sink: &S) {
        let opts = self.0;
        println!(
            "Within-pass improvement profiles (LIFO-FM, good-regime fixing),\n\
             {} runs, scale {}\n",
            opts.trials, opts.scale
        );
        for name in &opts.circuits {
            let Some(circuit) = by_name(name, opts.scale, opts.seed) else {
                eprintln!("unknown circuit `{name}`");
                std::process::exit(2);
            };
            match run_pass_profile_with_sink(
                &circuit.hypergraph,
                &PAPER_TABLE2_PERCENTAGES,
                opts.trials,
                opts.seed,
                sink,
            ) {
                Ok(rows) => println!("{}", render(&circuit.name, &rows).render(opts.csv)),
                Err(e) => {
                    eprintln!("{name}: {e}");
                    std::process::exit(1);
                }
            }
        }
    }
}
