//! Quality-at-fixed-cost study: V-cycles + ensemble recombination vs.
//! plain multistart at **equal wall-clock**, on the paper's Figure 1/2
//! fixed-fraction protocol.
//!
//! For each regime (good/rand) and fixed fraction, every trial runs two
//! competitors on the same instance and per-trial seed:
//!
//! * **quality** — `Multistart::new(4).vcycles(2).ensemble(true)`: the
//!   paper-protocol 4 starts, then the iterated-multilevel quality phase
//!   over the retained top starts. Its wall-clock `T_q` is measured.
//! * **plain** — a single 16-start multistart on the same base seed. The
//!   equal-budget answer is `best_of_first(s*)` where `s*` is the largest
//!   start count whose cumulative wall-clock stays within `T_q` (≥ 4, so
//!   the plain side never gets fewer starts than the quality side ran).
//!
//! Cut values on both sides are bit-deterministic functions of the seed;
//! only the budget mapping `T_q -> s*` depends on the machine (reported
//! alongside, as avg equal-time starts). The table prints the average
//! best cut of each competitor and the quality side's average improvement.
//!
//! Flags (shared `Options` conventions): `--trials N` (default 5),
//! `--scale F` (default 0.12), `--seed N` (default 1999), `--csv` for
//! machine-readable rows.

use std::time::Instant;

use vlsi_rng::{ChaCha8Rng, SeedableRng};

use vlsi_experiments::harness::{find_good_solution, paper_balance};
use vlsi_experiments::opts::Options;
use vlsi_experiments::regimes::{FixSchedule, Regime};
use vlsi_netgen::instances::ibm01_like_scaled;
use vlsi_partition::trace::NullSink;
use vlsi_partition::{CancelToken, EngineConfig, MultilevelConfig, Multistart, PartitionError};

/// Starts on the quality side — the paper's default budget.
const QUALITY_STARTS: usize = 4;
/// Start pool on the plain side the equal-time budget selects from.
const PLAIN_STARTS: usize = 16;
/// Fixed fractions studied (percent of vertices pinned).
const FRACTIONS: [f64; 3] = [10.0, 30.0, 50.0];

struct Cell {
    plain_cut: f64,
    quality_cut: f64,
    equal_starts: f64,
    quality_ms: f64,
}

fn run_cell(
    hg: &vlsi_hypergraph::Hypergraph,
    fixed: &vlsi_hypergraph::FixedVertices,
    balance: &vlsi_hypergraph::BalanceConstraint,
    engine: &EngineConfig,
    trials: usize,
    seed: u64,
) -> Result<Cell, PartitionError> {
    let never = CancelToken::never();
    let quality = Multistart::new(QUALITY_STARTS).vcycles(2).ensemble(true);
    let mut sums = Cell {
        plain_cut: 0.0,
        quality_cut: 0.0,
        equal_starts: 0.0,
        quality_ms: 0.0,
    };
    for t in 0..trials {
        let trial_seed = seed ^ (t as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);

        let t0 = Instant::now();
        let q = quality.run_parallel(
            hg, fixed, balance, 1, trial_seed, engine, &NullSink, &NullSink, &never,
        )?;
        let budget = t0.elapsed();

        // The plain competitor replays the exact same per-start seeds
        // (same base seed, same `run_parallel` seeding protocol) with a
        // deeper start pool; the budget picks how much of it counts, so
        // its first QUALITY_STARTS starts are the quality side's starts.
        let p = Multistart::new(PLAIN_STARTS).run_parallel(
            hg, fixed, balance, 1, trial_seed, engine, &NullSink, &NullSink, &never,
        )?;
        let mut s_star = QUALITY_STARTS;
        while s_star < PLAIN_STARTS && p.time_of_first(s_star + 1) <= budget {
            s_star += 1;
        }

        sums.plain_cut += p.best_of_first(s_star).expect("s_star >= 1") as f64;
        sums.quality_cut += q.best.cut as f64;
        sums.equal_starts += s_star as f64;
        sums.quality_ms += budget.as_secs_f64() * 1e3;
    }
    let n = trials as f64;
    Ok(Cell {
        plain_cut: sums.plain_cut / n,
        quality_cut: sums.quality_cut / n,
        equal_starts: sums.equal_starts / n,
        quality_ms: sums.quality_ms / n,
    })
}

fn main() {
    let opts = Options::from_env();
    let circuit = ibm01_like_scaled(opts.scale, opts.seed);
    let hg = &circuit.hypergraph;
    let balance = paper_balance(hg);
    let engine = EngineConfig::by_name("ml").expect("ml is registered");
    let good = find_good_solution(hg, &balance, &MultilevelConfig::default(), 4, 7)
        .expect("reference solution");

    println!(
        "V-cycle + ensemble vs plain multistart at equal wall-clock\n\
         ibm01-like scale {} ({} vertices, {} nets), {} trials, seed {}\n\
         quality = {QUALITY_STARTS} starts + 2 V-cycles + ensemble; \
         plain = equal-time starts from a {PLAIN_STARTS}-start pool\n",
        opts.scale,
        hg.num_vertices(),
        hg.num_nets(),
        opts.trials,
        opts.seed
    );
    if opts.csv {
        println!("regime,fixed_pct,plain_cut,quality_cut,delta_pct,equal_starts,quality_ms");
    } else {
        println!(
            "{:<6} {:>6} {:>12} {:>12} {:>8} {:>12} {:>10}",
            "regime", "fix%", "plain cut", "quality cut", "delta%", "eq. starts", "quality ms"
        );
    }
    for regime in [Regime::Good, Regime::Random] {
        for pct in FRACTIONS {
            let mut rng = ChaCha8Rng::seed_from_u64(3);
            let schedule = FixSchedule::new(hg, regime, &good.parts, &mut rng);
            let fixed = schedule.at_percent(pct);
            let cell = match run_cell(hg, &fixed, &balance, &engine, opts.trials, opts.seed) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("{} {pct}%: {e}", regime.label());
                    std::process::exit(1);
                }
            };
            let delta = 100.0 * (cell.plain_cut - cell.quality_cut) / cell.plain_cut.max(1.0);
            if opts.csv {
                println!(
                    "{},{pct},{:.1},{:.1},{delta:.2},{:.1},{:.1}",
                    regime.label(),
                    cell.plain_cut,
                    cell.quality_cut,
                    cell.equal_starts,
                    cell.quality_ms
                );
            } else {
                println!(
                    "{:<6} {:>6} {:>12.1} {:>12.1} {:>8.2} {:>12.1} {:>10.1}",
                    regime.label(),
                    pct,
                    cell.plain_cut,
                    cell.quality_cut,
                    delta,
                    cell.equal_starts,
                    cell.quality_ms
                );
            }
        }
    }
}
