//! Regenerates the paper's Table IV (parameters of the derived
//! fixed-terminal benchmarks).

use vlsi_experiments::opts::Options;
use vlsi_experiments::table4;
use vlsi_netgen::instances::by_name;

fn main() {
    let opts = Options::from_env();
    println!(
        "Table IV: parameters of fixed-terminal benchmarks derived from\n\
         placements (blocks A-D x cutlines V/H), scale {}\n",
        opts.scale
    );
    let mut all = Vec::new();
    for name in &opts.circuits {
        let Some(circuit) = by_name(name, opts.scale, opts.seed) else {
            eprintln!("unknown circuit `{name}`");
            std::process::exit(2);
        };
        all.extend(table4::derive(&circuit, None));
    }
    print!("{}", table4::render(&all).render(opts.csv));
}
