//! Regenerates the paper's Table II (LIFO-FM pass statistics vs fixed %).

use vlsi_experiments::opts::Options;
use vlsi_experiments::table2::{self, PAPER_TABLE2_PERCENTAGES};
use vlsi_netgen::instances::by_name;

fn main() {
    let opts = Options::from_env();
    println!(
        "Table II: avg passes/run and avg % nodes moved per pass (excl. first),\n\
         LIFO-FM, good-regime fixing, {} runs, scale {}\n",
        opts.trials, opts.scale
    );
    for name in &opts.circuits {
        let Some(circuit) = by_name(name, opts.scale, opts.seed) else {
            eprintln!("unknown circuit `{name}`");
            std::process::exit(2);
        };
        match table2::run_table2(
            &circuit.hypergraph,
            &PAPER_TABLE2_PERCENTAGES,
            opts.trials,
            opts.seed,
        ) {
            Ok(rows) => println!("{}", table2::render(&circuit.name, &rows).render(opts.csv)),
            Err(e) => {
                eprintln!("{name}: {e}");
                std::process::exit(1);
            }
        }
    }
}
