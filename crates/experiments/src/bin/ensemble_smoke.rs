//! Bounded quality-phase smoke for the tier-1 gate (`scripts/ci.sh`).
//!
//! Generates a scaled `ibm01-like` netgen instance, pins **30% of the
//! cells in the paper's good regime** (fixed to the side a reference
//! multilevel solution put them on), and runs the multistart driver twice
//! at equal start count: once plain, once with `.vcycles(2).ensemble(true)`.
//! The run fails (non-zero exit) unless:
//!
//! * the quality run's answer passes the independent legality referee
//!   (fixity + balance) — V-cycling and recombination must never leak an
//!   illegal or fixity-violating partition,
//! * its best cut is **no worse** than the plain run's best at the same
//!   seed — the quality phase only ever improves the incumbent,
//! * the trace stream recorded at least one completed V-cycle, so the
//!   phase demonstrably ran rather than being skipped.
//!
//! Tunables: `ENSEMBLE_SMOKE_SCALE` (netgen scale factor, default `0.1` ≈
//! 1.3k cells) keeps the run bounded on tiny builders.

use std::process::exit;

use vlsi_rng::{ChaCha8Rng, SeedableRng};

use vlsi_experiments::harness::{find_good_solution, paper_balance};
use vlsi_experiments::regimes::{FixSchedule, Regime};
use vlsi_hypergraph::{validate_partitioning, Fixity, Partitioning};
use vlsi_partition::trace::{CounterSink, NullSink};
use vlsi_partition::{CancelToken, EngineConfig, MultilevelConfig, Multistart};

const SEED: u64 = 23;
const STARTS: usize = 4;
const FIXED_PERCENT: f64 = 30.0;

fn main() {
    let scale: f64 = std::env::var("ENSEMBLE_SMOKE_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.1);
    let circuit = vlsi_netgen::instances::ibm01_like_scaled(scale, SEED);
    let hg = &circuit.hypergraph;
    let balance = paper_balance(hg);
    let good = match find_good_solution(hg, &balance, &MultilevelConfig::default(), 4, 7) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("ensemble smoke: reference solution failed: {e}");
            exit(1);
        }
    };
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let schedule = FixSchedule::new(hg, Regime::Good, &good.parts, &mut rng);
    let fixed = schedule.at_percent(FIXED_PERCENT);
    let pinned = hg
        .vertices()
        .filter(|&v| fixed.fixity(v) != Fixity::Free)
        .count();

    println!(
        "ensemble smoke: {} vertices ({pinned} fixed, good regime), {} nets, {STARTS} starts",
        hg.num_vertices(),
        hg.num_nets(),
    );

    let engine = EngineConfig::by_name("ml").expect("ml is registered");
    let never = CancelToken::never();
    let run = |driver: &Multistart, sink: &CounterSink| {
        driver.run_parallel(
            hg, &fixed, &balance, 2, SEED, &engine, sink, &NullSink, &never,
        )
    };

    let counters = CounterSink::new();
    let plain = match run(&Multistart::new(STARTS), &counters) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("ensemble smoke: plain multistart failed: {e}");
            exit(1);
        }
    };
    let quality_driver = Multistart::new(STARTS).vcycles(2).ensemble(true);
    let quality = match run(&quality_driver, &counters) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("ensemble smoke: quality run failed: {e}");
            exit(1);
        }
    };

    // The quality phase must never worsen the incumbent best.
    if quality.best.cut > plain.best.cut {
        eprintln!(
            "ensemble smoke: quality best {} worse than plain best {}",
            quality.best.cut, plain.best.cut
        );
        exit(1);
    }

    // Independent legality referee: fixity and balance survive V-cycles
    // and cluster recombination.
    let p = Partitioning::from_parts(hg, 2, quality.best.parts.clone())
        .expect("driver output is well-formed");
    let report = validate_partitioning(hg, &p, &balance, &fixed);
    if !report.is_valid() {
        eprintln!("ensemble smoke: referee rejected the quality partition: {report}");
        exit(1);
    }

    // The phase must demonstrably have run: at least one completed
    // V-cycle in the trace stream.
    let snap = counters.snapshot();
    if snap.vcycles == 0 {
        eprintln!("ensemble smoke: no V-cycle completed ({snap})");
        exit(1);
    }

    println!(
        "ensemble smoke: legal; plain best {} -> quality best {} \
         ({} vcycles, {} recombinations)",
        plain.best.cut, quality.best.cut, snap.vcycles, snap.recombinations
    );
}
