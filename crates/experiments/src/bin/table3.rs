//! Regenerates the paper's Table III (pass cutoff effects on cut and time).

use vlsi_experiments::opts::Options;
use vlsi_experiments::table2::PAPER_TABLE2_PERCENTAGES;
use vlsi_experiments::table3::{self, PAPER_CUTOFFS};
use vlsi_netgen::instances::by_name;

fn main() {
    let opts = Options::from_env();
    println!(
        "Table III: avg cut (avg CPU seconds) of single LIFO-FM starts under\n\
         pass cutoffs, good-regime fixing, {} runs, scale {}\n",
        opts.trials, opts.scale
    );
    for name in &opts.circuits {
        let Some(circuit) = by_name(name, opts.scale, opts.seed) else {
            eprintln!("unknown circuit `{name}`");
            std::process::exit(2);
        };
        match table3::run_table3(
            &circuit.hypergraph,
            &PAPER_TABLE2_PERCENTAGES,
            &PAPER_CUTOFFS,
            opts.trials,
            opts.seed,
        ) {
            Ok(cells) => println!(
                "{}",
                table3::render(&circuit.name, &cells, &PAPER_CUTOFFS).render(opts.csv)
            ),
            Err(e) => {
                eprintln!("{name}: {e}");
                std::process::exit(1);
            }
        }
    }
}
