//! Command-line partitioner: reads an hMetis `.hgr` file (and optionally a
//! `.fix` fixed-vertex file), partitions it, and writes/prints the
//! solution — the downstream-user entry point of this repository.
//!
//! ```text
//! usage: partition --hgr FILE [--fix FILE] [--k N] [--tolerance F]
//!                  [--starts N] [--seed N] [--threads N] [--engine NAME]
//!                  [--objective cut|km1] [--are FILE] [--resource-dims N]
//!                  [--part-capacities SPEC] [--vcycles N] [--ensemble]
//!                  [--out FILE] [--trace FILE]
//!        partition --list-engines
//! ```
//!
//! `--engine` accepts any name from the `vlsi_partition` engine registry
//! (`--list-engines` dumps it); the default is the paper's multilevel
//! engine.
//!
//! The heterogeneous surface: `--are FILE` loads multi-dimensional vertex
//! weights (one whitespace-separated row per vertex, uniform arity;
//! `--resource-dims N` asserts the arity), `--part-capacities
//! "100,8;60,4;..."` replaces the uniform tolerance balance with explicit
//! per-part capacity vectors (parts separated by `;`, one capacity per
//! resource separated by `,`), and `--objective km1` switches the engines
//! from the cut to the connectivity (λ−1) metric.
//!
//! Starts run on `--threads` OS threads (default: the machine's available
//! parallelism) with deterministic per-start seeding, so multistart
//! results are identical for every thread count. With a single start the
//! budget goes to the engine's internal phases instead; there determinism
//! is two-regime: `--threads 1` replays the sequential refinement
//! bit-for-bit, while any `--threads N` with `N >= 2` selects the
//! synchronous-round parallel k-way refinement (engines `rb`/`kway`) and
//! returns one identical answer regardless of `N`. `--trace` streams
//! per-pass events of every start into one JSONL file, which only makes
//! sense on a single interleaving — it forces the sequential driver.
//!
//! The quality-at-fixed-cost levers: `--vcycles N` runs up to `N` iterated
//! multilevel V-cycles over the best start (stopping early without strict
//! improvement), and `--ensemble` recombines the agreement clusters of the
//! top starts into a final constrained solve. Both only ever improve the
//! reported best and keep every determinism guarantee above.

use std::fs::File;
use std::io::Write as _;
use std::process::exit;

use vlsi_rng::ChaCha8Rng;
use vlsi_rng::SeedableRng;

use vlsi_experiments::opts::{run_with_trace, TraceRun};
use vlsi_hypergraph::io::{apply_multi_areas, read_fix, read_hgr, read_multi_are};
use vlsi_hypergraph::{
    validate_partitioning, BalanceConstraint, FixedVertices, Hypergraph, Objective, PartCapacities,
    PartId, Partitioning, Tolerance,
};
use vlsi_partition::trace::{NullSink, Sink};
use vlsi_partition::{
    CancelToken, EngineConfig, Multistart, MultistartOutcome, PartitionError, RunCtx, ENGINES,
};

struct Args {
    hgr: String,
    fix: Option<String>,
    k: usize,
    tolerance: f64,
    objective: Objective,
    /// Multi-resource vertex weights (`.are` file, one row per vertex).
    are: Option<String>,
    /// Expected arity of the `.are` rows; mismatch is an error.
    resource_dims: Option<usize>,
    /// Explicit per-part capacity vectors replacing the tolerance balance.
    part_capacities: Option<PartCapacities>,
    /// `None` = choose automatically from the fixed fraction (the paper's
    /// guideline via `vlsi_partition::policy`).
    starts: Option<usize>,
    seed: u64,
    /// OS threads for the multistart driver; `--trace` forces 1 (the
    /// traced run must be a single deterministic event interleaving).
    threads: usize,
    engine: EngineConfig,
    /// Iterated-multilevel V-cycles applied to the best start.
    vcycles: usize,
    /// Ensemble recombination over the retained top starts.
    ensemble: bool,
    out: Option<String>,
    trace: Option<String>,
    list_engines: bool,
}

const USAGE: &str = "usage: partition --hgr FILE [--fix FILE] [--k N] [--tolerance F] [--starts N|auto] [--seed N] [--threads N] [--engine NAME] [--objective cut|km1] [--are FILE] [--resource-dims N] [--part-capacities SPEC] [--vcycles N] [--ensemble] [--out FILE] [--trace FILE]\n       partition --list-engines";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        hgr: String::new(),
        fix: None,
        k: 2,
        tolerance: 0.02,
        objective: Objective::Cut,
        are: None,
        resource_dims: None,
        part_capacities: None,
        starts: Some(4),
        seed: 1,
        threads: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        engine: EngineConfig::by_name("ml").expect("ml is registered"),
        vcycles: 0,
        ensemble: false,
        out: None,
        trace: None,
        list_engines: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| it.next().ok_or(format!("{flag} needs a value"));
        match arg.as_str() {
            "--hgr" => args.hgr = value("--hgr")?,
            "--fix" => args.fix = Some(value("--fix")?),
            "--k" => args.k = value("--k")?.parse().map_err(|_| "bad --k")?,
            "--objective" => {
                args.objective = match value("--objective")?.as_str() {
                    "cut" => Objective::Cut,
                    "km1" => Objective::KMinus1,
                    other => return Err(format!("bad --objective `{other}` (cut or km1)")),
                }
            }
            "--are" => args.are = Some(value("--are")?),
            "--resource-dims" => {
                args.resource_dims = Some(
                    value("--resource-dims")?
                        .parse()
                        .map_err(|_| "bad --resource-dims")?,
                )
            }
            "--part-capacities" => {
                args.part_capacities = Some(
                    value("--part-capacities")?
                        .parse()
                        .map_err(|e| format!("bad --part-capacities: {e}"))?,
                )
            }
            "--tolerance" => {
                args.tolerance = value("--tolerance")?
                    .parse()
                    .map_err(|_| "bad --tolerance")?
            }
            "--starts" => {
                let v = value("--starts")?;
                args.starts = if v == "auto" {
                    None
                } else {
                    Some(v.parse().map_err(|_| "bad --starts")?)
                };
            }
            "--seed" => args.seed = value("--seed")?.parse().map_err(|_| "bad --seed")?,
            "--threads" => {
                args.threads = value("--threads")?.parse().map_err(|_| "bad --threads")?
            }
            "--engine" => {
                let name = value("--engine")?;
                args.engine = EngineConfig::by_name(&name)
                    .map_err(|e| format!("{e}\n(see --list-engines)"))?;
            }
            "--vcycles" => {
                args.vcycles = value("--vcycles")?.parse().map_err(|_| "bad --vcycles")?
            }
            "--ensemble" => args.ensemble = true,
            "--out" => args.out = Some(value("--out")?),
            "--trace" => args.trace = Some(value("--trace")?),
            "--list-engines" => args.list_engines = true,
            "--help" | "-h" => return Err(USAGE.into()),
            other => return Err(format!("unknown flag `{other}`\n{USAGE}")),
        }
    }
    if args.list_engines {
        return Ok(args);
    }
    if args.hgr.is_empty() {
        return Err(format!("--hgr is required\n{USAGE}"));
    }
    if args.starts == Some(0) {
        return Err("--starts must be at least 1".into());
    }
    if args.threads == 0 {
        return Err("--threads must be at least 1".into());
    }
    if args.k < 2 {
        return Err("--k must be at least 2".into());
    }
    if args.resource_dims.is_some() && args.are.is_none() {
        return Err("--resource-dims needs --are".into());
    }
    if let Some(caps) = &args.part_capacities {
        if caps.num_parts() != args.k {
            return Err(format!(
                "--part-capacities has {} parts, --k is {}",
                caps.num_parts(),
                args.k
            ));
        }
    }
    Ok(args)
}

fn print_engine_registry() {
    println!("available engines (usable as --engine NAME or any alias):");
    for info in ENGINES {
        let aliases = if info.aliases.is_empty() {
            String::new()
        } else {
            format!(" (alias: {})", info.aliases.join(", "))
        };
        println!("  {:<6}{aliases:<22} {}", info.name, info.summary);
    }
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            exit(2);
        }
    };
    if args.list_engines {
        print_engine_registry();
        return;
    }

    let hg = match File::open(&args.hgr)
        .map_err(|e| e.to_string())
        .and_then(|f| read_hgr(f).map_err(|e| e.to_string()))
    {
        Ok(hg) => hg,
        Err(e) => {
            eprintln!("{}: {e}", args.hgr);
            exit(1);
        }
    };
    let hg = match &args.are {
        None => hg,
        Some(path) => {
            let loaded = File::open(path)
                .map_err(|e| e.to_string())
                .and_then(|f| read_multi_are(f, hg.num_vertices()).map_err(|e| e.to_string()))
                .and_then(|(dims, weights)| {
                    if let Some(expect) = args.resource_dims {
                        if dims != expect {
                            return Err(format!(
                                "has {dims} resource dimensions, --resource-dims says {expect}"
                            ));
                        }
                    }
                    apply_multi_areas(&hg, dims, &weights).map_err(|e| e.to_string())
                });
            match loaded {
                Ok(hg) => {
                    println!("{path}: {} resource dimensions", hg.num_resources());
                    hg
                }
                Err(e) => {
                    eprintln!("{path}: {e}");
                    exit(1);
                }
            }
        }
    };
    let fixed = match &args.fix {
        None => FixedVertices::all_free(hg.num_vertices()),
        Some(path) => match File::open(path)
            .map_err(|e| e.to_string())
            .and_then(|f| read_fix(f, hg.num_vertices()).map_err(|e| e.to_string()))
        {
            Ok(fx) => fx,
            Err(e) => {
                eprintln!("{path}: {e}");
                exit(1);
            }
        },
    };

    println!(
        "{}: {} vertices ({} fixed), {} nets, {} pins",
        args.hgr,
        hg.num_vertices(),
        fixed.num_fixed(),
        hg.num_nets(),
        hg.num_pins()
    );

    let starts = args.starts.unwrap_or_else(|| {
        let s = vlsi_partition::policy::recommended_starts(fixed.fixed_fraction());
        println!(
            "auto start count: {s} ({}% of vertices fixed)",
            (100.0 * fixed.fixed_fraction()).round()
        );
        s
    });

    let balance = match &args.part_capacities {
        Some(caps) => {
            if caps.num_resources() != hg.num_resources() {
                eprintln!(
                    "--part-capacities has {} resources per part, the instance has {}",
                    caps.num_resources(),
                    hg.num_resources()
                );
                exit(1);
            }
            if let Err(e) = caps.check_feasible(hg.total_weights()) {
                eprintln!("--part-capacities cannot hold the instance: {e}");
                exit(1);
            }
            caps.to_balance()
        }
        None if args.k == 2 => {
            BalanceConstraint::bisection(hg.total_weight(), Tolerance::Relative(args.tolerance))
        }
        None => BalanceConstraint::even(
            args.k,
            hg.total_weights(),
            Tolerance::Relative(args.tolerance),
        ),
    };
    let base_engine = args.engine.with_objective(args.objective);
    println!("engine: {}", base_engine.info().summary);
    if args.vcycles > 0 || args.ensemble {
        println!(
            "quality phase: {} V-cycle(s), ensemble recombination {}",
            args.vcycles,
            if args.ensemble { "on" } else { "off" }
        );
    }
    let driver = Multistart::new(starts)
        .vcycles(args.vcycles)
        .ensemble(args.ensemble)
        .objective(args.objective);
    let solved = if args.trace.is_some() {
        // A traced run must be one deterministic event interleaving, so the
        // sequential driver carries the sink through every start.
        run_with_trace(
            args.trace.as_deref().map(std::path::Path::new),
            Solve {
                hg: &hg,
                fixed: &fixed,
                balance: &balance,
                engine: &base_engine,
                driver: &driver,
                seed: args.seed,
            },
        )
    } else {
        // One start cannot use multistart-level parallelism, so hand the
        // whole thread budget to the engine's internal parallel phases;
        // with several starts the workers stay single-threaded to avoid
        // oversubscription. Either way the result is thread-count
        // invariant.
        let engine = if starts == 1 {
            base_engine.with_threads(args.threads)
        } else {
            base_engine
        };
        let never = CancelToken::never();
        driver.run_parallel(
            &hg,
            &fixed,
            &balance,
            args.threads,
            args.seed,
            &engine,
            &NullSink,
            &NullSink,
            &never,
        )
    };
    let outcome = match solved {
        Ok(o) => o,
        Err(e) => {
            eprintln!("partitioning failed: {e}");
            exit(1);
        }
    };

    let p = Partitioning::from_parts(&hg, args.k, outcome.best.parts.clone())
        .expect("engine output is well-formed");
    let report = validate_partitioning(&hg, &p, &balance, &fixed);
    // One load figure per part: the scalar load for single-resource
    // instances, the comma-joined resource vector otherwise.
    let loads: Vec<String> = (0..args.k)
        .map(|part| {
            (0..hg.num_resources())
                .map(|r| p.load(PartId::from_index(part), r).to_string())
                .collect::<Vec<_>>()
                .join(",")
        })
        .collect();
    let metric = match args.objective {
        Objective::KMinus1 => "km1",
        _ => "cut",
    };
    println!(
        "best {metric} over {} starts: {} ({}; loads {})",
        starts,
        outcome.best.cut,
        report,
        loads.join(" / "),
    );
    for (i, s) in outcome.starts.iter().enumerate() {
        println!(
            "  start {}: {metric} {} in {:.3}s",
            i + 1,
            s.cut,
            s.elapsed.as_secs_f64()
        );
    }

    if let Some(out) = &args.out {
        let mut f = match File::create(out) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("{out}: {e}");
                exit(1);
            }
        };
        for part in &outcome.best.parts {
            if let Err(e) = writeln!(f, "{}", part.0) {
                eprintln!("{out}: {e}");
                exit(1);
            }
        }
        println!("wrote assignment to {out}");
    }
    if !report.is_valid() {
        exit(3);
    }
}

/// The multistart protocol with every start traced into the `--trace`
/// sink (monomorphised away entirely when no trace file was requested).
struct Solve<'a> {
    hg: &'a Hypergraph,
    fixed: &'a FixedVertices,
    balance: &'a BalanceConstraint,
    engine: &'a EngineConfig,
    driver: &'a Multistart,
    seed: u64,
}

impl TraceRun for Solve<'_> {
    type Output = Result<MultistartOutcome, PartitionError>;

    fn run<S: Sink>(self, sink: &S) -> Self::Output {
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        self.driver.run(
            self.hg,
            self.fixed,
            self.balance,
            self.engine,
            RunCtx::new(&mut rng).with_sink(sink),
        )
    }
}
