//! Regenerates the paper's Table I (Rent's-rule block-size thresholds).

use vlsi_experiments::opts::Options;
use vlsi_experiments::table1;

fn main() {
    let opts = Options::from_env();
    println!("Table I: block sizes below which the expected fixed fraction");
    println!("exceeds 5%/10%/20% (k = 3.5)\n");
    print!("{}", table1::render().render(opts.csv));
}
