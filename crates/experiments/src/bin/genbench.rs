//! Generates fixed-terminal benchmark suites on disk: for each requested
//! circuit, the eight standard block instances (A–D × V/H) are written as
//! hMetis `.hgr` + `.fix` pairs — the deliverable the paper's Section IV
//! proposes for the community.
//!
//! ```text
//! usage: genbench [--scale F] [--seed N] [--circuit NAME]... [--dir PATH]
//! ```

use std::fs::{self, File};
use std::path::PathBuf;

use vlsi_experiments::opts::Options;
use vlsi_experiments::table4;
use vlsi_hypergraph::io::{write_fix, write_hgr};
use vlsi_netgen::instances::by_name;

fn main() {
    // Reuse the standard options; an extra --dir is parsed from the env.
    let mut dir = PathBuf::from("benchmarks");
    let mut passthrough = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        if arg == "--dir" {
            match it.next() {
                Some(d) => dir = PathBuf::from(d),
                None => {
                    eprintln!("--dir needs a value");
                    std::process::exit(2);
                }
            }
        } else {
            passthrough.push(arg);
        }
    }
    let opts = match Options::parse(passthrough) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };

    if let Err(e) = fs::create_dir_all(&dir) {
        eprintln!("{}: {e}", dir.display());
        std::process::exit(1);
    }
    let mut all = Vec::new();
    for name in &opts.circuits {
        let Some(circuit) = by_name(name, opts.scale, opts.seed) else {
            eprintln!("unknown circuit `{name}` (skipped)");
            continue;
        };
        for inst in table4::derive(&circuit, None) {
            let hgr = dir.join(format!("{}.hgr", inst.name));
            let fix = dir.join(format!("{}.fix", inst.name));
            let write = (|| -> std::io::Result<()> {
                write_hgr(File::create(&hgr)?, &inst.hypergraph)?;
                write_fix(File::create(&fix)?, &inst.fixed)?;
                Ok(())
            })();
            if let Err(e) = write {
                eprintln!("{}: {e}", inst.name);
                std::process::exit(1);
            }
            all.push(inst);
        }
    }
    print!("{}", table4::render(&all).render(opts.csv));
    println!("\nwrote {} instance pairs to {}", all.len(), dir.display());
}
