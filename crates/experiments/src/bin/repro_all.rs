//! Runs the complete reproduction battery: Table I, Figures 1–2, Tables
//! II–IV, printing everything in one report (the source of EXPERIMENTS.md).
//!
//! With `--trace PATH`, the structured event stream of every measured run
//! (level brackets, FM passes, multistart records) is written as JSONL to
//! PATH — see docs/TRACING.md for the schema.

use vlsi_experiments::figures::{run_figure_with_sink, FigureConfig};
use vlsi_experiments::opts::{run_with_trace, Options, TraceRun};
use vlsi_experiments::regimes::Regime;
use vlsi_experiments::table2::{self, PAPER_TABLE2_PERCENTAGES};
use vlsi_experiments::table3::{self, PAPER_CUTOFFS};
use vlsi_experiments::{table1, table4};
use vlsi_netgen::instances::by_name;
use vlsi_partition::trace::Sink;

fn main() {
    let opts = Options::from_env();
    let trace = opts.trace.clone();
    run_with_trace(trace.as_deref(), Battery(&opts));
}

struct Battery<'a>(&'a Options);

impl TraceRun for Battery<'_> {
    type Output = ();

    fn run<S: Sink>(self, sink: &S) {
        run_battery(self.0, sink);
    }
}

fn run_battery<S: Sink>(opts: &Options, sink: &S) {
    println!(
        "# Reproduction battery (scale {}, trials {}, seed {})\n",
        opts.scale, opts.trials, opts.seed
    );

    println!("## Table I\n");
    println!("{}", table1::render().render(opts.csv));

    let circuits: Vec<_> = opts
        .circuits
        .iter()
        .filter_map(|name| {
            let c = by_name(name, opts.scale, opts.seed);
            if c.is_none() {
                eprintln!("unknown circuit `{name}` (skipped)");
            }
            c
        })
        .collect();

    println!("## Figures 1-2\n");
    for circuit in &circuits {
        let config = FigureConfig {
            trials: opts.trials,
            seed: opts.seed,
            ..FigureConfig::default()
        };
        match run_figure_with_sink(&circuit.name, &circuit.hypergraph, &config, sink) {
            Ok(fig) => {
                println!("{}", fig.render().render(opts.csv));
                println!("reference good cut: {}", fig.good_cut);
                for regime in [Regime::Good, Regime::Random] {
                    if let Some(p) = fig.single_start_sufficient_from(regime, 0.05) {
                        println!(
                            "{}: one start within 5% of eight starts from {p}% fixed",
                            regime.label()
                        );
                    }
                }
                if let Some((pct, cut)) = fig.nonmonotonic_peak(Regime::Good) {
                    println!("good: nonmonotonic quality peak at {pct}% fixed (raw@8 = {cut:.1})");
                }
                println!();
            }
            Err(e) => eprintln!("{}: {e}", circuit.name),
        }
    }

    println!("## Table II\n");
    for circuit in &circuits {
        match table2::run_table2_with_sink(
            &circuit.hypergraph,
            &PAPER_TABLE2_PERCENTAGES,
            opts.trials,
            opts.seed,
            sink,
        ) {
            Ok(rows) => println!("{}", table2::render(&circuit.name, &rows).render(opts.csv)),
            Err(e) => eprintln!("{}: {e}", circuit.name),
        }
    }

    println!("## Table III\n");
    for circuit in &circuits {
        match table3::run_table3_with_sink(
            &circuit.hypergraph,
            &PAPER_TABLE2_PERCENTAGES,
            &PAPER_CUTOFFS,
            opts.trials,
            opts.seed,
            sink,
        ) {
            Ok(cells) => println!(
                "{}",
                table3::render(&circuit.name, &cells, &PAPER_CUTOFFS).render(opts.csv)
            ),
            Err(e) => eprintln!("{}: {e}", circuit.name),
        }
    }

    println!("## Table IV\n");
    let mut all = Vec::new();
    for circuit in &circuits {
        all.extend(table4::derive(circuit, None));
    }
    print!("{}", table4::render(&all).render(opts.csv));
}
