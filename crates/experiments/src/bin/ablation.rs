//! Quality ablation of the multilevel engine's design choices.

use vlsi_experiments::ablation::{render, run_ablation, standard_variants};
use vlsi_experiments::opts::Options;
use vlsi_netgen::instances::by_name;

fn main() {
    let opts = Options::from_env();
    let percentages = [0.0, 10.0, 30.0];
    println!(
        "Engine ablation: avg cut (avg seconds) per variant, good-regime\n\
         fixing, {} runs, scale {}\n",
        opts.trials, opts.scale
    );
    for name in &opts.circuits {
        let Some(circuit) = by_name(name, opts.scale, opts.seed) else {
            eprintln!("unknown circuit `{name}`");
            std::process::exit(2);
        };
        match run_ablation(
            &circuit.hypergraph,
            &standard_variants(),
            &percentages,
            opts.trials,
            opts.seed,
        ) {
            Ok(cells) => println!(
                "{}",
                render(&circuit.name, &cells, &percentages).render(opts.csv)
            ),
            Err(e) => {
                eprintln!("{name}: {e}");
                std::process::exit(1);
            }
        }
    }
}
