//! Runs the multiway (k-way) fixed-terminals sweep — the paper's
//! future-work question 1.

use vlsi_experiments::multiway::{run_multiway, MultiwayConfig};
use vlsi_experiments::opts::Options;
use vlsi_experiments::regimes::Regime;
use vlsi_netgen::instances::by_name;

fn main() {
    let opts = Options::from_env();
    println!(
        "Multiway (k = 4) fixed-terminals sweep, {} trials, scale {}\n",
        opts.trials, opts.scale
    );
    for name in &opts.circuits {
        let Some(circuit) = by_name(name, opts.scale, opts.seed) else {
            eprintln!("unknown circuit `{name}`");
            std::process::exit(2);
        };
        let config = MultiwayConfig {
            trials: opts.trials,
            seed: opts.seed,
            ..MultiwayConfig::default()
        };
        match run_multiway(&circuit.name, &circuit.hypergraph, &config) {
            Ok(sweep) => {
                println!("{}", sweep.render().render(opts.csv));
                if !opts.csv {
                    println!("reference good k-1 objective: {}", sweep.good_kminus1);
                    let rand = sweep.regime_points(Regime::Random);
                    if let (Some(first), Some(last)) = (rand.first(), rand.last()) {
                        println!(
                            "rand k-1 rises {:.0} -> {:.0} over the sweep\n",
                            first.avg_kminus1, last.avg_kminus1
                        );
                    }
                }
            }
            Err(e) => {
                eprintln!("{name}: {e}");
                std::process::exit(1);
            }
        }
    }
}
