//! Regenerates the paper's Figures 1 and 2 (fixed-fraction sweeps: raw
//! cut, normalized cut and CPU time for 1/2/4/8 starts, good and rand
//! regimes).

use vlsi_experiments::figures::{run_figure, FigureConfig};
use vlsi_experiments::opts::Options;
use vlsi_experiments::regimes::Regime;
use vlsi_netgen::instances::by_name;

fn main() {
    let opts = Options::from_env();
    println!(
        "Figures 1-2: multilevel partitioner, 2% balance, actual areas,\n\
         {} trials, scale {}\n",
        opts.trials, opts.scale
    );
    for name in &opts.circuits {
        let Some(circuit) = by_name(name, opts.scale, opts.seed) else {
            eprintln!("unknown circuit `{name}`");
            std::process::exit(2);
        };
        let config = FigureConfig {
            trials: opts.trials,
            seed: opts.seed,
            ..FigureConfig::default()
        };
        match run_figure(&circuit.name, &circuit.hypergraph, &config) {
            Ok(fig) => {
                println!("{}", fig.render().render(opts.csv));
                if !opts.csv {
                    println!("reference good cut: {}", fig.good_cut);
                    for regime in [Regime::Good, Regime::Random] {
                        match fig.single_start_sufficient_from(regime, 0.05) {
                            Some(p) => println!(
                                "{}: one start within 5% of eight starts from {p}% fixed",
                                regime.label()
                            ),
                            None => println!(
                                "{}: one start never within 5% of eight starts",
                                regime.label()
                            ),
                        }
                    }
                    if let Some((pct, cut)) = fig.nonmonotonic_peak(Regime::Good) {
                        println!(
                            "good: nonmonotonic quality peak at {pct}% fixed (raw@8 = {cut:.1}) — \
                             the paper's overconstrained-instance effect"
                        );
                    }
                    println!();
                }
            }
            Err(e) => {
                eprintln!("{name}: {e}");
                std::process::exit(1);
            }
        }
    }
}
