//! Concurrent load generator for the `vlsi-service` TCP front end.
//!
//! ```text
//! usage: loadgen [--addr HOST:PORT | --spawn] [--connections N]
//!                [--requests N] [--warm-ratio F] [--seed S]
//!                [--vertices N] [--k K] [--workers N] [--engine NAME]
//! ```
//!
//! Opens `--connections` concurrent TCP connections (one client thread
//! each) and drives `--requests` jobs down every connection: the first
//! is always a cold solve, and each subsequent job is a **warm-start**
//! against the connection's latest solution id with probability
//! `--warm-ratio` (with a small per-request net delta so the instance
//! genuinely changes), or a fresh cold solve otherwise. Latencies are
//! measured client-side per class and reported as a single JSON summary
//! line on stdout:
//!
//! ```json
//! {"connections":32,"requests":512,"errors":0,
//!  "cold":{"count":288,"p50_us":911,"p99_us":4100},
//!  "warm":{"count":224,"p50_us":402,"p99_us":1800},
//!  "warm_hits":224,"warm_misses":0}
//! ```
//!
//! `--spawn` starts an in-process server on a loopback port (tuned by
//! `--workers`), runs the workload against it, sends `{"op":"shutdown"}`
//! and prints the server's final metrics line on stderr — the one-command
//! soak used by `scripts/ci.sh` and the worked example in
//! `docs/OPERATIONS.md`.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::process::exit;
use std::time::{Duration, Instant};

use vlsi_service::json::{self, Json};
use vlsi_service::ServiceConfig;

const USAGE: &str = "usage: loadgen [--addr HOST:PORT | --spawn] [--connections N] \
                     [--requests N] [--warm-ratio F] [--seed S] [--vertices N] [--k K] \
                     [--workers N] [--engine NAME]";

struct Args {
    addr: Option<String>,
    spawn: bool,
    connections: usize,
    requests: usize,
    warm_ratio: f64,
    seed: u64,
    vertices: usize,
    k: usize,
    workers: usize,
    engine: String,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: None,
        spawn: false,
        connections: 8,
        requests: 16,
        warm_ratio: 0.5,
        seed: 1,
        vertices: 96,
        k: 4,
        workers: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        engine: "kway".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| it.next().ok_or(format!("{flag} needs a value"));
        match arg.as_str() {
            "--addr" => args.addr = Some(value("--addr")?),
            "--spawn" => args.spawn = true,
            "--connections" => {
                args.connections = value("--connections")?
                    .parse()
                    .map_err(|_| "bad --connections")?
            }
            "--requests" => {
                args.requests = value("--requests")?.parse().map_err(|_| "bad --requests")?
            }
            "--warm-ratio" => {
                args.warm_ratio = value("--warm-ratio")?
                    .parse()
                    .map_err(|_| "bad --warm-ratio")?
            }
            "--seed" => args.seed = value("--seed")?.parse().map_err(|_| "bad --seed")?,
            "--vertices" => {
                args.vertices = value("--vertices")?.parse().map_err(|_| "bad --vertices")?
            }
            "--k" => args.k = value("--k")?.parse().map_err(|_| "bad --k")?,
            "--workers" => {
                args.workers = value("--workers")?.parse().map_err(|_| "bad --workers")?
            }
            "--engine" => args.engine = value("--engine")?,
            "--help" | "-h" => return Err(USAGE.into()),
            other => return Err(format!("unknown flag `{other}`\n{USAGE}")),
        }
    }
    if args.spawn == args.addr.is_some() {
        return Err(format!("give exactly one of --addr or --spawn\n{USAGE}"));
    }
    if args.connections == 0 || args.requests == 0 {
        return Err("--connections and --requests must be at least 1".into());
    }
    if !(0.0..=1.0).contains(&args.warm_ratio) {
        return Err("--warm-ratio must be in 0..=1".into());
    }
    if args.vertices < 8 {
        return Err("--vertices must be at least 8".into());
    }
    Ok(args)
}

/// The shared workload instance: a ring of unit vertices with every
/// eighth vertex fixed round-robin across the parts (20%+ fixed pins is
/// reached by the added chords' endpoints staying free). Deterministic in
/// (n, k) only — warm deltas then perturb it per request.
fn instance_json(n: usize, k: usize) -> String {
    let vertices = vec!["1"; n].join(",");
    let nets: Vec<String> = (0..n).map(|i| format!("[{},{}]", i, (i + 1) % n)).collect();
    // Fix every 5th vertex, round-robin over parts: n/5 = 20% fixed.
    let fixed: Vec<String> = (0..n)
        .map(|i| {
            if i % 5 == 0 {
                ((i / 5) % k).to_string()
            } else {
                "-1".to_string()
            }
        })
        .collect();
    format!(
        r#""hypergraph":{{"vertices":[{}],"nets":[{}]}},"fixed":[{}]"#,
        vertices,
        nets.join(","),
        fixed.join(",")
    )
}

/// Deterministic per-request chord for warm deltas: request `i` on
/// connection `c` adds one two-pin net across the ring.
fn delta_json(n: usize, c: usize, i: usize) -> String {
    let a = (c * 17 + i * 7) % n;
    let b = (a + n / 3 + i % 5 + 1) % n;
    format!(r#"{{"added_nets":[[{a},{b}]]}}"#)
}

#[derive(Default)]
struct ClassStats {
    latencies_us: Vec<u64>,
}

impl ClassStats {
    fn push(&mut self, us: u64) {
        self.latencies_us.push(us);
    }

    fn summary(&mut self) -> (usize, u64, u64) {
        self.latencies_us.sort_unstable();
        let pct = |p: usize| -> u64 {
            if self.latencies_us.is_empty() {
                return 0;
            }
            let rank = ((p * self.latencies_us.len()).div_ceil(100)).max(1);
            self.latencies_us[rank.min(self.latencies_us.len()) - 1]
        };
        (self.latencies_us.len(), pct(50), pct(99))
    }
}

#[derive(Default)]
struct ConnResult {
    cold: ClassStats,
    warm: ClassStats,
    warm_hits: usize,
    warm_misses: usize,
    errors: usize,
}

fn run_connection(
    addr: &str,
    conn_idx: usize,
    args: &Args,
    inst: &str,
) -> Result<ConnResult, String> {
    let stream = connect_with_retry(addr)?;
    let mut writer = stream.try_clone().map_err(|e| e.to_string())?;
    let mut reader = BufReader::new(stream);
    let mut result = ConnResult::default();
    let mut last_solution: Option<String> = None;
    // Cheap deterministic coin for the warm/cold mix.
    let mut coin = args
        .seed
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(conn_idx as u64);

    for i in 0..args.requests {
        coin = coin
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let go_warm = last_solution.is_some()
            && ((coin >> 33) as f64 / (1u64 << 31) as f64) < args.warm_ratio;
        let id = format!("c{conn_idx}-r{i}");
        let line = if go_warm {
            let sid = last_solution.clone().expect("warm implies a solution id");
            let delta = delta_json(args.vertices, conn_idx, i);
            format!(
                r#"{{"id":"{id}","engine":"{}","k":{},"starts":1,"seed":{},"priority":"interactive","warm_start":{{"solution_id":"{sid}","delta":{delta}}},{inst}}}"#,
                args.engine,
                args.k,
                args.seed.wrapping_add((conn_idx * 1000 + i) as u64),
            )
        } else {
            format!(
                r#"{{"id":"{id}","engine":"{}","k":{},"starts":1,"seed":{},{inst}}}"#,
                args.engine,
                args.k,
                args.seed.wrapping_add((conn_idx * 1000 + i) as u64),
            )
        };
        let t0 = Instant::now();
        writeln!(writer, "{line}").map_err(|e| format!("send: {e}"))?;
        let mut resp_line = String::new();
        reader
            .read_line(&mut resp_line)
            .map_err(|e| format!("recv: {e}"))?;
        let us = t0.elapsed().as_micros() as u64;
        let resp = json::parse(resp_line.trim()).map_err(|e| format!("bad response: {e}"))?;
        if resp.get("status").and_then(Json::as_str) != Some("ok") {
            result.errors += 1;
            continue;
        }
        match resp.get("warm").and_then(Json::as_str) {
            Some("hit") => {
                result.warm_hits += 1;
                result.warm.push(us);
            }
            Some("miss") => {
                result.warm_misses += 1;
                result.cold.push(us);
            }
            _ => result.cold.push(us),
        }
        if let Some(sid) = resp.get("solution_id").and_then(Json::as_str) {
            last_solution = Some(sid.to_string());
        }
    }
    Ok(result)
}

fn connect_with_retry(addr: &str) -> Result<TcpStream, String> {
    for _ in 0..200 {
        match TcpStream::connect(addr) {
            Ok(s) => {
                // Request lines are small; Nagle + delayed ACK would add
                // ~40ms to every measured round trip.
                let _ = s.set_nodelay(true);
                return Ok(s);
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
    Err(format!("cannot connect to {addr}"))
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            exit(2);
        }
    };

    // --spawn: run the server in-process on an OS-assigned loopback port.
    let (addr, server) = if args.spawn {
        let probe = TcpListener::bind("127.0.0.1:0").expect("bind probe");
        let addr = probe.local_addr().expect("local addr").to_string();
        drop(probe);
        let config = ServiceConfig {
            workers: args.workers,
            ..ServiceConfig::default()
        };
        let server_addr = addr.clone();
        let handle = std::thread::spawn(move || {
            vlsi_service::serve_tcp(config, server_addr.as_str()).expect("serve_tcp runs")
        });
        (addr, Some(handle))
    } else {
        (args.addr.clone().expect("--addr checked"), None)
    };

    let inst = instance_json(args.vertices, args.k);
    let results: Vec<Result<ConnResult, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..args.connections)
            .map(|c| {
                let addr = addr.as_str();
                let args = &args;
                let inst = inst.as_str();
                scope.spawn(move || run_connection(addr, c, args, inst))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });

    if let Some(server) = server {
        // One extra control connection shuts the spawned server down.
        if let Ok(mut ctl) = connect_with_retry(&addr).map(BufReader::new) {
            let _ = writeln!(ctl.get_mut(), r#"{{"op":"shutdown"}}"#);
            let mut ack = String::new();
            let _ = ctl.read_line(&mut ack);
        }
        let snapshot = server.join().expect("server thread");
        eprintln!("{}", snapshot.to_line());
    }

    let mut cold = ClassStats::default();
    let mut warm = ClassStats::default();
    let (mut warm_hits, mut warm_misses, mut errors, mut failed_conns) = (0, 0, 0, 0);
    for r in results {
        match r {
            Ok(mut r) => {
                cold.latencies_us.append(&mut r.cold.latencies_us);
                warm.latencies_us.append(&mut r.warm.latencies_us);
                warm_hits += r.warm_hits;
                warm_misses += r.warm_misses;
                errors += r.errors;
            }
            Err(e) => {
                eprintln!("connection failed: {e}");
                failed_conns += 1;
            }
        }
    }
    let (cold_n, cold_p50, cold_p99) = cold.summary();
    let (warm_n, warm_p50, warm_p99) = warm.summary();
    println!(
        concat!(
            "{{\"connections\":{},\"requests\":{},\"errors\":{},\"failed_connections\":{},",
            "\"cold\":{{\"count\":{},\"p50_us\":{},\"p99_us\":{}}},",
            "\"warm\":{{\"count\":{},\"p50_us\":{},\"p99_us\":{}}},",
            "\"warm_hits\":{},\"warm_misses\":{}}}"
        ),
        args.connections,
        args.connections * args.requests,
        errors,
        failed_conns,
        cold_n,
        cold_p50,
        cold_p99,
        warm_n,
        warm_p50,
        warm_p99,
        warm_hits,
        warm_misses,
    );
    if errors > 0 || failed_conns > 0 {
        exit(1);
    }
}
