//! Compares the fixed fractions of placement-generated bisection instances
//! against Rent's-rule expectations (the empirical counterpart of Table I).

use vlsi_experiments::hierarchy::{bucket_profile, collect_bisection_profile, render};
use vlsi_experiments::opts::Options;
use vlsi_netgen::instances::by_name;
use vlsi_netgen::rent::RentModel;
use vlsi_placer::PlacerConfig;

fn main() {
    let opts = Options::from_env();
    println!(
        "Placement hierarchy vs Rent's rule (k = 3.9), scale {}\n",
        opts.scale
    );
    for name in &opts.circuits {
        let Some(circuit) = by_name(name, opts.scale, opts.seed) else {
            eprintln!("unknown circuit `{name}`");
            std::process::exit(2);
        };
        let profile = match collect_bisection_profile(&circuit, &PlacerConfig::default(), opts.seed)
        {
            Ok(p) => p,
            Err(e) => {
                eprintln!("{name}: {e}");
                std::process::exit(1);
            }
        };
        let model = RentModel::new(3.9, circuit.target_rent_exponent);
        let rows = bucket_profile(&profile, &model);
        println!("{}", render(&circuit.name, &rows).render(opts.csv));
    }
}
