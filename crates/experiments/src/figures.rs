//! Figures 1 and 2: raw best cut, normalized best cut, and CPU time versus
//! the percentage of fixed vertices, for the good and rand regimes and
//! 1/2/4/8 starts of the multilevel partitioner.

use std::time::Duration;

use vlsi_rng::ChaCha8Rng;
use vlsi_rng::SeedableRng;

use vlsi_hypergraph::Hypergraph;
use vlsi_partition::trace::{NullSink, Sink};
use vlsi_partition::{EngineConfig, MultilevelConfig, PartitionError};

use crate::harness::{find_good_solution, paper_balance, run_trials_with_sink, PAPER_STARTS};
use crate::regimes::{FixSchedule, Regime, PAPER_PERCENTAGES};
use crate::report::{fmt_f64, fmt_secs, Table};

/// One data point of a figure: a (regime, percentage) cell with the four
/// start-count traces.
#[derive(Debug, Clone, PartialEq)]
pub struct FigurePoint {
    /// Fixing regime.
    pub regime: Regime,
    /// Percentage of fixed vertices.
    pub percent: f64,
    /// Average best cut for 1/2/4/8 starts (raw).
    pub raw: [f64; 4],
    /// Normalised best cut for 1/2/4/8 starts.
    pub normalized: [f64; 4],
    /// Mean wall-clock time per start.
    pub time_per_start: Duration,
    /// The normalisation base used.
    pub norm_base: f64,
}

/// A full figure: every (regime, percentage) point for one circuit.
#[derive(Debug, Clone)]
pub struct Figure {
    /// Circuit name.
    pub circuit: String,
    /// Cut of the reference free solution (the good regime's anchor).
    pub good_cut: u64,
    /// All data points, grouped by regime in sweep order.
    pub points: Vec<FigurePoint>,
}

/// Sweep parameters.
#[derive(Debug, Clone)]
pub struct FigureConfig {
    /// Percentages to sweep (defaults to the paper's twelve).
    pub percentages: Vec<f64>,
    /// Trials per point (the paper: 50).
    pub trials: usize,
    /// Multilevel settings.
    pub ml_config: MultilevelConfig,
    /// Attempts used to find the reference good solution.
    pub good_attempts: usize,
    /// Base seed.
    pub seed: u64,
}

impl Default for FigureConfig {
    fn default() -> Self {
        FigureConfig {
            percentages: PAPER_PERCENTAGES.to_vec(),
            trials: 5,
            ml_config: MultilevelConfig::default(),
            good_attempts: 8,
            seed: 1999,
        }
    }
}

/// Runs the full Figure 1/2 sweep for one circuit hypergraph.
///
/// # Errors
/// Propagates partitioning failures.
pub fn run_figure(
    name: &str,
    hg: &Hypergraph,
    config: &FigureConfig,
) -> Result<Figure, PartitionError> {
    run_figure_with_sink(name, hg, config, &NullSink)
}

/// [`run_figure`], streaming the trace of every measured multistart trial
/// (level brackets, FM passes, start records) into `sink`. The reference
/// good-solution search is not traced.
///
/// # Errors
/// Propagates partitioning failures.
pub fn run_figure_with_sink<S: Sink>(
    name: &str,
    hg: &Hypergraph,
    config: &FigureConfig,
    sink: &S,
) -> Result<Figure, PartitionError> {
    let balance = paper_balance(hg);
    let good = find_good_solution(
        hg,
        &balance,
        &config.ml_config,
        config.good_attempts,
        config.seed,
    )?;
    let engine = EngineConfig::Multilevel(config.ml_config);

    let mut points = Vec::new();
    for regime in [Regime::Good, Regime::Random] {
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed ^ 0xF1_F0);
        let schedule = FixSchedule::new(hg, regime, &good.parts, &mut rng);
        for &pct in &config.percentages {
            let fixed = schedule.at_percent(pct);
            let data = run_trials_with_sink(
                hg,
                &fixed,
                &balance,
                &engine,
                config.trials,
                &PAPER_STARTS,
                config.seed.wrapping_add((pct * 10.0) as u64),
                sink,
            )?;
            // Normalisation: the good regime uses the single reference cut;
            // the rand regime normalises each instance to the best cut seen
            // over all of its starts (as in the paper).
            let norm_base = match regime {
                Regime::Good => (good.cut as f64).max(1.0),
                Regime::Random => (data.best_seen as f64).max(1.0),
            };
            let mut raw = [0.0; 4];
            let mut normalized = [0.0; 4];
            for (i, _) in PAPER_STARTS.iter().enumerate() {
                raw[i] = data.avg_best[i];
                normalized[i] = data.avg_best[i] / norm_base;
            }
            points.push(FigurePoint {
                regime,
                percent: pct,
                raw,
                normalized,
                time_per_start: data.avg_start_time,
                norm_base,
            });
        }
    }
    Ok(Figure {
        circuit: name.to_string(),
        good_cut: good.cut,
        points,
    })
}

impl Figure {
    /// Renders the figure as a table (one row per regime × percentage).
    pub fn render(&self) -> Table {
        let mut t = Table::new(vec![
            "circuit".into(),
            "regime".into(),
            "fixed%".into(),
            "raw@1".into(),
            "raw@2".into(),
            "raw@4".into(),
            "raw@8".into(),
            "norm@1".into(),
            "norm@2".into(),
            "norm@4".into(),
            "norm@8".into(),
            "s/start".into(),
        ]);
        for p in &self.points {
            let mut cells = vec![
                self.circuit.clone(),
                p.regime.label().into(),
                fmt_f64(p.percent, 1),
            ];
            cells.extend(p.raw.iter().map(|&x| fmt_f64(x, 1)));
            cells.extend(p.normalized.iter().map(|&x| fmt_f64(x, 3)));
            cells.push(fmt_secs(p.time_per_start));
            t.row(cells);
        }
        t
    }

    /// Points of one regime, in sweep order.
    pub fn regime_points(&self, regime: Regime) -> Vec<&FigurePoint> {
        self.points.iter().filter(|p| p.regime == regime).collect()
    }

    /// The paper's "relatively overconstrained instances" observation:
    /// solution quality (good regime) and runtime (rand regime) are
    /// *nonmonotonic* in the fixed percentage — partitioners struggle at
    /// small fixed fractions (5–10%). Returns the interior percentage at
    /// which the 8-start raw cut peaks above both its neighbours, if any.
    pub fn nonmonotonic_peak(&self, regime: Regime) -> Option<(f64, f64)> {
        let pts = self.regime_points(regime);
        pts.windows(3)
            .filter(|w| w[1].raw[3] > w[0].raw[3] && w[1].raw[3] > w[2].raw[3])
            .map(|w| (w[1].percent, w[1].raw[3]))
            .max_by(|a, b| a.1.total_cmp(&b.1))
    }

    /// The paper's headline analysis: the smallest percentage from which a
    /// single start is within `slack` (e.g. 5%) of the eight-start average —
    /// "an instance with 20% or more vertices fixed is essentially solvable
    /// to very high quality in one or two starts".
    pub fn single_start_sufficient_from(&self, regime: Regime, slack: f64) -> Option<f64> {
        let pts = self.regime_points(regime);
        // Find the smallest pct such that all points from there on satisfy
        // raw@1 <= raw@8 * (1 + slack).
        let mut answer = None;
        for p in pts.iter().rev() {
            if p.raw[0] <= p.raw[3] * (1.0 + slack) + 1e-9 {
                answer = Some(p.percent);
            } else {
                break;
            }
        }
        answer
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vlsi_netgen::synthetic::{Generator, GeneratorConfig};

    fn small_figure() -> Figure {
        let c = Generator::new(GeneratorConfig {
            num_cells: 240,
            num_pads: 12,
            ..GeneratorConfig::default()
        })
        .generate(2);
        let config = FigureConfig {
            percentages: vec![0.0, 10.0, 30.0, 50.0],
            trials: 2,
            ml_config: MultilevelConfig {
                coarsest_size: 30,
                coarse_starts: 2,
                ..MultilevelConfig::default()
            },
            good_attempts: 3,
            seed: 7,
        };
        run_figure("test", &c.hypergraph, &config).unwrap()
    }

    #[test]
    fn figure_shape_and_trends() {
        let fig = small_figure();
        assert_eq!(fig.points.len(), 8);

        // Rand regime: raw cost at 50% fixed must exceed cost at 0%.
        let rand = fig.regime_points(Regime::Random);
        let raw0 = rand.first().unwrap().raw[3];
        let raw50 = rand.last().unwrap().raw[3];
        assert!(
            raw50 > raw0,
            "random fixing should raise the achievable cut: {raw0} -> {raw50}"
        );

        // Good regime: normalized cost at high fixed% stays close to 1.
        let good = fig.regime_points(Regime::Good);
        let n50 = good.last().unwrap().normalized[0];
        assert!(
            n50 < 2.0,
            "good-regime 50% point should be near the reference"
        );
    }

    #[test]
    fn render_has_all_rows() {
        let fig = small_figure();
        let t = fig.render();
        assert_eq!(t.len(), 8);
        assert!(t.to_csv().contains("rand"));
    }

    #[test]
    fn nonmonotonic_peak_detection() {
        // Hand-built figure with a clear interior bump in the good regime.
        let mk = |pct: f64, raw8: f64| FigurePoint {
            regime: Regime::Good,
            percent: pct,
            raw: [raw8 + 1.0, raw8 + 0.5, raw8 + 0.2, raw8],
            normalized: [1.0; 4],
            time_per_start: std::time::Duration::ZERO,
            norm_base: 1.0,
        };
        let fig = Figure {
            circuit: "synthetic".into(),
            good_cut: 100,
            points: vec![mk(0.0, 100.0), mk(10.0, 130.0), mk(20.0, 105.0)],
        };
        assert_eq!(fig.nonmonotonic_peak(Regime::Good), Some((10.0, 130.0)));
        assert_eq!(fig.nonmonotonic_peak(Regime::Random), None);
    }

    #[test]
    fn single_start_analysis_runs() {
        let fig = small_figure();
        // With only four points this is smoke-level: the analysis must not
        // panic and must return a percentage present in the sweep if any.
        if let Some(p) = fig.single_start_sufficient_from(Regime::Good, 0.10) {
            assert!([0.0, 10.0, 30.0, 50.0].contains(&p));
        }
    }
}
