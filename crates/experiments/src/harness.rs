//! Multi-trial, multi-start experiment machinery shared by the figures and
//! tables.

use std::time::Duration;

use vlsi_rng::ChaCha8Rng;
use vlsi_rng::SeedableRng;

use vlsi_hypergraph::{BalanceConstraint, FixedVertices, Hypergraph, Tolerance};
use vlsi_partition::trace::{NullSink, Sink};
use vlsi_partition::{
    MultilevelConfig, MultilevelPartitioner, Multistart, PartitionError, PartitionResult,
    Partitioner, RunCtx,
};

/// Aggregated results of `trials` independent trials, each performing
/// `max_starts` starts, reported as "average best of the first s starts"
/// for every `s` — the paper's 1/2/4/8-start traces.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialData {
    /// `avg_best[i]` = average over trials of the best cut among the first
    /// `starts_levels[i]` starts.
    pub avg_best: Vec<f64>,
    /// The start counts the averages correspond to (e.g. `[1, 2, 4, 8]`).
    pub starts_levels: Vec<usize>,
    /// Mean wall-clock time of a single start.
    pub avg_start_time: Duration,
    /// Best cut observed anywhere in the batch (used for normalisation in
    /// the rand regime: the paper normalises to the best of all starts).
    pub best_seen: u64,
}

impl TrialData {
    /// Average best cut for a given number of starts.
    pub fn avg_best_of(&self, starts: usize) -> Option<f64> {
        self.starts_levels
            .iter()
            .position(|&s| s == starts)
            .map(|i| self.avg_best[i])
    }
}

/// The start counts used throughout the paper.
pub const PAPER_STARTS: [usize; 4] = [1, 2, 4, 8];

/// Runs the trial protocol: for each trial, `max(starts_levels)` starts are
/// performed with a per-trial RNG derived from `seed`, and "best of the
/// first s" is computed for each requested level.
///
/// `engine` is any [`Partitioner`] — an engine struct, a config type, or a
/// registry [`vlsi_partition::EngineConfig`] selected by name.
///
/// # Errors
/// Propagates the first engine failure.
///
/// # Panics
/// Panics if `trials == 0` or `starts_levels` is empty.
pub fn run_trials<E: Partitioner>(
    hg: &Hypergraph,
    fixed: &FixedVertices,
    balance: &BalanceConstraint,
    engine: &E,
    trials: usize,
    starts_levels: &[usize],
    seed: u64,
) -> Result<TrialData, PartitionError> {
    run_trials_with_sink(
        hg,
        fixed,
        balance,
        engine,
        trials,
        starts_levels,
        seed,
        &NullSink,
    )
}

/// [`run_trials`], streaming the trace of every start (level brackets, FM
/// passes, and one [`vlsi_partition::trace::Event::StartFinished`] per
/// start) into `sink`.
///
/// # Errors
/// Propagates the first engine failure.
///
/// # Panics
/// Panics if `trials == 0` or `starts_levels` is empty.
#[allow(clippy::too_many_arguments)]
pub fn run_trials_with_sink<E: Partitioner, S: Sink>(
    hg: &Hypergraph,
    fixed: &FixedVertices,
    balance: &BalanceConstraint,
    engine: &E,
    trials: usize,
    starts_levels: &[usize],
    seed: u64,
    sink: &S,
) -> Result<TrialData, PartitionError> {
    assert!(trials > 0, "need at least one trial");
    let max_starts = *starts_levels.iter().max().expect("non-empty levels");
    let mut sums = vec![0.0f64; starts_levels.len()];
    let mut total_time = Duration::ZERO;
    let mut total_starts = 0usize;
    let mut best_seen = u64::MAX;
    for t in 0..trials {
        let mut rng =
            ChaCha8Rng::seed_from_u64(seed ^ (t as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let outcome = Multistart::new(max_starts).run(
            hg,
            fixed,
            balance,
            engine,
            RunCtx::new(&mut rng).with_sink(sink),
        )?;
        for (i, &s) in starts_levels.iter().enumerate() {
            sums[i] += outcome.best_of_first(s).expect("s >= 1") as f64;
        }
        total_time += outcome.time_of_first(max_starts);
        total_starts += max_starts;
        best_seen = best_seen.min(outcome.best.cut);
    }
    Ok(TrialData {
        avg_best: sums.iter().map(|s| s / trials as f64).collect(),
        starts_levels: starts_levels.to_vec(),
        avg_start_time: total_time / total_starts.max(1) as u32,
        best_seen,
    })
}

/// Finds a high-quality reference solution for the free (no fixed vertices)
/// instance — the paper's "best min-cut solution we could find" that seeds
/// the *good* regime.
///
/// # Errors
/// Propagates engine failures.
pub fn find_good_solution(
    hg: &Hypergraph,
    balance: &BalanceConstraint,
    ml_config: &MultilevelConfig,
    attempts: usize,
    seed: u64,
) -> Result<PartitionResult, PartitionError> {
    let free = FixedVertices::all_free(hg.num_vertices());
    let ml = MultilevelPartitioner::new(*ml_config);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut best: Option<PartitionResult> = None;
    for _ in 0..attempts.max(1) {
        let r: PartitionResult = ml.run(hg, &free, balance, &mut rng)?.into();
        match &best {
            Some(b) if b.cut <= r.cut => {}
            _ => best = Some(r),
        }
    }
    Ok(best.expect("attempts >= 1"))
}

/// The paper's balance setup: actual cell areas, 2% tolerance bisection.
pub fn paper_balance(hg: &Hypergraph) -> BalanceConstraint {
    // Allow at least the largest cell of slack so instances whose macro
    // exceeds 2% of total area remain solvable (the IBM benchmarks contain
    // such cells; the paper's partitioner tolerates them the same way).
    let wmax = hg
        .vertices()
        .map(|v| hg.vertex_weight(v))
        .max()
        .unwrap_or(0);
    let rel = (hg.total_weight() as f64 * 0.02 / 2.0) as u64;
    if wmax > rel {
        BalanceConstraint::bisection(hg.total_weight(), Tolerance::Absolute(wmax))
    } else {
        BalanceConstraint::bisection(hg.total_weight(), Tolerance::Relative(0.02))
    }
}

/// A fast multilevel configuration for scaled-down experiment runs.
pub fn default_ml_config() -> MultilevelConfig {
    MultilevelConfig::default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vlsi_hypergraph::HypergraphBuilder;

    fn chain(n: usize) -> Hypergraph {
        let mut b = HypergraphBuilder::new();
        let v: Vec<_> = (0..n).map(|_| b.add_vertex(1)).collect();
        for w in v.windows(2) {
            b.add_net(1, [w[0], w[1]]).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn trials_aggregate_and_monotone_in_starts() {
        let hg = chain(64);
        let fixed = FixedVertices::all_free(64);
        let balance = paper_balance(&hg);
        let engine = vlsi_partition::EngineConfig::Fm(vlsi_partition::FmConfig::default());
        let data = run_trials(&hg, &fixed, &balance, &engine, 4, &PAPER_STARTS, 7).unwrap();
        assert_eq!(data.avg_best.len(), 4);
        // Best-of-s is non-increasing in s.
        for w in data.avg_best.windows(2) {
            assert!(w[1] <= w[0] + 1e-9);
        }
        assert!(data.best_seen >= 1);
        assert_eq!(data.avg_best_of(4), Some(data.avg_best[2]));
        assert_eq!(data.avg_best_of(3), None);
    }

    #[test]
    fn good_solution_on_chain_is_single_cut() {
        let hg = chain(64);
        let balance = paper_balance(&hg);
        let good = find_good_solution(&hg, &balance, &MultilevelConfig::default(), 2, 3).unwrap();
        assert_eq!(good.cut, 1);
    }

    #[test]
    fn paper_balance_admits_macros() {
        let mut b = HypergraphBuilder::new();
        b.add_vertex(500); // 50% macro
        for _ in 0..50 {
            b.add_vertex(10);
        }
        let hg = b.build().unwrap();
        let bc = paper_balance(&hg);
        assert!(bc.max(vlsi_hypergraph::PartId(0), 0) >= 500);
    }

    #[test]
    fn engines_run() {
        use vlsi_partition::{EngineConfig, RunCtx};
        let hg = chain(32);
        let fixed = FixedVertices::all_free(32);
        let balance = paper_balance(&hg);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for engine in [
            EngineConfig::Fm(vlsi_partition::FmConfig::default()),
            EngineConfig::Multilevel(MultilevelConfig {
                coarsest_size: 8,
                ..MultilevelConfig::default()
            }),
        ] {
            let r = engine
                .partition_ctx(&hg, &fixed, &balance, RunCtx::new(&mut rng))
                .unwrap();
            assert!(r.cut <= 4);
        }
    }
}
