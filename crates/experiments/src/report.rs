//! Plain-text and CSV table rendering for the experiment binaries.

/// A simple column-aligned table builder.
///
/// # Example
/// ```
/// use vlsi_experiments::report::Table;
/// let mut t = Table::new(vec!["p".into(), "C(5%)".into()]);
/// t.row(vec!["0.68".into(), "553772".into()]);
/// let text = t.to_text();
/// assert!(text.contains("0.68"));
/// let csv = t.to_csv();
/// assert!(csv.starts_with("p,C(5%)"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: Vec<String>) -> Self {
        Table {
            header,
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded/truncated to the header width).
    pub fn row(&mut self, mut cells: Vec<String>) {
        cells.resize(self.header.len(), String::new());
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders an aligned text table.
    pub fn to_text(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders RFC-4180-ish CSV (no quoting needed for our numeric cells).
    pub fn to_csv(&self) -> String {
        let mut out = self.header.join(",");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }

    /// Renders text or CSV depending on the flag.
    pub fn render(&self, csv: bool) -> String {
        if csv {
            self.to_csv()
        } else {
            self.to_text()
        }
    }
}

/// Formats a float with `digits` decimals, trimming `-0.0`.
pub fn fmt_f64(x: f64, digits: usize) -> String {
    let s = format!("{x:.digits$}");
    if s.starts_with("-0.") && s[3..].chars().all(|c| c == '0') {
        s[1..].to_string()
    } else {
        s
    }
}

/// Formats a duration in seconds with millisecond resolution.
pub fn fmt_secs(d: std::time::Duration) -> String {
    fmt_f64(d.as_secs_f64(), 3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment() {
        let mut t = Table::new(vec!["a".into(), "bbbb".into()]);
        t.row(vec!["123".into(), "4".into()]);
        let text = t.to_text();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "  a  bbbb");
        assert_eq!(lines[2], "123     4");
    }

    #[test]
    fn short_rows_padded() {
        let mut t = Table::new(vec!["a".into(), "b".into()]);
        t.row(vec!["1".into()]);
        assert_eq!(t.to_csv(), "a,b\n1,\n");
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f64(1.23456, 2), "1.23");
        assert_eq!(fmt_f64(-0.0001, 2), "0.00");
        assert_eq!(fmt_secs(std::time::Duration::from_millis(1500)), "1.500");
    }
}
