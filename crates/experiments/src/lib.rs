//! Experiment harness reproducing every table and figure of *Hypergraph
//! Partitioning with Fixed Vertices* (Alpert et al., DAC 1999 / TCAD 2000).
//!
//! | Paper artefact | Module | Binary |
//! |---|---|---|
//! | Table I (Rent block-size thresholds) | [`table1`] | `table1` |
//! | Figures 1–2 (fixed-fraction sweeps) | [`figures`] | `figures` |
//! | Table II (FM pass statistics) | [`table2`] | `table2` |
//! | Table III (pass cutoffs) | [`table3`] | `table3` |
//! | Table IV (derived benchmarks) | [`table4`] | `table4` |
//!
//! Beyond the paper's own artefacts, the crate carries its future-work
//! extensions: [`multiway`] (k-way sweeps), [`pass_profile`] (within-pass
//! improvement positions), [`constraint`] (invariant constraint-strength
//! metrics), [`hierarchy`] (placer instances vs Rent's rule),
//! [`rent_extraction`] (partitioning-based Rent measurement) and
//! [`ablation`] (engine design-choice quality tables).
//!
//! The shared machinery lives in [`regimes`] (the paper's good/rand
//! incremental fixing protocol), [`harness`] (multi-trial multi-start
//! runner) and [`report`] (text/CSV rendering). `repro_all` runs the whole
//! battery and writes `EXPERIMENTS`-ready output; `partition`, `genbench`
//! and `stats` are stand-alone command-line tools.
//!
//! Experiments default to scaled-down instances and few trials so the suite
//! completes in minutes; `--paper` switches to full-size instances and the
//! paper's 50-trial protocol.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod constraint;
pub mod figures;
pub mod harness;
pub mod hierarchy;
pub mod multiway;
pub mod opts;
pub mod pass_profile;
pub mod regimes;
pub mod rent_extraction;
pub mod report;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;
