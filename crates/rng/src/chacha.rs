//! ChaCha8 (Bernstein) as a counter-based PRNG: the drop-in replacement
//! for the `rand_chacha::ChaCha8Rng` call sites. Counter-based streams
//! give two properties the experiment harness relies on:
//!
//! * the output at any position is a pure function of (key, stream,
//!   counter), so a trajectory can be reproduced from its seed alone;
//! * the 64-bit stream id yields up to 2^64 *independent* substreams per
//!   seed — one per trial/start — without any coordination between them.

use crate::splitmix::fnv1a_64;
use crate::{RngCore, SeedableRng};

const WORDS_PER_BLOCK: usize = 16;
/// "expand 32-byte k" — the standard ChaCha constant row.
const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];
const ROUNDS: usize = 8;

/// A ChaCha8 stream generator with a 256-bit key, 64-bit block counter,
/// and 64-bit stream id.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    stream: u64,
    buf: [u64; WORDS_PER_BLOCK / 2],
    idx: usize,
}

impl ChaCha8Rng {
    /// Returns the 64-bit stream id.
    pub fn stream(&self) -> u64 {
        self.stream
    }

    /// Selects stream `stream` and rewinds to its start. Streams with
    /// different ids are independent even under the same key.
    pub fn set_stream(&mut self, stream: u64) {
        self.stream = stream;
        self.counter = 0;
        self.idx = self.buf.len();
    }

    /// Derives the substream named `label` *without* advancing `self`:
    /// same key, stream id hashed from the label. Calling it twice with
    /// the same label yields the same stream.
    pub fn substream(&self, label: &str) -> Self {
        let mut child = self.clone();
        child.set_stream(fnv1a_64(label.as_bytes()));
        child
    }

    /// Forks an independent child stream named `label`, advancing `self`
    /// by one draw. Successive forks with the same label differ (the
    /// parent draw is mixed into the child's stream id).
    pub fn fork(&mut self, label: &str) -> Self {
        let draw = self.next_u64();
        let mut child = self.clone();
        child.set_stream(crate::mix64(draw ^ fnv1a_64(label.as_bytes())));
        child
    }

    fn refill(&mut self) {
        let mut x = [0u32; WORDS_PER_BLOCK];
        x[..4].copy_from_slice(&SIGMA);
        x[4..12].copy_from_slice(&self.key);
        x[12] = self.counter as u32;
        x[13] = (self.counter >> 32) as u32;
        x[14] = self.stream as u32;
        x[15] = (self.stream >> 32) as u32;
        let input = x;

        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter(&mut x, 0, 4, 8, 12);
            quarter(&mut x, 1, 5, 9, 13);
            quarter(&mut x, 2, 6, 10, 14);
            quarter(&mut x, 3, 7, 11, 15);
            // Diagonal round.
            quarter(&mut x, 0, 5, 10, 15);
            quarter(&mut x, 1, 6, 11, 12);
            quarter(&mut x, 2, 7, 8, 13);
            quarter(&mut x, 3, 4, 9, 14);
        }
        for (xi, &ii) in x.iter_mut().zip(input.iter()) {
            *xi = xi.wrapping_add(ii);
        }
        for (i, pair) in x.chunks_exact(2).enumerate() {
            self.buf[i] = pair[0] as u64 | ((pair[1] as u64) << 32);
        }
        self.counter = self.counter.wrapping_add(1);
        self.idx = 0;
    }
}

#[inline]
fn quarter(x: &mut [u32; WORDS_PER_BLOCK], a: usize, b: usize, c: usize, d: usize) {
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(16);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(12);
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(8);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(7);
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaCha8Rng {
            key,
            counter: 0,
            stream: 0,
            buf: [0; WORDS_PER_BLOCK / 2],
            idx: WORDS_PER_BLOCK / 2,
        }
    }
}

impl RngCore for ChaCha8Rng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        if self.idx >= self.buf.len() {
            self.refill();
        }
        let out = self.buf[self.idx];
        self.idx += 1;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    #[test]
    fn same_seed_same_stream() {
        let a: Vec<u64> = {
            let mut r = ChaCha8Rng::seed_from_u64(7);
            (0..32).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = ChaCha8Rng::seed_from_u64(7);
            (0..32).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn streams_are_independent() {
        let mut a = ChaCha8Rng::seed_from_u64(5);
        let mut b = ChaCha8Rng::seed_from_u64(5);
        b.set_stream(1);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn substream_is_pure_and_label_sensitive() {
        let r = ChaCha8Rng::seed_from_u64(11);
        let mut s1 = r.substream("trial-0");
        let mut s2 = r.substream("trial-0");
        let mut s3 = r.substream("trial-1");
        let x = s1.next_u64();
        assert_eq!(x, s2.next_u64());
        assert_ne!(x, s3.next_u64());
    }

    #[test]
    fn fork_advances_parent_deterministically() {
        let mut a = ChaCha8Rng::seed_from_u64(3);
        let mut b = ChaCha8Rng::seed_from_u64(3);
        let mut fa = a.fork("x");
        let mut fb = b.fork("x");
        assert_eq!(fa.next_u64(), fb.next_u64());
        assert_eq!(a.next_u64(), b.next_u64());
        // Two forks with the same label from the same parent still differ.
        let mut fa2 = a.fork("x");
        assert_ne!(fa.next_u64(), fa2.next_u64());
    }

    #[test]
    fn block_boundary_is_seamless() {
        // Draw an odd number of u64s across several 8-u64 blocks.
        let mut r = ChaCha8Rng::seed_from_u64(4);
        let long: Vec<u64> = (0..27).map(|_| r.next_u64()).collect();
        let mut r2 = ChaCha8Rng::seed_from_u64(4);
        let again: Vec<u64> = (0..27).map(|_| r2.next_u64()).collect();
        assert_eq!(long, again);
        assert_eq!(
            long.iter().collect::<std::collections::HashSet<_>>().len(),
            27
        );
    }

    #[test]
    fn usable_as_generic_rng() {
        let mut r = ChaCha8Rng::seed_from_u64(1);
        let counts = (0..6000).fold([0usize; 3], |mut acc, _| {
            acc[r.gen_range(0..3usize)] += 1;
            acc
        });
        assert!(counts.iter().all(|&c| c > 1600), "{counts:?}");
    }
}
