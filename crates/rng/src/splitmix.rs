//! SplitMix64: the seed-expansion generator recommended by the xoshiro
//! authors (Blackman & Vigna). One u64 of state, period 2^64, passes
//! BigCrush when used as a stream; here it seeds the real generators and
//! hashes substream labels.

use crate::RngCore;

/// Finalization mix of SplitMix64 (also MurmurHash3's fmix64 variant).
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// FNV-1a on bytes, widened to 64 bits — used to hash substream labels
/// into seed material. Stable across platforms.
#[inline]
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The SplitMix64 generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator whose stream is a pure function of `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }
}

impl RngCore for SplitMix64 {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        mix64(self.state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_vector() {
        // Reference values from Vigna's splitmix64.c with seed 0.
        let mut sm = SplitMix64::new(0);
        assert_eq!(sm.next_u64(), 0xe220_a839_7b1d_cdaf);
        assert_eq!(sm.next_u64(), 0x6e78_9e6a_a1b9_65f4);
        assert_eq!(sm.next_u64(), 0x06c4_5d18_8009_454f);
    }

    #[test]
    fn distinct_seeds_diverge() {
        assert_ne!(SplitMix64::new(1).next_u64(), SplitMix64::new(2).next_u64());
    }

    #[test]
    fn fnv1a_is_stable() {
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a_64(b"trial"), fnv1a_64(b"start"));
    }
}
