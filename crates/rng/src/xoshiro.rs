//! xoshiro256++ (Blackman & Vigna 2019): the workspace's fast default
//! generator. 256 bits of state, period 2^256 − 1, passes BigCrush; the
//! `++` scrambler makes all 64 output bits full-quality.

use crate::splitmix::{fnv1a_64, mix64};
use crate::{RngCore, SeedableRng, SplitMix64};

/// The xoshiro256++ generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

impl Xoshiro256PlusPlus {
    /// Forks an independent child stream named `label`, advancing `self`.
    ///
    /// The child is seeded from one draw of the parent mixed with a hash
    /// of the label, so forks with different labels — or successive forks
    /// with the same label — are independent streams, and the parent's
    /// subsequent output does not depend on how the children are used.
    pub fn fork(&mut self, label: &str) -> Self {
        let draw = self.next_u64();
        Self::seed_from_u64(mix64(draw ^ fnv1a_64(label.as_bytes())))
    }

    /// Derives the substream named `label` from the current state *without*
    /// advancing `self`: calling it twice with the same label yields the
    /// same stream.
    pub fn substream(&self, label: &str) -> Self {
        let digest = self
            .s
            .iter()
            .fold(fnv1a_64(label.as_bytes()), |acc, &w| mix64(acc ^ w));
        Self::seed_from_u64(digest)
    }
}

impl SeedableRng for Xoshiro256PlusPlus {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        if s == [0; 4] {
            // The all-zero state is the one fixed point; remap it through
            // SplitMix64 like seed_from_u64 would.
            let mut sm = SplitMix64::new(0);
            for w in &mut s {
                *w = sm.next_u64();
            }
        }
        Xoshiro256PlusPlus { s }
    }
}

impl RngCore for Xoshiro256PlusPlus {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_vector() {
        // Reference: xoshiro256plusplus.c with s = {1, 2, 3, 4}.
        let mut seed = [0u8; 32];
        for (i, w) in [1u64, 2, 3, 4].iter().enumerate() {
            seed[i * 8..i * 8 + 8].copy_from_slice(&w.to_le_bytes());
        }
        let mut rng = Xoshiro256PlusPlus::from_seed(seed);
        assert_eq!(rng.next_u64(), 41943041);
        assert_eq!(rng.next_u64(), 58720359);
        assert_eq!(rng.next_u64(), 3588806011781223);
        assert_eq!(rng.next_u64(), 3591011842654386);
    }

    #[test]
    fn seed_from_u64_is_deterministic() {
        let a: Vec<u64> = {
            let mut r = Xoshiro256PlusPlus::seed_from_u64(123);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Xoshiro256PlusPlus::seed_from_u64(123);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn zero_seed_is_not_degenerate() {
        let mut r = Xoshiro256PlusPlus::from_seed([0u8; 32]);
        let outs: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        assert!(outs.iter().any(|&x| x != 0));
    }

    #[test]
    fn forks_are_independent_and_advance_parent() {
        let mut a = Xoshiro256PlusPlus::seed_from_u64(9);
        let mut b = a.clone();
        let mut fa = a.fork("trial");
        let mut fb = b.fork("start");
        assert_ne!(fa.next_u64(), fb.next_u64());
        // Parents advanced identically (fork draws once regardless of label).
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn substream_is_pure() {
        let r = Xoshiro256PlusPlus::seed_from_u64(5);
        let mut s1 = r.substream("t0");
        let mut s2 = r.substream("t0");
        let mut s3 = r.substream("t1");
        let x = s1.next_u64();
        assert_eq!(x, s2.next_u64());
        assert_ne!(x, s3.next_u64());
    }
}
