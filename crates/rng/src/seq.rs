//! Sequence helpers mirroring `rand::seq`: in-place Fisher–Yates shuffle
//! and uniform element choice.

use crate::{uniform_below, Rng};

/// Random operations on slices.
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Shuffles the slice in place (Fisher–Yates, one `gen_range` per
    /// element, identical order of draws to `rand`'s implementation so a
    /// shuffle consumes a predictable amount of the stream).
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

    /// Returns a uniformly chosen element, or `None` if empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = uniform_below(rng, (i + 1) as u64) as usize;
            self.swap(i, j);
        }
    }

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[uniform_below(rng, self.len() as u64) as usize])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SeedableRng, Xoshiro256PlusPlus};

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn shuffle_is_seed_deterministic() {
        let shuffled = |seed| {
            let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
            let mut v: Vec<u32> = (0..20).collect();
            v.shuffle(&mut rng);
            v
        };
        assert_eq!(shuffled(9), shuffled(9));
        assert_ne!(shuffled(9), shuffled(10));
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(2);
        let v = [10, 20, 30];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(*v.choose(&mut rng).unwrap());
        }
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn choose_on_empty_is_none() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(3);
        let v: [u8; 0] = [];
        assert!(v.choose(&mut rng).is_none());
    }

    #[test]
    fn singleton_shuffle_is_noop_and_cheap() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(4);
        let mut v = [42];
        v.shuffle(&mut rng);
        assert_eq!(v, [42]);
    }
}
