//! Deterministic, dependency-free random number generation for the
//! fixed-vertices reproduction.
//!
//! Every experiment in the paper is an average over *seeded* trials
//! (Figures 1–2 and Tables II–IV are 50-trial means), so the entire
//! workspace routes its randomness through this crate. It deliberately
//! exposes only the narrow surface the partitioner actually uses:
//!
//! * [`SeedableRng::seed_from_u64`] — every trajectory starts from one u64;
//! * [`Rng::gen_range`] / [`Rng::gen_bool`] — bounded draws;
//! * [`seq::SliceRandom`] — `shuffle` and `choose`;
//! * [`Xoshiro256PlusPlus`] — the fast default generator
//!   (SplitMix64-seeded xoshiro256++);
//! * [`ChaCha8Rng`] — a ChaCha8 stream generator for call sites that want
//!   a counter-based stream (drop-in for the old `rand_chacha` sites);
//! * [`ChaCha8Rng::fork`] / [`ChaCha8Rng::substream`] — named substreams
//!   so per-trial / per-start randomness is independent of call order.
//!
//! All generators are pure functions of their seed: the same u64 yields
//! the same byte stream on every platform and build, which is what makes
//! `tests/determinism.rs` meaningful.
//!
//! # Example
//! ```
//! use vlsi_rng::{ChaCha8Rng, Rng, SeedableRng};
//! use vlsi_rng::seq::SliceRandom;
//!
//! let mut rng = ChaCha8Rng::seed_from_u64(42);
//! let x = rng.gen_range(0..10);
//! assert!(x < 10);
//! let mut v = vec![1, 2, 3, 4];
//! v.shuffle(&mut rng);
//! assert_eq!(rng.gen_bool(1.0), true);
//!
//! // Same seed, same stream — always.
//! let a: Vec<u64> = (0..4).map(|_| ChaCha8Rng::seed_from_u64(7).next_u64()).collect();
//! assert!(a.windows(2).all(|w| w[0] == w[1]));
//! use vlsi_rng::RngCore;
//! ```

#![forbid(unsafe_code)]

mod chacha;
mod splitmix;
mod xoshiro;

pub mod seq;

pub use chacha::ChaCha8Rng;
pub use splitmix::{fnv1a_64, mix64, SplitMix64};
pub use xoshiro::Xoshiro256PlusPlus;

/// Everything a call site typically needs, mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::seq::SliceRandom;
    pub use crate::{ChaCha8Rng, Rng, RngCore, SeedableRng, Xoshiro256PlusPlus};
}

/// The raw generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly distributed bits (upper half of
    /// [`next_u64`](Self::next_u64), which has the better-mixed bits on
    /// xoshiro-family generators).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes (little-endian u64 chunks).
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Convenience draws on top of [`RngCore`]; blanket-implemented.
pub trait Rng: RngCore {
    /// Uniform draw from `range` (`a..b` or `a..=b`; integers or floats).
    ///
    /// Integer draws use Lemire's widening-multiply rejection, so they are
    /// exactly uniform regardless of the bound.
    ///
    /// # Panics
    /// Panics if the range is empty.
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} not in [0, 1]");
        // 53-bit uniform in [0, 1); p == 1.0 therefore always succeeds.
        gen_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Uniform `f64` in `[0, 1)` with 53 bits of precision.
#[inline]
fn gen_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform draw in `[0, bound)` via Lemire's rejection method.
///
/// # Panics
/// Panics if `bound == 0`.
#[inline]
pub fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    assert!(bound > 0, "uniform_below: empty range");
    let threshold = bound.wrapping_neg() % bound;
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (bound as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Raw seed type (a fixed-size byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Constructs the generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands one `u64` into a full seed via SplitMix64 (the expansion
    /// recommended by the xoshiro authors) and constructs the generator.
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = SplitMix64::new(state);
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// A range that can produce a uniform sample; implemented for `Range` and
/// `RangeInclusive` over the primitive integers and floats.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + uniform_below(rng, span + 1) as $t
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                let off = uniform_below(rng, span) as $u;
                (self.start as $u).wrapping_add(off) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let off = uniform_below(rng, span + 1) as $u;
                (lo as $u).wrapping_add(off) as $t
            }
        }
    )*};
}
impl_sample_range_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = gen_f64(rng) as $t;
                let v = self.start + (self.end - self.start) * u;
                // Guard against rounding landing exactly on `end`.
                if v < self.end { v } else { self.start }
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gen_range_bounds_hold_for_all_int_types() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
        for _ in 0..2000 {
            let a = rng.gen_range(3u8..9);
            assert!((3..9).contains(&a));
            let b = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&b));
            let c = rng.gen_range(0usize..1);
            assert_eq!(c, 0);
            let d = rng.gen_range(i64::MIN..=i64::MAX);
            let _ = d;
            let e = rng.gen_range(10u64..11);
            assert_eq!(e, 10);
        }
    }

    #[test]
    fn gen_range_floats_stay_in_range() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(2);
        for _ in 0..2000 {
            let x = rng.gen_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&x));
            let y = rng.gen_range(0.0f32..1.0);
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(0);
        let _ = rng.gen_range(5..5);
    }

    #[test]
    fn gen_bool_extremes_are_exact() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(3);
        for _ in 0..100 {
            assert!(rng.gen_bool(1.0));
            assert!(!rng.gen_bool(0.0));
        }
    }

    #[test]
    fn gen_bool_frequency_is_plausible() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn uniform_below_covers_small_bounds() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(5);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[uniform_below(&mut rng, 7) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn rng_core_works_through_mut_ref() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> u64 {
            rng.gen_range(0..100)
        }
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let by_ref = &mut rng;
        assert!(draw(by_ref) < 100);
    }

    #[test]
    fn fill_bytes_is_deterministic_and_covers_tail() {
        let mut a = [0u8; 13];
        let mut b = [0u8; 13];
        ChaCha8Rng::seed_from_u64(9).fill_bytes(&mut a);
        ChaCha8Rng::seed_from_u64(9).fill_bytes(&mut b);
        assert_eq!(a, b);
        assert_ne!(a, [0u8; 13]);
    }
}
