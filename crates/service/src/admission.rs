//! Admission control: per-client token buckets and queue load-shedding.
//!
//! Every connection (stdio session, or one TCP client on the event loop)
//! owns a [`TokenBucket`]: a classic leaky-bucket rate limiter with a
//! burst allowance, refilled continuously at `rate_per_sec`. A job that
//! arrives with the bucket empty is refused with a structured
//! `rate_limited` error — one greedy client cannot starve the worker pool
//! while others wait.
//!
//! Independently, the server **load-sheds**: once the bounded job queue's
//! depth reaches the configured high-water mark, new jobs are refused with
//! an `overloaded` error instead of being queued (or, on the stdio path,
//! instead of blocking the reader). Both refusals emit an
//! [`Event::Shed`](vlsi_trace::Event::Shed) into the engine trace stream,
//! so `engine.sheds` in the metrics line counts every admission refusal.
//!
//! A third, per-request guard caps instance *size*: a job whose
//! hypergraph carries more than `max_pins` pins is refused with a
//! `too_large` error before it can reach the worker pool — one giant
//! netlist cannot OOM the service no matter how well-behaved the client's
//! rate is.
//!
//! All mechanisms default to **off** ([`AdmissionConfig::default`]):
//! `rate_per_sec = 0` disables the bucket, `high_water = usize::MAX`
//! disables depth shedding (leaving the queue's own capacity bound as the
//! only backstop — the event loop still sheds `overloaded` on a hard-full
//! queue rather than block), and `max_pins = usize::MAX` disables the
//! size cap. See `docs/OPERATIONS.md` for tuning guidance.

use std::time::Instant;

/// Admission-control tuning knobs, part of
/// [`ServiceConfig`](crate::ServiceConfig).
///
/// ```
/// use vlsi_service::AdmissionConfig;
///
/// // Defaults leave both mechanisms off.
/// let off = AdmissionConfig::default();
/// assert_eq!(off.rate_per_sec, 0.0);
/// assert_eq!(off.high_water, usize::MAX);
///
/// // A production-shaped config: 50 jobs/s per client with a burst of
/// // 100, shedding once 96 jobs are queued, refusing instances beyond
/// // 50M pins (roughly 600 MiB of CSR + working memory per job).
/// let tuned = AdmissionConfig {
///     rate_per_sec: 50.0,
///     burst: 100,
///     high_water: 96,
///     max_pins: 50_000_000,
/// };
/// assert!(tuned.high_water < off.high_water);
/// assert_eq!(off.max_pins, usize::MAX);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionConfig {
    /// Token-bucket refill rate per client, in jobs per second.
    /// `0.0` (the default) disables rate limiting.
    pub rate_per_sec: f64,
    /// Token-bucket capacity: the largest burst a client may submit
    /// before the rate applies.
    pub burst: u32,
    /// Queue depth at which new jobs are shed with `overloaded`.
    /// `usize::MAX` (the default) disables depth-based shedding.
    pub high_water: usize,
    /// Largest instance (total pin count) a single job may carry; bigger
    /// requests are refused with `too_large` before touching the worker
    /// pool, so one giant netlist cannot OOM the service. `usize::MAX`
    /// (the default) disables the limit. See `docs/OPERATIONS.md` for the
    /// bytes-per-pin budget behind a sensible value.
    pub max_pins: usize,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            rate_per_sec: 0.0,
            burst: 64,
            high_water: usize::MAX,
            max_pins: usize::MAX,
        }
    }
}

/// A per-client token bucket: `burst` tokens of capacity, refilled at
/// `rate_per_sec`. A rate of `0` (or less) admits everything.
///
/// ```
/// use std::time::Instant;
/// use vlsi_service::{AdmissionConfig, TokenBucket};
///
/// let cfg = AdmissionConfig { rate_per_sec: 1.0, burst: 2, ..AdmissionConfig::default() };
/// let now = Instant::now();
/// let mut bucket = TokenBucket::new(&cfg, now);
/// assert!(bucket.try_take(now)); // burst token 1
/// assert!(bucket.try_take(now)); // burst token 2
/// assert!(!bucket.try_take(now), "dry until the rate refills it");
/// ```
#[derive(Debug, Clone)]
pub struct TokenBucket {
    tokens: f64,
    rate: f64,
    burst: f64,
    last: Instant,
}

impl TokenBucket {
    /// A full bucket for one client.
    pub fn new(config: &AdmissionConfig, now: Instant) -> Self {
        let burst = f64::from(config.burst.max(1));
        TokenBucket {
            tokens: burst,
            rate: config.rate_per_sec,
            burst,
            last: now,
        }
    }

    /// Tries to take one token at `now`: refills for the elapsed time,
    /// then either spends a token (`true`) or reports exhaustion
    /// (`false`). Always `true` when rate limiting is disabled.
    pub fn try_take(&mut self, now: Instant) -> bool {
        if self.rate <= 0.0 {
            return true;
        }
        let elapsed = now.saturating_duration_since(self.last).as_secs_f64();
        self.last = now;
        self.tokens = (self.tokens + elapsed * self.rate).min(self.burst);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn disabled_bucket_admits_everything() {
        let now = Instant::now();
        let mut b = TokenBucket::new(&AdmissionConfig::default(), now);
        for _ in 0..10_000 {
            assert!(b.try_take(now));
        }
    }

    #[test]
    fn burst_is_honoured_then_exhausted() {
        let cfg = AdmissionConfig {
            rate_per_sec: 1.0,
            burst: 3,
            ..AdmissionConfig::default()
        };
        let now = Instant::now();
        let mut b = TokenBucket::new(&cfg, now);
        // Three tokens of burst, then dry — no time passes.
        assert!(b.try_take(now));
        assert!(b.try_take(now));
        assert!(b.try_take(now));
        assert!(!b.try_take(now), "burst exhausted mid-batch");
        // Half a second refills half a token: still dry.
        assert!(!b.try_take(now + Duration::from_millis(500)));
        // After 1.5s total one whole token is back.
        assert!(b.try_take(now + Duration::from_millis(1500)));
        assert!(!b.try_take(now + Duration::from_millis(1500)));
    }

    #[test]
    fn refill_never_exceeds_burst() {
        let cfg = AdmissionConfig {
            rate_per_sec: 100.0,
            burst: 2,
            ..AdmissionConfig::default()
        };
        let now = Instant::now();
        let mut b = TokenBucket::new(&cfg, now);
        // A long idle period must not bank more than `burst` tokens.
        let later = now + Duration::from_secs(60);
        assert!(b.try_take(later));
        assert!(b.try_take(later));
        assert!(!b.try_take(later));
    }
}
