//! Batch partitioning server for the fixed-vertices engines.
//!
//! `vlsi-service` turns the [`vlsi_partition`] engine registry into a
//! long-running batch server: clients submit partitioning jobs as
//! line-delimited JSON (over stdin/stdout or TCP), a bounded two-lane
//! priority queue feeds a worker pool, and each job runs under a
//! cooperative [`CancelToken`] deadline that returns the best-so-far
//! legal partition instead of aborting. Identical jobs are answered from
//! a content-addressed solution cache, warm-start requests refine a
//! previously returned solution instead of partitioning from scratch,
//! and a metrics endpoint surfaces service- and engine-level counters
//! (including per-engine p50/p99 latency).
//!
//! The TCP transport is a nonblocking epoll event loop (Linux
//! x86_64/aarch64; dependency-free via an in-crate raw-syscall shim)
//! with per-client admission token buckets, queue load shedding and
//! idle timeouts — see [`AdmissionConfig`] and `docs/OPERATIONS.md`.
//!
//! See `docs/PROTOCOL.md` for the complete wire reference and
//! `docs/SERVICE.md` for the operational overview; the module docs of
//! [`protocol`], [`queue`], [`admission`], [`cache`] and [`server`]
//! cover the layers.
//!
//! # Example
//!
//! ```
//! use std::io::Cursor;
//! use vlsi_service::{Service, ServiceConfig};
//!
//! # fn main() -> std::io::Result<()> {
//! let service = Service::start(ServiceConfig {
//!     workers: 1,
//!     ..ServiceConfig::default()
//! })?;
//! let requests = concat!(
//!     r#"{"id":"j1","engine":"fm","starts":2,"seed":1,"#,
//!     r#""hypergraph":{"vertices":[1,1,1,1],"nets":[[0,1],[1,2],[2,3]]}}"#,
//!     "\n",
//! );
//! let mut out = Vec::new();
//! service.serve(Cursor::new(requests), &mut out)?;
//! let reply = String::from_utf8(out).unwrap();
//! assert!(reply.contains("\"status\":\"ok\""));
//! service.shutdown();
//! # Ok(())
//! # }
//! ```
//!
//! [`CancelToken`]: vlsi_partition::CancelToken

// `deny` rather than `forbid`: the epoll shim in `sys` is the one module
// allowed to make raw syscalls; everything else stays safe Rust.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod cache;
#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
mod eventloop;
pub mod json;
pub mod metrics;
pub mod protocol;
pub mod queue;
pub mod server;
#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
#[allow(unsafe_code)]
mod sys;

pub use admission::{AdmissionConfig, TokenBucket};
pub use cache::{cache_key, CacheKey, CacheStats, SolutionCache};
pub use metrics::{MetricsSnapshot, ServiceMetrics};
pub use protocol::{parse_request, JobRequest, JobResponse, ProtocolError, Request, ERROR_CODES};
pub use queue::{BoundedQueue, Lane, QueueClosed, WorkerPool};
pub use server::{serve_stdio, serve_tcp, ServeOutcome, Service, ServiceConfig};
