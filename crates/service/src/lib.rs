//! Batch partitioning server for the fixed-vertices engines.
//!
//! `vlsi-service` turns the [`vlsi_partition`] engine registry into a
//! long-running batch server: clients submit partitioning jobs as
//! line-delimited JSON (over stdin/stdout or TCP), a bounded queue feeds a
//! worker pool, and each job runs under a cooperative [`CancelToken`]
//! deadline that returns the best-so-far legal partition instead of
//! aborting. Identical jobs are answered from a content-addressed
//! solution cache, and a metrics endpoint surfaces service- and
//! engine-level counters (including p50/p99 latency).
//!
//! See `docs/SERVICE.md` for the protocol reference; the module docs of
//! [`protocol`], [`queue`], [`cache`] and [`server`] cover the layers.
//!
//! # Example
//!
//! ```
//! use std::io::Cursor;
//! use vlsi_service::{Service, ServiceConfig};
//!
//! # fn main() -> std::io::Result<()> {
//! let service = Service::start(ServiceConfig {
//!     workers: 1,
//!     ..ServiceConfig::default()
//! })?;
//! let requests = concat!(
//!     r#"{"id":"j1","engine":"fm","starts":2,"seed":1,"#,
//!     r#""hypergraph":{"vertices":[1,1,1,1],"nets":[[0,1],[1,2],[2,3]]}}"#,
//!     "\n",
//! );
//! let mut out = Vec::new();
//! service.serve(Cursor::new(requests), &mut out)?;
//! let reply = String::from_utf8(out).unwrap();
//! assert!(reply.contains("\"status\":\"ok\""));
//! service.shutdown();
//! # Ok(())
//! # }
//! ```
//!
//! [`CancelToken`]: vlsi_partition::CancelToken

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod json;
pub mod metrics;
pub mod protocol;
pub mod queue;
pub mod server;

pub use cache::{cache_key, CacheKey, CacheStats, SolutionCache};
pub use metrics::{MetricsSnapshot, ServiceMetrics};
pub use protocol::{parse_request, JobRequest, JobResponse, ProtocolError, Request};
pub use queue::{BoundedQueue, QueueClosed, WorkerPool};
pub use server::{serve_stdio, serve_tcp, ServeOutcome, Service, ServiceConfig};
