//! Wire protocol: line-delimited JSON requests and responses.
//!
//! Every request is one JSON object on one line; every response is one
//! JSON object on one line. Responses carry the request `id`, so a client
//! may pipeline requests and match answers out of order (jobs finish in
//! worker order, not submission order).
//!
//! # Requests
//!
//! A **job** request (all fields except `id` and the hypergraph optional):
//!
//! ```json
//! {"id":"j1","engine":"ml","k":2,"tolerance":0.1,"starts":4,"threads":2,
//!  "seed":7,"deadline_ms":5000,
//!  "hypergraph":{"vertices":[1,1,1,1],"nets":[[0,1],{"w":2,"pins":[2,3]}]},
//!  "fixed":[0,-1,-1,1]}
//! ```
//!
//! `vertices` lists per-vertex weights; each net is either a plain pin
//! array (weight 1) or `{"w":W,"pins":[...]}`. `fixed` maps each vertex to
//! a part id or `-1` for free. Instead of an inline `hypergraph`, a
//! request may name on-disk files: `"hypergraph_path":"x.hgr"` (hMETIS
//! format) with optional `"fixed_path":"x.fix"`.
//!
//! Optional extras on a job request:
//!
//! * `"vcycles":N` runs up to `N` iterated-multilevel V-cycles over the
//!   best start (default 0); `"ensemble":true` additionally recombines the
//!   agreement clusters of the top starts into a final constrained solve.
//!   Both participate in the solution-cache key, so a plain run never
//!   answers a quality-phase request (or vice versa).
//! * `"priority":"interactive"|"batch"` picks the queue lane
//!   ([`Lane`], default `batch`); interactive jobs are dequeued first.
//! * `"warm_start":{"solution_id":"s...","delta":{...}}` asks the server
//!   to seed refinement from a previously returned solution instead of
//!   partitioning from scratch. The optional `delta` **edits the
//!   request's own instance at ingress**: `"removed_nets":[idx,...]`
//!   drops nets by index, `"added_nets":[...]` appends nets (same shape
//!   as `hypergraph.nets`), and `"moved_fixed":[[vertex,part|-1],...]`
//!   re-pins vertices. The vertex set is unchanged by a delta. When the
//!   named solution has been evicted, the job silently falls back to a
//!   cold run and the response carries `"warm":"miss"`.
//!
//! **Control** requests: `{"op":"metrics"}` returns a metrics snapshot,
//! `{"op":"shutdown"}` drains the queue and stops the server.
//!
//! # Responses
//!
//! ```json
//! {"id":"j1","status":"ok","cut":3,"km1":3,"parts":[0,0,1,1],
//!  "cache_hit":false,"deadline_expired":false,"starts_run":4,"micros":812,
//!  "solution_id":"s00c0ffee00c0ffee"}
//! {"id":"j9","status":"error","code":"bad_request","message":"..."}
//! ```
//!
//! `solution_id` names the cached solution for later `warm_start`
//! requests; `"warm":"hit"|"miss"` appears on warm-start jobs.
//!
//! Every error code the service can emit is listed in [`ERROR_CODES`] and
//! documented in `docs/PROTOCOL.md` (the complete wire reference).

use std::fs::File;
use std::io::BufReader;

use vlsi_hypergraph::{
    io::{apply_multi_areas, read_fix, read_hgr},
    FixedVertices, Fixity, Hypergraph, HypergraphBuilder, Objective, PartCapacities, PartId,
    PartSet,
};

use crate::json::{self, Json};
use crate::queue::Lane;

/// Upper bound on `k` — [`PartSet`] packs allowed parts into a 64-bit mask.
pub const MAX_PARTS: usize = PartSet::MAX_PARTS;

/// Every error code a response line can carry, in the order
/// `docs/PROTOCOL.md` documents them. `protocol_doc` tests keep the doc
/// table and this list in lockstep.
pub const ERROR_CODES: &[&str] = &[
    "bad_json",
    "bad_request",
    "unknown_engine",
    "infeasible",
    "too_large",
    "queue_closed",
    "overloaded",
    "rate_limited",
    "internal_error",
    "infeasible_capacities",
];

/// Upper bound on resource dimensions a request may carry. The FPGA
/// exemplar balances 8 resource types; 16 leaves headroom while bounding
/// per-vertex memory at ingress.
pub const MAX_RESOURCE_DIMS: usize = 16;

/// A fully validated partitioning job, ready for a worker.
#[derive(Debug, Clone)]
pub struct JobRequest {
    /// Client-chosen identifier echoed in the response.
    pub id: String,
    /// Canonical engine name (validated against the registry).
    pub engine: String,
    /// Number of parts (2..=[`MAX_PARTS`]).
    pub k: usize,
    /// Relative balance tolerance (≥ 0, finite).
    pub tolerance: f64,
    /// Independent multistart attempts (≥ 1).
    pub starts: usize,
    /// Worker threads for the multistart driver (≥ 1).
    pub threads: usize,
    /// Base RNG seed; start `i` uses `seed + i`.
    pub seed: u64,
    /// Iterated-multilevel V-cycles applied to the best start (0 = off).
    pub vcycles: usize,
    /// Ensemble recombination over the retained top starts.
    pub ensemble: bool,
    /// Wall-clock budget in milliseconds; `None` = no deadline.
    pub deadline_ms: Option<u64>,
    /// Queue lane this job rides ([`Lane::Batch`] unless the request says
    /// `"priority":"interactive"`).
    pub priority: Lane,
    /// Solution id to warm-start from, when the request carried a
    /// `warm_start` clause. Any delta has already been applied to `hg` /
    /// `fixed` at parse time.
    pub warm_from: Option<String>,
    /// Objective the k-way engines optimise (`"cut"` default, `"km1"` for
    /// connectivity). Bipartitioning engines ignore it (the objectives
    /// coincide at `k = 2`).
    pub objective: Objective,
    /// Per-part capacity vectors, when the request carried
    /// `part_capacities`; `None` = uniform even split under `tolerance`.
    /// Feasibility against the instance's resource totals was checked at
    /// ingress.
    pub part_capacities: Option<PartCapacities>,
    /// The instance (post-delta, when warm-starting).
    pub hg: Hypergraph,
    /// Per-vertex fixity constraints (post-delta, when warm-starting).
    pub fixed: FixedVertices,
}

/// One parsed request line.
#[derive(Debug)]
pub enum Request {
    /// A partitioning job.
    Job(Box<JobRequest>),
    /// Metrics snapshot query.
    Metrics,
    /// Graceful shutdown.
    Shutdown,
}

/// A structured protocol error, rendered as an error response line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolError {
    /// The request id, when it could be recovered from the input.
    pub id: Option<String>,
    /// Stable machine-readable code (`bad_json`, `bad_request`, ...).
    pub code: &'static str,
    /// Human-readable detail.
    pub message: String,
}

impl ProtocolError {
    fn new(id: Option<String>, code: &'static str, message: impl Into<String>) -> Self {
        ProtocolError {
            id,
            code,
            message: message.into(),
        }
    }

    /// Renders the error as a one-line JSON response.
    pub fn to_line(&self) -> String {
        let mut out = String::from("{");
        if let Some(id) = &self.id {
            out.push_str("\"id\":");
            out.push_str(&json::quote(id));
            out.push(',');
        }
        out.push_str("\"status\":\"error\",\"code\":");
        out.push_str(&json::quote(self.code));
        out.push_str(",\"message\":");
        out.push_str(&json::quote(&self.message));
        out.push('}');
        out
    }
}

/// A successful job response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobResponse {
    /// Echo of the request id.
    pub id: String,
    /// Cut value of the returned partition.
    pub cut: u64,
    /// Connectivity (λ−1) value of the returned partition. Equal to `cut`
    /// for `k = 2`; `>= cut` otherwise.
    pub km1: u64,
    /// Per-vertex part assignment.
    pub parts: Vec<u32>,
    /// Whether the solution came from the content-addressed cache.
    pub cache_hit: bool,
    /// Whether the deadline fired and this is a best-so-far solution.
    pub deadline_expired: bool,
    /// Multistart attempts that actually ran (≤ requested when cancelled).
    pub starts_run: usize,
    /// Wall-clock service time in microseconds.
    pub micros: u64,
    /// Cache id of this solution, usable in later `warm_start` requests.
    /// Absent when the solution was not cached (e.g. the deadline fired).
    pub solution_id: Option<String>,
    /// `"hit"` when the job refined from the named warm-start seed,
    /// `"miss"` when the seed was gone and the job fell back to a cold
    /// run; absent on plain cold jobs.
    pub warm: Option<&'static str>,
}

impl JobResponse {
    /// Renders the response as a one-line JSON object.
    pub fn to_line(&self) -> String {
        let mut out = String::with_capacity(64 + 4 * self.parts.len());
        out.push_str("{\"id\":");
        out.push_str(&json::quote(&self.id));
        out.push_str(&format!(
            ",\"status\":\"ok\",\"cut\":{},\"km1\":{},\"parts\":[",
            self.cut, self.km1
        ));
        for (i, p) in self.parts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&p.to_string());
        }
        out.push_str(&format!(
            "],\"cache_hit\":{},\"deadline_expired\":{},\"starts_run\":{},\"micros\":{}",
            self.cache_hit, self.deadline_expired, self.starts_run, self.micros
        ));
        if let Some(sid) = &self.solution_id {
            out.push_str(",\"solution_id\":");
            out.push_str(&json::quote(sid));
        }
        if let Some(warm) = self.warm {
            out.push_str(",\"warm\":");
            out.push_str(&json::quote(warm));
        }
        out.push('}');
        out
    }
}

fn bad(id: &Option<String>, message: impl Into<String>) -> ProtocolError {
    ProtocolError::new(id.clone(), "bad_request", message)
}

fn get_usize(
    obj: &Json,
    key: &str,
    default: usize,
    id: &Option<String>,
) -> Result<usize, ProtocolError> {
    match obj.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_u64()
            .map(|u| u as usize)
            .ok_or_else(|| bad(id, format!("'{key}' must be a non-negative integer"))),
    }
}

/// Parses and validates one request line.
///
/// # Errors
/// Returns a [`ProtocolError`] (code `bad_json`, `bad_request` or
/// `unknown_engine`) describing the first problem found. The hypergraph
/// and fixity vector are validated here, at ingress, so workers only ever
/// see well-formed instances.
pub fn parse_request(line: &str) -> Result<Request, ProtocolError> {
    let root =
        json::parse(line).map_err(|e| ProtocolError::new(None, "bad_json", e.to_string()))?;
    if root.as_obj().is_none() {
        return Err(ProtocolError::new(
            None,
            "bad_request",
            "request must be a JSON object",
        ));
    }

    if let Some(op) = root.get("op") {
        return match op.as_str() {
            Some("metrics") => Ok(Request::Metrics),
            Some("shutdown") => Ok(Request::Shutdown),
            _ => Err(ProtocolError::new(
                None,
                "bad_request",
                "'op' must be \"metrics\" or \"shutdown\"",
            )),
        };
    }

    let id = root
        .get("id")
        .and_then(|v| v.as_str())
        .map(|s| s.to_string());
    let Some(ref id_str) = id else {
        return Err(ProtocolError::new(
            None,
            "bad_request",
            "job request missing string field 'id'",
        ));
    };

    let engine_name = root
        .get("engine")
        .map(|v| {
            v.as_str()
                .map(str::to_string)
                .ok_or_else(|| bad(&id, "'engine' must be a string"))
        })
        .transpose()?
        .unwrap_or_else(|| "ml".to_string());
    // `UnknownEngine`'s Display already lists every valid name and alias;
    // surface it verbatim under the structured `unknown_engine` code.
    let engine = vlsi_partition::EngineConfig::by_name(&engine_name)
        .map_err(|e| ProtocolError::new(id.clone(), "unknown_engine", e.to_string()))?;

    let k = get_usize(&root, "k", 2, &id)?;
    if !(2..=MAX_PARTS).contains(&k) {
        return Err(bad(&id, format!("'k' must be in 2..={MAX_PARTS}")));
    }
    let tolerance = match root.get("tolerance") {
        None => 0.1,
        Some(v) => v
            .as_f64()
            .filter(|t| t.is_finite() && *t >= 0.0)
            .ok_or_else(|| bad(&id, "'tolerance' must be a finite number >= 0"))?,
    };
    let starts = get_usize(&root, "starts", 1, &id)?;
    if starts == 0 {
        return Err(bad(&id, "'starts' must be >= 1"));
    }
    let threads = get_usize(&root, "threads", 1, &id)?;
    if threads == 0 {
        return Err(bad(&id, "'threads' must be >= 1"));
    }
    let seed = match root.get("seed") {
        None => 0,
        Some(v) => v
            .as_u64()
            .ok_or_else(|| bad(&id, "'seed' must be a non-negative integer"))?,
    };
    let vcycles = get_usize(&root, "vcycles", 0, &id)?;
    let ensemble = match root.get("ensemble") {
        None => false,
        Some(v) => v
            .as_bool()
            .ok_or_else(|| bad(&id, "'ensemble' must be a boolean"))?,
    };
    let deadline_ms = match root.get("deadline_ms") {
        None | Some(Json::Null) => None,
        Some(v) => Some(
            v.as_u64()
                .ok_or_else(|| bad(&id, "'deadline_ms' must be a non-negative integer"))?,
        ),
    };
    let priority = match root.get("priority") {
        None => Lane::Batch,
        Some(v) => match v.as_str() {
            Some("interactive") => Lane::Interactive,
            Some("batch") => Lane::Batch,
            _ => return Err(bad(&id, "'priority' must be \"interactive\" or \"batch\"")),
        },
    };

    let objective = match root.get("objective") {
        None => Objective::Cut,
        Some(v) => match v.as_str() {
            Some("cut") => Objective::Cut,
            Some("km1") => Objective::KMinus1,
            _ => return Err(bad(&id, "'objective' must be \"cut\" or \"km1\"")),
        },
    };

    let mut hg = parse_hypergraph(&root, &id)?;
    if let Some(res) = root.get("resources") {
        hg = apply_resources(res, hg, &id)?;
    }
    let part_capacities = parse_part_capacities(&root, &id, k, &hg)?;
    let mut fixed = parse_fixed(&root, &id, hg.num_vertices(), k)?;

    let warm_from = match root.get("warm_start") {
        None => None,
        Some(ws) => {
            if ws.as_obj().is_none() {
                return Err(bad(&id, "'warm_start' must be an object"));
            }
            let sid = ws
                .get("solution_id")
                .and_then(|v| v.as_str())
                .ok_or_else(|| bad(&id, "'warm_start.solution_id' must be a string"))?
                .to_string();
            if let Some(delta) = ws.get("delta") {
                (hg, fixed) = apply_warm_delta(delta, &hg, &fixed, k, &id)?;
            }
            Some(sid)
        }
    };

    Ok(Request::Job(Box::new(JobRequest {
        id: id_str.clone(),
        engine: engine.name().to_string(),
        k,
        tolerance,
        starts,
        threads,
        seed,
        vcycles,
        ensemble,
        deadline_ms,
        priority,
        warm_from,
        objective,
        part_capacities,
        hg,
        fixed,
    })))
}

/// Applies the `resources` field — per-vertex multi-dimensional weight
/// vectors — by rebuilding the instance's vertex side-table. Every vertex
/// must carry the same arity (1..=[`MAX_RESOURCE_DIMS`]).
fn apply_resources(
    res: &Json,
    hg: Hypergraph,
    id: &Option<String>,
) -> Result<Hypergraph, ProtocolError> {
    let rows = res.as_arr().ok_or_else(|| {
        bad(
            id,
            "'resources' must be an array of per-vertex weight vectors",
        )
    })?;
    if rows.len() != hg.num_vertices() {
        return Err(bad(
            id,
            format!(
                "'resources' has {} rows, expected one per vertex ({})",
                rows.len(),
                hg.num_vertices()
            ),
        ));
    }
    let mut dims = 0usize;
    let mut flat: Vec<u64> = Vec::new();
    for (i, row) in rows.iter().enumerate() {
        let row = row
            .as_arr()
            .ok_or_else(|| bad(id, format!("resources[{i}]: must be an array of integers")))?;
        if i == 0 {
            dims = row.len();
            if dims == 0 || dims > MAX_RESOURCE_DIMS {
                return Err(bad(
                    id,
                    format!("'resources' arity must be 1..={MAX_RESOURCE_DIMS}, got {dims}"),
                ));
            }
            flat.reserve(rows.len() * dims);
        } else if row.len() != dims {
            return Err(bad(
                id,
                format!("resources[{i}]: has {} entries, expected {dims}", row.len()),
            ));
        }
        for w in row {
            flat.push(w.as_u64().ok_or_else(|| {
                bad(
                    id,
                    format!("resources[{i}]: weights must be non-negative integers"),
                )
            })?);
        }
    }
    apply_multi_areas(&hg, dims, &flat).map_err(|e| bad(id, format!("'resources': {e}")))
}

/// Parses and validates `part_capacities` — `k` rows of per-resource
/// maxima matching the instance's resource arity — and rejects capacity
/// matrices that cannot hold the instance's totals with the structured
/// `infeasible_capacities` code.
fn parse_part_capacities(
    root: &Json,
    id: &Option<String>,
    k: usize,
    hg: &Hypergraph,
) -> Result<Option<PartCapacities>, ProtocolError> {
    let Some(pc) = root.get("part_capacities") else {
        return Ok(None);
    };
    let rows = pc.as_arr().ok_or_else(|| {
        bad(
            id,
            "'part_capacities' must be an array of per-part capacity vectors",
        )
    })?;
    if rows.len() != k {
        return Err(bad(
            id,
            format!(
                "'part_capacities' has {} rows, expected k = {k}",
                rows.len()
            ),
        ));
    }
    let dims = hg.num_resources();
    let mut flat: Vec<u64> = Vec::with_capacity(k * dims);
    for (p, row) in rows.iter().enumerate() {
        let row = row.as_arr().ok_or_else(|| {
            bad(
                id,
                format!("part_capacities[{p}]: must be an array of integers"),
            )
        })?;
        if row.len() != dims {
            return Err(bad(
                id,
                format!(
                    "part_capacities[{p}]: has {} entries, expected the instance's \
                     resource arity ({dims})",
                    row.len()
                ),
            ));
        }
        for c in row {
            flat.push(c.as_u64().ok_or_else(|| {
                bad(
                    id,
                    format!("part_capacities[{p}]: capacities must be non-negative integers"),
                )
            })?);
        }
    }
    let caps = PartCapacities::explicit(k, dims, flat)
        .map_err(|e| bad(id, format!("'part_capacities': {e}")))?;
    if let Err(e) = caps.check_feasible(hg.total_weights()) {
        return Err(ProtocolError::new(
            id.clone(),
            "infeasible_capacities",
            format!("capacity vectors cannot hold the instance: {e}"),
        ));
    }
    Ok(Some(caps))
}

/// Applies a `warm_start.delta` to the request's instance: drops
/// `removed_nets` (by index), appends `added_nets`, re-pins
/// `moved_fixed`. The vertex set is unchanged, so cached part vectors
/// keep their meaning as warm seeds.
fn apply_warm_delta(
    delta: &Json,
    hg: &Hypergraph,
    fixed: &FixedVertices,
    k: usize,
    id: &Option<String>,
) -> Result<(Hypergraph, FixedVertices), ProtocolError> {
    if delta.as_obj().is_none() {
        return Err(bad(id, "'warm_start.delta' must be an object"));
    }

    let mut removed = vec![false; hg.num_nets()];
    if let Some(v) = delta.get("removed_nets") {
        let arr = v
            .as_arr()
            .ok_or_else(|| bad(id, "'delta.removed_nets' must be an array of net indices"))?;
        for e in arr {
            let n = e
                .as_u64()
                .map(|u| u as usize)
                .filter(|&u| u < hg.num_nets())
                .ok_or_else(|| {
                    bad(
                        id,
                        format!(
                            "delta.removed_nets: index out of range 0..{}",
                            hg.num_nets()
                        ),
                    )
                })?;
            removed[n] = true;
        }
    }

    let mut added = Vec::new();
    if let Some(v) = delta.get("added_nets") {
        let arr = v
            .as_arr()
            .ok_or_else(|| bad(id, "'delta.added_nets' must be an array of nets"))?;
        for (n, net) in arr.iter().enumerate() {
            added.push(parse_net_spec(net, n, hg.num_vertices(), id)?);
        }
    }

    let mut fixities: Vec<Fixity> = fixed.as_slice().to_vec();
    if let Some(v) = delta.get("moved_fixed") {
        let arr = v
            .as_arr()
            .ok_or_else(|| bad(id, "'delta.moved_fixed' must be an array of [vertex, part]"))?;
        for e in arr {
            let pair = e
                .as_arr()
                .filter(|p| p.len() == 2)
                .ok_or_else(|| bad(id, "delta.moved_fixed: each entry must be [vertex, part]"))?;
            let v = pair[0]
                .as_u64()
                .map(|u| u as usize)
                .filter(|&u| u < hg.num_vertices())
                .ok_or_else(|| {
                    bad(
                        id,
                        format!(
                            "delta.moved_fixed: vertex out of range 0..{}",
                            hg.num_vertices()
                        ),
                    )
                })?;
            fixities[v] = match pair[1].as_i64() {
                Some(-1) => Fixity::Free,
                Some(p) if (0..k as i64).contains(&p) => {
                    Fixity::Fixed(PartId::from_index(p as usize))
                }
                _ => {
                    return Err(bad(
                        id,
                        format!("delta.moved_fixed: part must be -1 (free) or in 0..{k}"),
                    ))
                }
            };
        }
    }

    let kept = removed.iter().filter(|&&r| !r).count();
    let mut b = HypergraphBuilder::with_capacity(hg.num_vertices(), kept + added.len(), 0);
    let ids: Vec<_> = hg
        .vertices()
        .map(|v| b.add_vertex(hg.vertex_weight(v)))
        .collect();
    for net in hg.nets() {
        if removed[net.index()] {
            continue;
        }
        let pins: Vec<_> = hg.net_pins(net).iter().map(|&v| ids[v.index()]).collect();
        b.add_net(hg.net_weight(net), pins)
            .map_err(|e| bad(id, format!("delta: {e}")))?;
    }
    for (n, (w, pins)) in added.into_iter().enumerate() {
        let pins: Vec<_> = pins.into_iter().map(|p| ids[p]).collect();
        b.add_net(w, pins)
            .map_err(|e| bad(id, format!("delta.added_nets[{n}]: {e}")))?;
    }
    let hg = b.build().map_err(|e| bad(id, format!("delta: {e}")))?;
    Ok((hg, FixedVertices::from_fixities(fixities)))
}

fn parse_hypergraph(root: &Json, id: &Option<String>) -> Result<Hypergraph, ProtocolError> {
    match (root.get("hypergraph"), root.get("hypergraph_path")) {
        (Some(_), Some(_)) => Err(bad(
            id,
            "give either 'hypergraph' or 'hypergraph_path', not both",
        )),
        (Some(inline), None) => parse_inline_hypergraph(inline, id),
        (None, Some(path)) => {
            let path = path
                .as_str()
                .ok_or_else(|| bad(id, "'hypergraph_path' must be a string"))?;
            let file =
                File::open(path).map_err(|e| bad(id, format!("cannot open '{path}': {e}")))?;
            read_hgr(BufReader::new(file))
                .map_err(|e| bad(id, format!("cannot parse '{path}': {e}")))
        }
        (None, None) => Err(bad(id, "missing 'hypergraph' or 'hypergraph_path'")),
    }
}

fn parse_inline_hypergraph(
    inline: &Json,
    id: &Option<String>,
) -> Result<Hypergraph, ProtocolError> {
    let vertices = inline
        .get("vertices")
        .and_then(|v| v.as_arr())
        .ok_or_else(|| bad(id, "'hypergraph.vertices' must be an array of weights"))?;
    if vertices.is_empty() {
        return Err(bad(id, "'hypergraph.vertices' must not be empty"));
    }
    let nets = inline
        .get("nets")
        .and_then(|v| v.as_arr())
        .ok_or_else(|| bad(id, "'hypergraph.nets' must be an array"))?;

    let mut b = HypergraphBuilder::with_capacity(vertices.len(), nets.len(), 0);
    let mut ids = Vec::with_capacity(vertices.len());
    for (i, w) in vertices.iter().enumerate() {
        let w = w.as_u64().ok_or_else(|| {
            bad(
                id,
                format!("vertex {i}: weight must be a non-negative integer"),
            )
        })?;
        ids.push(b.add_vertex(w));
    }
    for (n, net) in nets.iter().enumerate() {
        let (weight, pins) = parse_net_spec(net, n, ids.len(), id)?;
        let resolved: Vec<_> = pins.into_iter().map(|p| ids[p]).collect();
        b.add_net(weight, resolved)
            .map_err(|e| bad(id, format!("net {n}: {e}")))?;
    }
    b.build().map_err(|e| bad(id, format!("hypergraph: {e}")))
}

/// Parses one net spec — a plain pin array (weight 1) or
/// `{"w":W,"pins":[...]}` — into a weight and pin indices validated
/// against `num_vertices`.
fn parse_net_spec(
    net: &Json,
    n: usize,
    num_vertices: usize,
    id: &Option<String>,
) -> Result<(u64, Vec<usize>), ProtocolError> {
    let (weight, pins) = match net {
        Json::Arr(pins) => (1, pins.as_slice()),
        obj @ Json::Obj(_) => {
            let w = match obj.get("w") {
                None => 1,
                Some(v) => v
                    .as_u64()
                    .ok_or_else(|| bad(id, format!("net {n}: 'w' must be an integer")))?,
            };
            let pins = obj
                .get("pins")
                .and_then(|v| v.as_arr())
                .ok_or_else(|| bad(id, format!("net {n}: missing 'pins' array")))?;
            (w, pins)
        }
        _ => {
            return Err(bad(
                id,
                format!("net {n}: must be a pin array or {{\"w\":..,\"pins\":[..]}}"),
            ))
        }
    };
    let mut resolved = Vec::with_capacity(pins.len());
    for p in pins {
        let p = p
            .as_u64()
            .map(|u| u as usize)
            .filter(|&u| u < num_vertices)
            .ok_or_else(|| bad(id, format!("net {n}: pin out of range 0..{num_vertices}")))?;
        resolved.push(p);
    }
    Ok((weight, resolved))
}

fn parse_fixed(
    root: &Json,
    id: &Option<String>,
    num_vertices: usize,
    k: usize,
) -> Result<FixedVertices, ProtocolError> {
    match (root.get("fixed"), root.get("fixed_path")) {
        (Some(_), Some(_)) => Err(bad(id, "give either 'fixed' or 'fixed_path', not both")),
        (None, None) => Ok(FixedVertices::all_free(num_vertices)),
        (None, Some(path)) => {
            let path = path
                .as_str()
                .ok_or_else(|| bad(id, "'fixed_path' must be a string"))?;
            let file =
                File::open(path).map_err(|e| bad(id, format!("cannot open '{path}': {e}")))?;
            read_fix(BufReader::new(file), num_vertices)
                .map_err(|e| bad(id, format!("cannot parse '{path}': {e}")))
        }
        (Some(arr), None) => {
            let entries = arr
                .as_arr()
                .ok_or_else(|| bad(id, "'fixed' must be an array of part ids (-1 = free)"))?;
            if entries.len() != num_vertices {
                return Err(bad(
                    id,
                    format!(
                        "'fixed' has {} entries for {} vertices",
                        entries.len(),
                        num_vertices
                    ),
                ));
            }
            let mut fixities = Vec::with_capacity(entries.len());
            for (i, e) in entries.iter().enumerate() {
                match e.as_i64() {
                    Some(-1) => fixities.push(Fixity::Free),
                    Some(p) if (0..k as i64).contains(&p) => {
                        fixities.push(Fixity::Fixed(PartId::from_index(p as usize)));
                    }
                    _ => {
                        return Err(bad(
                            id,
                            format!("fixed[{i}]: must be -1 (free) or a part id in 0..{k}"),
                        ))
                    }
                }
            }
            Ok(FixedVertices::from_fixities(fixities))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job_line() -> String {
        r#"{"id":"j1","engine":"fm","starts":2,"seed":3,
            "hypergraph":{"vertices":[1,1,1,1],"nets":[[0,1],[1,2],{"w":2,"pins":[2,3]}]},
            "fixed":[0,-1,-1,1]}"#
            .replace('\n', " ")
    }

    #[test]
    fn parses_a_full_job() {
        let Request::Job(job) = parse_request(&job_line()).unwrap() else {
            panic!("expected a job");
        };
        assert_eq!(job.id, "j1");
        assert_eq!(job.engine, "fm");
        assert_eq!(job.k, 2);
        assert_eq!(job.starts, 2);
        assert_eq!(job.seed, 3);
        assert_eq!(job.hg.num_vertices(), 4);
        assert_eq!(job.hg.num_nets(), 3);
        assert_eq!(job.fixed.num_fixed(), 2);
        assert!(job.deadline_ms.is_none());
        assert_eq!(job.vcycles, 0, "quality phase defaults off");
        assert!(!job.ensemble);
    }

    #[test]
    fn quality_phase_fields_parse_and_validate() {
        let line = r#"{"id":"q","vcycles":3,"ensemble":true,
            "hypergraph":{"vertices":[1,1],"nets":[[0,1]]}}"#
            .replace('\n', " ");
        let Request::Job(job) = parse_request(&line).unwrap() else {
            panic!("expected a job");
        };
        assert_eq!(job.vcycles, 3);
        assert!(job.ensemble);

        let err = parse_request(
            r#"{"id":"q","ensemble":"yes","hypergraph":{"vertices":[1,1],"nets":[[0,1]]}}"#,
        )
        .unwrap_err();
        assert_eq!(err.code, "bad_request");
        let err = parse_request(
            r#"{"id":"q","vcycles":-1,"hypergraph":{"vertices":[1,1],"nets":[[0,1]]}}"#,
        )
        .unwrap_err();
        assert_eq!(err.code, "bad_request");
    }

    #[test]
    fn engine_aliases_resolve_to_canonical_names() {
        let line =
            r#"{"id":"a","engine":"multilevel","hypergraph":{"vertices":[1,1],"nets":[[0,1]]}}"#;
        let Request::Job(job) = parse_request(line).unwrap() else {
            panic!("expected a job");
        };
        assert_eq!(job.engine, "ml");
    }

    #[test]
    fn control_requests_parse() {
        assert!(matches!(
            parse_request(r#"{"op":"metrics"}"#).unwrap(),
            Request::Metrics
        ));
        assert!(matches!(
            parse_request(r#"{"op":"shutdown"}"#).unwrap(),
            Request::Shutdown
        ));
    }

    #[test]
    fn malformed_requests_get_structured_errors() {
        let cases: &[(&str, &str)] = &[
            ("{not json", "bad_json"),
            ("[1,2]", "bad_request"),
            (r#"{"op":"dance"}"#, "bad_request"),
            (r#"{"engine":"fm"}"#, "bad_request"), // missing id
            (
                r#"{"id":"x","engine":"quantum","hypergraph":{"vertices":[1],"nets":[]}}"#,
                "unknown_engine",
            ),
            (
                r#"{"id":"x","hypergraph":{"vertices":[],"nets":[]}}"#,
                "bad_request",
            ),
            (
                r#"{"id":"x","hypergraph":{"vertices":[1,1],"nets":[[0,5]]}}"#,
                "bad_request",
            ),
            (
                r#"{"id":"x","k":1,"hypergraph":{"vertices":[1,1],"nets":[[0,1]]}}"#,
                "bad_request",
            ),
            (
                r#"{"id":"x","k":65,"hypergraph":{"vertices":[1,1],"nets":[[0,1]]}}"#,
                "bad_request",
            ),
            (
                r#"{"id":"x","hypergraph":{"vertices":[1,1],"nets":[[0,1]]},"fixed":[0]}"#,
                "bad_request",
            ),
            (
                r#"{"id":"x","hypergraph":{"vertices":[1,1],"nets":[[0,1]]},"fixed":[0,7]}"#,
                "bad_request",
            ),
            (
                r#"{"id":"x","tolerance":-0.5,"hypergraph":{"vertices":[1,1],"nets":[[0,1]]}}"#,
                "bad_request",
            ),
            (
                r#"{"id":"x","starts":0,"hypergraph":{"vertices":[1,1],"nets":[[0,1]]}}"#,
                "bad_request",
            ),
            (r#"{"id":"x"}"#, "bad_request"), // no hypergraph at all
        ];
        for (line, code) in cases {
            match parse_request(line) {
                Err(e) => assert_eq!(&e.code, code, "line {line:?} gave {e:?}"),
                Ok(_) => panic!("line {line:?} should not parse"),
            }
        }
    }

    #[test]
    fn error_lines_echo_the_id_when_known() {
        let err = parse_request(
            r#"{"id":"x","engine":"quantum","hypergraph":{"vertices":[1],"nets":[]}}"#,
        )
        .unwrap_err();
        let line = err.to_line();
        assert!(line.contains("\"id\":\"x\""), "{line}");
        assert!(line.contains("\"code\":\"unknown_engine\""), "{line}");
        // The error line itself is valid JSON.
        crate::json::parse(&line).unwrap();
    }

    #[test]
    fn response_lines_are_valid_json() {
        let resp = JobResponse {
            id: "a\"b".into(),
            cut: 3,
            km1: 4,
            parts: vec![0, 1, 0],
            cache_hit: true,
            deadline_expired: false,
            starts_run: 2,
            micros: 17,
            solution_id: None,
            warm: None,
        };
        let parsed = crate::json::parse(&resp.to_line()).unwrap();
        assert_eq!(parsed.get("id").unwrap().as_str(), Some("a\"b"));
        assert_eq!(parsed.get("cut").unwrap().as_u64(), Some(3));
        assert_eq!(parsed.get("km1").unwrap().as_u64(), Some(4));
        assert_eq!(parsed.get("cache_hit").unwrap().as_bool(), Some(true));
        assert_eq!(parsed.get("parts").unwrap().as_arr().unwrap().len(), 3);
        assert!(parsed.get("solution_id").is_none());
        assert!(parsed.get("warm").is_none());
    }

    #[test]
    fn warm_response_fields_render() {
        let resp = JobResponse {
            id: "w1".into(),
            cut: 1,
            km1: 1,
            parts: vec![0, 1],
            cache_hit: false,
            deadline_expired: false,
            starts_run: 1,
            micros: 9,
            solution_id: Some("s00000000deadbeef".into()),
            warm: Some("hit"),
        };
        let parsed = crate::json::parse(&resp.to_line()).unwrap();
        assert_eq!(
            parsed.get("solution_id").unwrap().as_str(),
            Some("s00000000deadbeef")
        );
        assert_eq!(parsed.get("warm").unwrap().as_str(), Some("hit"));
    }

    #[test]
    fn priority_selects_the_lane() {
        let line = r#"{"id":"p","priority":"interactive",
            "hypergraph":{"vertices":[1,1],"nets":[[0,1]]}}"#
            .replace('\n', " ");
        let Request::Job(job) = parse_request(&line).unwrap() else {
            panic!("expected a job");
        };
        assert_eq!(job.priority, Lane::Interactive);

        let Request::Job(job) = parse_request(&job_line()).unwrap() else {
            panic!("expected a job");
        };
        assert_eq!(job.priority, Lane::Batch, "default lane is batch");

        let err = parse_request(
            r#"{"id":"p","priority":"urgent","hypergraph":{"vertices":[1,1],"nets":[[0,1]]}}"#,
        )
        .unwrap_err();
        assert_eq!(err.code, "bad_request");
    }

    #[test]
    fn warm_start_without_delta_keeps_the_instance() {
        let line = r#"{"id":"w","warm_start":{"solution_id":"s0011223344556677"},
            "hypergraph":{"vertices":[1,1,1,1],"nets":[[0,1],[2,3]]}}"#
            .replace('\n', " ");
        let Request::Job(job) = parse_request(&line).unwrap() else {
            panic!("expected a job");
        };
        assert_eq!(job.warm_from.as_deref(), Some("s0011223344556677"));
        assert_eq!(job.hg.num_nets(), 2);
    }

    #[test]
    fn warm_start_delta_edits_nets_and_fixities() {
        let line = r#"{"id":"w","k":2,
            "hypergraph":{"vertices":[1,1,1,1],"nets":[[0,1],[1,2],[2,3]]},
            "fixed":[0,-1,-1,-1],
            "warm_start":{"solution_id":"s0000000000000001","delta":{
                "removed_nets":[1],
                "added_nets":[{"w":3,"pins":[0,3]}],
                "moved_fixed":[[1,1],[0,-1]]}}}"#
            .replace('\n', " ");
        let Request::Job(job) = parse_request(&line).unwrap() else {
            panic!("expected a job");
        };
        // One net removed, one added: still 3 nets, with the new one last.
        assert_eq!(job.hg.num_nets(), 3);
        let last = job.hg.nets().last().unwrap();
        assert_eq!(job.hg.net_weight(last), 3);
        assert_eq!(
            job.hg
                .net_pins(last)
                .iter()
                .map(|v| v.index())
                .collect::<Vec<_>>(),
            vec![0, 3]
        );
        // Vertex 0 was freed, vertex 1 pinned to part 1.
        use vlsi_hypergraph::VertexId;
        assert!(job.fixed.fixity(VertexId::from_index(0)).is_free());
        assert_eq!(
            job.fixed.fixity(VertexId::from_index(1)),
            Fixity::Fixed(PartId::from_index(1))
        );
        assert_eq!(job.fixed.num_fixed(), 1);
    }

    #[test]
    fn bad_warm_start_deltas_are_rejected() {
        let hg = r#""hypergraph":{"vertices":[1,1],"nets":[[0,1]]}"#;
        let cases = [
            // missing solution_id
            format!(r#"{{"id":"w","warm_start":{{}},{hg}}}"#),
            // removed net index out of range
            format!(
                r#"{{"id":"w","warm_start":{{"solution_id":"s0","delta":{{"removed_nets":[5]}}}},{hg}}}"#
            ),
            // added net pin out of range
            format!(
                r#"{{"id":"w","warm_start":{{"solution_id":"s0","delta":{{"added_nets":[[0,9]]}}}},{hg}}}"#
            ),
            // moved_fixed vertex out of range
            format!(
                r#"{{"id":"w","warm_start":{{"solution_id":"s0","delta":{{"moved_fixed":[[9,0]]}}}},{hg}}}"#
            ),
            // moved_fixed part out of range for k=2
            format!(
                r#"{{"id":"w","warm_start":{{"solution_id":"s0","delta":{{"moved_fixed":[[0,5]]}}}},{hg}}}"#
            ),
        ];
        for line in &cases {
            let err = parse_request(line).unwrap_err();
            assert_eq!(err.code, "bad_request", "line {line}");
        }
    }

    #[test]
    fn error_codes_are_distinct_and_nonempty() {
        let mut seen = std::collections::BTreeSet::new();
        for code in ERROR_CODES {
            assert!(!code.is_empty());
            assert!(seen.insert(code), "duplicate error code {code}");
        }
        assert_eq!(ERROR_CODES.len(), 10);
    }
}
