//! Bounded two-lane job queue and worker pool.
//!
//! The queue is a classic mutex-plus-condvar bounded buffer with two
//! **priority lanes**: [`Lane::Interactive`] jobs are always dequeued
//! before [`Lane::Batch`] jobs, and both lanes share one capacity bound.
//! Producers [`push`](BoundedQueue::push) block while the queue is full
//! (this is the stdio server's backpressure — a client that floods
//! requests stalls its own connection reader instead of growing memory
//! without bound); the nonblocking event-loop front end uses
//! [`try_push`](BoundedQueue::try_push) and sheds with a structured
//! `overloaded` error instead of blocking. Workers
//! [`pop`](BoundedQueue::pop) block while both lanes are empty.
//!
//! Shutdown is graceful by construction: [`close`](BoundedQueue::close)
//! wakes everyone, producers start failing fast, and workers keep draining
//! whatever was already accepted before they see `None` and exit — no
//! accepted job is ever dropped.
//!
//! Each worker executes jobs inside `catch_unwind`, so a panicking job
//! poisons nothing: the worker reports the failure through the job's
//! responder and moves on to the next job.

use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Error returned when submitting to a closed queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueClosed;

impl std::fmt::Display for QueueClosed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job queue is closed")
    }
}

impl std::error::Error for QueueClosed {}

/// Priority lane of a queued job. Interactive jobs are dequeued before
/// batch jobs whenever both lanes are non-empty; within a lane order is
/// FIFO.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Lane {
    /// Latency-sensitive jobs, dequeued first.
    Interactive,
    /// Throughput jobs (the default when a request names no priority).
    #[default]
    Batch,
}

impl Lane {
    /// The wire name (`"interactive"` / `"batch"`).
    pub fn as_str(self) -> &'static str {
        match self {
            Lane::Interactive => "interactive",
            Lane::Batch => "batch",
        }
    }
}

struct QueueState<T> {
    interactive: VecDeque<T>,
    batch: VecDeque<T>,
    closed: bool,
}

impl<T> QueueState<T> {
    fn len(&self) -> usize {
        self.interactive.len() + self.batch.len()
    }
}

/// A blocking bounded MPMC queue with two priority lanes.
pub struct BoundedQueue<T> {
    state: Mutex<QueueState<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `capacity` pending items (min 1) across
    /// both lanes.
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            state: Mutex::new(QueueState {
                interactive: VecDeque::new(),
                batch: VecDeque::new(),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Enqueues `item` on `lane`, blocking while the queue is full.
    ///
    /// # Errors
    /// Returns [`QueueClosed`] when the queue has been closed (the item is
    /// dropped).
    pub fn push(&self, item: T, lane: Lane) -> Result<(), QueueClosed> {
        let mut state = self.state.lock().expect("queue mutex");
        loop {
            if state.closed {
                return Err(QueueClosed);
            }
            if state.len() < self.capacity {
                match lane {
                    Lane::Interactive => state.interactive.push_back(item),
                    Lane::Batch => state.batch.push_back(item),
                }
                self.not_empty.notify_one();
                return Ok(());
            }
            state = self.not_full.wait(state).expect("queue mutex");
        }
    }

    /// Enqueues `item` on `lane` only if there is room right now.
    ///
    /// # Errors
    /// `Err(Some(item))` when the queue is full (the item is handed back),
    /// `Err(None)` when it is closed.
    pub fn try_push(&self, item: T, lane: Lane) -> Result<(), Option<T>> {
        let mut state = self.state.lock().expect("queue mutex");
        if state.closed {
            return Err(None);
        }
        if state.len() < self.capacity {
            match lane {
                Lane::Interactive => state.interactive.push_back(item),
                Lane::Batch => state.batch.push_back(item),
            }
            self.not_empty.notify_one();
            Ok(())
        } else {
            Err(Some(item))
        }
    }

    /// Dequeues the next item — interactive lane first — blocking while
    /// both lanes are empty. Returns `None` once the queue is closed
    /// **and** drained.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().expect("queue mutex");
        loop {
            if let Some(item) = state
                .interactive
                .pop_front()
                .or_else(|| state.batch.pop_front())
            {
                self.not_full.notify_one();
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.not_empty.wait(state).expect("queue mutex");
        }
    }

    /// Closes the queue: pending items remain poppable, new pushes fail.
    pub fn close(&self) {
        let mut state = self.state.lock().expect("queue mutex");
        state.closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Number of items currently queued across both lanes.
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue mutex").len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A fixed pool of worker threads draining a [`BoundedQueue`] of jobs.
///
/// `run` maps a job to `()` — jobs carry their own response channel, so
/// the pool needs no output plumbing. A panicking job is caught and routed
/// to `on_panic`; the worker thread survives.
pub struct WorkerPool<T: Send + 'static> {
    queue: Arc<BoundedQueue<T>>,
    handles: Vec<JoinHandle<()>>,
}

impl<T: Send + 'static> WorkerPool<T> {
    /// Spawns `workers` threads (min 1) sharing `queue`.
    pub fn spawn<F, P>(workers: usize, queue: Arc<BoundedQueue<T>>, run: F, on_panic: P) -> Self
    where
        F: Fn(T) + Send + Sync + 'static,
        P: Fn(Box<dyn std::any::Any + Send>) + Send + Sync + 'static,
    {
        let run = Arc::new(run);
        let on_panic = Arc::new(on_panic);
        let handles = (0..workers.max(1))
            .map(|w| {
                let queue = Arc::clone(&queue);
                let run = Arc::clone(&run);
                let on_panic = Arc::clone(&on_panic);
                std::thread::Builder::new()
                    .name(format!("vlsi-service-worker-{w}"))
                    .spawn(move || {
                        while let Some(job) = queue.pop() {
                            if let Err(payload) = panic::catch_unwind(AssertUnwindSafe(|| run(job)))
                            {
                                on_panic(payload);
                            }
                        }
                    })
                    .expect("spawn worker thread")
            })
            .collect();
        WorkerPool { queue, handles }
    }

    /// The shared queue (for submitting).
    pub fn queue(&self) -> &Arc<BoundedQueue<T>> {
        &self.queue
    }

    /// Closes the queue and joins every worker after it drains.
    pub fn shutdown(self) {
        self.queue.close();
        for handle in self.handles {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn fifo_order_within_a_lane() {
        let q = BoundedQueue::new(8);
        for i in 0..5 {
            q.push(i, Lane::Batch).unwrap();
        }
        q.close();
        let drained: Vec<i32> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(drained, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn interactive_lane_preempts_batch() {
        let q = BoundedQueue::new(8);
        q.push(10, Lane::Batch).unwrap();
        q.push(11, Lane::Batch).unwrap();
        q.push(1, Lane::Interactive).unwrap();
        q.push(2, Lane::Interactive).unwrap();
        q.close();
        let drained: Vec<i32> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(
            drained,
            vec![1, 2, 10, 11],
            "interactive first, FIFO within"
        );
    }

    #[test]
    fn capacity_is_shared_across_lanes() {
        let q = BoundedQueue::new(2);
        q.push(1, Lane::Batch).unwrap();
        q.push(2, Lane::Interactive).unwrap();
        assert_eq!(q.try_push(3, Lane::Interactive), Err(Some(3)));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn push_blocks_until_a_pop_frees_a_slot() {
        let q = Arc::new(BoundedQueue::new(1));
        q.push(0u32, Lane::Batch).unwrap();
        let q2 = Arc::clone(&q);
        let producer = std::thread::spawn(move || q2.push(1, Lane::Batch).unwrap());
        // The producer must be blocked: the queue stays at capacity.
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some(0));
        producer.join().unwrap();
        assert_eq!(q.pop(), Some(1));
    }

    #[test]
    fn try_push_reports_full_and_closed() {
        let q = BoundedQueue::new(1);
        assert!(q.try_push(1, Lane::Batch).is_ok());
        assert_eq!(q.try_push(2, Lane::Batch), Err(Some(2)));
        q.close();
        assert_eq!(q.try_push(3, Lane::Batch), Err(None));
    }

    #[test]
    fn close_drains_pending_then_ends() {
        let q = Arc::new(BoundedQueue::new(4));
        q.push(1, Lane::Batch).unwrap();
        q.push(2, Lane::Interactive).unwrap();
        q.close();
        assert!(q.push(3, Lane::Batch).is_err());
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn pool_executes_all_jobs_and_survives_panics() {
        let done = Arc::new(AtomicUsize::new(0));
        let panics = Arc::new(AtomicUsize::new(0));
        let queue = Arc::new(BoundedQueue::new(4));
        let done2 = Arc::clone(&done);
        let panics2 = Arc::clone(&panics);
        let pool = WorkerPool::spawn(
            2,
            Arc::clone(&queue),
            move |job: usize| {
                if job == 13 {
                    panic!("unlucky job");
                }
                done2.fetch_add(1, Ordering::SeqCst);
            },
            move |_| {
                panics2.fetch_add(1, Ordering::SeqCst);
            },
        );
        for job in [1, 13, 2, 13, 3] {
            queue.push(job, Lane::Batch).unwrap();
        }
        pool.shutdown();
        assert_eq!(done.load(Ordering::SeqCst), 3, "non-panicking jobs ran");
        assert_eq!(panics.load(Ordering::SeqCst), 2, "panics were isolated");
    }
}
