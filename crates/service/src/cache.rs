//! Content-addressed solution cache with LRU eviction.
//!
//! A solution is addressed by the *content* of the job that produced it:
//! the canonical byte encoding of (engine, k, tolerance, starts, seed,
//! refinement regime, vertex weights, nets, fixities) — everything that
//! determines the deterministic output. Two structurally identical
//! requests therefore share one entry no matter how their JSON was
//! formatted, while any change to the instance or configuration misses.
//!
//! The *refinement regime* bit exists because the k-way engines' answer is
//! no longer invariant across every thread count: a single-start job with
//! `threads >= 2` runs the synchronous-round parallel refinement, which is
//! a different (equally deterministic) algorithm than the sequential pass
//! at `threads <= 1`. The exact thread count stays out of the key — within
//! a regime the answer is identical for any budget — but the regime itself
//! must match.
//!
//! Lookups compare the full key bytes, not just the 64-bit hash, so a
//! hash collision degrades to a miss instead of returning a wrong
//! solution. Deadline-expired (best-so-far) results are never inserted —
//! caching them would make a later identical request with a generous
//! deadline return the truncated answer.

use std::collections::HashMap;

use vlsi_hypergraph::{FixedVertices, Fixity, Hypergraph, Objective, PartCapacities, PartId};

/// The canonical byte encoding of a job's solution-determining content.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheKey {
    bytes: Vec<u8>,
    hash: u64,
}

impl CacheKey {
    /// The 64-bit FNV-1a hash of the key bytes.
    pub fn hash(&self) -> u64 {
        self.hash
    }

    /// The **solution id** of this key: a stable, content-derived handle
    /// (`"s"` + 16 hex digits of the hash) returned to clients in job
    /// responses and accepted back in `warm_start.solution_id`. Because it
    /// is derived from the content hash — not from an insertion counter —
    /// the id a client observes is independent of worker count and
    /// completion order.
    pub fn solution_id(&self) -> String {
        format!("s{:016x}", self.hash)
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Builds the content address of a job. `parallel_refine` is the
/// refinement-regime bit: `true` when the job hands a thread budget ≥ 2 to
/// the engine's internal phases (single-start jobs), selecting the
/// synchronous-round parallel k-way refinement. `vcycles` and `ensemble`
/// are the quality-phase knobs: a plain multistart solution must never
/// answer a V-cycle/ensemble request (they produce different — better —
/// partitions), so both are part of the address.
///
/// The encoding is length-prefixed throughout, so distinct structures can
/// never alias (e.g. moving a weight from one vertex to the next changes
/// the bytes even though the concatenation is identical).
#[allow(clippy::too_many_arguments)]
pub fn cache_key(
    engine: &str,
    k: usize,
    tolerance: f64,
    starts: usize,
    seed: u64,
    parallel_refine: bool,
    vcycles: usize,
    ensemble: bool,
    objective: Objective,
    part_capacities: Option<&PartCapacities>,
    hg: &Hypergraph,
    fixed: &FixedVertices,
) -> CacheKey {
    let mut bytes = Vec::with_capacity(64 + 8 * (hg.num_vertices() + hg.num_pins()));
    push_u64(&mut bytes, engine.len() as u64);
    bytes.extend_from_slice(engine.as_bytes());
    push_u64(&mut bytes, k as u64);
    push_u64(&mut bytes, tolerance.to_bits());
    push_u64(&mut bytes, starts as u64);
    push_u64(&mut bytes, seed);
    push_u64(&mut bytes, parallel_refine as u64);
    push_u64(&mut bytes, vcycles as u64);
    push_u64(&mut bytes, ensemble as u64);
    push_u64(
        &mut bytes,
        match objective {
            Objective::Cut => 0,
            Objective::KMinus1 => 1,
            Objective::Soed => 2,
        },
    );
    match part_capacities {
        None => push_u64(&mut bytes, 0),
        Some(caps) => {
            push_u64(&mut bytes, 1);
            push_u64(&mut bytes, caps.num_parts() as u64);
            push_u64(&mut bytes, caps.num_resources() as u64);
            for &c in caps.as_flat() {
                push_u64(&mut bytes, c);
            }
        }
    }

    push_u64(&mut bytes, hg.num_vertices() as u64);
    push_u64(&mut bytes, hg.num_resources() as u64);
    for v in hg.vertices() {
        for &w in hg.vertex_weights(v) {
            push_u64(&mut bytes, w);
        }
    }
    push_u64(&mut bytes, hg.num_nets() as u64);
    for n in hg.nets() {
        push_u64(&mut bytes, hg.net_weight(n));
        push_u64(&mut bytes, hg.net_size(n) as u64);
        for &p in hg.net_pins(n) {
            push_u64(&mut bytes, p.index() as u64);
        }
    }

    push_u64(&mut bytes, fixed.len() as u64);
    for fixity in fixed.as_slice() {
        match fixity {
            Fixity::Free => push_u64(&mut bytes, u64::MAX),
            Fixity::Fixed(p) => {
                push_u64(&mut bytes, 0);
                push_u64(&mut bytes, p.index() as u64);
            }
            Fixity::FixedAny(set) => {
                push_u64(&mut bytes, 1);
                let mut mask = 0u64;
                for p in set.iter() {
                    mask |= 1 << p.index();
                }
                push_u64(&mut bytes, mask);
            }
        }
    }

    let hash = fnv1a(&bytes);
    CacheKey { bytes, hash }
}

/// A cached solution.
#[derive(Debug, Clone)]
struct Entry {
    key_bytes: Vec<u8>,
    parts: Vec<PartId>,
    cut: u64,
    last_used: u64,
}

/// Hit/miss/eviction counters for a [`SolutionCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups that returned a solution.
    pub hits: u64,
    /// Lookups that found nothing (including hash collisions).
    pub misses: u64,
    /// Entries evicted to respect the capacity bound.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: usize,
}

/// An LRU-bounded map from content address to solution.
///
/// Not internally synchronised — the server wraps it in a `Mutex`.
#[derive(Debug)]
pub struct SolutionCache {
    map: HashMap<u64, Vec<Entry>>,
    capacity: usize,
    len: usize,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl SolutionCache {
    /// A cache holding at most `capacity` solutions (min 1).
    pub fn new(capacity: usize) -> Self {
        SolutionCache {
            map: HashMap::new(),
            capacity: capacity.max(1),
            len: 0,
            tick: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Looks up `key`, refreshing its recency on a hit.
    pub fn get(&mut self, key: &CacheKey) -> Option<(Vec<PartId>, u64)> {
        self.tick += 1;
        let tick = self.tick;
        let found = self.map.get_mut(&key.hash).and_then(|bucket| {
            bucket
                .iter_mut()
                .find(|e| e.key_bytes == key.bytes)
                .map(|e| {
                    e.last_used = tick;
                    (e.parts.clone(), e.cut)
                })
        });
        match &found {
            Some(_) => self.hits += 1,
            None => self.misses += 1,
        }
        found
    }

    /// Looks up a solution by its content-derived id (see
    /// [`CacheKey::solution_id`]), refreshing recency on a hit. Used by
    /// the warm-start path; `None` (an evicted or never-seen id) makes the
    /// server fall back to a cold run with a `warm:"miss"` note.
    ///
    /// In the vanishingly rare case of two resident keys sharing a 64-bit
    /// hash, the first entry in the bucket answers — the warm-start path
    /// only needs *a* plausible seed, and it re-legalizes and re-validates
    /// whatever it gets.
    pub fn get_by_id(&mut self, id: &str) -> Option<(Vec<PartId>, u64)> {
        let hash = id
            .strip_prefix('s')
            .and_then(|h| u64::from_str_radix(h, 16).ok());
        self.tick += 1;
        let tick = self.tick;
        let found = hash
            .and_then(|h| self.map.get_mut(&h))
            .and_then(|bucket| bucket.first_mut())
            .map(|e| {
                e.last_used = tick;
                (e.parts.clone(), e.cut)
            });
        match &found {
            Some(_) => self.hits += 1,
            None => self.misses += 1,
        }
        found
    }

    /// Inserts (or refreshes) a solution, evicting the least-recently-used
    /// entry when the capacity bound is exceeded.
    pub fn insert(&mut self, key: CacheKey, parts: Vec<PartId>, cut: u64) {
        self.tick += 1;
        let bucket = self.map.entry(key.hash).or_default();
        if let Some(e) = bucket.iter_mut().find(|e| e.key_bytes == key.bytes) {
            e.parts = parts;
            e.cut = cut;
            e.last_used = self.tick;
            return;
        }
        bucket.push(Entry {
            key_bytes: key.bytes,
            parts,
            cut,
            last_used: self.tick,
        });
        self.len += 1;
        if self.len > self.capacity {
            self.evict_lru();
        }
    }

    fn evict_lru(&mut self) {
        // O(entries) scan — the cache is small (hundreds of solutions) and
        // eviction is rare next to a partitioning run, so a recency scan
        // beats maintaining an intrusive list.
        let Some((&victim_hash, oldest_in_bucket)) = self
            .map
            .iter()
            .filter(|(_, b)| !b.is_empty())
            .map(|(h, b)| {
                let idx = b
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, e)| e.last_used)
                    .map(|(i, _)| i)
                    .expect("bucket non-empty");
                (h, idx)
            })
            .min_by_key(|&(h, i)| self.map[h][i].last_used)
        else {
            return;
        };
        let bucket = self.map.get_mut(&victim_hash).expect("victim exists");
        bucket.swap_remove(oldest_in_bucket);
        if bucket.is_empty() {
            self.map.remove(&victim_hash);
        }
        self.len -= 1;
        self.evictions += 1;
    }

    /// Point-in-time counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            entries: self.len,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vlsi_hypergraph::HypergraphBuilder;

    fn chain(n: usize) -> Hypergraph {
        let mut b = HypergraphBuilder::new();
        let v: Vec<_> = (0..n).map(|_| b.add_vertex(1)).collect();
        for w in v.windows(2) {
            b.add_net(1, [w[0], w[1]]).unwrap();
        }
        b.build().unwrap()
    }

    fn key_of(hg: &Hypergraph, fixed: &FixedVertices, seed: u64) -> CacheKey {
        cache_key(
            "ml",
            2,
            0.1,
            4,
            seed,
            false,
            0,
            false,
            Objective::Cut,
            None,
            hg,
            fixed,
        )
    }

    #[test]
    fn identical_content_shares_an_address() {
        let hg = chain(6);
        let fx = FixedVertices::all_free(6);
        assert_eq!(key_of(&hg, &fx, 7), key_of(&hg, &fx, 7));
    }

    #[test]
    fn any_config_change_misses() {
        let hg = chain(6);
        let fx = FixedVertices::all_free(6);
        let base = key_of(&hg, &fx, 7);
        assert_ne!(base, key_of(&hg, &fx, 8), "seed is part of the address");
        #[allow(clippy::type_complexity)]
        let variants: &[(&str, &str, f64, bool, usize, bool, Objective)] = &[
            ("engine", "fm", 0.1, false, 0, false, Objective::Cut),
            ("tolerance", "ml", 0.2, false, 0, false, Objective::Cut),
            (
                "refinement regime",
                "ml",
                0.1,
                true,
                0,
                false,
                Objective::Cut,
            ),
            ("vcycles", "ml", 0.1, false, 2, false, Objective::Cut),
            ("ensemble", "ml", 0.1, false, 0, true, Objective::Cut),
            ("objective", "ml", 0.1, false, 0, false, Objective::KMinus1),
        ];
        for &(what, engine, tol, par, vc, ens, obj) in variants {
            assert_ne!(
                base,
                cache_key(engine, 2, tol, 4, 7, par, vc, ens, obj, None, &hg, &fx),
                "{what} is part of the address"
            );
        }
        let caps = PartCapacities::uniform(2, &[10]);
        assert_ne!(
            base,
            cache_key(
                "ml",
                2,
                0.1,
                4,
                7,
                false,
                0,
                false,
                Objective::Cut,
                Some(&caps),
                &hg,
                &fx
            ),
            "capacity vectors are part of the address"
        );
        let mut fixed = FixedVertices::all_free(6);
        fixed.fix(
            vlsi_hypergraph::VertexId::from_index(0),
            PartId::from_index(1),
        );
        assert_ne!(
            base,
            key_of(&hg, &fixed, 7),
            "fixities are part of the address"
        );
        assert_ne!(base, key_of(&chain(7), &FixedVertices::all_free(7), 7));
    }

    #[test]
    fn hit_miss_counters_and_round_trip() {
        let hg = chain(4);
        let fx = FixedVertices::all_free(4);
        let mut cache = SolutionCache::new(8);
        let key = key_of(&hg, &fx, 0);
        assert!(cache.get(&key).is_none());
        cache.insert(key.clone(), vec![PartId::from_index(0); 4], 3);
        let (parts, cut) = cache.get(&key).expect("hit after insert");
        assert_eq!(cut, 3);
        assert_eq!(parts.len(), 4);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    #[test]
    fn solution_ids_round_trip_and_miss_after_eviction() {
        let hg = chain(4);
        let fx = FixedVertices::all_free(4);
        let mut cache = SolutionCache::new(1);
        let k0 = key_of(&hg, &fx, 0);
        let id0 = k0.solution_id();
        assert!(id0.starts_with('s') && id0.len() == 17, "{id0}");
        assert_eq!(id0, key_of(&hg, &fx, 0).solution_id(), "content-derived");
        cache.insert(k0.clone(), vec![PartId::from_index(1); 4], 2);
        let (parts, cut) = cache.get_by_id(&id0).expect("hit by id");
        assert_eq!((parts.len(), cut), (4, 2));
        // Capacity 1: inserting a second solution evicts the first, and
        // its id now misses instead of erroring.
        cache.insert(key_of(&hg, &fx, 1), vec![PartId::from_index(0); 4], 3);
        assert!(cache.get_by_id(&id0).is_none(), "evicted id misses");
        assert!(cache.get_by_id("not-an-id").is_none());
        assert!(cache.get_by_id("sffffffffffffffff").is_none());
    }

    #[test]
    fn lru_evicts_the_coldest_entry() {
        let hg = chain(4);
        let fx = FixedVertices::all_free(4);
        let mut cache = SolutionCache::new(2);
        let k0 = key_of(&hg, &fx, 0);
        let k1 = key_of(&hg, &fx, 1);
        let k2 = key_of(&hg, &fx, 2);
        cache.insert(k0.clone(), vec![PartId::from_index(0); 4], 0);
        cache.insert(k1.clone(), vec![PartId::from_index(0); 4], 1);
        cache.get(&k0); // refresh k0 — k1 becomes coldest
        cache.insert(k2.clone(), vec![PartId::from_index(0); 4], 2);
        assert!(cache.get(&k0).is_some(), "recently used entry survives");
        assert!(cache.get(&k1).is_none(), "coldest entry was evicted");
        assert!(cache.get(&k2).is_some());
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.stats().entries, 2);
    }
}
