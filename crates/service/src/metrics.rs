//! Service metrics, built on the [`vlsi_trace::CounterSink`].
//!
//! Two layers of observability meet here: service-level counters (jobs
//! served, cache hits, deadline expirations, latency percentiles) owned by
//! this module, and engine-level counters (passes, moves, cancellations)
//! aggregated by the [`CounterSink`] the workers thread into every
//! partitioning run. A `{"op":"metrics"}` request renders both as one
//! JSON line.
//!
//! Latencies are tracked **per engine**: a slow `sa` job must not hide in
//! the same histogram as sub-millisecond `fm` jobs. The snapshot still
//! exposes the aggregate p50/p99 across all engines (the fields older
//! dashboards scrape) alongside one `{name, count, p50_us, p99_us}` entry
//! per engine that has served at least one job.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use vlsi_trace::{CounterSink, Counters};

/// Shared, lock-free-where-it-matters service metrics.
#[derive(Debug, Default)]
pub struct ServiceMetrics {
    /// Jobs answered successfully (including cache hits).
    pub jobs_ok: AtomicU64,
    /// Jobs answered with an error response.
    pub jobs_failed: AtomicU64,
    /// Jobs whose worker panicked (isolated; also counted in `jobs_failed`).
    pub panics: AtomicU64,
    /// Jobs answered from the solution cache.
    pub cache_hits: AtomicU64,
    /// Jobs that ran an engine because the cache missed.
    pub cache_misses: AtomicU64,
    /// Jobs whose deadline fired (best-so-far responses).
    pub deadline_expirations: AtomicU64,
    /// Malformed / rejected request lines.
    pub protocol_errors: AtomicU64,
    /// Engine-level counters, fed by every worker's partitioning run.
    pub engine: CounterSink,
    latencies_us: Mutex<BTreeMap<&'static str, Vec<u64>>>,
}

/// Latency distribution of one engine's jobs (cache hits included).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineLatency {
    /// Canonical engine name (`"fm"`, `"ml"`, ...).
    pub name: &'static str,
    /// Jobs this engine has answered.
    pub count: u64,
    /// Median latency in microseconds.
    pub p50_us: u64,
    /// 99th-percentile latency in microseconds.
    pub p99_us: u64,
}

/// A point-in-time copy of everything [`ServiceMetrics`] tracks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Jobs answered successfully.
    pub jobs_ok: u64,
    /// Jobs answered with an error.
    pub jobs_failed: u64,
    /// Worker panics survived.
    pub panics: u64,
    /// Cache hits.
    pub cache_hits: u64,
    /// Cache misses.
    pub cache_misses: u64,
    /// Deadline expirations.
    pub deadline_expirations: u64,
    /// Rejected request lines.
    pub protocol_errors: u64,
    /// Median service latency across all engines in microseconds
    /// (0 when no jobs ran).
    pub p50_us: u64,
    /// 99th-percentile service latency across all engines in microseconds.
    pub p99_us: u64,
    /// Per-engine latency distributions, sorted by engine name.
    pub engine_latencies: Vec<EngineLatency>,
    /// Engine counters (passes, moves, cancellations, ...).
    pub engine: Counters,
}

impl ServiceMetrics {
    /// Fresh, all-zero metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one served job's wall-clock latency under its engine's name.
    pub fn record_latency_us(&self, engine: &'static str, micros: u64) {
        self.latencies_us
            .lock()
            .expect("metrics mutex")
            .entry(engine)
            .or_default()
            .push(micros);
    }

    /// A consistent-enough copy of all counters (see
    /// [`CounterSink::snapshot`] for the relaxed-ordering caveat).
    pub fn snapshot(&self) -> MetricsSnapshot {
        let by_engine = self.latencies_us.lock().expect("metrics mutex").clone();
        let mut all: Vec<u64> = by_engine.values().flatten().copied().collect();
        all.sort_unstable();
        // BTreeMap iteration gives the name-sorted order the JSON line and
        // snapshot comparisons rely on.
        let engine_latencies = by_engine
            .into_iter()
            .map(|(name, mut lat)| {
                lat.sort_unstable();
                EngineLatency {
                    name,
                    count: lat.len() as u64,
                    p50_us: percentile(&lat, 50),
                    p99_us: percentile(&lat, 99),
                }
            })
            .collect();
        MetricsSnapshot {
            jobs_ok: self.jobs_ok.load(Ordering::Relaxed),
            jobs_failed: self.jobs_failed.load(Ordering::Relaxed),
            panics: self.panics.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            deadline_expirations: self.deadline_expirations.load(Ordering::Relaxed),
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
            p50_us: percentile(&all, 50),
            p99_us: percentile(&all, 99),
            engine_latencies,
            engine: self.engine.snapshot(),
        }
    }
}

/// Nearest-rank percentile of an ascending-sorted sample (0 when empty).
fn percentile(sorted: &[u64], p: u32) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    // Nearest-rank: ceil(p/100 * n), clamped to the sample.
    let rank = ((p as usize * sorted.len()).div_ceil(100)).max(1);
    sorted[rank.min(sorted.len()) - 1]
}

impl MetricsSnapshot {
    /// Renders the snapshot as a one-line JSON metrics response.
    pub fn to_line(&self) -> String {
        let engines: String = self
            .engine_latencies
            .iter()
            .map(|l| {
                format!(
                    "\"{}\":{{\"count\":{},\"p50_us\":{},\"p99_us\":{}}}",
                    l.name, l.count, l.p50_us, l.p99_us
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        let e = &self.engine;
        format!(
            concat!(
                "{{\"status\":\"ok\",\"metrics\":{{",
                "\"jobs_ok\":{},\"jobs_failed\":{},\"panics\":{},",
                "\"cache_hits\":{},\"cache_misses\":{},",
                "\"deadline_expirations\":{},\"protocol_errors\":{},",
                "\"p50_us\":{},\"p99_us\":{},",
                "\"engines\":{{{}}},",
                "\"engine\":{{\"passes\":{},\"kway_passes\":{},\"moves_tried\":{},",
                "\"moves_committed\":{},\"moves_rolled_back\":{},\"bucket_ops\":{},",
                "\"cut_updates\":{},\"levels\":{},\"starts\":{},\"sweeps\":{},",
                "\"cancellations\":{},\"warm_starts\":{},\"sheds\":{}}}}}}}"
            ),
            self.jobs_ok,
            self.jobs_failed,
            self.panics,
            self.cache_hits,
            self.cache_misses,
            self.deadline_expirations,
            self.protocol_errors,
            self.p50_us,
            self.p99_us,
            engines,
            e.passes,
            e.kway_passes,
            e.moves_tried,
            e.moves_committed,
            e.moves_rolled_back,
            e.bucket_ops,
            e.cut_updates,
            e.levels,
            e.starts,
            e.sweeps,
            e.cancellations,
            e.warm_starts,
            e.sheds,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_use_nearest_rank() {
        assert_eq!(percentile(&[], 50), 0);
        assert_eq!(percentile(&[7], 50), 7);
        assert_eq!(percentile(&[7], 99), 7);
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 50), 50);
        assert_eq!(percentile(&v, 99), 99);
    }

    #[test]
    fn snapshot_reflects_recorded_activity() {
        let m = ServiceMetrics::new();
        m.jobs_ok.fetch_add(3, Ordering::Relaxed);
        m.cache_hits.fetch_add(1, Ordering::Relaxed);
        for us in [10, 20, 30] {
            m.record_latency_us("fm", us);
        }
        let snap = m.snapshot();
        assert_eq!(snap.jobs_ok, 3);
        assert_eq!(snap.cache_hits, 1);
        assert_eq!(snap.p50_us, 20);
        assert_eq!(snap.p99_us, 30);
        assert_eq!(
            snap.engine_latencies,
            vec![EngineLatency {
                name: "fm",
                count: 3,
                p50_us: 20,
                p99_us: 30,
            }]
        );
    }

    #[test]
    fn latencies_are_tracked_per_engine() {
        let m = ServiceMetrics::new();
        // A slow annealing job must not distort the fm percentiles.
        for us in [10, 20, 30, 40] {
            m.record_latency_us("fm", us);
        }
        m.record_latency_us("sa", 90_000);
        let snap = m.snapshot();
        // Name-sorted: fm before sa.
        assert_eq!(snap.engine_latencies.len(), 2);
        let fm = &snap.engine_latencies[0];
        let sa = &snap.engine_latencies[1];
        assert_eq!((fm.name, fm.count, fm.p50_us, fm.p99_us), ("fm", 4, 20, 40));
        assert_eq!((sa.name, sa.count, sa.p50_us), ("sa", 1, 90_000));
        // The aggregate still sees everything.
        assert_eq!(snap.p99_us, 90_000);
    }

    #[test]
    fn metrics_line_is_valid_json() {
        let m = ServiceMetrics::new();
        m.record_latency_us("ml", 5);
        m.record_latency_us("fm", 7);
        let line = m.snapshot().to_line();
        let parsed = crate::json::parse(&line).unwrap();
        let metrics = parsed.get("metrics").unwrap();
        assert_eq!(metrics.get("p50_us").unwrap().as_u64(), Some(5));
        let engines = metrics.get("engines").unwrap();
        assert_eq!(
            engines.get("fm").unwrap().get("p50_us").unwrap().as_u64(),
            Some(7)
        );
        assert_eq!(
            engines.get("ml").unwrap().get("p99_us").unwrap().as_u64(),
            Some(5)
        );
        assert!(metrics
            .get("engine")
            .unwrap()
            .get("cancellations")
            .is_some());
        assert!(metrics.get("engine").unwrap().get("warm_starts").is_some());
        assert!(metrics.get("engine").unwrap().get("sheds").is_some());
    }

    #[test]
    fn metrics_line_with_no_jobs_is_valid_json() {
        let line = ServiceMetrics::new().snapshot().to_line();
        let parsed = crate::json::parse(&line).unwrap();
        let metrics = parsed.get("metrics").unwrap();
        assert_eq!(metrics.get("p50_us").unwrap().as_u64(), Some(0));
        assert!(metrics.get("engines").is_some());
    }
}
