//! Service metrics, built on the [`vlsi_trace::CounterSink`].
//!
//! Two layers of observability meet here: service-level counters (jobs
//! served, cache hits, deadline expirations, latency percentiles) owned by
//! this module, and engine-level counters (passes, moves, cancellations)
//! aggregated by the [`CounterSink`] the workers thread into every
//! partitioning run. A `{"op":"metrics"}` request renders both as one
//! JSON line.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use vlsi_trace::{CounterSink, Counters};

/// Shared, lock-free-where-it-matters service metrics.
#[derive(Debug, Default)]
pub struct ServiceMetrics {
    /// Jobs answered successfully (including cache hits).
    pub jobs_ok: AtomicU64,
    /// Jobs answered with an error response.
    pub jobs_failed: AtomicU64,
    /// Jobs whose worker panicked (isolated; also counted in `jobs_failed`).
    pub panics: AtomicU64,
    /// Jobs answered from the solution cache.
    pub cache_hits: AtomicU64,
    /// Jobs that ran an engine because the cache missed.
    pub cache_misses: AtomicU64,
    /// Jobs whose deadline fired (best-so-far responses).
    pub deadline_expirations: AtomicU64,
    /// Malformed / rejected request lines.
    pub protocol_errors: AtomicU64,
    /// Engine-level counters, fed by every worker's partitioning run.
    pub engine: CounterSink,
    latencies_us: Mutex<Vec<u64>>,
}

/// A point-in-time copy of everything [`ServiceMetrics`] tracks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Jobs answered successfully.
    pub jobs_ok: u64,
    /// Jobs answered with an error.
    pub jobs_failed: u64,
    /// Worker panics survived.
    pub panics: u64,
    /// Cache hits.
    pub cache_hits: u64,
    /// Cache misses.
    pub cache_misses: u64,
    /// Deadline expirations.
    pub deadline_expirations: u64,
    /// Rejected request lines.
    pub protocol_errors: u64,
    /// Median service latency in microseconds (0 when no jobs ran).
    pub p50_us: u64,
    /// 99th-percentile service latency in microseconds.
    pub p99_us: u64,
    /// Engine counters (passes, moves, cancellations, ...).
    pub engine: Counters,
}

impl ServiceMetrics {
    /// Fresh, all-zero metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one served job's wall-clock latency.
    pub fn record_latency_us(&self, micros: u64) {
        self.latencies_us
            .lock()
            .expect("metrics mutex")
            .push(micros);
    }

    /// A consistent-enough copy of all counters (see
    /// [`CounterSink::snapshot`] for the relaxed-ordering caveat).
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut lat = self.latencies_us.lock().expect("metrics mutex").clone();
        lat.sort_unstable();
        MetricsSnapshot {
            jobs_ok: self.jobs_ok.load(Ordering::Relaxed),
            jobs_failed: self.jobs_failed.load(Ordering::Relaxed),
            panics: self.panics.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            deadline_expirations: self.deadline_expirations.load(Ordering::Relaxed),
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
            p50_us: percentile(&lat, 50),
            p99_us: percentile(&lat, 99),
            engine: self.engine.snapshot(),
        }
    }
}

/// Nearest-rank percentile of an ascending-sorted sample (0 when empty).
fn percentile(sorted: &[u64], p: u32) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    // Nearest-rank: ceil(p/100 * n), clamped to the sample.
    let rank = ((p as usize * sorted.len()).div_ceil(100)).max(1);
    sorted[rank.min(sorted.len()) - 1]
}

impl MetricsSnapshot {
    /// Renders the snapshot as a one-line JSON metrics response.
    pub fn to_line(&self) -> String {
        let e = &self.engine;
        format!(
            concat!(
                "{{\"status\":\"ok\",\"metrics\":{{",
                "\"jobs_ok\":{},\"jobs_failed\":{},\"panics\":{},",
                "\"cache_hits\":{},\"cache_misses\":{},",
                "\"deadline_expirations\":{},\"protocol_errors\":{},",
                "\"p50_us\":{},\"p99_us\":{},",
                "\"engine\":{{\"passes\":{},\"kway_passes\":{},\"moves_tried\":{},",
                "\"moves_committed\":{},\"moves_rolled_back\":{},\"bucket_ops\":{},",
                "\"cut_updates\":{},\"levels\":{},\"starts\":{},\"sweeps\":{},",
                "\"cancellations\":{}}}}}}}"
            ),
            self.jobs_ok,
            self.jobs_failed,
            self.panics,
            self.cache_hits,
            self.cache_misses,
            self.deadline_expirations,
            self.protocol_errors,
            self.p50_us,
            self.p99_us,
            e.passes,
            e.kway_passes,
            e.moves_tried,
            e.moves_committed,
            e.moves_rolled_back,
            e.bucket_ops,
            e.cut_updates,
            e.levels,
            e.starts,
            e.sweeps,
            e.cancellations,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_use_nearest_rank() {
        assert_eq!(percentile(&[], 50), 0);
        assert_eq!(percentile(&[7], 50), 7);
        assert_eq!(percentile(&[7], 99), 7);
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 50), 50);
        assert_eq!(percentile(&v, 99), 99);
    }

    #[test]
    fn snapshot_reflects_recorded_activity() {
        let m = ServiceMetrics::new();
        m.jobs_ok.fetch_add(3, Ordering::Relaxed);
        m.cache_hits.fetch_add(1, Ordering::Relaxed);
        for us in [10, 20, 30] {
            m.record_latency_us(us);
        }
        let snap = m.snapshot();
        assert_eq!(snap.jobs_ok, 3);
        assert_eq!(snap.cache_hits, 1);
        assert_eq!(snap.p50_us, 20);
        assert_eq!(snap.p99_us, 30);
    }

    #[test]
    fn metrics_line_is_valid_json() {
        let m = ServiceMetrics::new();
        m.record_latency_us(5);
        let line = m.snapshot().to_line();
        let parsed = crate::json::parse(&line).unwrap();
        let metrics = parsed.get("metrics").unwrap();
        assert_eq!(metrics.get("p50_us").unwrap().as_u64(), Some(5));
        assert!(metrics
            .get("engine")
            .unwrap()
            .get("cancellations")
            .is_some());
    }
}
