//! The batch partitioning server: transports, job execution, lifecycle.
//!
//! A [`Service`] owns the shared state (solution cache, metrics, optional
//! JSONL trace sink) and a [`WorkerPool`] draining a bounded two-lane job
//! queue. Transports are thin: the stdio loop feeds request lines into
//! [`Service::serve`], and the TCP front end (`docs/OPERATIONS.md`) is a
//! nonblocking epoll event loop in the `eventloop` module that frames lines
//! itself and submits through the same admission and execution path.
//! Responses travel back through a per-job reply closure so a slow job
//! never blocks a reader, and the bounded queue pushes back on clients
//! that submit faster than the workers drain.
//!
//! Admission control ([`AdmissionConfig`]) sits in front of the queue:
//! per-client token buckets answer `rate_limited` to floods, and once the
//! queue depth crosses the high-water mark new jobs are shed with
//! `overloaded` instead of queued. Warm-start jobs (`warm_start` in the
//! request) resolve their seed in the solution cache and refine from it
//! via [`vlsi_partition::refine_from_partition_ctx`] instead of
//! partitioning from scratch, falling back to a cold run (`"warm":"miss"`)
//! when the seed has been evicted.
//!
//! Shutdown is graceful end to end: `{"op":"shutdown"}` (or EOF on stdio)
//! stops the reader, every already-accepted job still runs and answers,
//! the pool joins, and the trace sink is flushed before
//! [`Service::shutdown`] returns the final metrics snapshot.

use std::io::{self, BufRead, Write};
use std::net::{TcpListener, ToSocketAddrs};
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use vlsi_hypergraph::{
    validate_partitioning, BalanceConstraint, CutState, Hypergraph, Objective, PartId,
    Partitioning, Tolerance,
};
use vlsi_partition::{
    refine_from_partition_ctx, CancelToken, EngineConfig, Multistart, PartitionError, RunCtx,
};
use vlsi_rng::{ChaCha8Rng, SeedableRng};
use vlsi_trace::{Event, JsonlSink, Sink, Tee};

use crate::admission::{AdmissionConfig, TokenBucket};
use crate::cache::{cache_key, CacheStats, SolutionCache};
use crate::metrics::{MetricsSnapshot, ServiceMetrics};
use crate::protocol::{parse_request, JobRequest, JobResponse, ProtocolError, Request};
use crate::queue::{BoundedQueue, WorkerPool};

/// Refinement passes a warm-start job runs from its seed (matches the
/// k-way refiner's default budget).
const WARM_MAX_PASSES: usize = 4;

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads executing jobs (defaults to the machine's
    /// available parallelism).
    pub workers: usize,
    /// Bounded queue depth; stdio producers block when it is full, the
    /// TCP event loop sheds.
    pub queue_capacity: usize,
    /// Maximum solutions held by the content-addressed cache.
    pub cache_capacity: usize,
    /// Optional JSONL trace file receiving engine events from every job.
    pub trace_path: Option<std::path::PathBuf>,
    /// Admission control (rate limiting and load shedding); off by
    /// default.
    pub admission: AdmissionConfig,
    /// TCP connections idle longer than this (no traffic, no jobs in
    /// flight) are closed by the event loop.
    pub idle_timeout: Duration,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            queue_capacity: 64,
            cache_capacity: 128,
            trace_path: None,
            admission: AdmissionConfig::default(),
            idle_timeout: Duration::from_secs(60),
        }
    }
}

/// State shared by transports and workers.
struct ServiceCtx {
    cache: Mutex<SolutionCache>,
    metrics: ServiceMetrics,
    trace: Option<JsonlSink>,
}

impl ServiceCtx {
    /// Records one admission refusal (rate limit or load shed) at the
    /// given queue depth in the engine counters and the trace stream.
    fn record_shed(&self, depth: usize) {
        let ev = Event::Shed {
            queue_depth: depth as u64,
        };
        self.metrics.engine.record(&ev);
        if let Some(trace) = &self.trace {
            trace.record(&ev);
        }
    }
}

/// A queued job: the validated request plus the reply path back to its
/// connection (an mpsc sender on stdio, an event-loop completion on TCP).
pub(crate) struct Job {
    request: Box<JobRequest>,
    reply: Box<dyn FnOnce(String) + Send>,
}

/// Why [`Service::try_submit`] refused a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SubmitError {
    /// The queue is at capacity right now.
    Full,
    /// The service is shutting down.
    Closed,
}

/// How a connection's request loop ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeOutcome {
    /// The input stream reached end-of-file.
    Eof,
    /// The client sent `{"op":"shutdown"}`.
    ShutdownRequested,
}

/// A running batch partitioning service.
pub struct Service {
    ctx: Arc<ServiceCtx>,
    pool: WorkerPool<Job>,
    admission: AdmissionConfig,
    idle_timeout: Duration,
}

impl Service {
    /// Builds the shared state and spawns the worker pool.
    ///
    /// # Errors
    /// Propagates trace-file creation failures.
    pub fn start(config: ServiceConfig) -> io::Result<Service> {
        let trace = config
            .trace_path
            .as_ref()
            .map(JsonlSink::create)
            .transpose()?;
        let ctx = Arc::new(ServiceCtx {
            cache: Mutex::new(SolutionCache::new(config.cache_capacity)),
            metrics: ServiceMetrics::new(),
            trace,
        });
        let queue = Arc::new(BoundedQueue::new(config.queue_capacity));
        let run_ctx = Arc::clone(&ctx);
        let panic_ctx = Arc::clone(&ctx);
        let pool = WorkerPool::spawn(
            config.workers,
            queue,
            move |job: Job| run_job(&run_ctx, job),
            move |_payload| {
                // Backstop only: run_job catches its own panics so it can
                // still answer the client. Reaching here means the reply
                // path itself failed mid-unwind.
                panic_ctx.metrics.panics.fetch_add(1, Ordering::Relaxed);
            },
        );
        Ok(Service {
            ctx,
            pool,
            admission: config.admission,
            idle_timeout: config.idle_timeout,
        })
    }

    /// Serves one line-delimited JSON connection until EOF or shutdown.
    ///
    /// Responses are written as they complete (jobs may answer out of
    /// submission order; match on `id`). The call returns only after every
    /// job accepted from *this* connection has been answered and flushed.
    /// The connection gets its own admission token bucket; below the
    /// high-water mark a full queue blocks the reader (backpressure), at
    /// or above it jobs are shed with `overloaded`.
    ///
    /// # Errors
    /// Propagates read errors; write errors end the response pump.
    pub fn serve<R, W>(&self, reader: R, writer: W) -> io::Result<ServeOutcome>
    where
        R: BufRead,
        W: Write + Send,
    {
        std::thread::scope(|scope| {
            let (tx, rx) = mpsc::channel::<String>();
            let pump = scope.spawn(move || -> io::Result<()> {
                let mut writer = writer;
                for line in rx {
                    writeln!(writer, "{line}")?;
                    writer.flush()?;
                }
                writer.flush()
            });

            let mut bucket = TokenBucket::new(&self.admission, Instant::now());
            let mut outcome = ServeOutcome::Eof;
            for line in reader.lines() {
                let line = line?;
                if line.trim().is_empty() {
                    continue;
                }
                match parse_request(&line) {
                    Err(e) => {
                        self.note_protocol_error();
                        let _ = tx.send(e.to_line());
                    }
                    Ok(Request::Metrics) => {
                        let _ = tx.send(self.metrics_line());
                    }
                    Ok(Request::Shutdown) => {
                        let _ = tx.send("{\"status\":\"ok\",\"op\":\"shutdown\"}".to_string());
                        outcome = ServeOutcome::ShutdownRequested;
                        break;
                    }
                    Ok(Request::Job(request)) => {
                        let id = request.id.clone();
                        let pins = request.hg.num_pins();
                        if let Err(e) = self.admit(&mut bucket, &id, pins, Instant::now()) {
                            let _ = tx.send(e.to_line());
                            continue;
                        }
                        let lane = request.priority;
                        let reply_tx = tx.clone();
                        let job = Job {
                            request,
                            reply: Box::new(move |line| {
                                let _ = reply_tx.send(line);
                            }),
                        };
                        if self.pool.queue().push(job, lane).is_err() {
                            let _ = tx.send(
                                ProtocolError {
                                    id: Some(id),
                                    code: "queue_closed",
                                    message: "service is shutting down".to_string(),
                                }
                                .to_line(),
                            );
                        }
                    }
                }
            }
            // Dropping our sender leaves only in-flight jobs holding clones;
            // the pump drains their answers and exits when the last one is
            // done — so returning from here implies all responses are out.
            drop(tx);
            pump.join().expect("response pump never panics")?;
            Ok(outcome)
        })
    }

    /// Applies admission control for one job: the instance-size cap
    /// first (a property of the request, refused without spending a
    /// token), then the client's token bucket, then the queue high-water
    /// mark. A refusal is recorded as a shed and returned as the
    /// structured error to send.
    pub(crate) fn admit(
        &self,
        bucket: &mut TokenBucket,
        id: &str,
        num_pins: usize,
        now: Instant,
    ) -> Result<(), ProtocolError> {
        if num_pins > self.admission.max_pins {
            self.note_shed();
            return Err(ProtocolError {
                id: Some(id.to_string()),
                code: "too_large",
                message: format!(
                    "instance has {num_pins} pins, above the admission limit of {}",
                    self.admission.max_pins
                ),
            });
        }
        if !bucket.try_take(now) {
            self.note_shed();
            return Err(ProtocolError {
                id: Some(id.to_string()),
                code: "rate_limited",
                message: "client exceeded its admission rate; retry later".to_string(),
            });
        }
        let depth = self.pool.queue().len();
        if depth >= self.admission.high_water {
            self.note_shed();
            return Err(ProtocolError {
                id: Some(id.to_string()),
                code: "overloaded",
                message: format!("job queue depth {depth} is at the high-water mark; retry later"),
            });
        }
        Ok(())
    }

    /// Submits a job without blocking (the event-loop path).
    pub(crate) fn try_submit(
        &self,
        request: Box<JobRequest>,
        reply: Box<dyn FnOnce(String) + Send>,
    ) -> Result<(), SubmitError> {
        let lane = request.priority;
        let job = Job { request, reply };
        self.pool.queue().try_push(job, lane).map_err(|e| match e {
            Some(_) => SubmitError::Full,
            None => SubmitError::Closed,
        })
    }

    /// The current metrics snapshot (engine + service counters).
    pub fn metrics(&self) -> MetricsSnapshot {
        self.ctx.metrics.snapshot()
    }

    /// The cache's own counters (hits/misses/evictions/entries).
    pub fn cache_stats(&self) -> CacheStats {
        self.ctx.cache.lock().expect("cache mutex").stats()
    }

    pub(crate) fn metrics_line(&self) -> String {
        self.ctx.metrics.snapshot().to_line()
    }

    pub(crate) fn admission(&self) -> AdmissionConfig {
        self.admission
    }

    pub(crate) fn idle_timeout(&self) -> Duration {
        self.idle_timeout
    }

    pub(crate) fn note_protocol_error(&self) {
        self.ctx
            .metrics
            .protocol_errors
            .fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_shed(&self) {
        self.ctx.record_shed(self.pool.queue().len());
    }

    /// Drains the queue, joins every worker, flushes the trace sink, and
    /// returns the final metrics snapshot.
    pub fn shutdown(self) -> MetricsSnapshot {
        self.pool.shutdown();
        if let Some(trace) = &self.ctx.trace {
            trace.flush();
        }
        self.ctx.metrics.snapshot()
    }
}

/// Executes one job end to end and answers through the job's reply path.
/// Panics inside the engine are caught here so the client still gets an
/// `internal_error` response with its request id.
fn run_job(ctx: &ServiceCtx, job: Job) {
    let Job { request, reply } = job;
    let id = request.id.clone();
    let line = match panic::catch_unwind(AssertUnwindSafe(|| execute_job(ctx, &request))) {
        Ok(line) => line,
        Err(_) => {
            ctx.metrics.panics.fetch_add(1, Ordering::Relaxed);
            ctx.metrics.jobs_failed.fetch_add(1, Ordering::Relaxed);
            ProtocolError {
                id: Some(id),
                code: "internal_error",
                message: "worker panicked while executing the job".to_string(),
            }
            .to_line()
        }
    };
    reply(line);
}

fn error_code(err: &PartitionError) -> &'static str {
    match err {
        PartitionError::InfeasibleInstance { .. } | PartitionError::Balance(_) => "infeasible",
        _ => "bad_request",
    }
}

/// The per-engine latency label a warm-start job is recorded under, so
/// warm and cold latencies of the same engine stay separable in the
/// metrics snapshot.
fn warm_label(engine: &str) -> &'static str {
    match engine {
        "fm" => "warm:fm",
        "ml" => "warm:ml",
        "kl" => "warm:kl",
        "sa" => "warm:sa",
        "rb" => "warm:rb",
        "kway" => "warm:kway",
        _ => "warm:other",
    }
}

/// Both reported metrics of a final assignment. The engine optimizes the
/// requested objective; the response always carries cut *and* km1 so
/// clients can compare runs across objectives.
fn cut_and_km1(hg: &Hypergraph, k: usize, parts: &[PartId]) -> (u64, u64) {
    let cs = CutState::new(hg, k, parts);
    (cs.value(Objective::Cut), cs.value(Objective::KMinus1))
}

/// The balance constraint a job is solved and validated under: explicit
/// per-part capacity vectors when the request supplies them, otherwise the
/// legacy uniform even split at the requested tolerance.
fn job_balance(req: &JobRequest) -> BalanceConstraint {
    match &req.part_capacities {
        Some(caps) => caps.to_balance(),
        None => BalanceConstraint::even(
            req.k,
            req.hg.total_weights(),
            Tolerance::Relative(req.tolerance),
        ),
    }
}

fn execute_job(ctx: &ServiceCtx, req: &JobRequest) -> String {
    let t0 = Instant::now();
    if let Some(sid) = req.warm_from.as_deref() {
        let seed = ctx.cache.lock().expect("cache mutex").get_by_id(sid);
        match seed {
            // A seed for a different vertex count cannot be re-legalized
            // onto this instance — treat it like an eviction.
            Some((parts, _)) if parts.len() == req.hg.num_vertices() => {
                return execute_warm(ctx, req, sid, &parts, t0);
            }
            _ => return execute_cold(ctx, req, t0, Some("miss")),
        }
    }
    execute_cold(ctx, req, t0, None)
}

/// Runs a warm-start job: legalize the cached seed against the (possibly
/// delta-edited) instance, refine from it, cache under a warm key.
fn execute_warm(
    ctx: &ServiceCtx,
    req: &JobRequest,
    sid: &str,
    seed: &[PartId],
    t0: Instant,
) -> String {
    let engine = EngineConfig::by_name(&req.engine).expect("engine validated at ingress");
    let label = warm_label(engine.name());
    let balance = job_balance(req);
    // No multistart on the warm path: the requested threads go straight to
    // the k-way refinement, whose parallel regime starts at 2.
    let parallel_refine = req.threads >= 2;
    let warm_engine = format!("warm:{sid}:{}", req.engine);
    // The warm path refines from the seed and never runs the multistart
    // quality phase, so the vcycles/ensemble knobs do not influence its
    // output — they stay out of the warm key (identical executions share
    // one entry).
    let key = cache_key(
        &warm_engine,
        req.k,
        req.tolerance,
        req.starts,
        req.seed,
        parallel_refine,
        0,
        false,
        req.objective,
        req.part_capacities.as_ref(),
        &req.hg,
        &req.fixed,
    );
    if let Some((parts, _value)) = ctx.cache.lock().expect("cache mutex").get(&key) {
        ctx.metrics.cache_hits.fetch_add(1, Ordering::Relaxed);
        ctx.metrics.jobs_ok.fetch_add(1, Ordering::Relaxed);
        let micros = t0.elapsed().as_micros() as u64;
        ctx.metrics.record_latency_us(label, micros);
        let (cut, km1) = cut_and_km1(&req.hg, req.k, &parts);
        return JobResponse {
            id: req.id.clone(),
            cut,
            km1,
            parts: parts.iter().map(|p| p.index() as u32).collect(),
            cache_hit: true,
            deadline_expired: false,
            starts_run: 0,
            micros,
            solution_id: Some(key.solution_id()),
            warm: Some("hit"),
        }
        .to_line();
    }
    ctx.metrics.cache_misses.fetch_add(1, Ordering::Relaxed);

    let cancel = match req.deadline_ms {
        Some(ms) => CancelToken::with_deadline(Duration::from_millis(ms)),
        None => CancelToken::never(),
    };
    let mut rng = ChaCha8Rng::seed_from_u64(req.seed);
    let outcome = match &ctx.trace {
        Some(trace) => {
            let sink = Tee::new(&ctx.metrics.engine, trace);
            refine_from_partition_ctx(
                &req.hg,
                &req.fixed,
                &balance,
                seed,
                req.objective,
                WARM_MAX_PASSES,
                RunCtx::new(&mut rng)
                    .with_sink(&sink)
                    .with_cancel(&cancel)
                    .with_threads(req.threads),
            )
        }
        None => refine_from_partition_ctx(
            &req.hg,
            &req.fixed,
            &balance,
            seed,
            req.objective,
            WARM_MAX_PASSES,
            RunCtx::new(&mut rng)
                .with_sink(&ctx.metrics.engine)
                .with_cancel(&cancel)
                .with_threads(req.threads),
        ),
    };

    let outcome = match outcome {
        Ok(o) => o,
        Err(e) => {
            ctx.metrics.jobs_failed.fetch_add(1, Ordering::Relaxed);
            return ProtocolError {
                id: Some(req.id.clone()),
                code: error_code(&e),
                message: e.to_string(),
            }
            .to_line();
        }
    };
    let deadline_expired = cancel.is_cancelled();

    // Same independent referee as the cold path: never hand out an
    // illegal partition.
    let legal = Partitioning::from_parts(&req.hg, req.k, outcome.result.parts.clone())
        .map(|p| validate_partitioning(&req.hg, &p, &balance, &req.fixed).is_valid())
        .unwrap_or(false);
    if !legal {
        ctx.metrics.jobs_failed.fetch_add(1, Ordering::Relaxed);
        return ProtocolError {
            id: Some(req.id.clone()),
            code: "internal_error",
            message: "warm refinement returned a partition that failed validation".to_string(),
        }
        .to_line();
    }

    let solution_id = if deadline_expired {
        ctx.metrics
            .deadline_expirations
            .fetch_add(1, Ordering::Relaxed);
        None
    } else {
        let sid = key.solution_id();
        ctx.cache.lock().expect("cache mutex").insert(
            key,
            outcome.result.parts.clone(),
            outcome.result.cut,
        );
        Some(sid)
    };
    ctx.metrics.jobs_ok.fetch_add(1, Ordering::Relaxed);
    let micros = t0.elapsed().as_micros() as u64;
    ctx.metrics.record_latency_us(label, micros);

    let (cut, km1) = cut_and_km1(&req.hg, req.k, &outcome.result.parts);
    JobResponse {
        id: req.id.clone(),
        cut,
        km1,
        parts: outcome
            .result
            .parts
            .iter()
            .map(|p: &PartId| p.index() as u32)
            .collect(),
        cache_hit: false,
        deadline_expired,
        starts_run: 1,
        micros,
        solution_id,
        warm: Some("hit"),
    }
    .to_line()
}

fn execute_cold(
    ctx: &ServiceCtx,
    req: &JobRequest,
    t0: Instant,
    warm_note: Option<&'static str>,
) -> String {
    let engine = EngineConfig::by_name(&req.engine)
        .expect("engine validated at ingress")
        .with_objective(req.objective);
    // With several multistart workers the starts already saturate the
    // requested threads; only a single start hands them to the engine's
    // internal parallel coarsening/refinement instead.
    let engine = if req.starts == 1 {
        engine.with_threads(req.threads.max(1))
    } else {
        engine
    };
    let balance = job_balance(req);

    // The regime bit mirrors the with_threads hand-off below: only a
    // single start gives the engine an internal budget, and only a budget
    // >= 2 switches the k-way refinement onto the parallel round engine.
    let parallel_refine = req.starts == 1 && req.threads >= 2;
    let key = cache_key(
        &req.engine,
        req.k,
        req.tolerance,
        req.starts,
        req.seed,
        parallel_refine,
        req.vcycles,
        req.ensemble,
        req.objective,
        req.part_capacities.as_ref(),
        &req.hg,
        &req.fixed,
    );
    let cached = ctx.cache.lock().expect("cache mutex").get(&key);
    if let Some((parts, _value)) = cached {
        ctx.metrics.cache_hits.fetch_add(1, Ordering::Relaxed);
        ctx.metrics.jobs_ok.fetch_add(1, Ordering::Relaxed);
        let micros = t0.elapsed().as_micros() as u64;
        ctx.metrics.record_latency_us(engine.name(), micros);
        let (cut, km1) = cut_and_km1(&req.hg, req.k, &parts);
        return JobResponse {
            id: req.id.clone(),
            cut,
            km1,
            parts: parts.iter().map(|p| p.index() as u32).collect(),
            cache_hit: true,
            deadline_expired: false,
            starts_run: 0,
            micros,
            solution_id: Some(key.solution_id()),
            warm: warm_note,
        }
        .to_line();
    }
    ctx.metrics.cache_misses.fetch_add(1, Ordering::Relaxed);

    let cancel = match req.deadline_ms {
        Some(ms) => CancelToken::with_deadline(Duration::from_millis(ms)),
        None => CancelToken::never(),
    };
    // The engine counters additionally see every start's internal events
    // (levels, passes, moves) via the driver's engine sink; the JSONL
    // trace keeps the deterministic summary stream only.
    let driver = Multistart::new(req.starts)
        .vcycles(req.vcycles)
        .ensemble(req.ensemble)
        .objective(req.objective);
    let outcome = match &ctx.trace {
        Some(trace) => {
            let sink = Tee::new(&ctx.metrics.engine, trace);
            driver.run_parallel(
                &req.hg,
                &req.fixed,
                &balance,
                req.threads,
                req.seed,
                &engine,
                &sink,
                &ctx.metrics.engine,
                &cancel,
            )
        }
        None => driver.run_parallel(
            &req.hg,
            &req.fixed,
            &balance,
            req.threads,
            req.seed,
            &engine,
            &ctx.metrics.engine,
            &ctx.metrics.engine,
            &cancel,
        ),
    };

    let outcome = match outcome {
        Ok(o) => o,
        Err(e) => {
            ctx.metrics.jobs_failed.fetch_add(1, Ordering::Relaxed);
            return ProtocolError {
                id: Some(req.id.clone()),
                code: error_code(&e),
                message: e.to_string(),
            }
            .to_line();
        }
    };
    let deadline_expired = cancel.is_cancelled();

    // Independent referee: never hand out an illegal partition, even from
    // a cancelled best-so-far path.
    let legal = Partitioning::from_parts(&req.hg, req.k, outcome.best.parts.clone())
        .map(|p| validate_partitioning(&req.hg, &p, &balance, &req.fixed).is_valid())
        .unwrap_or(false);
    if !legal {
        ctx.metrics.jobs_failed.fetch_add(1, Ordering::Relaxed);
        return ProtocolError {
            id: Some(req.id.clone()),
            code: "internal_error",
            message: "engine returned a partition that failed validation".to_string(),
        }
        .to_line();
    }

    let solution_id = if deadline_expired {
        ctx.metrics
            .deadline_expirations
            .fetch_add(1, Ordering::Relaxed);
        None
    } else {
        // Only complete runs are cached: a best-so-far solution would
        // otherwise shadow the full-quality answer for later requests.
        let sid = key.solution_id();
        ctx.cache.lock().expect("cache mutex").insert(
            key,
            outcome.best.parts.clone(),
            outcome.best.cut,
        );
        Some(sid)
    };
    ctx.metrics.jobs_ok.fetch_add(1, Ordering::Relaxed);
    let micros = t0.elapsed().as_micros() as u64;
    ctx.metrics.record_latency_us(engine.name(), micros);

    let (cut, km1) = cut_and_km1(&req.hg, req.k, &outcome.best.parts);
    JobResponse {
        id: req.id.clone(),
        cut,
        km1,
        parts: outcome
            .best
            .parts
            .iter()
            .map(|p: &PartId| p.index() as u32)
            .collect(),
        cache_hit: false,
        deadline_expired,
        starts_run: outcome.starts.len(),
        micros,
        solution_id,
        warm: warm_note,
    }
    .to_line()
}

/// Runs the service over stdin/stdout until EOF or `{"op":"shutdown"}`,
/// then shuts down gracefully and returns the final metrics snapshot.
///
/// # Errors
/// Propagates transport I/O and trace-file errors.
///
/// # Example
///
/// ```no_run
/// use vlsi_service::{serve_stdio, ServiceConfig};
///
/// let snapshot = serve_stdio(ServiceConfig::default())?;
/// eprintln!("served {} jobs", snapshot.jobs_ok);
/// # Ok::<(), std::io::Error>(())
/// ```
pub fn serve_stdio(config: ServiceConfig) -> io::Result<MetricsSnapshot> {
    let service = Service::start(config)?;
    let stdin = io::stdin();
    service.serve(stdin.lock(), io::stdout())?;
    Ok(service.shutdown())
}

/// Runs the service on a TCP listener until a client requests shutdown,
/// then drains in-flight jobs, answers them, and returns the final
/// snapshot.
///
/// On Linux (x86_64/aarch64) this is a single-threaded nonblocking epoll
/// event loop handling every connection: line framing, per-client
/// admission token buckets, idle timeouts ([`ServiceConfig::idle_timeout`])
/// and load shedding all happen on the loop while the worker pool runs
/// jobs. Elsewhere it falls back to one thread per connection.
///
/// # Errors
/// Propagates bind and trace-file errors; per-connection I/O errors only
/// end that connection.
///
/// # Example
///
/// ```no_run
/// use vlsi_service::{serve_tcp, ServiceConfig};
///
/// let snapshot = serve_tcp(ServiceConfig::default(), "127.0.0.1:7171")?;
/// eprintln!("p99 latency: {}us", snapshot.p99_us);
/// # Ok::<(), std::io::Error>(())
/// ```
pub fn serve_tcp(config: ServiceConfig, addr: impl ToSocketAddrs) -> io::Result<MetricsSnapshot> {
    let listener = TcpListener::bind(addr)?;
    let service = Service::start(config)?;
    serve_listener(&service, listener)?;
    Ok(service.shutdown())
}

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
fn serve_listener(service: &Service, listener: TcpListener) -> io::Result<()> {
    crate::eventloop::run(service, listener)
}

/// Fallback accept loop for targets without the epoll front end: one
/// thread per connection, polling accept.
#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
fn serve_listener(service: &Service, listener: TcpListener) -> io::Result<()> {
    use std::sync::atomic::AtomicBool;

    listener.set_nonblocking(true)?;
    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        while !stop.load(Ordering::Relaxed) {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    let service = &service;
                    let stop = &stop;
                    scope.spawn(move || {
                        let reader = match stream.try_clone() {
                            Ok(s) => io::BufReader::new(s),
                            Err(_) => return,
                        };
                        if let Ok(ServeOutcome::ShutdownRequested) = service.serve(reader, stream) {
                            stop.store(true, Ordering::Relaxed);
                        }
                    });
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(_) => break,
            }
        }
    });
    Ok(())
}
