//! The batch partitioning server: transports, job execution, lifecycle.
//!
//! A [`Service`] owns the shared state (solution cache, metrics, optional
//! JSONL trace sink) and a [`WorkerPool`] draining a bounded job queue.
//! Transports are thin: both the stdio loop and the TCP accept loop feed
//! request lines into [`Service::serve`], which parses, answers control
//! requests inline, and submits jobs. Responses travel back through a
//! per-connection channel so a slow job never blocks the reader, and the
//! bounded queue pushes back on clients that submit faster than the
//! workers drain.
//!
//! Shutdown is graceful end to end: `{"op":"shutdown"}` (or EOF on stdio)
//! stops the reader, every already-accepted job still runs and answers,
//! the pool joins, and the trace sink is flushed before
//! [`Service::shutdown`] returns the final metrics snapshot.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpListener, ToSocketAddrs};
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use vlsi_hypergraph::{validate_partitioning, BalanceConstraint, PartId, Partitioning, Tolerance};
use vlsi_partition::{
    multistart_parallel_engine_cancellable, CancelToken, EngineConfig, PartitionError,
};
use vlsi_trace::{JsonlSink, Sink, Tee};

use crate::cache::{cache_key, CacheStats, SolutionCache};
use crate::metrics::{MetricsSnapshot, ServiceMetrics};
use crate::protocol::{parse_request, JobRequest, JobResponse, ProtocolError, Request};
use crate::queue::{BoundedQueue, WorkerPool};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads executing jobs (defaults to the machine's
    /// available parallelism).
    pub workers: usize,
    /// Bounded queue depth; producers block when it is full.
    pub queue_capacity: usize,
    /// Maximum solutions held by the content-addressed cache.
    pub cache_capacity: usize,
    /// Optional JSONL trace file receiving engine events from every job.
    pub trace_path: Option<std::path::PathBuf>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            queue_capacity: 64,
            cache_capacity: 128,
            trace_path: None,
        }
    }
}

/// State shared by transports and workers.
struct ServiceCtx {
    cache: Mutex<SolutionCache>,
    metrics: ServiceMetrics,
    trace: Option<JsonlSink>,
}

/// A queued job: the validated request plus the connection's reply channel.
struct Job {
    request: Box<JobRequest>,
    tx: mpsc::Sender<String>,
}

/// How a connection's request loop ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeOutcome {
    /// The input stream reached end-of-file.
    Eof,
    /// The client sent `{"op":"shutdown"}`.
    ShutdownRequested,
}

/// A running batch partitioning service.
pub struct Service {
    ctx: Arc<ServiceCtx>,
    pool: WorkerPool<Job>,
}

impl Service {
    /// Builds the shared state and spawns the worker pool.
    ///
    /// # Errors
    /// Propagates trace-file creation failures.
    pub fn start(config: ServiceConfig) -> io::Result<Service> {
        let trace = config
            .trace_path
            .as_ref()
            .map(JsonlSink::create)
            .transpose()?;
        let ctx = Arc::new(ServiceCtx {
            cache: Mutex::new(SolutionCache::new(config.cache_capacity)),
            metrics: ServiceMetrics::new(),
            trace,
        });
        let queue = Arc::new(BoundedQueue::new(config.queue_capacity));
        let run_ctx = Arc::clone(&ctx);
        let panic_ctx = Arc::clone(&ctx);
        let pool = WorkerPool::spawn(
            config.workers,
            queue,
            move |job: Job| run_job(&run_ctx, job),
            move |_payload| {
                // Backstop only: run_job catches its own panics so it can
                // still answer the client. Reaching here means the reply
                // channel itself failed mid-unwind.
                panic_ctx.metrics.panics.fetch_add(1, Ordering::Relaxed);
            },
        );
        Ok(Service { ctx, pool })
    }

    /// Serves one line-delimited JSON connection until EOF or shutdown.
    ///
    /// Responses are written as they complete (jobs may answer out of
    /// submission order; match on `id`). The call returns only after every
    /// job accepted from *this* connection has been answered and flushed.
    ///
    /// # Errors
    /// Propagates read errors; write errors end the response pump.
    pub fn serve<R, W>(&self, reader: R, writer: W) -> io::Result<ServeOutcome>
    where
        R: BufRead,
        W: Write + Send,
    {
        std::thread::scope(|scope| {
            let (tx, rx) = mpsc::channel::<String>();
            let pump = scope.spawn(move || -> io::Result<()> {
                let mut writer = writer;
                for line in rx {
                    writeln!(writer, "{line}")?;
                    writer.flush()?;
                }
                writer.flush()
            });

            let mut outcome = ServeOutcome::Eof;
            for line in reader.lines() {
                let line = line?;
                if line.trim().is_empty() {
                    continue;
                }
                match parse_request(&line) {
                    Err(e) => {
                        self.ctx
                            .metrics
                            .protocol_errors
                            .fetch_add(1, Ordering::Relaxed);
                        let _ = tx.send(e.to_line());
                    }
                    Ok(Request::Metrics) => {
                        let _ = tx.send(self.metrics_line());
                    }
                    Ok(Request::Shutdown) => {
                        let _ = tx.send("{\"status\":\"ok\",\"op\":\"shutdown\"}".to_string());
                        outcome = ServeOutcome::ShutdownRequested;
                        break;
                    }
                    Ok(Request::Job(request)) => {
                        let id = request.id.clone();
                        let job = Job {
                            request,
                            tx: tx.clone(),
                        };
                        if self.pool.queue().push(job).is_err() {
                            let _ = tx.send(
                                ProtocolError {
                                    id: Some(id),
                                    code: "queue_closed",
                                    message: "service is shutting down".to_string(),
                                }
                                .to_line(),
                            );
                        }
                    }
                }
            }
            // Dropping our sender leaves only in-flight jobs holding clones;
            // the pump drains their answers and exits when the last one is
            // done — so returning from here implies all responses are out.
            drop(tx);
            pump.join().expect("response pump never panics")?;
            Ok(outcome)
        })
    }

    /// The current metrics snapshot (engine + service counters).
    pub fn metrics(&self) -> MetricsSnapshot {
        self.ctx.metrics.snapshot()
    }

    /// The cache's own counters (hits/misses/evictions/entries).
    pub fn cache_stats(&self) -> CacheStats {
        self.ctx.cache.lock().expect("cache mutex").stats()
    }

    fn metrics_line(&self) -> String {
        self.ctx.metrics.snapshot().to_line()
    }

    /// Drains the queue, joins every worker, flushes the trace sink, and
    /// returns the final metrics snapshot.
    pub fn shutdown(self) -> MetricsSnapshot {
        self.pool.shutdown();
        if let Some(trace) = &self.ctx.trace {
            trace.flush();
        }
        self.ctx.metrics.snapshot()
    }
}

/// Executes one job end to end and answers on the job's channel. Panics
/// inside the engine are caught here so the client still gets an
/// `internal_error` response with its request id.
fn run_job(ctx: &ServiceCtx, job: Job) {
    let Job { request, tx } = job;
    let id = request.id.clone();
    let line = match panic::catch_unwind(AssertUnwindSafe(|| execute_job(ctx, &request))) {
        Ok(line) => line,
        Err(_) => {
            ctx.metrics.panics.fetch_add(1, Ordering::Relaxed);
            ctx.metrics.jobs_failed.fetch_add(1, Ordering::Relaxed);
            ProtocolError {
                id: Some(id),
                code: "internal_error",
                message: "worker panicked while executing the job".to_string(),
            }
            .to_line()
        }
    };
    let _ = tx.send(line);
}

fn error_code(err: &PartitionError) -> &'static str {
    match err {
        PartitionError::InfeasibleInstance { .. } | PartitionError::Balance(_) => "infeasible",
        _ => "bad_request",
    }
}

fn execute_job(ctx: &ServiceCtx, req: &JobRequest) -> String {
    let t0 = Instant::now();
    let engine = EngineConfig::by_name(&req.engine).expect("engine validated at ingress");
    // With several multistart workers the starts already saturate the
    // requested threads; only a single start hands them to the engine's
    // internal parallel coarsening/refinement instead.
    let engine = if req.starts == 1 {
        engine.with_threads(req.threads.max(1))
    } else {
        engine
    };
    let balance = BalanceConstraint::even(
        req.k,
        req.hg.total_weights(),
        Tolerance::Relative(req.tolerance),
    );

    // The regime bit mirrors the with_threads hand-off below: only a
    // single start gives the engine an internal budget, and only a budget
    // >= 2 switches the k-way refinement onto the parallel round engine.
    let parallel_refine = req.starts == 1 && req.threads >= 2;
    let key = cache_key(
        &req.engine,
        req.k,
        req.tolerance,
        req.starts,
        req.seed,
        parallel_refine,
        &req.hg,
        &req.fixed,
    );
    let cached = ctx.cache.lock().expect("cache mutex").get(&key);
    if let Some((parts, cut)) = cached {
        ctx.metrics.cache_hits.fetch_add(1, Ordering::Relaxed);
        ctx.metrics.jobs_ok.fetch_add(1, Ordering::Relaxed);
        let micros = t0.elapsed().as_micros() as u64;
        ctx.metrics.record_latency_us(engine.name(), micros);
        return JobResponse {
            id: req.id.clone(),
            cut,
            parts: parts.iter().map(|p| p.index() as u32).collect(),
            cache_hit: true,
            deadline_expired: false,
            starts_run: 0,
            micros,
        }
        .to_line();
    }
    ctx.metrics.cache_misses.fetch_add(1, Ordering::Relaxed);

    let cancel = match req.deadline_ms {
        Some(ms) => CancelToken::with_deadline(Duration::from_millis(ms)),
        None => CancelToken::never(),
    };
    let outcome = match &ctx.trace {
        Some(trace) => {
            let sink = Tee::new(&ctx.metrics.engine, trace);
            multistart_parallel_engine_cancellable(
                &req.hg,
                &req.fixed,
                &balance,
                req.starts,
                req.threads,
                req.seed,
                &engine,
                &sink,
                &cancel,
            )
        }
        None => multistart_parallel_engine_cancellable(
            &req.hg,
            &req.fixed,
            &balance,
            req.starts,
            req.threads,
            req.seed,
            &engine,
            &ctx.metrics.engine,
            &cancel,
        ),
    };

    let outcome = match outcome {
        Ok(o) => o,
        Err(e) => {
            ctx.metrics.jobs_failed.fetch_add(1, Ordering::Relaxed);
            return ProtocolError {
                id: Some(req.id.clone()),
                code: error_code(&e),
                message: e.to_string(),
            }
            .to_line();
        }
    };
    let deadline_expired = cancel.is_cancelled();

    // Independent referee: never hand out an illegal partition, even from
    // a cancelled best-so-far path.
    let legal = Partitioning::from_parts(&req.hg, req.k, outcome.best.parts.clone())
        .map(|p| validate_partitioning(&req.hg, &p, &balance, &req.fixed).is_valid())
        .unwrap_or(false);
    if !legal {
        ctx.metrics.jobs_failed.fetch_add(1, Ordering::Relaxed);
        return ProtocolError {
            id: Some(req.id.clone()),
            code: "internal_error",
            message: "engine returned a partition that failed validation".to_string(),
        }
        .to_line();
    }

    if deadline_expired {
        ctx.metrics
            .deadline_expirations
            .fetch_add(1, Ordering::Relaxed);
    } else {
        // Only complete runs are cached: a best-so-far solution would
        // otherwise shadow the full-quality answer for later requests.
        ctx.cache.lock().expect("cache mutex").insert(
            key,
            outcome.best.parts.clone(),
            outcome.best.cut,
        );
    }
    ctx.metrics.jobs_ok.fetch_add(1, Ordering::Relaxed);
    let micros = t0.elapsed().as_micros() as u64;
    ctx.metrics.record_latency_us(engine.name(), micros);

    JobResponse {
        id: req.id.clone(),
        cut: outcome.best.cut,
        parts: outcome
            .best
            .parts
            .iter()
            .map(|p: &PartId| p.index() as u32)
            .collect(),
        cache_hit: false,
        deadline_expired,
        starts_run: outcome.starts.len(),
        micros,
    }
    .to_line()
}

/// Runs the service over stdin/stdout until EOF or `{"op":"shutdown"}`,
/// then shuts down gracefully and returns the final metrics snapshot.
///
/// # Errors
/// Propagates transport I/O and trace-file errors.
pub fn serve_stdio(config: ServiceConfig) -> io::Result<MetricsSnapshot> {
    let service = Service::start(config)?;
    let stdin = io::stdin();
    service.serve(stdin.lock(), io::stdout())?;
    Ok(service.shutdown())
}

/// Runs the service on a TCP listener (one thread per connection) until a
/// client requests shutdown, then drains and returns the final snapshot.
///
/// # Errors
/// Propagates bind and trace-file errors; per-connection I/O errors only
/// end that connection.
pub fn serve_tcp(config: ServiceConfig, addr: impl ToSocketAddrs) -> io::Result<MetricsSnapshot> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let service = Service::start(config)?;
    let stop = AtomicBool::new(false);

    std::thread::scope(|scope| {
        while !stop.load(Ordering::Relaxed) {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    let service = &service;
                    let stop = &stop;
                    scope.spawn(move || {
                        let reader = match stream.try_clone() {
                            Ok(s) => BufReader::new(s),
                            Err(_) => return,
                        };
                        if let Ok(ServeOutcome::ShutdownRequested) = service.serve(reader, stream) {
                            stop.store(true, Ordering::Relaxed);
                        }
                    });
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(_) => break,
            }
        }
    });
    Ok(service.shutdown())
}
