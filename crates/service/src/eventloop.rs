//! Nonblocking epoll front end for the TCP transport.
//!
//! One thread runs every connection: a level-triggered [`Epoll`] instance
//! watches the listener, a wake pipe, and each client socket. The loop
//! does its own line framing (bytes in `rbuf` until `\n`), parses and
//! answers control requests inline, applies admission control (per-client
//! token bucket, then queue high-water mark), and submits jobs to the
//! worker pool with a reply closure that posts the finished response line
//! on a completion channel and pokes the wake pipe so the loop picks it
//! up immediately.
//!
//! Nothing on the loop ever blocks: responses accumulate in per-client
//! write buffers flushed on writability, a full job queue sheds with
//! `overloaded` instead of waiting, and idle connections (no traffic, no
//! jobs in flight for [`ServiceConfig::idle_timeout`](crate::ServiceConfig))
//! are closed by the periodic sweep. `{"op":"shutdown"}` triggers a
//! graceful drain: the listener is deregistered, new jobs are refused
//! with `queue_closed`, every in-flight job still answers, all write
//! buffers flush, and only then does the loop close the connections and
//! return.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::{mpsc, Arc};
use std::time::Instant;

use crate::admission::TokenBucket;
use crate::protocol::{parse_request, ProtocolError, Request};
use crate::server::{Service, SubmitError};
use crate::sys::{Epoll, EpollEvent, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP};

const LISTENER: u64 = u64::MAX;
const WAKE: u64 = u64::MAX - 1;
/// Epoll wait timeout — the cadence of idle sweeps and drain checks.
const TICK_MS: i32 = 100;
/// Hard per-connection cap on one request line (a line this long is a
/// protocol violation, not a big instance — .hgr files go via
/// `hypergraph_path`).
const MAX_LINE: usize = 64 << 20;

struct Conn {
    stream: TcpStream,
    rbuf: Vec<u8>,
    wbuf: Vec<u8>,
    wpos: usize,
    last_active: Instant,
    bucket: TokenBucket,
    inflight: usize,
    read_closed: bool,
    interest: u32,
}

impl Conn {
    fn queue_line(&mut self, line: &str) {
        self.wbuf.extend_from_slice(line.as_bytes());
        self.wbuf.push(b'\n');
    }

    fn write_pending(&self) -> bool {
        self.wpos < self.wbuf.len()
    }

    /// Writes as much buffered output as the socket accepts right now.
    fn flush(&mut self) -> io::Result<()> {
        while self.wpos < self.wbuf.len() {
            match self.stream.write(&self.wbuf[self.wpos..]) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => self.wpos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        if self.wpos == self.wbuf.len() {
            self.wbuf.clear();
            self.wpos = 0;
        }
        Ok(())
    }
}

/// Runs the event loop until a client requests shutdown and the drain
/// completes. Returns with all connections closed; the caller still owns
/// worker shutdown.
pub(crate) fn run(service: &Service, listener: TcpListener) -> io::Result<()> {
    listener.set_nonblocking(true)?;
    let epoll = Epoll::new()?;
    // Self-pipe: workers finish jobs on their own threads and need to
    // interrupt an epoll_pwait that is watching only sockets.
    let (wake_rx, wake_tx) = UnixStream::pair()?;
    wake_rx.set_nonblocking(true)?;
    wake_tx.set_nonblocking(true)?;
    let wake_tx = Arc::new(wake_tx);
    epoll.add(listener.as_raw_fd(), EPOLLIN, LISTENER)?;
    epoll.add(wake_rx.as_raw_fd(), EPOLLIN, WAKE)?;

    let (done_tx, done_rx) = mpsc::channel::<(u64, String)>();
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut next_token: u64 = 0;
    let mut draining = false;
    let mut accepting = true;
    let mut events = vec![EpollEvent::zeroed(); 64];
    let idle_timeout = service.idle_timeout();

    loop {
        let n = epoll.wait(&mut events, TICK_MS)?;
        for ev in events.iter().take(n).copied() {
            match ev.data {
                LISTENER => {
                    accept_all(service, &listener, &epoll, &mut conns, &mut next_token);
                }
                WAKE => {
                    // Drain the pipe; the completion channel below has the
                    // actual payloads.
                    let mut sink = [0u8; 256];
                    while matches!((&wake_rx).read(&mut sink), Ok(n) if n > 0) {}
                }
                token => {
                    let hup = ev.events & (EPOLLERR | EPOLLHUP) != 0;
                    if hup {
                        if let Some(conn) = conns.remove(&token) {
                            let _ = epoll.delete(conn.stream.as_raw_fd());
                        }
                        continue;
                    }
                    if ev.events & (EPOLLIN | EPOLLRDHUP) != 0 {
                        let Some(conn) = conns.get_mut(&token) else {
                            continue;
                        };
                        if handle_readable(conn, token, service, &done_tx, &wake_tx, &mut draining)
                            .is_err()
                        {
                            let conn = conns.remove(&token).expect("conn present");
                            let _ = epoll.delete(conn.stream.as_raw_fd());
                        }
                    }
                    // Writability is handled by the flush pass below.
                }
            }
        }

        // Route finished jobs to their connections' write buffers.
        while let Ok((token, line)) = done_rx.try_recv() {
            if let Some(conn) = conns.get_mut(&token) {
                conn.inflight = conn.inflight.saturating_sub(1);
                conn.last_active = Instant::now();
                conn.queue_line(&line);
            }
            // A vanished connection just drops its response.
        }

        // Flush, close, and interest-update pass over every connection.
        let now = Instant::now();
        let mut dead = Vec::new();
        for (&token, conn) in conns.iter_mut() {
            if conn.flush().is_err() {
                dead.push(token);
                continue;
            }
            let settled = !conn.write_pending() && conn.inflight == 0;
            let idle = now.saturating_duration_since(conn.last_active) > idle_timeout;
            if settled && (conn.read_closed || draining || idle) {
                dead.push(token);
                continue;
            }
            let mut want = EPOLLRDHUP;
            if !conn.read_closed {
                want |= EPOLLIN;
            }
            if conn.write_pending() {
                want |= EPOLLOUT;
            }
            if want != conn.interest {
                if epoll.modify(conn.stream.as_raw_fd(), want, token).is_err() {
                    dead.push(token);
                    continue;
                }
                conn.interest = want;
            }
        }
        for token in dead {
            if let Some(conn) = conns.remove(&token) {
                let _ = epoll.delete(conn.stream.as_raw_fd());
            }
        }

        if draining {
            if accepting {
                let _ = epoll.delete(listener.as_raw_fd());
                accepting = false;
            }
            // Every job answered, every response flushed, every
            // connection closed: the drain is complete.
            if conns.is_empty() {
                break;
            }
        }
    }
    Ok(())
}

fn accept_all(
    service: &Service,
    listener: &TcpListener,
    epoll: &Epoll,
    conns: &mut HashMap<u64, Conn>,
    next_token: &mut u64,
) {
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                // Responses are small and latency-sensitive; don't batch.
                let _ = stream.set_nodelay(true);
                let token = *next_token;
                *next_token += 1;
                let interest = EPOLLIN | EPOLLRDHUP;
                if epoll.add(stream.as_raw_fd(), interest, token).is_err() {
                    continue;
                }
                conns.insert(
                    token,
                    Conn {
                        stream,
                        rbuf: Vec::new(),
                        wbuf: Vec::new(),
                        wpos: 0,
                        last_active: Instant::now(),
                        bucket: TokenBucket::new(&service.admission(), Instant::now()),
                        inflight: 0,
                        read_closed: false,
                        interest,
                    },
                );
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => break,
        }
    }
}

/// Reads everything the socket has, then processes every complete line
/// in the buffer. An `Err` means the connection is unusable and must be
/// dropped.
fn handle_readable(
    conn: &mut Conn,
    token: u64,
    service: &Service,
    done_tx: &mpsc::Sender<(u64, String)>,
    wake_tx: &Arc<UnixStream>,
    draining: &mut bool,
) -> io::Result<()> {
    let mut buf = [0u8; 16 * 1024];
    loop {
        match conn.stream.read(&mut buf) {
            Ok(0) => {
                conn.read_closed = true;
                break;
            }
            Ok(n) => {
                conn.last_active = Instant::now();
                conn.rbuf.extend_from_slice(&buf[..n]);
                if conn.rbuf.len() > MAX_LINE {
                    return Err(io::ErrorKind::InvalidData.into());
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }

    while let Some(pos) = conn.rbuf.iter().position(|&b| b == b'\n') {
        let raw: Vec<u8> = conn.rbuf.drain(..=pos).collect();
        let line = String::from_utf8_lossy(&raw[..raw.len() - 1]);
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        process_line(line, conn, token, service, done_tx, wake_tx, draining);
    }
    Ok(())
}

fn process_line(
    line: &str,
    conn: &mut Conn,
    token: u64,
    service: &Service,
    done_tx: &mpsc::Sender<(u64, String)>,
    wake_tx: &Arc<UnixStream>,
    draining: &mut bool,
) {
    match parse_request(line) {
        Err(e) => {
            service.note_protocol_error();
            conn.queue_line(&e.to_line());
        }
        Ok(Request::Metrics) => {
            conn.queue_line(&service.metrics_line());
        }
        Ok(Request::Shutdown) => {
            conn.queue_line("{\"status\":\"ok\",\"op\":\"shutdown\"}");
            *draining = true;
        }
        Ok(Request::Job(request)) => {
            let id = request.id.clone();
            let refuse = |conn: &mut Conn, code: &'static str, message: &str| {
                conn.queue_line(
                    &ProtocolError {
                        id: Some(id.clone()),
                        code,
                        message: message.to_string(),
                    }
                    .to_line(),
                );
            };
            if *draining {
                refuse(conn, "queue_closed", "service is shutting down");
                return;
            }
            if let Err(e) = service.admit(
                &mut conn.bucket,
                &request.id,
                request.hg.num_pins(),
                Instant::now(),
            ) {
                conn.queue_line(&e.to_line());
                return;
            }
            let tx = done_tx.clone();
            let wake = Arc::clone(wake_tx);
            let reply = Box::new(move |line: String| {
                let _ = tx.send((token, line));
                // One pending byte is enough to wake the loop; a full
                // pipe means it is already awake.
                let _ = (&*wake).write(&[1u8]);
            });
            match service.try_submit(request, reply) {
                Ok(()) => conn.inflight += 1,
                Err(SubmitError::Full) => {
                    service.note_shed();
                    refuse(conn, "overloaded", "job queue is full; retry later");
                }
                Err(SubmitError::Closed) => {
                    refuse(conn, "queue_closed", "service is shutting down");
                }
            }
        }
    }
}
