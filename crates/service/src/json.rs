//! Minimal hand-rolled JSON — the workspace is hermetic, so the protocol
//! layer parses and prints its own JSON instead of pulling in serde.
//!
//! The parser accepts exactly the JSON grammar (RFC 8259) with one
//! practical split: numbers without a fraction or exponent that fit an
//! `i64` become [`Json::Int`], everything else [`Json::Num`]. This keeps
//! vertex counts, cuts and seeds exact — `f64` round-tripping would
//! silently corrupt integers above 2^53.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number with no fraction/exponent that fits an `i64`.
    Int(i64),
    /// Any other number.
    Num(f64),
    /// A string (escapes already decoded).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order (duplicate keys keep the first).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an `i64` (integers only).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The value as a `u64` (non-negative integers only).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    /// The value as an `f64` (integers widen).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The member list, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }
}

/// Where and why parsing failed (byte offset into the input line).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the offending character.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses one complete JSON value; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after value"));
    }
    Ok(value)
}

/// Nesting bound: protocol messages are flat, so anything deeper is
/// garbage, and bounding recursion keeps malformed input from overflowing
/// the stack.
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        self.depth += 1;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        self.depth += 1;
        let mut members: Vec<(String, Json)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            if !members.iter().any(|(k, _)| *k == key) {
                members.push((key, value));
            }
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let ch = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: a following \uXXXX low half.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 1;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))?
                            };
                            out.push(ch);
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar (input is a &str, so boundaries
                    // are guaranteed well-formed).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && self.bytes[self.pos] & 0xC0 == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .expect("input is valid UTF-8"),
                    );
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let c = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let digit = (c as char)
                .to_digit(16)
                .ok_or_else(|| self.err("non-hex digit in \\u escape"))?;
            code = code * 16 + digit;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("expected digit")),
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected digit after '.'"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected digit in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII");
        if integral {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("number out of range"))
    }
}

/// Appends `s` to `out` with JSON string escaping (no surrounding quotes).
pub fn escape_into(out: &mut String, s: &str) {
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// `s` as a quoted, escaped JSON string literal.
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    escape_into(&mut out, s);
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("false").unwrap(), Json::Bool(false));
        assert_eq!(parse("42").unwrap(), Json::Int(42));
        assert_eq!(parse("-7").unwrap(), Json::Int(-7));
        assert_eq!(parse("2.5").unwrap(), Json::Num(2.5));
        assert_eq!(parse("1e3").unwrap(), Json::Num(1000.0));
        assert_eq!(parse("\"hi\"").unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn big_integers_stay_exact() {
        let max = i64::MAX.to_string();
        assert_eq!(parse(&max).unwrap(), Json::Int(i64::MAX));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a":[1,2,{"b":null}],"c":"d"}"#).unwrap();
        assert_eq!(v.get("c").unwrap().as_str(), Some("d"));
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[2].get("b"), Some(&Json::Null));
    }

    #[test]
    fn decodes_escapes_and_surrogates() {
        assert_eq!(
            parse(r#""a\n\t\"\\\u0041\ud83d\ude00""#).unwrap().as_str(),
            Some("a\n\t\"\\A😀")
        );
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "nul",
            "01",
            "1.",
            "\"\\x\"",
            "\"unterminated",
            "{\"a\":1} trailing",
            "+-3",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn depth_is_bounded() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn duplicate_keys_keep_first() {
        let v = parse(r#"{"a":1,"a":2}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn quoting_round_trips() {
        let s = "line\nwith \"quotes\" and \\ and \u{1}";
        assert_eq!(parse(&quote(s)).unwrap().as_str(), Some(s));
    }
}
