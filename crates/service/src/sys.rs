//! Minimal epoll bindings via raw syscalls — no libc, no crates.
//!
//! The workspace is hermetic (no external dependencies), so the event
//! loop cannot lean on `libc` or `mio`. This module makes the four
//! syscalls the front end needs (`epoll_create1`, `epoll_ctl`,
//! `epoll_pwait`, `close`) directly with inline assembly, wrapped in a
//! safe [`Epoll`] handle that owns the epoll file descriptor.
//!
//! Only compiled on Linux x86_64/aarch64 (see the cfg gate in
//! `lib.rs`); other targets fall back to the thread-per-connection
//! server, which needs none of this.
//!
//! Safety perimeter: the `unsafe` here is confined to issuing syscalls
//! with kernel-validated arguments. Every pointer passed is a valid
//! Rust reference or slice for the duration of the call, every fd is
//! either owned by `Epoll` or borrowed from a live socket, and error
//! returns are converted to `io::Error` rather than ignored.

use std::io;
use std::os::fd::RawFd;

/// Readiness flag: the fd is readable.
pub const EPOLLIN: u32 = 0x1;
/// Readiness flag: the fd is writable.
pub const EPOLLOUT: u32 = 0x4;
/// Readiness flag: error condition (always reported, never subscribed).
pub const EPOLLERR: u32 = 0x8;
/// Readiness flag: hangup (always reported, never subscribed).
pub const EPOLLHUP: u32 = 0x10;
/// Readiness flag: peer closed its write half.
pub const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;
const EPOLL_CLOEXEC: i32 = 0o2000000;

#[cfg(target_arch = "x86_64")]
mod nr {
    pub const CLOSE: usize = 3;
    pub const EPOLL_CTL: usize = 233;
    pub const EPOLL_PWAIT: usize = 281;
    pub const EPOLL_CREATE1: usize = 291;
}

#[cfg(target_arch = "aarch64")]
mod nr {
    pub const EPOLL_CREATE1: usize = 20;
    pub const EPOLL_CTL: usize = 21;
    pub const EPOLL_PWAIT: usize = 22;
    pub const CLOSE: usize = 57;
}

/// One readiness record, ABI-compatible with the kernel's
/// `struct epoll_event`. x86_64 is the only target where the kernel
/// packs the struct; aarch64 uses natural alignment.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    /// Ready event mask (`EPOLLIN` / `EPOLLOUT` / ...).
    pub events: u32,
    /// Caller-chosen token identifying the fd.
    pub data: u64,
}

impl EpollEvent {
    /// A zeroed event, for pre-sizing wait buffers.
    pub fn zeroed() -> Self {
        EpollEvent { events: 0, data: 0 }
    }
}

#[cfg(target_arch = "x86_64")]
unsafe fn syscall4(nr: usize, a1: usize, a2: usize, a3: usize, a4: usize) -> isize {
    let ret: isize;
    std::arch::asm!(
        "syscall",
        inlateout("rax") nr as isize => ret,
        in("rdi") a1,
        in("rsi") a2,
        in("rdx") a3,
        in("r10") a4,
        lateout("rcx") _,
        lateout("r11") _,
        options(nostack),
    );
    ret
}

#[cfg(target_arch = "x86_64")]
unsafe fn syscall5(nr: usize, a1: usize, a2: usize, a3: usize, a4: usize, a5: usize) -> isize {
    let ret: isize;
    std::arch::asm!(
        "syscall",
        inlateout("rax") nr as isize => ret,
        in("rdi") a1,
        in("rsi") a2,
        in("rdx") a3,
        in("r10") a4,
        in("r8") a5,
        lateout("rcx") _,
        lateout("r11") _,
        options(nostack),
    );
    ret
}

#[cfg(target_arch = "aarch64")]
unsafe fn syscall4(nr: usize, a1: usize, a2: usize, a3: usize, a4: usize) -> isize {
    let ret: isize;
    std::arch::asm!(
        "svc 0",
        in("x8") nr,
        inlateout("x0") a1 => ret,
        in("x1") a2,
        in("x2") a3,
        in("x3") a4,
        options(nostack),
    );
    ret
}

#[cfg(target_arch = "aarch64")]
unsafe fn syscall5(nr: usize, a1: usize, a2: usize, a3: usize, a4: usize, a5: usize) -> isize {
    let ret: isize;
    std::arch::asm!(
        "svc 0",
        in("x8") nr,
        inlateout("x0") a1 => ret,
        in("x1") a2,
        in("x2") a3,
        in("x3") a4,
        in("x4") a5,
        options(nostack),
    );
    ret
}

fn check(ret: isize) -> io::Result<usize> {
    if ret < 0 {
        Err(io::Error::from_raw_os_error(-ret as i32))
    } else {
        Ok(ret as usize)
    }
}

/// An owned epoll instance. The fd is closed on drop.
pub struct Epoll {
    fd: RawFd,
}

impl Epoll {
    /// Creates a close-on-exec epoll instance.
    pub fn new() -> io::Result<Self> {
        // SAFETY: epoll_create1 takes no pointers; the flag is valid.
        let fd = check(unsafe { syscall4(nr::EPOLL_CREATE1, EPOLL_CLOEXEC as usize, 0, 0, 0) })?;
        Ok(Epoll { fd: fd as RawFd })
    }

    fn ctl(&self, op: i32, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        let mut ev = EpollEvent {
            events,
            data: token,
        };
        // SAFETY: `ev` outlives the call; the kernel copies it before
        // returning. `fd` is a live descriptor supplied by the caller.
        check(unsafe {
            syscall4(
                nr::EPOLL_CTL,
                self.fd as usize,
                op as usize,
                fd as usize,
                std::ptr::addr_of_mut!(ev) as usize,
            )
        })
        .map(|_| ())
    }

    /// Starts watching `fd` for `events`, reported under `token`.
    pub fn add(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, events, token)
    }

    /// Changes the interest mask of an already-watched `fd`.
    pub fn modify(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, events, token)
    }

    /// Stops watching `fd`.
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Waits up to `timeout_ms` (−1 = forever) for readiness, filling
    /// `events` and returning how many entries are valid. `EINTR` is
    /// surfaced as `Ok(0)` — callers treat it like a timeout tick.
    pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        if events.is_empty() {
            return Ok(0);
        }
        // SAFETY: `events` is a live, writable slice; the kernel writes at
        // most `events.len()` entries. The null sigmask means "don't touch
        // the signal mask" (epoll_pwait with NULL == epoll_wait, which
        // aarch64 doesn't have).
        let ret = unsafe {
            syscall5(
                nr::EPOLL_PWAIT,
                self.fd as usize,
                events.as_mut_ptr() as usize,
                events.len(),
                timeout_ms as usize,
                0,
            )
        };
        match check(ret) {
            Ok(n) => Ok(n),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => Ok(0),
            Err(e) => Err(e),
        }
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        // SAFETY: we own this fd and drop it exactly once.
        let _ = unsafe { syscall4(nr::CLOSE, self.fd as usize, 0, 0, 0) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::os::fd::AsRawFd;
    use std::os::unix::net::UnixStream;

    #[test]
    fn epoll_reports_readability() {
        let ep = Epoll::new().unwrap();
        let (mut a, b) = UnixStream::pair().unwrap();
        ep.add(b.as_raw_fd(), EPOLLIN, 42).unwrap();

        let mut evs = vec![EpollEvent::zeroed(); 8];
        // Nothing written yet: a zero-timeout wait sees nothing.
        assert_eq!(ep.wait(&mut evs, 0).unwrap(), 0);

        a.write_all(b"x").unwrap();
        let n = ep.wait(&mut evs, 1000).unwrap();
        assert_eq!(n, 1);
        let (data, events) = (evs[0].data, evs[0].events);
        assert_eq!(data, 42);
        assert_ne!(events & EPOLLIN, 0);
    }

    #[test]
    fn modify_and_delete_change_interest() {
        let ep = Epoll::new().unwrap();
        let (mut a, b) = UnixStream::pair().unwrap();
        ep.add(b.as_raw_fd(), EPOLLIN, 1).unwrap();
        a.write_all(b"x").unwrap();

        // Swap interest to write-only: the pending byte no longer wakes us
        // with EPOLLIN, but the socket is writable.
        ep.modify(b.as_raw_fd(), EPOLLOUT, 2).unwrap();
        let mut evs = vec![EpollEvent::zeroed(); 8];
        let n = ep.wait(&mut evs, 1000).unwrap();
        assert_eq!(n, 1);
        let (data, events) = (evs[0].data, evs[0].events);
        assert_eq!(data, 2);
        assert_ne!(events & EPOLLOUT, 0);
        assert_eq!(events & EPOLLIN, 0);

        ep.delete(b.as_raw_fd()).unwrap();
        assert_eq!(ep.wait(&mut evs, 0).unwrap(), 0, "deleted fd is silent");
    }

    #[test]
    fn hangup_is_reported() {
        let ep = Epoll::new().unwrap();
        let (a, b) = UnixStream::pair().unwrap();
        ep.add(b.as_raw_fd(), EPOLLIN | EPOLLRDHUP, 7).unwrap();
        drop(a);
        let mut evs = vec![EpollEvent::zeroed(); 8];
        let n = ep.wait(&mut evs, 1000).unwrap();
        assert_eq!(n, 1);
        let ev = evs[0];
        assert_ne!(ev.events & (EPOLLRDHUP | EPOLLHUP), 0);
    }
}
