//! End-to-end service test over the in-process stdio transport.
//!
//! One worker, one connection, a scripted batch of requests covering the
//! whole protocol surface: a fresh solve, an identical duplicate (must be
//! answered from the content-addressed cache), a zero-deadline job (must
//! return a *valid* best-so-far partition flagged `deadline_expired`, and
//! must never be cached), malformed requests, and a metrics query. Every
//! successful response is re-validated against the balance and fixity
//! invariants by the independent referee.

use std::io::Cursor;

use vlsi_hypergraph::{
    validate_partitioning, BalanceConstraint, FixedVertices, HypergraphBuilder, PartId,
    Partitioning, Tolerance, VertexId,
};
use vlsi_service::json::{self, Json};
use vlsi_service::{ServeOutcome, Service, ServiceConfig};

const N: usize = 40;
const TOLERANCE: f64 = 0.1;

/// The test instance as both JSON (for the wire) and a built hypergraph
/// (for the referee): a 40-vertex chain with the ends fixed apart.
fn instance_json() -> String {
    let vertices = vec!["1"; N].join(",");
    let nets: Vec<String> = (0..N - 1).map(|i| format!("[{},{}]", i, i + 1)).collect();
    let mut fixed = vec!["-1".to_string(); N];
    fixed[0] = "0".to_string();
    fixed[N - 1] = "1".to_string();
    format!(
        r#""hypergraph":{{"vertices":[{}],"nets":[{}]}},"fixed":[{}]"#,
        vertices,
        nets.join(","),
        fixed.join(",")
    )
}

fn referee() -> (
    vlsi_hypergraph::Hypergraph,
    FixedVertices,
    BalanceConstraint,
) {
    let mut b = HypergraphBuilder::new();
    let v: Vec<_> = (0..N).map(|_| b.add_vertex(1)).collect();
    for w in v.windows(2) {
        b.add_net(1, [w[0], w[1]]).unwrap();
    }
    let hg = b.build().unwrap();
    let mut fixed = FixedVertices::all_free(N);
    fixed.fix(VertexId::from_index(0), PartId::from_index(0));
    fixed.fix(VertexId::from_index(N - 1), PartId::from_index(1));
    let balance = BalanceConstraint::even(2, hg.total_weights(), Tolerance::Relative(TOLERANCE));
    (hg, fixed, balance)
}

fn assert_legal_response(resp: &Json) {
    let (hg, fixed, balance) = referee();
    let parts: Vec<PartId> = resp
        .get("parts")
        .and_then(|p| p.as_arr())
        .expect("ok response has parts")
        .iter()
        .map(|p| PartId::from_index(p.as_u64().expect("part id") as usize))
        .collect();
    let p = Partitioning::from_parts(&hg, 2, parts).expect("well-formed assignment");
    let report = validate_partitioning(&hg, &p, &balance, &fixed);
    assert!(report.is_valid(), "response violates invariants: {report}");
    assert_eq!(
        report.recomputed_cut,
        resp.get("cut").and_then(|c| c.as_u64()).expect("cut"),
        "reported cut must match the independently recomputed cut"
    );
}

#[test]
fn stdio_session_covers_cache_deadline_and_errors() {
    let trace_path = std::env::temp_dir().join(format!(
        "vlsi-service-e2e-{}-trace.jsonl",
        std::process::id()
    ));
    let service = Service::start(ServiceConfig {
        workers: 1, // sequential job order makes the duplicate a guaranteed hit
        trace_path: Some(trace_path.clone()),
        ..ServiceConfig::default()
    })
    .expect("service starts");

    let inst = instance_json();
    let requests = [
        // Fresh solve.
        format!(
            r#"{{"id":"j1","engine":"ml","starts":2,"seed":5,"tolerance":{TOLERANCE},{inst}}}"#
        ),
        // Byte-different JSON, identical content: must hit the cache.
        format!(
            r#"{{ "starts": 2, "seed": 5, "tolerance": {TOLERANCE}, "engine": "multilevel", "id": "j2", {inst} }}"#
        ),
        // Already-expired deadline: best-so-far, flagged, never cached.
        format!(
            r#"{{"id":"j3","engine":"ml","starts":4,"seed":77,"tolerance":{TOLERANCE},"deadline_ms":0,{inst}}}"#
        ),
        // Duplicate of the expired job: expired runs are not cached.
        format!(
            r#"{{"id":"j4","engine":"ml","starts":4,"seed":77,"tolerance":{TOLERANCE},"deadline_ms":0,{inst}}}"#
        ),
        // Malformed JSON and a structurally invalid job.
        "{this is not json".to_string(),
        r#"{"id":"j5","hypergraph":{"vertices":[1,1],"nets":[[0,9]]}}"#.to_string(),
        // Metrics is answered inline (possibly before jobs finish).
        r#"{"op":"metrics"}"#.to_string(),
    ];
    let input = requests.join("\n") + "\n";

    let mut out = Vec::new();
    let outcome = service
        .serve(Cursor::new(input), &mut out)
        .expect("session runs");
    assert_eq!(outcome, ServeOutcome::Eof);

    let cache = service.cache_stats();
    let snapshot = service.shutdown();

    // The trace sink was flushed on graceful shutdown: the deadline jobs
    // recorded cancellation events, the others their start brackets.
    let trace = std::fs::read_to_string(&trace_path).expect("trace file exists");
    assert!(
        trace.lines().any(|l| l.contains("\"ev\":\"start\"")),
        "trace records start events: {trace:?}"
    );
    assert!(
        trace.lines().any(|l| l.contains("\"ev\":\"cancelled\"")),
        "trace records the deadline cancellations: {trace:?}"
    );
    std::fs::remove_file(&trace_path).ok();

    let text = String::from_utf8(out).expect("utf8 output");
    let responses: Vec<Json> = text
        .lines()
        .map(|l| json::parse(l).expect("valid JSON"))
        .collect();
    assert_eq!(responses.len(), requests.len(), "one response per request");
    let by_id = |id: &str| {
        responses
            .iter()
            .find(|r| r.get("id").and_then(|v| v.as_str()) == Some(id))
            .unwrap_or_else(|| panic!("no response for {id}"))
    };

    // j1: fresh solve.
    let j1 = by_id("j1");
    assert_eq!(j1.get("status").unwrap().as_str(), Some("ok"));
    assert_eq!(j1.get("cache_hit").unwrap().as_bool(), Some(false));
    assert_eq!(j1.get("deadline_expired").unwrap().as_bool(), Some(false));
    assert_eq!(j1.get("starts_run").unwrap().as_u64(), Some(2));
    assert_legal_response(j1);

    // j2: same content, different formatting — a cache hit with the same
    // solution.
    let j2 = by_id("j2");
    assert_eq!(j2.get("status").unwrap().as_str(), Some("ok"));
    assert_eq!(
        j2.get("cache_hit").unwrap().as_bool(),
        Some(true),
        "identical content must be answered from the cache"
    );
    assert_eq!(j2.get("cut"), j1.get("cut"));
    assert_eq!(j2.get("parts"), j1.get("parts"));
    assert_legal_response(j2);

    // j3: zero deadline — flagged best-so-far, still a legal partition.
    let j3 = by_id("j3");
    assert_eq!(j3.get("status").unwrap().as_str(), Some("ok"));
    assert_eq!(j3.get("deadline_expired").unwrap().as_bool(), Some(true));
    assert_eq!(j3.get("cache_hit").unwrap().as_bool(), Some(false));
    assert_eq!(
        j3.get("starts_run").unwrap().as_u64(),
        Some(1),
        "an expired deadline still runs exactly the guaranteed first start"
    );
    assert_legal_response(j3);

    // j4: re-submitting the expired job misses the cache again.
    let j4 = by_id("j4");
    assert_eq!(j4.get("status").unwrap().as_str(), Some("ok"));
    assert_eq!(
        j4.get("cache_hit").unwrap().as_bool(),
        Some(false),
        "deadline-expired solutions must never be cached"
    );
    assert_eq!(j4.get("deadline_expired").unwrap().as_bool(), Some(true));
    assert_legal_response(j4);

    // Malformed lines got structured errors.
    let errors: Vec<&Json> = responses
        .iter()
        .filter(|r| r.get("status").and_then(|s| s.as_str()) == Some("error"))
        .collect();
    assert_eq!(errors.len(), 2);
    assert!(errors
        .iter()
        .any(|e| e.get("code").unwrap().as_str() == Some("bad_json")));
    let j5 = by_id("j5");
    assert_eq!(j5.get("code").unwrap().as_str(), Some("bad_request"));

    // The inline metrics response is well-formed.
    let metrics_resp = responses
        .iter()
        .find(|r| r.get("metrics").is_some())
        .expect("metrics response");
    assert!(metrics_resp.get("metrics").unwrap().get("engine").is_some());

    // Final counters (after shutdown, so every job is accounted for).
    assert_eq!(snapshot.jobs_ok, 4);
    assert_eq!(snapshot.jobs_failed, 0);
    assert_eq!(snapshot.cache_hits, 1);
    assert_eq!(snapshot.cache_misses, 3);
    assert_eq!(snapshot.deadline_expirations, 2);
    assert_eq!(snapshot.protocol_errors, 2);
    assert!(snapshot.p99_us >= snapshot.p50_us);
    assert_eq!(cache.hits, 1);
    assert_eq!(cache.entries, 1, "only the completed run was cached");
    // At least the multistart-summary cancellation of each deadline job;
    // the instrumented driver additionally counts the engines' internal
    // cancellation checkpoints.
    assert!(
        snapshot.engine.cancellations >= 2,
        "each deadline job records its cancellation: {}",
        snapshot.engine.cancellations
    );
}

#[test]
fn shutdown_op_ends_the_session_and_queued_jobs_still_answer() {
    let service = Service::start(ServiceConfig {
        workers: 1,
        ..ServiceConfig::default()
    })
    .expect("service starts");
    let inst = instance_json();
    let input = format!(
        "{}\n{}\n{}\n",
        format_args!(
            r#"{{"id":"a","engine":"fm","starts":1,"seed":2,"tolerance":{TOLERANCE},{inst}}}"#
        ),
        r#"{"op":"shutdown"}"#,
        r#"{"id":"after","engine":"fm","starts":1,"hypergraph":{"vertices":[1,1],"nets":[[0,1]]}}"#,
    );
    let mut out = Vec::new();
    let outcome = service
        .serve(Cursor::new(input), &mut out)
        .expect("session runs");
    assert_eq!(outcome, ServeOutcome::ShutdownRequested);
    let snapshot = service.shutdown();

    let text = String::from_utf8(out).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    // The job accepted before shutdown was answered; the line after the
    // shutdown request was never read.
    assert!(text.contains("\"id\":\"a\""));
    assert!(text.contains("\"op\":\"shutdown\""));
    assert!(!text.contains("\"id\":\"after\""));
    assert_eq!(lines.len(), 2);
    assert_eq!(snapshot.jobs_ok, 1);
}

#[test]
fn tcp_transport_round_trips() {
    use std::io::{BufRead, BufReader, Write};
    use std::net::{TcpListener, TcpStream};

    // Bind on an OS-assigned port, then hand the address to serve_tcp via
    // the listener's own local_addr.
    let probe = TcpListener::bind("127.0.0.1:0").expect("bind probe");
    let addr = probe.local_addr().expect("addr");
    drop(probe);

    let server = std::thread::spawn(move || {
        vlsi_service::serve_tcp(
            ServiceConfig {
                workers: 1,
                ..ServiceConfig::default()
            },
            addr,
        )
        .expect("serve_tcp runs")
    });

    // The accept loop may not be up yet — retry the connect briefly.
    let mut stream = None;
    for _ in 0..100 {
        match TcpStream::connect(addr) {
            Ok(s) => {
                stream = Some(s);
                break;
            }
            Err(_) => std::thread::sleep(std::time::Duration::from_millis(10)),
        }
    }
    let mut stream = stream.expect("connect to service");
    let inst = instance_json();
    writeln!(
        stream,
        r#"{{"id":"t1","engine":"fm","starts":1,"seed":9,"tolerance":{TOLERANCE},{inst}}}"#
    )
    .expect("send job");
    stream
        .write_all(b"{\"op\":\"shutdown\"}\n")
        .expect("send shutdown");

    // Responses may interleave: the shutdown acknowledgment is written
    // inline while the job is still running. Read until EOF and match by id.
    let reader = BufReader::new(stream.try_clone().expect("clone"));
    let responses: Vec<Json> = reader
        .lines()
        .map(|l| json::parse(l.expect("read response").trim()).expect("valid response"))
        .collect();
    let resp = responses
        .iter()
        .find(|r| r.get("id").and_then(|v| v.as_str()) == Some("t1"))
        .expect("job response present");
    assert_eq!(resp.get("status").unwrap().as_str(), Some("ok"));
    assert_legal_response(resp);
    assert!(responses
        .iter()
        .any(|r| r.get("op").and_then(|v| v.as_str()) == Some("shutdown")));

    let snapshot = server.join().expect("server thread");
    assert_eq!(snapshot.jobs_ok, 1);
}
