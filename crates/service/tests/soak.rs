//! TCP soak tests for the epoll front end and the warm-start path.
//!
//! Three gates from the scale-out issue:
//!
//! 1. Warm-start jobs on an instance with a substantial fixed fraction
//!    must run **strictly fewer** k-way refinement passes than identical
//!    cold jobs (measured through the engine counters in the metrics
//!    snapshot) and serve at a lower per-engine p50.
//! 2. A bounded concurrent soak (several connections, mixed cold/warm
//!    traffic) must finish without errors within a generous p99 bound.
//! 3. Responses must be byte-identical (modulo the timing field) across
//!    1/2/4/8 worker threads — the event loop and worker count must never
//!    leak into results.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::{Duration, Instant};

use vlsi_service::json::{self, Json};
use vlsi_service::{serve_tcp, MetricsSnapshot, ServiceConfig};

const K: usize = 4;
const TOLERANCE: f64 = 0.2;

/// A ring with deterministic chords and every fifth vertex fixed
/// round-robin over the parts: 20% fixed, enough connectivity that a cold
/// multilevel run does real refinement work.
fn instance_json(n: usize) -> String {
    let vertices = vec!["1"; n].join(",");
    let mut nets: Vec<String> = (0..n).map(|i| format!("[{},{}]", i, (i + 1) % n)).collect();
    for i in 0..n / 2 {
        let a = (i * 13 + 5) % n;
        let b = (a + n / 3 + (i % 7)) % n;
        if a != b {
            nets.push(format!("[{a},{b}]"));
        }
    }
    let fixed: Vec<String> = (0..n)
        .map(|i| {
            if i % 5 == 0 {
                ((i / 5) % K).to_string()
            } else {
                "-1".to_string()
            }
        })
        .collect();
    format!(
        r#""hypergraph":{{"vertices":[{}],"nets":[{}]}},"fixed":[{}]"#,
        vertices,
        nets.join(","),
        fixed.join(",")
    )
}

/// One synchronous line-protocol client connection.
struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        // The accept loop may not be up yet — retry briefly.
        for _ in 0..200 {
            if let Ok(s) = TcpStream::connect(addr) {
                s.set_nodelay(true).expect("nodelay");
                let reader = BufReader::new(s.try_clone().expect("clone stream"));
                return Client { writer: s, reader };
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        panic!("could not connect to {addr}");
    }

    fn send_raw(&mut self, line: &str) -> String {
        writeln!(self.writer, "{line}").expect("send request");
        let mut resp = String::new();
        self.reader.read_line(&mut resp).expect("read response");
        assert!(!resp.is_empty(), "server closed mid-request");
        resp.trim().to_string()
    }

    fn send(&mut self, line: &str) -> Json {
        let raw = self.send_raw(line);
        json::parse(&raw).expect("response is valid JSON")
    }

    fn metrics(&mut self) -> Json {
        self.send(r#"{"op":"metrics"}"#)
    }

    fn shutdown(mut self) {
        let ack = self.send(r#"{"op":"shutdown"}"#);
        assert_eq!(ack.get("op").and_then(|v| v.as_str()), Some("shutdown"));
        // Drain to EOF: the server closes once the drain completes.
        let mut rest = String::new();
        while self.reader.read_line(&mut rest).expect("drain") > 0 {
            rest.clear();
        }
    }
}

fn spawn_server(config: ServiceConfig) -> (SocketAddr, std::thread::JoinHandle<MetricsSnapshot>) {
    let probe = TcpListener::bind("127.0.0.1:0").expect("bind probe");
    let addr = probe.local_addr().expect("addr");
    drop(probe);
    let handle =
        std::thread::spawn(move || serve_tcp(config, addr).expect("serve_tcp runs to shutdown"));
    (addr, handle)
}

fn engine_counter(metrics: &Json, name: &str) -> u64 {
    metrics
        .get("metrics")
        .and_then(|m| m.get("engine"))
        .and_then(|e| e.get(name))
        .and_then(|v| v.as_u64())
        .unwrap_or_else(|| panic!("metrics line has engine counter {name}"))
}

fn engine_p50(metrics: &Json, engine: &str) -> u64 {
    metrics
        .get("metrics")
        .and_then(|m| m.get("engines"))
        .and_then(|e| e.get(engine))
        .and_then(|l| l.get("p50_us"))
        .and_then(|v| v.as_u64())
        .unwrap_or_else(|| panic!("metrics line has a latency entry for {engine}"))
}

#[test]
fn warm_start_runs_fewer_passes_and_serves_faster_than_cold() {
    const JOBS: usize = 10;
    let (addr, server) = spawn_server(ServiceConfig {
        workers: 2,
        ..ServiceConfig::default()
    });
    let mut client = Client::connect(addr);
    // Large enough that the cold multilevel run refines at several
    // uncoarsening levels (~3 k-way passes per job); a warm start from the
    // converged solution needs exactly one confirming pass.
    let inst = instance_json(240);

    let passes_before = engine_counter(&client.metrics(), "kway_passes");

    // Cold phase: distinct seeds so every job really runs the engine.
    let mut sids = Vec::new();
    for i in 0..JOBS {
        let resp = client.send(&format!(
            r#"{{"id":"c{i}","engine":"kway","k":{K},"tolerance":{TOLERANCE},"seed":{},{inst}}}"#,
            1000 + i
        ));
        assert_eq!(resp.get("status").unwrap().as_str(), Some("ok"), "{resp:?}");
        assert_eq!(resp.get("cache_hit").unwrap().as_bool(), Some(false));
        assert!(
            resp.get("warm").is_none(),
            "cold responses carry no warm note"
        );
        sids.push(
            resp.get("solution_id")
                .and_then(|v| v.as_str())
                .expect("completed cold run returns a solution id")
                .to_string(),
        );
    }
    let after_cold = client.metrics();
    let cold_passes = engine_counter(&after_cold, "kway_passes") - passes_before;
    assert!(cold_passes > 0, "cold jobs must do refinement work");

    // Warm phase: the same instances, each seeded from its cold solution.
    for (i, sid) in sids.iter().enumerate() {
        let resp = client.send(&format!(
            r#"{{"id":"w{i}","engine":"kway","k":{K},"tolerance":{TOLERANCE},"seed":{},"warm_start":{{"solution_id":"{sid}"}},{inst}}}"#,
            1000 + i
        ));
        assert_eq!(resp.get("status").unwrap().as_str(), Some("ok"), "{resp:?}");
        assert_eq!(
            resp.get("warm").unwrap().as_str(),
            Some("hit"),
            "the seed is cached, so this must be a warm hit"
        );
        assert!(resp.get("solution_id").is_some());
    }
    let after_warm = client.metrics();
    let warm_passes =
        engine_counter(&after_warm, "kway_passes") - engine_counter(&after_cold, "kway_passes");
    assert_eq!(
        engine_counter(&after_warm, "warm_starts"),
        JOBS as u64,
        "every warm job records one warm-start event"
    );
    assert!(
        warm_passes < cold_passes,
        "warm starts must refine strictly less: warm {warm_passes} vs cold {cold_passes} passes"
    );
    assert!(
        engine_p50(&after_warm, "warm:kway") < engine_p50(&after_warm, "kway"),
        "warm p50 {} must beat cold p50 {}",
        engine_p50(&after_warm, "warm:kway"),
        engine_p50(&after_warm, "kway")
    );

    client.shutdown();
    let snapshot = server.join().expect("server thread");
    assert_eq!(snapshot.jobs_ok, 2 * JOBS as u64);
    assert_eq!(snapshot.jobs_failed, 0);
    assert_eq!(snapshot.engine.warm_starts, JOBS as u64);
}

#[test]
fn concurrent_mixed_soak_stays_clean_and_bounded() {
    const CONNS: usize = 8;
    const REQS: usize = 6;
    let (addr, server) = spawn_server(ServiceConfig {
        workers: 2,
        ..ServiceConfig::default()
    });

    let t0 = Instant::now();
    let latencies: Vec<Vec<Duration>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CONNS)
            .map(|c| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr);
                    let inst = instance_json(96);
                    let mut lat = Vec::with_capacity(REQS);
                    let mut sid: Option<String> = None;
                    for i in 0..REQS {
                        // Alternate cold and warm once a solution exists;
                        // interactive lane for the warm (incremental) jobs.
                        let req = match (&sid, i % 2) {
                            (Some(s), 1) => format!(
                                r#"{{"id":"s{c}-{i}","engine":"kway","k":{K},"tolerance":{TOLERANCE},"seed":{},"priority":"interactive","warm_start":{{"solution_id":"{s}"}},{inst}}}"#,
                                c * 100 + i
                            ),
                            _ => format!(
                                r#"{{"id":"s{c}-{i}","engine":"kway","k":{K},"tolerance":{TOLERANCE},"seed":{},{inst}}}"#,
                                c * 100 + i
                            ),
                        };
                        let start = Instant::now();
                        let resp = client.send(&req);
                        lat.push(start.elapsed());
                        assert_eq!(
                            resp.get("status").unwrap().as_str(),
                            Some("ok"),
                            "soak request failed: {resp:?}"
                        );
                        if let Some(s) = resp.get("solution_id").and_then(|v| v.as_str()) {
                            sid = Some(s.to_string());
                        }
                    }
                    lat
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("conn"))
            .collect()
    });
    assert!(
        t0.elapsed() < Duration::from_secs(60),
        "soak wall clock exploded"
    );

    let mut all: Vec<Duration> = latencies.into_iter().flatten().collect();
    all.sort_unstable();
    assert_eq!(all.len(), CONNS * REQS);
    // Generous absolute bound: p99 of a 48-request soak of ~100-vertex
    // jobs must stay interactive even on a loaded CI machine.
    let p99 = all[(all.len() * 99).div_ceil(100).min(all.len()) - 1];
    assert!(p99 < Duration::from_secs(5), "p99 {p99:?} out of bounds");

    Client::connect(addr).shutdown();
    let snapshot = server.join().expect("server thread");
    assert_eq!(snapshot.jobs_ok, (CONNS * REQS) as u64);
    assert_eq!(snapshot.jobs_failed, 0);
    assert!(snapshot.p99_us >= snapshot.p50_us);
}

/// Strips the only nondeterministic response field (wall-clock micros).
fn normalize(line: &str) -> String {
    let mut out = String::with_capacity(line.len());
    let mut rest = line;
    while let Some(pos) = rest.find("\"micros\":") {
        let (head, tail) = rest.split_at(pos);
        out.push_str(head);
        out.push_str("\"micros\":0");
        let digits_start = "\"micros\":".len();
        let digits_end = tail[digits_start..]
            .find(|c: char| !c.is_ascii_digit())
            .map(|off| digits_start + off)
            .unwrap_or(tail.len());
        rest = &tail[digits_end..];
    }
    out.push_str(rest);
    out
}

#[test]
fn responses_are_byte_identical_across_worker_counts() {
    let inst = instance_json(72);
    let script: Vec<String> = {
        let mut lines = Vec::new();
        for i in 0..4 {
            lines.push(format!(
                r#"{{"id":"c{i}","engine":"kway","k":{K},"tolerance":{TOLERANCE},"seed":{i},{inst}}}"#
            ));
        }
        // Warm continuations, one per cold job, including the parallel
        // refinement regime (threads >= 2) on the last two.
        lines
    };

    let mut transcripts: Vec<Vec<String>> = Vec::new();
    for workers in [1usize, 2, 4, 8] {
        let (addr, server) = spawn_server(ServiceConfig {
            workers,
            ..ServiceConfig::default()
        });
        let mut client = Client::connect(addr);
        let mut transcript = Vec::new();
        let mut sids = Vec::new();
        for line in &script {
            let raw = client.send_raw(line);
            let resp = json::parse(&raw).expect("valid response");
            assert_eq!(resp.get("status").unwrap().as_str(), Some("ok"), "{raw}");
            sids.push(
                resp.get("solution_id")
                    .and_then(|v| v.as_str())
                    .expect("solution id")
                    .to_string(),
            );
            transcript.push(normalize(&raw));
        }
        for (i, sid) in sids.iter().enumerate() {
            let threads = if i >= 2 { 2 } else { 1 };
            let raw = client.send_raw(&format!(
                r#"{{"id":"w{i}","engine":"kway","k":{K},"tolerance":{TOLERANCE},"seed":{i},"threads":{threads},"warm_start":{{"solution_id":"{sid}"}},{inst}}}"#
            ));
            let resp = json::parse(&raw).expect("valid response");
            assert_eq!(resp.get("status").unwrap().as_str(), Some("ok"), "{raw}");
            transcript.push(normalize(&raw));
        }
        client.shutdown();
        server.join().expect("server thread");
        transcripts.push(transcript);
    }

    for other in &transcripts[1..] {
        assert_eq!(
            &transcripts[0], other,
            "responses (including solution ids) must not depend on the worker count"
        );
    }
}
