//! End-to-end coverage of the heterogeneous resource surface: a
//! multi-resource km1 job over the stdio transport and over TCP, plus the
//! structured ingress rejection of capacity vectors that cannot hold the
//! instance.
//!
//! Every accepted response is re-checked from scratch: the parts are
//! replayed against the capacity balance built by the same
//! `PartCapacities::to_balance()` the server uses, per-part per-resource
//! loads are summed by hand, and both reported metrics (`cut`, `km1`) are
//! compared to an independent `CutState` recomputation.

use std::io::Cursor;

use vlsi_hypergraph::{
    io::apply_multi_areas, CutState, HypergraphBuilder, Objective, PartCapacities, PartId,
};
use vlsi_service::json::{self, Json};
use vlsi_service::{ServeOutcome, Service, ServiceConfig};

const N: usize = 9;
const K: usize = 3;

/// Per-vertex resource vectors: dimension 0 is uniform area, dimension 1
/// marks every odd vertex as consuming one unit of a scarcer resource.
fn resource_rows() -> Vec<[u64; 2]> {
    (0..N).map(|i| [1, (i % 2) as u64]).collect()
}

/// Feasible per-part capacities: totals are [9, 4], caps sum to [12, 6].
const FEASIBLE_CAPS: [[u64; 2]; K] = [[4, 2], [4, 2], [4, 2]];

/// The instance on the wire: a 9-vertex chain, vertex 0 fixed to part 0,
/// two resources per vertex.
fn hetero_request(id: &str, caps: &[[u64; 2]]) -> String {
    let vertices = ["1"; N].join(",");
    let nets: Vec<String> = (0..N - 1).map(|i| format!("[{},{}]", i, i + 1)).collect();
    let mut fixed = vec!["-1".to_string(); N];
    fixed[0] = "0".to_string();
    let resources: Vec<String> = resource_rows()
        .iter()
        .map(|r| format!("[{},{}]", r[0], r[1]))
        .collect();
    let caps: Vec<String> = caps
        .iter()
        .map(|c| format!("[{},{}]", c[0], c[1]))
        .collect();
    format!(
        r#"{{"id":"{id}","engine":"kway","k":{K},"objective":"km1","seed":3,"hypergraph":{{"vertices":[{vertices}],"nets":[{}]}},"resources":[{}],"part_capacities":[{}],"fixed":[{}]}}"#,
        nets.join(","),
        resources.join(","),
        caps.join(","),
        fixed.join(",")
    )
}

/// Replays a response against the instance: legality under the capacity
/// balance, fixity, and both reported metrics.
fn assert_hetero_response_legal(resp: &Json) {
    let mut b = HypergraphBuilder::new();
    let v: Vec<_> = (0..N).map(|_| b.add_vertex(1)).collect();
    for w in v.windows(2) {
        b.add_net(1, [w[0], w[1]]).unwrap();
    }
    let flat: Vec<u64> = resource_rows().iter().flatten().copied().collect();
    let hg = apply_multi_areas(&b.build().unwrap(), 2, &flat).unwrap();

    let parts: Vec<PartId> = resp
        .get("parts")
        .and_then(|p| p.as_arr())
        .expect("ok response has parts")
        .iter()
        .map(|p| PartId::from_index(p.as_u64().expect("part id") as usize))
        .collect();
    assert_eq!(parts.len(), N);
    assert_eq!(parts[0], PartId::from_index(0), "fixed vertex respected");

    // Hand-summed per-part per-resource loads against the capacity rows.
    let rows = resource_rows();
    let mut loads = [[0u64; 2]; K];
    for (i, p) in parts.iter().enumerate() {
        assert!(p.index() < K, "part id in range");
        for (r, &w) in rows[i].iter().enumerate() {
            loads[p.index()][r] += w;
        }
    }
    for (p, load) in loads.iter().enumerate() {
        for r in 0..2 {
            assert!(
                load[r] <= FEASIBLE_CAPS[p][r],
                "part {p} resource {r}: load {} exceeds capacity {}",
                load[r],
                FEASIBLE_CAPS[p][r]
            );
        }
    }
    // The same constraint the server validates under accepts the answer.
    let caps =
        PartCapacities::explicit(K, 2, FEASIBLE_CAPS.iter().flatten().copied().collect()).unwrap();
    let balance = caps.to_balance();
    for (p, load) in loads.iter().enumerate() {
        for (r, &l) in load.iter().enumerate() {
            assert!(l <= balance.max(PartId::from_index(p), r));
        }
    }

    // Both metrics are reported and match an independent recomputation.
    let cs = CutState::new(&hg, K, &parts);
    let cut = resp.get("cut").and_then(|c| c.as_u64()).expect("cut");
    let km1 = resp.get("km1").and_then(|c| c.as_u64()).expect("km1");
    assert_eq!(cut, cs.value(Objective::Cut), "reported cut");
    assert_eq!(km1, cs.value(Objective::KMinus1), "reported km1");
    assert!(km1 >= cut, "connectivity dominates cut at any k");
}

#[test]
fn stdio_multi_resource_km1_job_round_trips() {
    let service = Service::start(ServiceConfig {
        workers: 1,
        ..ServiceConfig::default()
    })
    .expect("service starts");

    let input = format!(
        "{}\n{}\n",
        hetero_request("h1", &FEASIBLE_CAPS),
        // Same content again: the heterogeneous job is cacheable too.
        hetero_request("h2", &FEASIBLE_CAPS),
    );
    let mut out = Vec::new();
    let outcome = service
        .serve(Cursor::new(input), &mut out)
        .expect("session runs");
    assert_eq!(outcome, ServeOutcome::Eof);
    let snapshot = service.shutdown();

    let text = String::from_utf8(out).expect("utf8");
    let responses: Vec<Json> = text
        .lines()
        .map(|l| json::parse(l).expect("valid JSON"))
        .collect();
    assert_eq!(responses.len(), 2);
    let by_id = |id: &str| {
        responses
            .iter()
            .find(|r| r.get("id").and_then(|v| v.as_str()) == Some(id))
            .unwrap_or_else(|| panic!("no response for {id}"))
    };

    let h1 = by_id("h1");
    assert_eq!(h1.get("status").unwrap().as_str(), Some("ok"));
    assert_eq!(h1.get("cache_hit").unwrap().as_bool(), Some(false));
    assert_hetero_response_legal(h1);

    let h2 = by_id("h2");
    assert_eq!(h2.get("status").unwrap().as_str(), Some("ok"));
    assert_eq!(
        h2.get("cache_hit").unwrap().as_bool(),
        Some(true),
        "identical heterogeneous content is answered from the cache"
    );
    assert_eq!(h2.get("parts"), h1.get("parts"));
    assert_hetero_response_legal(h2);

    assert_eq!(snapshot.jobs_ok, 2);
    assert_eq!(snapshot.jobs_failed, 0);
}

#[test]
fn infeasible_capacity_vectors_are_refused_at_ingress() {
    let service = Service::start(ServiceConfig {
        workers: 1,
        ..ServiceConfig::default()
    })
    .expect("service starts");

    // Totals are [9, 4]; these caps sum to [6, 3] — resource 0 alone
    // already cannot fit.
    let infeasible = [[2u64, 1], [2, 1], [2, 1]];
    let input = format!("{}\n", hetero_request("bad", &infeasible));
    let mut out = Vec::new();
    service
        .serve(Cursor::new(input), &mut out)
        .expect("session runs");
    let snapshot = service.shutdown();

    let text = String::from_utf8(out).expect("utf8");
    let resp = json::parse(text.lines().next().expect("one response")).expect("valid JSON");
    assert_eq!(resp.get("status").unwrap().as_str(), Some("error"));
    assert_eq!(
        resp.get("code").unwrap().as_str(),
        Some("infeasible_capacities"),
        "structured admission rejection: {text}"
    );
    assert_eq!(resp.get("id").unwrap().as_str(), Some("bad"));
    // Refused before reaching a worker: no job ran at all.
    assert_eq!(snapshot.jobs_ok + snapshot.jobs_failed, 0);
    assert_eq!(snapshot.protocol_errors, 1);
}

#[test]
fn tcp_multi_resource_km1_job_round_trips() {
    use std::io::{BufRead, BufReader, Write};
    use std::net::{TcpListener, TcpStream};

    let probe = TcpListener::bind("127.0.0.1:0").expect("bind probe");
    let addr = probe.local_addr().expect("addr");
    drop(probe);

    let server = std::thread::spawn(move || {
        vlsi_service::serve_tcp(
            ServiceConfig {
                workers: 1,
                ..ServiceConfig::default()
            },
            addr,
        )
        .expect("serve_tcp runs")
    });

    let mut stream = None;
    for _ in 0..100 {
        match TcpStream::connect(addr) {
            Ok(s) => {
                stream = Some(s);
                break;
            }
            Err(_) => std::thread::sleep(std::time::Duration::from_millis(10)),
        }
    }
    let mut stream = stream.expect("connect to service");
    writeln!(stream, "{}", hetero_request("t1", &FEASIBLE_CAPS)).expect("send job");
    stream
        .write_all(b"{\"op\":\"shutdown\"}\n")
        .expect("send shutdown");

    let reader = BufReader::new(stream.try_clone().expect("clone"));
    let responses: Vec<Json> = reader
        .lines()
        .map(|l| json::parse(l.expect("read response").trim()).expect("valid response"))
        .collect();
    let resp = responses
        .iter()
        .find(|r| r.get("id").and_then(|v| v.as_str()) == Some("t1"))
        .expect("job response present");
    assert_eq!(resp.get("status").unwrap().as_str(), Some("ok"));
    assert_hetero_response_legal(resp);

    let snapshot = server.join().expect("server thread");
    assert_eq!(snapshot.jobs_ok, 1);
}
