//! Admission-control and warm-start edge cases, end to end.
//!
//! Covers the refusal paths the scale-out issue calls out: a queue
//! pinned at its high-water mark (every job shed with `overloaded`), a
//! token bucket exhausted mid-batch (`rate_limited` for the overflow
//! request only), and a warm-start request whose solution id has been
//! evicted (must fall back to a cold run flagged `"warm":"miss"`, never
//! an error). The high-water path is exercised over both transports —
//! the stdio reader and the TCP epoll loop shed through the same
//! [`Service::admit`] gate.

use std::io::{BufRead, BufReader, Cursor, Write};
use std::net::{TcpListener, TcpStream};
use std::time::Duration;

use vlsi_service::json::{self, Json};
use vlsi_service::{AdmissionConfig, Service, ServiceConfig};

fn tiny_instance(id: &str, seed: u64) -> String {
    format!(
        r#"{{"id":"{id}","engine":"fm","seed":{seed},"hypergraph":{{"vertices":[1,1,1,1],"nets":[[0,1],[1,2],[2,3]]}},"fixed":[0,-1,-1,1]}}"#
    )
}

/// Runs a scripted stdio session and returns the parsed response lines.
fn stdio_session(config: ServiceConfig, requests: &[String]) -> (Vec<Json>, Service) {
    let service = Service::start(config).expect("service starts");
    let input = requests.join("\n") + "\n";
    let mut out = Vec::new();
    service
        .serve(Cursor::new(input), &mut out)
        .expect("session runs");
    let text = String::from_utf8(out).expect("utf8");
    let responses = text
        .lines()
        .map(|l| json::parse(l).expect("valid JSON response"))
        .collect();
    (responses, service)
}

fn code_of(resp: &Json) -> Option<&str> {
    resp.get("code").and_then(|c| c.as_str())
}

#[test]
fn queue_at_high_water_sheds_every_job_as_overloaded() {
    let (responses, service) = stdio_session(
        ServiceConfig {
            workers: 1,
            admission: AdmissionConfig {
                high_water: 0, // the queue is always "at" the mark
                ..AdmissionConfig::default()
            },
            ..ServiceConfig::default()
        },
        &[tiny_instance("a", 1), tiny_instance("b", 2)],
    );
    assert_eq!(responses.len(), 2);
    for resp in &responses {
        assert_eq!(resp.get("status").unwrap().as_str(), Some("error"));
        assert_eq!(code_of(resp), Some("overloaded"));
    }
    let snapshot = service.shutdown();
    assert_eq!(snapshot.jobs_ok, 0, "nothing was admitted");
    assert_eq!(
        snapshot.engine.sheds, 2,
        "every refusal is counted as a shed"
    );
}

#[test]
fn token_bucket_exhaustion_limits_a_burst_mid_batch() {
    // Effectively no refill during the test: only the burst is spendable.
    let (responses, service) = stdio_session(
        ServiceConfig {
            workers: 1,
            admission: AdmissionConfig {
                rate_per_sec: 0.000_001,
                burst: 2,
                ..AdmissionConfig::default()
            },
            ..ServiceConfig::default()
        },
        &[
            tiny_instance("a", 1),
            tiny_instance("b", 2),
            tiny_instance("c", 3),
            tiny_instance("d", 4),
        ],
    );
    assert_eq!(responses.len(), 4);
    let by_id = |id: &str| {
        responses
            .iter()
            .find(|r| r.get("id").and_then(|v| v.as_str()) == Some(id))
            .unwrap_or_else(|| panic!("no response for {id}"))
    };
    for id in ["a", "b"] {
        assert_eq!(
            by_id(id).get("status").unwrap().as_str(),
            Some("ok"),
            "the burst covers the first two jobs"
        );
    }
    for id in ["c", "d"] {
        assert_eq!(code_of(by_id(id)), Some("rate_limited"), "job {id}");
    }
    let snapshot = service.shutdown();
    assert_eq!(snapshot.jobs_ok, 2);
    assert_eq!(snapshot.engine.sheds, 2);
}

#[test]
fn oversized_instance_is_refused_with_too_large() {
    // The tiny instance carries 6 pins; cap admission at 5. The refusal
    // must not spend a rate token or count as a worker failure.
    let (responses, service) = stdio_session(
        ServiceConfig {
            workers: 1,
            admission: AdmissionConfig {
                max_pins: 5,
                ..AdmissionConfig::default()
            },
            ..ServiceConfig::default()
        },
        &[tiny_instance("big", 1)],
    );
    assert_eq!(responses.len(), 1);
    assert_eq!(responses[0].get("status").unwrap().as_str(), Some("error"));
    assert_eq!(code_of(&responses[0]), Some("too_large"));
    let message = responses[0]
        .get("message")
        .and_then(|m| m.as_str())
        .expect("message");
    assert!(
        message.contains("6 pins") && message.contains('5'),
        "message names both sides of the limit: {message}"
    );
    let snapshot = service.shutdown();
    assert_eq!(snapshot.jobs_ok, 0);
    assert_eq!(snapshot.jobs_failed, 0, "refusal is a shed, not a failure");
    assert_eq!(snapshot.engine.sheds, 1);
}

#[test]
fn max_pins_admits_at_the_limit_and_refuses_above_it() {
    // Exactly at the limit (6 pins, cap 6): admitted and solved.
    let (responses, service) = stdio_session(
        ServiceConfig {
            workers: 1,
            admission: AdmissionConfig {
                max_pins: 6,
                ..AdmissionConfig::default()
            },
            ..ServiceConfig::default()
        },
        &[tiny_instance("fits", 1)],
    );
    assert_eq!(responses[0].get("status").unwrap().as_str(), Some("ok"));
    let snapshot = service.shutdown();
    assert_eq!(snapshot.jobs_ok, 1);
    assert_eq!(snapshot.engine.sheds, 0);
}

#[test]
fn evicted_warm_start_seed_falls_back_to_cold_with_a_miss_note() {
    // Capacity 1: the second solve evicts the first solution.
    let service = Service::start(ServiceConfig {
        workers: 1,
        cache_capacity: 1,
        ..ServiceConfig::default()
    })
    .expect("service starts");

    let run = |service: &Service, request: &str| -> Json {
        let mut out = Vec::new();
        service
            .serve(Cursor::new(format!("{request}\n")), &mut out)
            .expect("session runs");
        json::parse(String::from_utf8(out).unwrap().trim()).expect("valid JSON")
    };

    let first = run(&service, &tiny_instance("a", 1));
    assert_eq!(first.get("status").unwrap().as_str(), Some("ok"));
    let sid = first
        .get("solution_id")
        .and_then(|v| v.as_str())
        .expect("solution id")
        .to_string();

    // Evict it, then warm-start from the now-gone id.
    let second = run(&service, &tiny_instance("b", 2));
    assert_eq!(second.get("status").unwrap().as_str(), Some("ok"));
    let warm_req = format!(
        r#"{{"id":"w","engine":"fm","seed":1,"warm_start":{{"solution_id":"{sid}"}},"hypergraph":{{"vertices":[1,1,1,1],"nets":[[0,1],[1,2],[2,3]]}},"fixed":[0,-1,-1,1]}}"#
    );
    let warm = run(&service, &warm_req);
    assert_eq!(
        warm.get("status").unwrap().as_str(),
        Some("ok"),
        "an evicted seed is not an error: {warm:?}"
    );
    assert_eq!(
        warm.get("warm").unwrap().as_str(),
        Some("miss"),
        "the cold fallback is flagged"
    );
    assert_eq!(warm.get("cache_hit").unwrap().as_bool(), Some(false));

    // An id that never existed behaves the same.
    let bogus = run(
        &service,
        r#"{"id":"x","engine":"fm","seed":9,"warm_start":{"solution_id":"s0000000000000000"},"hypergraph":{"vertices":[1,1,1,1],"nets":[[0,1],[1,2],[2,3]]},"fixed":[0,-1,-1,1]}"#,
    );
    assert_eq!(bogus.get("status").unwrap().as_str(), Some("ok"));
    assert_eq!(bogus.get("warm").unwrap().as_str(), Some("miss"));

    let snapshot = service.shutdown();
    assert_eq!(snapshot.jobs_ok, 4);
    assert_eq!(snapshot.jobs_failed, 0);
    assert_eq!(
        snapshot.engine.warm_starts, 0,
        "miss fallbacks run cold, not warm"
    );
}

#[test]
fn tcp_event_loop_sheds_at_the_high_water_mark() {
    let probe = TcpListener::bind("127.0.0.1:0").expect("bind probe");
    let addr = probe.local_addr().expect("addr");
    drop(probe);
    let server = std::thread::spawn(move || {
        vlsi_service::serve_tcp(
            ServiceConfig {
                workers: 1,
                admission: AdmissionConfig {
                    high_water: 0,
                    ..AdmissionConfig::default()
                },
                ..ServiceConfig::default()
            },
            addr,
        )
        .expect("serve_tcp runs")
    });

    let mut stream = None;
    for _ in 0..200 {
        match TcpStream::connect(addr) {
            Ok(s) => {
                stream = Some(s);
                break;
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
    let mut stream = stream.expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));

    writeln!(stream, "{}", tiny_instance("t", 7)).expect("send");
    let mut line = String::new();
    reader.read_line(&mut line).expect("read");
    let resp = json::parse(line.trim()).expect("valid JSON");
    assert_eq!(code_of(&resp), Some("overloaded"), "{line}");

    writeln!(stream, r#"{{"op":"shutdown"}}"#).expect("send shutdown");
    let snapshot = server.join().expect("server thread");
    assert_eq!(snapshot.jobs_ok, 0);
    assert_eq!(snapshot.engine.sheds, 1);
}
