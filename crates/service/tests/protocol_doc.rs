//! Keeps `docs/PROTOCOL.md` and the protocol implementation in lockstep.
//!
//! The doc promises to be the *complete* wire reference; these tests make
//! that promise mechanical: the error-code table must list exactly
//! [`vlsi_service::ERROR_CODES`] in the same order, every request and
//! response field the parser knows must have a row in the corresponding
//! doc table, and both control ops must be documented. Rename a code or
//! add a field without touching the doc and this file fails.

use vlsi_service::ERROR_CODES;

const PROTOCOL_MD: &str = include_str!("../../../docs/PROTOCOL.md");

/// Returns the body of the `## heading` section (up to the next `## `).
fn section<'a>(doc: &'a str, heading: &str) -> &'a str {
    let needle = format!("\n## {heading}\n");
    let start = doc
        .find(&needle)
        .unwrap_or_else(|| panic!("PROTOCOL.md has no `## {heading}` section"))
        + needle.len();
    let rest = &doc[start..];
    match rest.find("\n## ") {
        Some(end) => &rest[..end],
        None => rest,
    }
}

/// Extracts the first backtick-quoted name of each `| `name` | ...` table row.
fn table_row_names(body: &str) -> Vec<String> {
    body.lines()
        .filter_map(|line| {
            let line = line.trim();
            let rest = line.strip_prefix("| `")?;
            let end = rest.find('`')?;
            Some(rest[..end].to_string())
        })
        .collect()
}

#[test]
fn error_code_table_matches_error_codes_in_order() {
    let documented = table_row_names(section(PROTOCOL_MD, "Error codes"));
    let expected: Vec<String> = ERROR_CODES.iter().map(|c| c.to_string()).collect();
    assert_eq!(
        documented, expected,
        "docs/PROTOCOL.md `## Error codes` table must list exactly \
         vlsi_service::ERROR_CODES, in the same order"
    );
}

#[test]
fn every_error_code_is_explained_not_just_listed() {
    let body = section(PROTOCOL_MD, "Error codes");
    for line in body.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("| `") {
            let cells: Vec<&str> = rest.split('|').collect();
            assert!(
                cells.len() >= 3 && cells[2].trim().len() >= 10,
                "error-code row needs a Retryable and a Cause cell: {line}"
            );
        }
    }
}

#[test]
fn every_job_request_field_has_a_doc_row() {
    // The full set of keys `parse_request` reads off a job object. Adding
    // a request field means adding it here AND to the PROTOCOL.md table.
    let request_fields = [
        "id",
        "engine",
        "k",
        "tolerance",
        "starts",
        "threads",
        "seed",
        "vcycles",
        "ensemble",
        "deadline_ms",
        "priority",
        "warm_start",
        "objective",
        "hypergraph",
        "resources",
        "part_capacities",
        "fixed",
    ];
    let documented = table_row_names(section(PROTOCOL_MD, "Message types"));
    for field in request_fields {
        assert!(
            documented.iter().any(|d| d == field),
            "job request field `{field}` has no row in the PROTOCOL.md table"
        );
    }
    // The path-based alternative is described in a footnote, not the table.
    let body = section(PROTOCOL_MD, "Message types");
    for key in [
        "hypergraph_path",
        "fixed_path",
        "removed_nets",
        "added_nets",
        "moved_fixed",
    ] {
        assert!(
            body.contains(key),
            "request key `{key}` is undocumented in `## Message types`"
        );
    }
}

#[test]
fn every_response_field_has_a_doc_row() {
    let response_fields = [
        "id",
        "status",
        "cut",
        "km1",
        "parts",
        "cache_hit",
        "deadline_expired",
        "starts_run",
        "micros",
        "solution_id",
        "warm",
    ];
    let documented = table_row_names(section(PROTOCOL_MD, "Responses"));
    for field in response_fields {
        assert!(
            documented.iter().any(|d| d == field),
            "response field `{field}` has no row in the PROTOCOL.md table"
        );
    }
    // Error responses carry `code` and `message` (shown in the example).
    let body = section(PROTOCOL_MD, "Responses");
    assert!(body.contains("`code`") && body.contains("`message`"));
}

#[test]
fn both_control_ops_are_documented() {
    let body = section(PROTOCOL_MD, "Message types");
    for op in ["metrics", "shutdown"] {
        assert!(
            body.contains(&format!(r#"{{"op":"{op}"}}"#)),
            "control op `{op}` is undocumented"
        );
    }
}
