//! The event vocabulary and its deterministic JSONL encoding.

use std::fmt::Write as _;

/// Fixity of a vertex that moved — only vertices allowed on both sides
/// ever move, so the interesting distinction is plain-free versus
/// "or"-fixed (`FixedAny` over a set containing both sides).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MoverFixity {
    /// The vertex carries no fixity constraint.
    Free,
    /// The vertex is `FixedAny` over a set that permits both sides.
    FixedAny,
}

impl MoverFixity {
    /// The JSONL string form (`"free"` / `"fixed_any"`).
    pub fn as_str(self) -> &'static str {
        match self {
            MoverFixity::Free => "free",
            MoverFixity::FixedAny => "fixed_any",
        }
    }
}

/// The engine loop at which a cooperative-cancellation check observed an
/// expired cancel token (`vlsi_partition::CancelToken`) — producers name
/// the loop they were about to enter (or continue) when they stopped
/// early.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelStage {
    /// An FM run skipped its remaining 2-way passes.
    FmPass,
    /// A Kernighan–Lin run skipped its remaining passes.
    KlPass,
    /// A k-way refinement skipped its remaining passes.
    KwayPass,
    /// A simulated-annealing run skipped its remaining sweeps.
    Sweep,
    /// A multilevel driver short-circuited its remaining work (coarse
    /// starts, V-cycles, or coarsening levels).
    Level,
    /// A multistart driver skipped its remaining starts.
    Multistart,
}

impl CancelStage {
    /// The JSONL string form.
    pub fn as_str(self) -> &'static str {
        match self {
            CancelStage::FmPass => "fm_pass",
            CancelStage::KlPass => "kl_pass",
            CancelStage::KwayPass => "kway_pass",
            CancelStage::Sweep => "sweep",
            CancelStage::Level => "level",
            CancelStage::Multistart => "multistart",
        }
    }
}

/// One structured trace event.
///
/// Events carry plain integers only, so this crate stays decoupled from
/// the hypergraph types. Producers (the FM engine, the multilevel driver,
/// the multistart driver) document which events they emit and when; see
/// `docs/TRACING.md` for the full contract and the JSONL schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// A coarsening level was built (multilevel engine; `level` is
    /// 1-based, the original graph being level 0).
    LevelStart {
        /// Coarsening level index (1 = first coarse graph).
        level: u32,
        /// Vertex count of the level's hypergraph.
        vertices: u64,
        /// Net count of the level's hypergraph.
        nets: u64,
    },
    /// Refinement at one level finished (multilevel engine; emitted from
    /// the coarsest level down to level 0, the original graph).
    LevelEnd {
        /// Level index (0 = original graph).
        level: u32,
        /// Vertex count of the level's hypergraph.
        vertices: u64,
        /// Net count of the level's hypergraph.
        nets: u64,
        /// Cut after refinement at this level.
        cut: u64,
    },
    /// An FM pass began.
    PassStart {
        /// 0-based pass index within the FM run.
        pass: u32,
        /// Cut at the start of the pass.
        cut: u64,
        /// Number of movable vertices in the run.
        movable: u64,
        /// Move limit in force (equals `movable` when unlimited).
        move_limit: u64,
    },
    /// One move was applied inside a pass (it may later be rolled back;
    /// compare against the enclosing [`Event::PassEnd`]'s `best_prefix`).
    MoveCommitted {
        /// Pass index the move belongs to.
        pass: u32,
        /// Index of the moved vertex.
        vertex: u64,
        /// The gain the move realised (positive = cut decreased).
        gain: i64,
        /// Fixity of the moved vertex.
        fixity: MoverFixity,
        /// Cut value after the move.
        cut: u64,
    },
    /// An FM pass ended and its best prefix was restored.
    PassEnd {
        /// 0-based pass index within the FM run.
        pass: u32,
        /// Moves applied before the pass ended.
        moves: u64,
        /// Length of the kept (best) prefix; `moves - best_prefix` moves
        /// were rolled back.
        best_prefix: u64,
        /// Cut at the start of the pass.
        cut_before: u64,
        /// Cut after restoring the best prefix.
        cut_after: u64,
        /// Gain-bucket operations (inserts, removals, key adjustments)
        /// performed during the pass.
        bucket_ops: u64,
    },
    /// One multistart start completed.
    StartFinished {
        /// 0-based start index.
        start: u32,
        /// Cut achieved by the start.
        cut: u64,
        /// Wall-clock time of the start, in microseconds.
        micros: u64,
    },
    /// A k-way refinement pass began (k-way engines; `value` is the
    /// objective being refined — cut, k−1 or SOED — not necessarily the
    /// plain cut).
    KwayPassStart {
        /// 0-based pass index within the k-way refinement.
        pass: u32,
        /// Objective value at the start of the pass.
        value: u64,
        /// Number of movable vertices in the pass.
        movable: u64,
    },
    /// One k-way move was applied inside a pass (it may later be rolled
    /// back; compare against the enclosing [`Event::KwayPassEnd`]'s
    /// `best_prefix`). Unlike [`Event::MoveCommitted`] this carries the
    /// source and destination block indices.
    KwayMove {
        /// Pass index the move belongs to.
        pass: u32,
        /// Index of the moved vertex.
        vertex: u64,
        /// Source block index.
        from: u32,
        /// Destination block index.
        to: u32,
        /// The gain the move realised (positive = objective decreased).
        gain: i64,
        /// Objective value after the move.
        value: u64,
    },
    /// A k-way refinement pass ended and its best prefix was restored.
    KwayPassEnd {
        /// 0-based pass index within the k-way refinement.
        pass: u32,
        /// Moves applied before the pass ended.
        moves: u64,
        /// Length of the kept (best) prefix.
        best_prefix: u64,
        /// Objective value at the start of the pass.
        value_before: u64,
        /// Objective value after restoring the best prefix.
        value_after: u64,
        /// Gain-container operations (inserts, removals, key adjustments)
        /// performed during the pass.
        bucket_ops: u64,
    },
    /// A synchronous round of the parallel k-way refinement engine began:
    /// proposals were collected from a frozen gain snapshot and merged into
    /// the deterministic apply order. Emitted once per round, inside a
    /// `KwayPassStart`/`KwayPassEnd` bracket.
    RoundStart {
        /// 0-based pass index the round belongs to.
        pass: u32,
        /// 0-based round index within the pass.
        round: u32,
        /// Objective value at the start of the round.
        value: u64,
        /// Number of merged move proposals entering the apply stage.
        proposed: u64,
    },
    /// A synchronous round of the parallel k-way refinement engine finished
    /// its apply stage: proposals were re-validated in merge order and the
    /// surviving moves applied. `applied <= proposed` of the matching
    /// [`Event::RoundStart`]; a round with `applied = 0` ends the pass.
    RoundApplied {
        /// 0-based pass index the round belongs to.
        pass: u32,
        /// 0-based round index within the pass.
        round: u32,
        /// Moves that survived re-validation and were applied.
        applied: u64,
        /// Objective value after the round's moves.
        value: u64,
    },
    /// A cooperative-cancellation check observed an expired token and the
    /// enclosing engine stopped early, returning its best-so-far solution.
    /// Emitted at most once per engine loop that stops.
    Cancelled {
        /// The engine loop that observed the cancellation.
        stage: CancelStage,
        /// Best-so-far objective value at the moment the loop stopped
        /// (the cut for 2-way engines, the refined objective for k-way).
        value: u64,
    },
    /// One simulated-annealing sweep completed.
    SweepFinished {
        /// 0-based sweep index.
        sweep: u32,
        /// Proposals accepted during the sweep.
        accepted: u64,
        /// Cut at the end of the sweep.
        cut: u64,
        /// Best balanced cut seen so far.
        best_cut: u64,
    },
    /// A refinement run was seeded from an existing partition instead of
    /// partitioning from scratch (the service's warm-start path). Emitted
    /// once per warm run, after the seed has been re-legalized against
    /// fixity and balance and before the first refinement pass.
    WarmStart {
        /// Vertices that kept their seed assignment through legalization.
        reused: u64,
        /// Vertices relocated while re-legalizing fixity and balance.
        relocated: u64,
        /// Objective value of the legalized seed, before refinement.
        value: u64,
    },
    /// The serving layer refused a job at admission: the queue crossed its
    /// load-shedding high-water mark, or the client exhausted its
    /// fairness token bucket.
    Shed {
        /// Job-queue depth observed when the decision was made.
        queue_depth: u64,
    },
    /// One V-cycle of the iterated-multilevel quality loop began: the
    /// hypergraph is about to be re-coarsened respecting the current best
    /// partition (matching only within parts, fixed vertices pinned) and
    /// re-refined down the new hierarchy.
    VCycleStart {
        /// 0-based V-cycle index within the quality loop.
        cycle: u32,
        /// Objective value of the best solution entering the cycle.
        value: u64,
    },
    /// One V-cycle of the iterated-multilevel quality loop finished.
    /// `value` is never larger than the matching [`Event::VCycleStart`]'s
    /// (same-part coarsening preserves the objective exactly and the
    /// refiners never accept a worse solution).
    VCycleEnd {
        /// 0-based V-cycle index within the quality loop.
        cycle: u32,
        /// Objective value of the best solution leaving the cycle.
        value: u64,
    },
    /// Ensemble recombination began: agreement clusters (vertices
    /// co-assigned across the retained top solutions, split under the
    /// per-resource cluster-weight caps) are force-coarsened and a final
    /// constrained solve runs seeded from the best start.
    RecombineStart {
        /// Number of retained start solutions the agreement is over.
        solutions: u32,
        /// Number of agreement clusters after cap splitting.
        clusters: u64,
        /// Objective value of the best retained solution.
        value: u64,
    },
}

impl Event {
    /// The event's type tag as it appears in the JSONL `ev` field.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::LevelStart { .. } => "level_start",
            Event::LevelEnd { .. } => "level_end",
            Event::PassStart { .. } => "pass_start",
            Event::MoveCommitted { .. } => "move",
            Event::PassEnd { .. } => "pass_end",
            Event::StartFinished { .. } => "start",
            Event::KwayPassStart { .. } => "kway_pass_start",
            Event::KwayMove { .. } => "kway_move",
            Event::KwayPassEnd { .. } => "kway_pass_end",
            Event::RoundStart { .. } => "round_start",
            Event::RoundApplied { .. } => "round_applied",
            Event::Cancelled { .. } => "cancelled",
            Event::SweepFinished { .. } => "sweep",
            Event::WarmStart { .. } => "warm_start",
            Event::Shed { .. } => "shed",
            Event::VCycleStart { .. } => "vcycle_start",
            Event::VCycleEnd { .. } => "vcycle_end",
            Event::RecombineStart { .. } => "recombine_start",
        }
    }

    /// Renders the event as one JSON object with deterministic field
    /// order (the order the fields are declared in). No trailing newline.
    ///
    /// ```
    /// use vlsi_trace::Event;
    /// let e = Event::PassStart { pass: 2, cut: 41, movable: 100, move_limit: 25 };
    /// assert_eq!(
    ///     e.to_jsonl(),
    ///     r#"{"ev":"pass_start","pass":2,"cut":41,"movable":100,"move_limit":25}"#
    /// );
    /// ```
    pub fn to_jsonl(&self) -> String {
        let mut s = String::with_capacity(96);
        let _ = write!(s, "{{\"ev\":\"{}\"", self.kind());
        match *self {
            Event::LevelStart {
                level,
                vertices,
                nets,
            } => {
                let _ = write!(
                    s,
                    ",\"level\":{level},\"vertices\":{vertices},\"nets\":{nets}"
                );
            }
            Event::LevelEnd {
                level,
                vertices,
                nets,
                cut,
            } => {
                let _ = write!(
                    s,
                    ",\"level\":{level},\"vertices\":{vertices},\"nets\":{nets},\"cut\":{cut}"
                );
            }
            Event::PassStart {
                pass,
                cut,
                movable,
                move_limit,
            } => {
                let _ = write!(
                    s,
                    ",\"pass\":{pass},\"cut\":{cut},\"movable\":{movable},\"move_limit\":{move_limit}"
                );
            }
            Event::MoveCommitted {
                pass,
                vertex,
                gain,
                fixity,
                cut,
            } => {
                let _ = write!(
                    s,
                    ",\"pass\":{pass},\"vertex\":{vertex},\"gain\":{gain},\"fixity\":\"{}\",\"cut\":{cut}",
                    fixity.as_str()
                );
            }
            Event::PassEnd {
                pass,
                moves,
                best_prefix,
                cut_before,
                cut_after,
                bucket_ops,
            } => {
                let _ = write!(
                    s,
                    ",\"pass\":{pass},\"moves\":{moves},\"best_prefix\":{best_prefix},\"cut_before\":{cut_before},\"cut_after\":{cut_after},\"bucket_ops\":{bucket_ops}"
                );
            }
            Event::StartFinished { start, cut, micros } => {
                let _ = write!(s, ",\"start\":{start},\"cut\":{cut},\"micros\":{micros}");
            }
            Event::KwayPassStart {
                pass,
                value,
                movable,
            } => {
                let _ = write!(
                    s,
                    ",\"pass\":{pass},\"value\":{value},\"movable\":{movable}"
                );
            }
            Event::KwayMove {
                pass,
                vertex,
                from,
                to,
                gain,
                value,
            } => {
                let _ = write!(
                    s,
                    ",\"pass\":{pass},\"vertex\":{vertex},\"from\":{from},\"to\":{to},\"gain\":{gain},\"value\":{value}"
                );
            }
            Event::KwayPassEnd {
                pass,
                moves,
                best_prefix,
                value_before,
                value_after,
                bucket_ops,
            } => {
                let _ = write!(
                    s,
                    ",\"pass\":{pass},\"moves\":{moves},\"best_prefix\":{best_prefix},\"value_before\":{value_before},\"value_after\":{value_after},\"bucket_ops\":{bucket_ops}"
                );
            }
            Event::RoundStart {
                pass,
                round,
                value,
                proposed,
            } => {
                let _ = write!(
                    s,
                    ",\"pass\":{pass},\"round\":{round},\"value\":{value},\"proposed\":{proposed}"
                );
            }
            Event::RoundApplied {
                pass,
                round,
                applied,
                value,
            } => {
                let _ = write!(
                    s,
                    ",\"pass\":{pass},\"round\":{round},\"applied\":{applied},\"value\":{value}"
                );
            }
            Event::Cancelled { stage, value } => {
                let _ = write!(s, ",\"stage\":\"{}\",\"value\":{value}", stage.as_str());
            }
            Event::SweepFinished {
                sweep,
                accepted,
                cut,
                best_cut,
            } => {
                let _ = write!(
                    s,
                    ",\"sweep\":{sweep},\"accepted\":{accepted},\"cut\":{cut},\"best_cut\":{best_cut}"
                );
            }
            Event::WarmStart {
                reused,
                relocated,
                value,
            } => {
                let _ = write!(
                    s,
                    ",\"reused\":{reused},\"relocated\":{relocated},\"value\":{value}"
                );
            }
            Event::Shed { queue_depth } => {
                let _ = write!(s, ",\"queue_depth\":{queue_depth}");
            }
            Event::VCycleStart { cycle, value } | Event::VCycleEnd { cycle, value } => {
                let _ = write!(s, ",\"cycle\":{cycle},\"value\":{value}");
            }
            Event::RecombineStart {
                solutions,
                clusters,
                value,
            } => {
                let _ = write!(
                    s,
                    ",\"solutions\":{solutions},\"clusters\":{clusters},\"value\":{value}"
                );
            }
        }
        s.push('}');
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonl_field_order_is_deterministic() {
        let cases = [
            (
                Event::LevelStart {
                    level: 1,
                    vertices: 500,
                    nets: 800,
                },
                r#"{"ev":"level_start","level":1,"vertices":500,"nets":800}"#,
            ),
            (
                Event::LevelEnd {
                    level: 0,
                    vertices: 1000,
                    nets: 1600,
                    cut: 42,
                },
                r#"{"ev":"level_end","level":0,"vertices":1000,"nets":1600,"cut":42}"#,
            ),
            (
                Event::MoveCommitted {
                    pass: 0,
                    vertex: 7,
                    gain: -2,
                    fixity: MoverFixity::FixedAny,
                    cut: 44,
                },
                r#"{"ev":"move","pass":0,"vertex":7,"gain":-2,"fixity":"fixed_any","cut":44}"#,
            ),
            (
                Event::PassEnd {
                    pass: 3,
                    moves: 10,
                    best_prefix: 2,
                    cut_before: 50,
                    cut_after: 44,
                    bucket_ops: 123,
                },
                r#"{"ev":"pass_end","pass":3,"moves":10,"best_prefix":2,"cut_before":50,"cut_after":44,"bucket_ops":123}"#,
            ),
            (
                Event::StartFinished {
                    start: 4,
                    cut: 99,
                    micros: 1500,
                },
                r#"{"ev":"start","start":4,"cut":99,"micros":1500}"#,
            ),
            (
                Event::KwayPassStart {
                    pass: 0,
                    value: 31,
                    movable: 80,
                },
                r#"{"ev":"kway_pass_start","pass":0,"value":31,"movable":80}"#,
            ),
            (
                Event::KwayMove {
                    pass: 0,
                    vertex: 12,
                    from: 3,
                    to: 1,
                    gain: -1,
                    value: 32,
                },
                r#"{"ev":"kway_move","pass":0,"vertex":12,"from":3,"to":1,"gain":-1,"value":32}"#,
            ),
            (
                Event::KwayPassEnd {
                    pass: 0,
                    moves: 9,
                    best_prefix: 4,
                    value_before: 31,
                    value_after: 27,
                    bucket_ops: 61,
                },
                r#"{"ev":"kway_pass_end","pass":0,"moves":9,"best_prefix":4,"value_before":31,"value_after":27,"bucket_ops":61}"#,
            ),
            (
                Event::RoundStart {
                    pass: 1,
                    round: 2,
                    value: 40,
                    proposed: 12,
                },
                r#"{"ev":"round_start","pass":1,"round":2,"value":40,"proposed":12}"#,
            ),
            (
                Event::RoundApplied {
                    pass: 1,
                    round: 2,
                    applied: 7,
                    value: 33,
                },
                r#"{"ev":"round_applied","pass":1,"round":2,"applied":7,"value":33}"#,
            ),
            (
                Event::Cancelled {
                    stage: CancelStage::FmPass,
                    value: 17,
                },
                r#"{"ev":"cancelled","stage":"fm_pass","value":17}"#,
            ),
            (
                Event::SweepFinished {
                    sweep: 7,
                    accepted: 13,
                    cut: 20,
                    best_cut: 18,
                },
                r#"{"ev":"sweep","sweep":7,"accepted":13,"cut":20,"best_cut":18}"#,
            ),
            (
                Event::WarmStart {
                    reused: 190,
                    relocated: 10,
                    value: 37,
                },
                r#"{"ev":"warm_start","reused":190,"relocated":10,"value":37}"#,
            ),
            (
                Event::Shed { queue_depth: 48 },
                r#"{"ev":"shed","queue_depth":48}"#,
            ),
            (
                Event::VCycleStart {
                    cycle: 0,
                    value: 51,
                },
                r#"{"ev":"vcycle_start","cycle":0,"value":51}"#,
            ),
            (
                Event::VCycleEnd {
                    cycle: 0,
                    value: 47,
                },
                r#"{"ev":"vcycle_end","cycle":0,"value":47}"#,
            ),
            (
                Event::RecombineStart {
                    solutions: 4,
                    clusters: 120,
                    value: 47,
                },
                r#"{"ev":"recombine_start","solutions":4,"clusters":120,"value":47}"#,
            ),
        ];
        for (event, expected) in cases {
            assert_eq!(event.to_jsonl(), expected);
        }
    }

    #[test]
    fn kinds_are_distinct() {
        let kinds = [
            Event::LevelStart {
                level: 0,
                vertices: 0,
                nets: 0,
            }
            .kind(),
            Event::LevelEnd {
                level: 0,
                vertices: 0,
                nets: 0,
                cut: 0,
            }
            .kind(),
            Event::PassStart {
                pass: 0,
                cut: 0,
                movable: 0,
                move_limit: 0,
            }
            .kind(),
            Event::MoveCommitted {
                pass: 0,
                vertex: 0,
                gain: 0,
                fixity: MoverFixity::Free,
                cut: 0,
            }
            .kind(),
            Event::PassEnd {
                pass: 0,
                moves: 0,
                best_prefix: 0,
                cut_before: 0,
                cut_after: 0,
                bucket_ops: 0,
            }
            .kind(),
            Event::StartFinished {
                start: 0,
                cut: 0,
                micros: 0,
            }
            .kind(),
            Event::KwayPassStart {
                pass: 0,
                value: 0,
                movable: 0,
            }
            .kind(),
            Event::KwayMove {
                pass: 0,
                vertex: 0,
                from: 0,
                to: 0,
                gain: 0,
                value: 0,
            }
            .kind(),
            Event::KwayPassEnd {
                pass: 0,
                moves: 0,
                best_prefix: 0,
                value_before: 0,
                value_after: 0,
                bucket_ops: 0,
            }
            .kind(),
            Event::RoundStart {
                pass: 0,
                round: 0,
                value: 0,
                proposed: 0,
            }
            .kind(),
            Event::RoundApplied {
                pass: 0,
                round: 0,
                applied: 0,
                value: 0,
            }
            .kind(),
            Event::Cancelled {
                stage: CancelStage::Level,
                value: 0,
            }
            .kind(),
            Event::SweepFinished {
                sweep: 0,
                accepted: 0,
                cut: 0,
                best_cut: 0,
            }
            .kind(),
            Event::WarmStart {
                reused: 0,
                relocated: 0,
                value: 0,
            }
            .kind(),
            Event::Shed { queue_depth: 0 }.kind(),
            Event::VCycleStart { cycle: 0, value: 0 }.kind(),
            Event::VCycleEnd { cycle: 0, value: 0 }.kind(),
            Event::RecombineStart {
                solutions: 0,
                clusters: 0,
                value: 0,
            }
            .kind(),
        ];
        for (i, a) in kinds.iter().enumerate() {
            for b in &kinds[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }
}
