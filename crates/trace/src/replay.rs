//! Folding a recorded event stream back into per-pass summaries.
//!
//! The experiment harness records runs into a [`crate::VecSink`] and then
//! aggregates here — the paper's Table II columns and the within-pass
//! improvement profiles are all derived from [`PassSummary`].

use crate::event::Event;

/// Everything one FM pass contributed to the trace: the pass bracket
/// ([`Event::PassStart`] / [`Event::PassEnd`]) plus the cut trajectory of
/// its applied moves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PassSummary {
    /// 0-based pass index within its FM run.
    pub pass: u32,
    /// Cut at the start of the pass.
    pub cut_before: u64,
    /// Cut after restoring the best prefix.
    pub cut_after: u64,
    /// Moves applied during the pass.
    pub moves: u64,
    /// Length of the kept (best) prefix.
    pub best_prefix: u64,
    /// Movable-vertex count of the run.
    pub movable: u64,
    /// Move limit in force during the pass.
    pub move_limit: u64,
    /// Gain-bucket operations performed during the pass.
    pub bucket_ops: u64,
    /// Cut after each applied move, in move order (before any rollback).
    pub cuts: Vec<u64>,
}

impl PassSummary {
    /// The move index (1-based) at which the minimum cut of the pass was
    /// first reached, as a fraction of the moves made; `None` for an empty
    /// pass, `Some(0.0)` when no move improved on the pass-start cut.
    /// Small values mean improvements concentrate near the beginning of
    /// the pass — the paper's Section III observation.
    pub fn best_position_fraction(&self) -> Option<f64> {
        if self.cuts.is_empty() {
            return None;
        }
        let best = *self.cuts.iter().min().expect("non-empty");
        if best >= self.cut_before {
            return Some(0.0);
        }
        let pos = self
            .cuts
            .iter()
            .position(|&c| c == best)
            .expect("min exists");
        Some((pos + 1) as f64 / self.cuts.len() as f64)
    }

    /// Fraction of the applied moves that survived rollback.
    pub fn kept_fraction(&self) -> Option<f64> {
        if self.moves == 0 {
            None
        } else {
            Some(self.best_prefix as f64 / self.moves as f64)
        }
    }

    /// Whether the pass improved the cut.
    pub fn improved(&self) -> bool {
        self.cut_after < self.cut_before
    }
}

/// Folds an event stream into one [`PassSummary`] per FM pass, in stream
/// order. Pass indices restart at zero for every FM invocation, so a
/// multilevel run yields several index-0 summaries — consumers segment on
/// the index resetting if they need per-invocation grouping.
///
/// Events other than the pass bracket and moves are ignored, so the same
/// stream can carry level and start events too.
///
/// ```
/// use vlsi_trace::replay::pass_summaries;
/// use vlsi_trace::{Event, MoverFixity};
///
/// let events = vec![
///     Event::PassStart { pass: 0, cut: 10, movable: 4, move_limit: 4 },
///     Event::MoveCommitted { pass: 0, vertex: 3, gain: 4, fixity: MoverFixity::Free, cut: 6 },
///     Event::MoveCommitted { pass: 0, vertex: 1, gain: -1, fixity: MoverFixity::Free, cut: 7 },
///     Event::PassEnd { pass: 0, moves: 2, best_prefix: 1, cut_before: 10, cut_after: 6, bucket_ops: 11 },
/// ];
/// let passes = pass_summaries(&events);
/// assert_eq!(passes.len(), 1);
/// assert_eq!(passes[0].cuts, vec![6, 7]);
/// assert_eq!(passes[0].best_position_fraction(), Some(0.5));
/// ```
pub fn pass_summaries(events: &[Event]) -> Vec<PassSummary> {
    let mut out = Vec::new();
    let mut current: Option<PassSummary> = None;
    for event in events {
        match *event {
            Event::PassStart {
                pass,
                cut,
                movable,
                move_limit,
            } => {
                if let Some(open) = current.take() {
                    out.push(open); // unterminated pass (truncated stream)
                }
                current = Some(PassSummary {
                    pass,
                    cut_before: cut,
                    cut_after: cut,
                    moves: 0,
                    best_prefix: 0,
                    movable,
                    move_limit,
                    bucket_ops: 0,
                    cuts: Vec::new(),
                });
            }
            Event::MoveCommitted { cut, .. } => {
                if let Some(open) = current.as_mut() {
                    open.cuts.push(cut);
                }
            }
            Event::PassEnd {
                moves,
                best_prefix,
                cut_before,
                cut_after,
                bucket_ops,
                ..
            } => {
                if let Some(mut open) = current.take() {
                    open.moves = moves;
                    open.best_prefix = best_prefix;
                    open.cut_before = cut_before;
                    open.cut_after = cut_after;
                    open.bucket_ops = bucket_ops;
                    out.push(open);
                }
            }
            // Level, start, k-way, and annealing events can ride the same
            // stream; only the 2-way pass bracket is folded here.
            _ => {}
        }
    }
    if let Some(open) = current.take() {
        out.push(open);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::MoverFixity;

    fn mv(pass: u32, cut: u64) -> Event {
        Event::MoveCommitted {
            pass,
            vertex: 0,
            gain: 0,
            fixity: MoverFixity::Free,
            cut,
        }
    }

    #[test]
    fn folds_multiple_passes() {
        let events = vec![
            Event::PassStart {
                pass: 0,
                cut: 10,
                movable: 4,
                move_limit: 4,
            },
            mv(0, 12),
            mv(0, 8),
            mv(0, 9),
            mv(0, 8),
            Event::PassEnd {
                pass: 0,
                moves: 4,
                best_prefix: 2,
                cut_before: 10,
                cut_after: 8,
                bucket_ops: 20,
            },
            Event::StartFinished {
                start: 0,
                cut: 8,
                micros: 5,
            },
            Event::PassStart {
                pass: 1,
                cut: 8,
                movable: 4,
                move_limit: 1,
            },
            Event::PassEnd {
                pass: 1,
                moves: 0,
                best_prefix: 0,
                cut_before: 8,
                cut_after: 8,
                bucket_ops: 4,
            },
        ];
        let passes = pass_summaries(&events);
        assert_eq!(passes.len(), 2);
        // First minimum (8) is at move 2 of 4.
        assert_eq!(passes[0].best_position_fraction(), Some(0.5));
        assert_eq!(passes[0].kept_fraction(), Some(0.5));
        assert!(passes[0].improved());
        assert_eq!(passes[1].best_position_fraction(), None);
        assert_eq!(passes[1].kept_fraction(), None);
        assert!(!passes[1].improved());
        assert_eq!(passes[1].move_limit, 1);
    }

    #[test]
    fn no_move_beats_start_yields_zero() {
        let events = vec![
            Event::PassStart {
                pass: 0,
                cut: 5,
                movable: 2,
                move_limit: 2,
            },
            mv(0, 7),
            mv(0, 6),
            Event::PassEnd {
                pass: 0,
                moves: 2,
                best_prefix: 0,
                cut_before: 5,
                cut_after: 5,
                bucket_ops: 6,
            },
        ];
        let passes = pass_summaries(&events);
        assert_eq!(passes[0].best_position_fraction(), Some(0.0));
    }

    #[test]
    fn truncated_stream_keeps_open_pass() {
        let events = vec![
            Event::PassStart {
                pass: 0,
                cut: 9,
                movable: 3,
                move_limit: 3,
            },
            mv(0, 8),
        ];
        let passes = pass_summaries(&events);
        assert_eq!(passes.len(), 1);
        assert_eq!(passes[0].cuts, vec![8]);
        assert_eq!(passes[0].moves, 0); // PassEnd never arrived
    }
}
