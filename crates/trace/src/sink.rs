//! Event sinks: null, counting, buffering, and JSONL output.

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::event::Event;

/// A consumer of trace [`Event`]s.
///
/// Engines are generic over `S: Sink` and guard every emission site with
/// `if S::ENABLED { ... }`, so with [`NullSink`] (where `ENABLED` is
/// `false`) the instrumentation — including the construction of the event
/// itself — is compiled out entirely.
///
/// `record` takes `&self`: sinks use interior mutability (atomics or a
/// mutex) so one sink can serve concurrent starts.
pub trait Sink {
    /// Compile-time switch. When `false`, instrumented code skips event
    /// construction and recording entirely; `record` is never called.
    const ENABLED: bool = true;

    /// Records one event.
    fn record(&self, event: &Event);

    /// Flushes any buffered output. The default does nothing.
    fn flush(&self) {}
}

/// The no-op sink: tracing statically disabled, zero overhead.
///
/// This is what the plain (sink-less) engine entry points use. The
/// `trace_overhead` benchmark checks that an FM run through `NullSink`
/// costs the same as the pre-instrumentation engine.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl Sink for NullSink {
    const ENABLED: bool = false;

    #[inline(always)]
    fn record(&self, _event: &Event) {}
}

/// A point-in-time copy of a [`CounterSink`]'s counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Counters {
    /// FM passes executed ([`Event::PassEnd`] count).
    pub passes: u64,
    /// Moves applied inside passes ([`Event::MoveCommitted`] count).
    pub moves_tried: u64,
    /// Moves that survived rollback (sum of `best_prefix` over passes).
    pub moves_committed: u64,
    /// Moves rolled back at pass ends (`moves - best_prefix` summed).
    pub moves_rolled_back: u64,
    /// Gain-bucket operations (inserts, removals, key adjustments).
    pub bucket_ops: u64,
    /// Applied moves that changed the cut value (non-zero gain).
    pub cut_updates: u64,
    /// Coarsening levels built ([`Event::LevelStart`] count).
    pub levels: u64,
    /// Multistart starts finished ([`Event::StartFinished`] count).
    pub starts: u64,
    /// K-way refinement passes executed ([`Event::KwayPassEnd`] count).
    /// Their moves and bucket ops fold into the shared counters above.
    pub kway_passes: u64,
    /// Synchronous parallel-refinement rounds applied
    /// ([`Event::RoundApplied`] count).
    pub rounds: u64,
    /// Simulated-annealing sweeps finished ([`Event::SweepFinished`] count).
    pub sweeps: u64,
    /// Cooperative cancellations observed ([`Event::Cancelled`] count).
    pub cancellations: u64,
    /// Warm-started refinement runs seeded from a cached partition
    /// ([`Event::WarmStart`] count).
    pub warm_starts: u64,
    /// Jobs refused at admission — queue high-water load-shedding or
    /// token-bucket exhaustion ([`Event::Shed`] count).
    pub sheds: u64,
    /// Iterated-multilevel V-cycles completed ([`Event::VCycleEnd`] count).
    pub vcycles: u64,
    /// Ensemble recombinations attempted ([`Event::RecombineStart`] count).
    pub recombinations: u64,
}

impl std::fmt::Display for Counters {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "passes {} (+{} k-way), moves {} tried / {} committed / {} rolled back, \
             bucket ops {}, cut updates {}, levels {}, starts {}, rounds {}, sweeps {}, \
             cancellations {}, warm starts {}, sheds {}, vcycles {}, recombinations {}",
            self.passes,
            self.kway_passes,
            self.moves_tried,
            self.moves_committed,
            self.moves_rolled_back,
            self.bucket_ops,
            self.cut_updates,
            self.levels,
            self.starts,
            self.rounds,
            self.sweeps,
            self.cancellations,
            self.warm_starts,
            self.sheds,
            self.vcycles,
            self.recombinations
        )
    }
}

/// Lock-free counting sink: aggregates the stream into atomic counters.
///
/// Relaxed ordering is used throughout — the counters are statistics, not
/// synchronisation, and a [`snapshot`](CounterSink::snapshot) taken while
/// engines are running is a consistent-enough view for reporting.
#[derive(Debug, Default)]
pub struct CounterSink {
    passes: AtomicU64,
    moves_tried: AtomicU64,
    moves_committed: AtomicU64,
    moves_rolled_back: AtomicU64,
    bucket_ops: AtomicU64,
    cut_updates: AtomicU64,
    levels: AtomicU64,
    starts: AtomicU64,
    kway_passes: AtomicU64,
    rounds: AtomicU64,
    sweeps: AtomicU64,
    cancellations: AtomicU64,
    warm_starts: AtomicU64,
    sheds: AtomicU64,
    vcycles: AtomicU64,
    recombinations: AtomicU64,
}

impl CounterSink {
    /// Creates a sink with all counters at zero.
    pub fn new() -> Self {
        CounterSink::default()
    }

    /// Copies the current counter values out.
    pub fn snapshot(&self) -> Counters {
        Counters {
            passes: self.passes.load(Ordering::Relaxed),
            moves_tried: self.moves_tried.load(Ordering::Relaxed),
            moves_committed: self.moves_committed.load(Ordering::Relaxed),
            moves_rolled_back: self.moves_rolled_back.load(Ordering::Relaxed),
            bucket_ops: self.bucket_ops.load(Ordering::Relaxed),
            cut_updates: self.cut_updates.load(Ordering::Relaxed),
            levels: self.levels.load(Ordering::Relaxed),
            starts: self.starts.load(Ordering::Relaxed),
            kway_passes: self.kway_passes.load(Ordering::Relaxed),
            rounds: self.rounds.load(Ordering::Relaxed),
            sweeps: self.sweeps.load(Ordering::Relaxed),
            cancellations: self.cancellations.load(Ordering::Relaxed),
            warm_starts: self.warm_starts.load(Ordering::Relaxed),
            sheds: self.sheds.load(Ordering::Relaxed),
            vcycles: self.vcycles.load(Ordering::Relaxed),
            recombinations: self.recombinations.load(Ordering::Relaxed),
        }
    }
}

impl Sink for CounterSink {
    fn record(&self, event: &Event) {
        match *event {
            Event::PassEnd {
                moves, best_prefix, ..
            } => {
                self.passes.fetch_add(1, Ordering::Relaxed);
                self.moves_committed
                    .fetch_add(best_prefix, Ordering::Relaxed);
                self.moves_rolled_back
                    .fetch_add(moves - best_prefix, Ordering::Relaxed);
            }
            Event::MoveCommitted { gain, .. } => {
                self.moves_tried.fetch_add(1, Ordering::Relaxed);
                if gain != 0 {
                    self.cut_updates.fetch_add(1, Ordering::Relaxed);
                }
            }
            Event::PassStart { .. } => {}
            Event::LevelStart { .. } => {
                self.levels.fetch_add(1, Ordering::Relaxed);
            }
            Event::LevelEnd { .. } => {}
            Event::StartFinished { .. } => {
                self.starts.fetch_add(1, Ordering::Relaxed);
            }
            Event::KwayPassEnd {
                moves, best_prefix, ..
            } => {
                self.kway_passes.fetch_add(1, Ordering::Relaxed);
                self.moves_committed
                    .fetch_add(best_prefix, Ordering::Relaxed);
                self.moves_rolled_back
                    .fetch_add(moves - best_prefix, Ordering::Relaxed);
            }
            Event::KwayMove { gain, .. } => {
                self.moves_tried.fetch_add(1, Ordering::Relaxed);
                if gain != 0 {
                    self.cut_updates.fetch_add(1, Ordering::Relaxed);
                }
            }
            Event::KwayPassStart { .. } => {}
            Event::RoundStart { .. } => {}
            Event::RoundApplied { .. } => {
                self.rounds.fetch_add(1, Ordering::Relaxed);
            }
            Event::Cancelled { .. } => {
                self.cancellations.fetch_add(1, Ordering::Relaxed);
            }
            Event::SweepFinished { .. } => {
                self.sweeps.fetch_add(1, Ordering::Relaxed);
            }
            Event::WarmStart { .. } => {
                self.warm_starts.fetch_add(1, Ordering::Relaxed);
            }
            Event::Shed { .. } => {
                self.sheds.fetch_add(1, Ordering::Relaxed);
            }
            Event::VCycleStart { .. } => {}
            Event::VCycleEnd { .. } => {
                self.vcycles.fetch_add(1, Ordering::Relaxed);
            }
            Event::RecombineStart { .. } => {
                self.recombinations.fetch_add(1, Ordering::Relaxed);
            }
        }
        // bucket_ops arrive pre-aggregated on pass ends (counting them as
        // individual events would put an emission in the hottest loop).
        match *event {
            Event::PassEnd { bucket_ops, .. } | Event::KwayPassEnd { bucket_ops, .. } => {
                self.bucket_ops.fetch_add(bucket_ops, Ordering::Relaxed);
            }
            _ => {}
        }
    }
}

/// In-memory buffering sink; the replay helpers aggregate its contents.
///
/// ```
/// use vlsi_trace::{Event, Sink, VecSink};
/// let sink = VecSink::new();
/// sink.record(&Event::StartFinished { start: 0, cut: 7, micros: 12 });
/// let events = sink.take();
/// assert_eq!(events.len(), 1);
/// assert!(sink.take().is_empty()); // take() drains
/// ```
#[derive(Debug, Default)]
pub struct VecSink {
    events: Mutex<Vec<Event>>,
}

impl VecSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        VecSink::default()
    }

    /// Drains and returns the buffered events in emission order.
    pub fn take(&self) -> Vec<Event> {
        std::mem::take(&mut *self.events.lock().expect("not poisoned"))
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.events.lock().expect("not poisoned").len()
    }

    /// Whether no events are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Sink for VecSink {
    fn record(&self, event: &Event) {
        self.events
            .lock()
            .expect("not poisoned")
            .push(event.clone());
    }
}

/// Buffered JSONL output sink: one JSON object per line, deterministic
/// field order ([`Event::to_jsonl`]), flushed on [`Sink::flush`] and drop.
///
/// Write errors are counted, not propagated — tracing must never abort a
/// partitioning run. Check [`JsonlSink::write_errors`] after flushing if
/// the trace file matters.
pub struct JsonlSink {
    writer: Mutex<BufWriter<Box<dyn Write + Send>>>,
    write_errors: AtomicU64,
}

impl std::fmt::Debug for JsonlSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonlSink")
            .field("write_errors", &self.write_errors.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl JsonlSink {
    /// Creates (truncating) the file at `path`, creating parent
    /// directories as needed. The conventional location for trace files is
    /// `results/trace/*.jsonl`.
    ///
    /// # Errors
    /// Propagates file/directory creation failures.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        Ok(JsonlSink::from_writer(Box::new(File::create(path)?)))
    }

    /// Wraps an arbitrary writer (useful for tests and `io::sink()`).
    pub fn from_writer(writer: Box<dyn Write + Send>) -> Self {
        JsonlSink {
            writer: Mutex::new(BufWriter::new(writer)),
            write_errors: AtomicU64::new(0),
        }
    }

    /// Number of write errors swallowed so far.
    pub fn write_errors(&self) -> u64 {
        self.write_errors.load(Ordering::Relaxed)
    }
}

impl Sink for JsonlSink {
    fn record(&self, event: &Event) {
        let mut w = self.writer.lock().expect("not poisoned");
        let line = event.to_jsonl();
        if writeln!(w, "{line}").is_err() {
            self.write_errors.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn flush(&self) {
        if self.writer.lock().expect("not poisoned").flush().is_err() {
            self.write_errors.fetch_add(1, Ordering::Relaxed);
        }
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        self.flush();
    }
}

/// Fans one event stream out to two sinks.
///
/// `ENABLED` is the OR of the parts, and each part is guarded by its own
/// flag, so `Tee<VecSink, NullSink>` costs exactly a `VecSink`.
#[derive(Debug)]
pub struct Tee<'a, A: Sink, B: Sink> {
    a: &'a A,
    b: &'a B,
}

impl<'a, A: Sink, B: Sink> Tee<'a, A, B> {
    /// Combines two sinks.
    pub fn new(a: &'a A, b: &'a B) -> Self {
        Tee { a, b }
    }
}

impl<A: Sink, B: Sink> Sink for Tee<'_, A, B> {
    const ENABLED: bool = A::ENABLED || B::ENABLED;

    fn record(&self, event: &Event) {
        if A::ENABLED {
            self.a.record(event);
        }
        if B::ENABLED {
            self.b.record(event);
        }
    }

    fn flush(&self) {
        if A::ENABLED {
            self.a.flush();
        }
        if B::ENABLED {
            self.b.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::MoverFixity;

    fn sample_pass() -> Vec<Event> {
        vec![
            Event::PassStart {
                pass: 0,
                cut: 10,
                movable: 3,
                move_limit: 3,
            },
            Event::MoveCommitted {
                pass: 0,
                vertex: 1,
                gain: 2,
                fixity: MoverFixity::Free,
                cut: 8,
            },
            Event::MoveCommitted {
                pass: 0,
                vertex: 2,
                gain: 0,
                fixity: MoverFixity::Free,
                cut: 8,
            },
            Event::PassEnd {
                pass: 0,
                moves: 2,
                best_prefix: 1,
                cut_before: 10,
                cut_after: 8,
                bucket_ops: 9,
            },
        ]
    }

    #[test]
    fn null_sink_is_disabled() {
        const { assert!(!NullSink::ENABLED) };
        NullSink.record(&Event::StartFinished {
            start: 0,
            cut: 0,
            micros: 0,
        });
    }

    #[test]
    fn counter_sink_aggregates() {
        let sink = CounterSink::new();
        for e in sample_pass() {
            sink.record(&e);
        }
        sink.record(&Event::LevelStart {
            level: 1,
            vertices: 10,
            nets: 20,
        });
        sink.record(&Event::StartFinished {
            start: 0,
            cut: 8,
            micros: 100,
        });
        let c = sink.snapshot();
        assert_eq!(c.passes, 1);
        assert_eq!(c.moves_tried, 2);
        assert_eq!(c.moves_committed, 1);
        assert_eq!(c.moves_rolled_back, 1);
        assert_eq!(c.bucket_ops, 9);
        assert_eq!(c.cut_updates, 1); // only the gain != 0 move
        assert_eq!(c.levels, 1);
        assert_eq!(c.starts, 1);
        let text = c.to_string();
        assert!(text.contains("passes 1"), "{text}");
    }

    #[test]
    fn vec_sink_buffers_in_order() {
        let sink = VecSink::new();
        for e in sample_pass() {
            sink.record(&e);
        }
        assert_eq!(sink.len(), 4);
        let events = sink.take();
        assert_eq!(events, sample_pass());
        assert!(sink.is_empty());
    }

    #[test]
    fn jsonl_sink_writes_lines() {
        use std::sync::{Arc, Mutex};

        /// A writer handing each byte chunk to a shared buffer.
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }

        let buf = Arc::new(Mutex::new(Vec::new()));
        let sink = JsonlSink::from_writer(Box::new(Shared(buf.clone())));
        for e in sample_pass() {
            sink.record(&e);
        }
        sink.flush();
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(
            lines[0].starts_with(r#"{"ev":"pass_start""#),
            "{}",
            lines[0]
        );
        assert!(lines[3].ends_with('}'));
        assert_eq!(sink.write_errors(), 0);
    }

    #[test]
    fn jsonl_sink_creates_parent_dirs() {
        let dir = std::env::temp_dir().join(format!("vlsi-trace-test-{}", std::process::id()));
        let path = dir.join("nested/trace.jsonl");
        {
            let sink = JsonlSink::create(&path).unwrap();
            sink.record(&Event::StartFinished {
                start: 0,
                cut: 3,
                micros: 1,
            });
        } // drop flushes
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(
            text,
            "{\"ev\":\"start\",\"start\":0,\"cut\":3,\"micros\":1}\n"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tee_fans_out_and_respects_enabled() {
        let counters = CounterSink::new();
        let vec = VecSink::new();
        let tee = Tee::new(&counters, &vec);
        const { assert!(<Tee<'_, CounterSink, VecSink> as Sink>::ENABLED) };
        for e in sample_pass() {
            tee.record(&e);
        }
        assert_eq!(counters.snapshot().passes, 1);
        assert_eq!(vec.len(), 4);

        // A tee onto two NullSinks is statically disabled.
        const { assert!(!<Tee<'_, NullSink, NullSink> as Sink>::ENABLED) };
    }
}
