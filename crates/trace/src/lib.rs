//! Structured observability for the partitioning engines.
//!
//! The source paper's core evidence is *instrumentation*: Table II counts
//! vertices moved per LIFO-FM pass and where in the pass the improvements
//! land, and Figures 1–2 trace best cut and CPU time per multistart. This
//! crate is the measurement substrate those analyses are built on: the
//! engines emit a stream of [`Event`]s into a caller-chosen [`Sink`], and
//! everything downstream — the Table II columns, the within-pass profiles,
//! JSONL trace files — is an aggregation of that one stream.
//!
//! Like every crate in this workspace, it has **zero external
//! dependencies** (the hermetic-build rule), and it deliberately does not
//! depend on the hypergraph crates either: events carry plain integers, so
//! any layer can emit or consume them.
//!
//! # Sinks
//!
//! * [`NullSink`] — the default. [`Sink::ENABLED`] is `false`, so
//!   instrumented engine code compiles to *nothing*: event construction is
//!   statically skipped and an un-traced run costs exactly what it did
//!   before tracing existed (`cargo bench --bench trace_overhead` keeps
//!   this honest).
//! * [`CounterSink`] — lock-free atomic counters (passes, moves tried /
//!   committed / rolled back, gain-bucket operations, cut-changing moves,
//!   levels, starts). Cheap enough to leave on in production.
//! * [`VecSink`] — buffers events in memory for replay; the experiment
//!   harness aggregates these via [`replay::pass_summaries`].
//! * [`JsonlSink`] — buffered structured output, one JSON object per line
//!   with deterministic field order (see `docs/TRACING.md` for the schema).
//! * [`Tee`] — fans one stream out to two sinks.
//!
//! # Example: count FM work with a [`CounterSink`]
//!
//! ```
//! use vlsi_trace::{CounterSink, Event, MoverFixity, Sink};
//!
//! let counters = CounterSink::new();
//! // An engine emits events; here we stand in for it by hand.
//! counters.record(&Event::PassStart { pass: 0, cut: 9, movable: 4, move_limit: 4 });
//! counters.record(&Event::MoveCommitted {
//!     pass: 0, vertex: 2, gain: 3, fixity: MoverFixity::Free, cut: 6,
//! });
//! counters.record(&Event::PassEnd {
//!     pass: 0, moves: 1, best_prefix: 1, cut_before: 9, cut_after: 6, bucket_ops: 5,
//! });
//!
//! let c = counters.snapshot();
//! assert_eq!(c.passes, 1);
//! assert_eq!(c.moves_tried, 1);
//! assert_eq!(c.moves_committed, 1);
//! assert_eq!(c.moves_rolled_back, 0);
//! assert_eq!(c.bucket_ops, 5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
pub mod replay;
mod sink;

pub use event::{CancelStage, Event, MoverFixity};
pub use sink::{CounterSink, Counters, JsonlSink, NullSink, Sink, Tee, VecSink};
