//! Generator combinators and domain generators for the partitioning
//! workspace: weights, nets, fixed-vertex masks, and whole raw hypergraph
//! instances. A generator is any `Fn(&mut TestRng) -> T`; these helpers
//! just build common ones.

use std::ops::Range;

use vlsi_rng::seq::SliceRandom;
use vlsi_rng::{Rng, RngCore};

use crate::{Shrink, TestRng};

/// Generator for a `Vec<T>` with a length drawn from `len` and elements
/// drawn from `element`.
pub fn vec_of<T>(
    len: Range<usize>,
    element: impl Fn(&mut TestRng) -> T,
) -> impl Fn(&mut TestRng) -> Vec<T> {
    move |rng| {
        let n = rng.gen_range(len.clone());
        (0..n).map(|_| element(rng)).collect()
    }
}

/// Generator yielding `Some(element)` with probability `p`, else `None`.
pub fn option_weighted<T>(
    p: f64,
    element: impl Fn(&mut TestRng) -> T,
) -> impl Fn(&mut TestRng) -> Option<T> {
    move |rng| {
        if rng.gen_bool(p) {
            Some(element(rng))
        } else {
            None
        }
    }
}

/// Generator for a sorted set of distinct indices out of `0..universe`,
/// with set size drawn from `size` (clamped to the universe). The
/// replacement for `proptest::collection::btree_set(0..universe, size)`.
pub fn distinct_sorted(universe: usize, size: Range<usize>) -> impl Fn(&mut TestRng) -> Vec<usize> {
    move |rng| {
        let lo = size.start.min(universe);
        let hi = size.end.min(universe + 1).max(lo + 1);
        let want = rng.gen_range(lo..hi);
        let mut pool: Vec<usize> = (0..universe).collect();
        pool.shuffle(rng);
        pool.truncate(want);
        pool.sort_unstable();
        pool
    }
}

/// Generator for printable-ASCII-plus-newline text of length `0..max_len`
/// — the replacement for the `"[ -~\n]{0,N}"` regex strategies used by
/// the parser-robustness suite.
pub fn ascii_text(max_len: usize) -> impl Fn(&mut TestRng) -> String {
    move |rng| {
        let n = rng.gen_range(0..max_len.max(1) + 1);
        (0..n)
            .map(|_| {
                if rng.gen_bool(0.08) {
                    '\n'
                } else {
                    rng.gen_range(0x20u8..0x7f) as char
                }
            })
            .collect()
    }
}

/// A raw random hypergraph instance: plain data that tests feed to
/// `HypergraphBuilder` / `FixedVertices::from_fixities`. Keeping it as
/// primitive vectors lets this crate stay dependency-free and lets
/// [`Shrink`] reduce failing instances structurally.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawInstance {
    /// Vertex weights; the vertex count is `weights.len()`.
    pub weights: Vec<u64>,
    /// Nets as sorted distinct vertex indices.
    pub nets: Vec<Vec<usize>>,
    /// Per-vertex fixity: `None` = free, `Some(p)` = fixed in partition `p`.
    pub fixities: Vec<Option<u8>>,
    /// A seed for whatever randomized algorithm the property runs.
    pub seed: u64,
}

/// Knobs for [`instances`]. The defaults match the paper-scale property
/// suites: tiny instances with weighted vertices, 2–4-pin nets, and a
/// moderately dense fixity mask over 2 partitions.
#[derive(Debug, Clone)]
pub struct InstanceConfig {
    /// Vertex count range.
    pub vertices: Range<usize>,
    /// Vertex weights drawn uniformly from `1..=max_weight`.
    pub max_weight: u64,
    /// Net count range expressed as multiples of the vertex count:
    /// the count is drawn from `1..max(2, (nets_per_vertex * n))`.
    pub nets_per_vertex: f64,
    /// Net sizes drawn from `2..=max_net_size` (clamped to `n`).
    pub max_net_size: usize,
    /// Probability that a vertex is fixed.
    pub fix_prob: f64,
    /// Fixed vertices land in partitions `0..fix_parts`.
    pub fix_parts: u8,
}

impl Default for InstanceConfig {
    fn default() -> Self {
        InstanceConfig {
            vertices: 4..24,
            max_weight: 5,
            nets_per_vertex: 3.0,
            max_net_size: 4,
            fix_prob: 0.3,
            fix_parts: 2,
        }
    }
}

/// Generator for [`RawInstance`]s described by `cfg`.
pub fn instances(cfg: InstanceConfig) -> impl Fn(&mut TestRng) -> RawInstance {
    move |rng| {
        let n = rng.gen_range(cfg.vertices.clone()).max(2);
        let weights: Vec<u64> = (0..n).map(|_| rng.gen_range(1..=cfg.max_weight)).collect();
        let max_nets = ((cfg.nets_per_vertex * n as f64) as usize).max(2);
        let num_nets = rng.gen_range(1..max_nets);
        let net_gen = distinct_sorted(n, 2..cfg.max_net_size.min(n) + 1);
        let nets: Vec<Vec<usize>> = (0..num_nets)
            .map(|_| net_gen(rng))
            .filter(|net| net.len() >= 2)
            .collect();
        let fixities: Vec<Option<u8>> = (0..n)
            .map(|_| {
                if rng.gen_bool(cfg.fix_prob) {
                    Some(rng.gen_range(0..cfg.fix_parts))
                } else {
                    None
                }
            })
            .collect();
        RawInstance {
            weights,
            nets,
            fixities,
            seed: rng.next_u64(),
        }
    }
}

impl Shrink for RawInstance {
    fn shrink(&self) -> Vec<Self> {
        let mut out = Vec::new();
        // Fewer / simpler nets first: nets carry most of the complexity
        // and their indices stay valid when the vertex set is untouched.
        for nets in self.nets.shrink() {
            out.push(RawInstance {
                nets,
                ..self.clone()
            });
        }
        // Free all fixed vertices, then free them one at a time.
        if self.fixities.iter().any(Option::is_some) {
            out.push(RawInstance {
                fixities: vec![None; self.fixities.len()],
                ..self.clone()
            });
            for (i, f) in self.fixities.iter().enumerate() {
                if f.is_some() {
                    let mut fixities = self.fixities.clone();
                    fixities[i] = None;
                    out.push(RawInstance {
                        fixities,
                        ..self.clone()
                    });
                }
            }
        }
        // Unit weights.
        if self.weights.iter().any(|&w| w != 1) {
            out.push(RawInstance {
                weights: vec![1; self.weights.len()],
                ..self.clone()
            });
        }
        // A boring seed.
        if self.seed != 0 {
            out.push(RawInstance {
                seed: 0,
                ..self.clone()
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vlsi_rng::SeedableRng;

    fn rng() -> TestRng {
        TestRng::seed_from_u64(1)
    }

    #[test]
    fn vec_of_respects_length_range() {
        let g = vec_of(3..7, |r: &mut TestRng| r.gen_range(0u8..5));
        let mut r = rng();
        for _ in 0..100 {
            let v = g(&mut r);
            assert!((3..7).contains(&v.len()));
        }
    }

    #[test]
    fn distinct_sorted_yields_valid_sets() {
        let g = distinct_sorted(10, 2..5);
        let mut r = rng();
        for _ in 0..200 {
            let s = g(&mut r);
            assert!((2..5).contains(&s.len()));
            assert!(s.windows(2).all(|w| w[0] < w[1]), "{s:?}");
            assert!(s.iter().all(|&i| i < 10));
        }
    }

    #[test]
    fn distinct_sorted_clamps_to_small_universe() {
        let g = distinct_sorted(2, 2..5);
        let mut r = rng();
        let s = g(&mut r);
        assert_eq!(s, vec![0, 1]);
    }

    #[test]
    fn ascii_text_is_printable() {
        let g = ascii_text(50);
        let mut r = rng();
        for _ in 0..100 {
            let s = g(&mut r);
            assert!(s.len() <= 50);
            assert!(s.chars().all(|c| c == '\n' || (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn instances_are_structurally_valid() {
        let g = instances(InstanceConfig::default());
        let mut r = rng();
        for _ in 0..200 {
            let inst = g(&mut r);
            let n = inst.weights.len();
            assert!((2..24).contains(&n));
            assert_eq!(inst.fixities.len(), n);
            for net in &inst.nets {
                assert!(net.len() >= 2);
                assert!(net.iter().all(|&v| v < n));
                assert!(net.windows(2).all(|w| w[0] < w[1]));
            }
        }
    }

    #[test]
    fn instance_shrink_preserves_vertex_count() {
        let g = instances(InstanceConfig::default());
        let mut r = rng();
        let inst = g(&mut r);
        for cand in inst.shrink() {
            assert_eq!(cand.weights.len(), inst.weights.len());
            assert_eq!(cand.fixities.len(), inst.fixities.len());
            for net in &cand.nets {
                assert!(net.iter().all(|&v| v < cand.weights.len()));
            }
        }
    }

    #[test]
    fn option_weighted_hits_both_arms() {
        let g = option_weighted(0.5, |r: &mut TestRng| r.gen_range(0u8..3));
        let mut r = rng();
        let (mut some, mut none) = (0, 0);
        for _ in 0..200 {
            match g(&mut r) {
                Some(_) => some += 1,
                None => none += 1,
            }
        }
        assert!(some > 50 && none > 50);
    }
}
