//! The property-test runner: fixed-seed corpus per test name, panic
//! capture, greedy shrinking, minimal-counterexample reporting.

use std::panic::{self, AssertUnwindSafe};

use vlsi_rng::{fnv1a_64, mix64, RngCore, SeedableRng, SplitMix64};

use crate::{Shrink, TestRng};

/// Per-property configuration.
#[derive(Debug, Clone, Copy)]
pub struct PropConfig {
    /// Number of random cases (before the `TESTKIT_CASES` override).
    pub cases: u32,
    /// Budget of candidate evaluations during shrinking.
    pub max_shrink_evals: u32,
}

impl PropConfig {
    /// Config running `cases` random cases.
    pub fn cases(cases: u32) -> Self {
        PropConfig {
            cases,
            ..PropConfig::default()
        }
    }
}

impl Default for PropConfig {
    fn default() -> Self {
        PropConfig {
            cases: 64,
            max_shrink_evals: 2048,
        }
    }
}

/// Runs property `test` on `cases` inputs drawn from `gen`.
///
/// The case seeds form a pure function of `name` (re-based by
/// `TESTKIT_SEED` if set), so every run — local or CI — replays the
/// identical corpus. On the first failing case the input is shrunk
/// greedily via [`Shrink`] and the minimal counterexample is reported in
/// the panic message together with the case seed.
///
/// # Panics
/// Panics (failing the enclosing `#[test]`) if any case fails.
pub fn check<T, G, F>(name: &str, cfg: PropConfig, gen: G, test: F)
where
    T: Clone + std::fmt::Debug,
    T: Shrink,
    G: Fn(&mut TestRng) -> T,
    F: Fn(T),
{
    let cases = effective_cases(cfg.cases);
    let base = match std::env::var("TESTKIT_SEED") {
        Ok(s) => {
            let reseed: u64 = s.parse().unwrap_or_else(|_| fnv1a_64(s.as_bytes()));
            mix64(fnv1a_64(name.as_bytes()) ^ mix64(reseed))
        }
        Err(_) => fnv1a_64(name.as_bytes()),
    };
    let mut corpus = SplitMix64::new(base);
    for case in 0..cases {
        let seed = corpus.next_u64();
        let mut rng = TestRng::seed_from_u64(seed);
        let value = gen(&mut rng);
        if let Err(msg) = run_one(&test, &value) {
            let (minimal, min_msg, evals) = shrink_failure(&test, value, msg, cfg.max_shrink_evals);
            panic!(
                "property `{name}` failed at case {case}/{cases} (seed {seed:#018x}, \
                 {evals} shrink evals)\n--- minimal failing input ---\n{minimal:#?}\n\
                 --- failure ---\n{min_msg}\n\
                 (corpus is fixed per test name; rerun reproduces this case. \
                 Set TESTKIT_SEED to explore a different corpus, TESTKIT_CASES to scale it.)"
            );
        }
    }
}

/// Resolves the case count: `TESTKIT_CASES=nX` multiplies the default,
/// a plain number replaces it.
fn effective_cases(configured: u32) -> u32 {
    match std::env::var("TESTKIT_CASES") {
        Ok(v) => {
            if let Some(mult) = v.strip_suffix(['x', 'X']) {
                let m: f64 = mult.parse().unwrap_or(1.0);
                ((configured as f64 * m) as u32).max(1)
            } else {
                v.parse().unwrap_or(configured).max(1)
            }
        }
        Err(_) => configured.max(1),
    }
}

fn run_one<T: Clone, F: Fn(T)>(test: &F, value: &T) -> Result<(), String> {
    let v = value.clone();
    match panic::catch_unwind(AssertUnwindSafe(|| test(v))) {
        Ok(()) => Ok(()),
        // `&*` matters: a plain `&payload` would unsize the Box itself to
        // `&dyn Any` and every downcast would miss.
        Err(payload) => Err(panic_message(&*payload)),
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Greedy descent: keep taking the first candidate that still fails until
/// no candidate fails or the evaluation budget runs out.
fn shrink_failure<T, F>(test: &F, mut value: T, mut msg: String, budget: u32) -> (T, String, u32)
where
    T: Clone + Shrink,
    F: Fn(T),
{
    let mut evals = 0u32;
    'outer: loop {
        for candidate in value.shrink() {
            if evals >= budget {
                break 'outer;
            }
            evals += 1;
            if let Err(m) = run_one(test, &candidate) {
                value = candidate;
                msg = m;
                continue 'outer;
            }
        }
        break;
    }
    (value, msg, evals)
}

/// Declares property-based `#[test]` functions.
///
/// ```text
/// prop_test! {
///     #[cases(64)]
///     fn my_property(pattern in generator_expr) {
///         // body panics (assert!) to fail the property
///     }
/// }
/// ```
///
/// `generator_expr` is any `Fn(&mut TestRng) -> T` where
/// `T: Clone + Debug + Shrink`; `pattern` may destructure it (e.g. a
/// tuple of inputs).
#[macro_export]
macro_rules! prop_test {
    ($( $(#[doc = $doc:expr])* #[cases($cases:expr)] fn $name:ident($pat:pat in $gen:expr) $body:block )+) => {
        $(
            $(#[doc = $doc])*
            #[test]
            fn $name() {
                let generator = $gen;
                $crate::prop::check(
                    stringify!($name),
                    $crate::PropConfig::cases($cases),
                    move |rng: &mut $crate::TestRng| generator(rng),
                    |value| {
                        let $pat = value;
                        $body
                    },
                );
            }
        )+
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use vlsi_rng::Rng;

    #[test]
    fn passing_property_runs_all_cases() {
        let counter = std::cell::Cell::new(0u32);
        check(
            "always_true",
            PropConfig::cases(17),
            |rng| rng.gen_range(0u64..100),
            |_| {
                counter.set(counter.get() + 1);
            },
        );
        assert_eq!(counter.get(), effective_cases(17));
    }

    #[test]
    fn corpus_is_deterministic_per_name() {
        let collect = |name: &str| {
            let mut seen = Vec::new();
            // Generate without running a failing test: capture inputs.
            let mut corpus = SplitMix64::new(fnv1a_64(name.as_bytes()));
            for _ in 0..5 {
                let mut rng = TestRng::seed_from_u64(corpus.next_u64());
                seen.push(rng.gen_range(0u64..1_000_000));
            }
            seen
        };
        assert_eq!(collect("alpha"), collect("alpha"));
        assert_ne!(collect("alpha"), collect("beta"));
    }

    #[test]
    fn failing_property_shrinks_to_minimal_input() {
        let result = panic::catch_unwind(|| {
            check(
                "fails_above_10",
                PropConfig::cases(64),
                |rng| rng.gen_range(0u64..1000),
                |v| assert!(v <= 10, "value {v} exceeds 10"),
            );
        });
        let msg = panic_message(&*result.unwrap_err());
        // Greedy shrink on `u64` lands on the smallest failing value.
        assert!(msg.contains("minimal failing input"), "{msg}");
        assert!(msg.contains("11"), "expected minimal input 11 in: {msg}");
    }

    #[test]
    fn vec_failures_shrink_to_few_elements() {
        let result = panic::catch_unwind(|| {
            check(
                "no_nines",
                PropConfig::cases(64),
                |rng| {
                    let n = rng.gen_range(0usize..50);
                    (0..n).map(|_| rng.gen_range(0u8..10)).collect::<Vec<u8>>()
                },
                |v| assert!(!v.contains(&9)),
            );
        });
        let msg = panic_message(&*result.unwrap_err());
        assert!(msg.contains("[\n    9,\n]") || msg.contains("[9]"), "{msg}");
    }

    prop_test! {
        #[cases(16)]
        fn macro_declares_runnable_tests((a, b) in |rng: &mut TestRng| {
            (rng.gen_range(0u32..50), rng.gen_range(0u32..50))
        }) {
            assert_eq!(a + b, b + a);
        }
    }
}
