//! Input shrinking: when a property fails, the harness walks candidate
//! simplifications of the failing input and keeps the smallest one that
//! still fails, so the report shows a minimal counterexample rather than
//! a 120-element random blob.

/// Produces simpler candidate values. The harness re-runs the property on
/// each candidate and greedily descends into the first that still fails.
///
/// Implementations should order candidates from most to least aggressive
/// (e.g. "empty vec" before "drop one element") so the greedy walk takes
/// large steps first.
pub trait Shrink: Sized {
    /// Candidate simplifications of `self`; may be empty.
    fn shrink(&self) -> Vec<Self> {
        Vec::new()
    }
}

macro_rules! impl_shrink_uint {
    ($($t:ty),*) => {$(
        impl Shrink for $t {
            fn shrink(&self) -> Vec<Self> {
                let v = *self;
                let mut out = Vec::new();
                if v > 0 {
                    out.push(0);
                    if v > 1 {
                        out.push(v / 2);
                    }
                    out.push(v - 1);
                }
                out.dedup();
                out
            }
        }
    )*};
}
impl_shrink_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_shrink_int {
    ($($t:ty),*) => {$(
        impl Shrink for $t {
            fn shrink(&self) -> Vec<Self> {
                let v = *self;
                let mut out = Vec::new();
                if v != 0 {
                    out.push(0);
                    out.push(v / 2);
                    out.push(v - v.signum());
                }
                out.dedup();
                out
            }
        }
    )*};
}
impl_shrink_int!(i8, i16, i32, i64, isize);

impl Shrink for bool {
    fn shrink(&self) -> Vec<Self> {
        if *self {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

impl Shrink for f64 {
    fn shrink(&self) -> Vec<Self> {
        let v = *self;
        if v == 0.0 {
            Vec::new()
        } else {
            vec![0.0, v / 2.0]
        }
    }
}

impl Shrink for String {
    fn shrink(&self) -> Vec<Self> {
        let mut out = Vec::new();
        if !self.is_empty() {
            out.push(String::new());
            let half: String = self.chars().take(self.chars().count() / 2).collect();
            if !half.is_empty() {
                out.push(half);
            }
            let mut drop_last = self.clone();
            drop_last.pop();
            out.push(drop_last);
        }
        out
    }
}

impl<T: Clone + Shrink> Shrink for Option<T> {
    fn shrink(&self) -> Vec<Self> {
        match self {
            None => Vec::new(),
            Some(x) => {
                let mut out = vec![None];
                out.extend(x.shrink().into_iter().map(Some));
                out
            }
        }
    }
}

/// Caps per-step candidate fan-out so shrinking long vectors stays cheap.
const MAX_ELEMENT_CANDIDATES: usize = 24;

impl<T: Clone + Shrink> Shrink for Vec<T> {
    fn shrink(&self) -> Vec<Self> {
        let mut out = Vec::new();
        let n = self.len();
        if n == 0 {
            return out;
        }
        out.push(Vec::new());
        if n > 1 {
            out.push(self[..n / 2].to_vec());
            out.push(self[n / 2..].to_vec());
        }
        // Drop single elements (bounded).
        for i in 0..n.min(MAX_ELEMENT_CANDIDATES) {
            let mut c = self.clone();
            c.remove(i);
            out.push(c);
        }
        // Shrink single elements in place (bounded).
        for i in 0..n.min(MAX_ELEMENT_CANDIDATES) {
            for s in self[i].shrink().into_iter().take(2) {
                let mut c = self.clone();
                c[i] = s;
                out.push(c);
            }
        }
        out
    }
}

macro_rules! impl_shrink_tuple {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Clone + Shrink),+> Shrink for ($($name,)+) {
            fn shrink(&self) -> Vec<Self> {
                let mut out = Vec::new();
                $(
                    for s in self.$idx.shrink() {
                        let mut c = self.clone();
                        c.$idx = s;
                        out.push(c);
                    }
                )+
                out
            }
        }
    )+};
}
impl_shrink_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uint_shrinks_toward_zero() {
        assert_eq!(10u32.shrink(), vec![0, 5, 9]);
        assert!(0u32.shrink().is_empty());
        assert_eq!(1u64.shrink(), vec![0]);
    }

    #[test]
    fn int_shrinks_toward_zero_from_both_sides() {
        assert_eq!((-6i64).shrink(), vec![0, -3, -5]);
        assert_eq!(3i64.shrink(), vec![0, 1, 2]);
    }

    #[test]
    fn vec_candidates_are_strictly_simpler_for_greedy_descent() {
        let v = vec![4u32, 7, 9];
        let cands = v.shrink();
        assert!(cands.contains(&vec![]));
        assert!(cands.contains(&vec![7, 9]));
        assert!(cands.iter().all(|c| c != &v));
    }

    #[test]
    fn option_shrinks_to_none_first() {
        let v = Some(4u8);
        assert_eq!(v.shrink()[0], None);
    }

    #[test]
    fn tuple_shrinks_componentwise() {
        let cands = (2u32, 1u32).shrink();
        assert!(cands.contains(&(0, 1)));
        assert!(cands.contains(&(2, 0)));
    }

    #[test]
    fn string_shrinks_shorter() {
        let cands = "abcd".to_string().shrink();
        assert!(cands.iter().all(|c| c.len() < 4));
        assert!(cands.contains(&String::new()));
    }
}
