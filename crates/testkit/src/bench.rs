//! A minimal wall-clock benchmark runner mirroring the slice of the
//! criterion API the bench targets use. Each benchmark is calibrated so a
//! sample lasts ~`TESTKIT_BENCH_TARGET_MS` (default 20 ms), warmed up,
//! then timed for `sample_size` samples; the per-iteration min / mean /
//! median / p95 / max land in `results/bench/<target>.json` and on
//! stdout.
//!
//! Under `cargo test` the bench targets are excluded (`test = false` in
//! the manifest); under `cargo bench` the harness honours positional CLI
//! filters just like criterion (`cargo bench -- micro/` runs the micro
//! group only). `TESTKIT_BENCH_SAMPLES` overrides every `sample_size`,
//! except that a group's `min_samples` floor always holds — gated
//! min-statistic benchmarks need enough samples for the minimum to
//! converge, regardless of the global speed knob.

use std::fmt::Display;
use std::fs;
use std::hint::black_box;
use std::path::PathBuf;
use std::time::Instant;

// Re-export the harness macros next to the types, so bench targets can
// `use vlsi_testkit::bench::{criterion_group, criterion_main, Criterion}`.
pub use crate::{criterion_group, criterion_main};

const DEFAULT_SAMPLE_SIZE: usize = 30;

/// One measured benchmark.
#[derive(Debug, Clone)]
pub struct Record {
    /// Full benchmark id, e.g. `baselines/engine/multilevel/0pct`.
    pub id: String,
    /// Number of timed samples.
    pub samples: usize,
    /// Iterations averaged inside each sample.
    pub iters_per_sample: u64,
    /// Per-iteration nanoseconds.
    pub min_ns: f64,
    /// Per-iteration nanoseconds.
    pub mean_ns: f64,
    /// Per-iteration nanoseconds.
    pub median_ns: f64,
    /// Per-iteration nanoseconds.
    pub p95_ns: f64,
    /// Per-iteration nanoseconds.
    pub max_ns: f64,
}

/// The benchmark registry for one bench target.
pub struct Criterion {
    target: String,
    out_dir: PathBuf,
    filters: Vec<String>,
    records: Vec<Record>,
    sample_override: Option<usize>,
    target_sample_ms: f64,
}

impl Criterion {
    /// Creates the registry for bench target `target`; `manifest_dir` is
    /// the bench crate's `CARGO_MANIFEST_DIR`, used to locate the
    /// workspace `results/` directory (overridable via
    /// `TESTKIT_BENCH_DIR`).
    pub fn new(target: &str, manifest_dir: &str) -> Self {
        let out_dir = std::env::var_os("TESTKIT_BENCH_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|| {
                PathBuf::from(manifest_dir)
                    .join("..")
                    .join("..")
                    .join("results")
                    .join("bench")
            });
        let filters = std::env::args()
            .skip(1)
            .filter(|a| !a.starts_with('-'))
            .collect();
        let sample_override = std::env::var("TESTKIT_BENCH_SAMPLES")
            .ok()
            .and_then(|v| v.parse().ok());
        let target_sample_ms = std::env::var("TESTKIT_BENCH_TARGET_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(20.0);
        Criterion {
            target: target.to_string(),
            out_dir,
            filters,
            records: Vec::new(),
            sample_override,
            target_sample_ms,
        }
    }

    fn selected(&self, id: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| id.contains(f.as_str()))
    }

    fn run_one(
        &mut self,
        id: String,
        sample_size: usize,
        sample_floor: usize,
        f: &mut dyn FnMut(&mut Bencher),
    ) {
        if !self.selected(&id) {
            return;
        }
        let mut b = Bencher {
            sample_size: self
                .sample_override
                .unwrap_or(sample_size)
                .max(sample_floor),
            target_sample_ms: self.target_sample_ms,
            record: None,
        };
        f(&mut b);
        let Some(mut rec) = b.record.take() else {
            return; // the closure never called iter()
        };
        rec.id = id;
        println!(
            "{:<52} median {:>12}  p95 {:>12}  ({} samples x {} iters)",
            rec.id,
            fmt_ns(rec.median_ns),
            fmt_ns(rec.p95_ns),
            rec.samples,
            rec.iters_per_sample,
        );
        self.records.push(rec);
    }

    /// Registers and immediately runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        self.run_one(id.to_string(), DEFAULT_SAMPLE_SIZE, 0, &mut f);
        self
    }

    /// Records an externally measured value (single-shot wall nanoseconds,
    /// peak-RSS bytes, …) as a one-sample record, so it lands in the JSON
    /// next to the timed benchmarks and regression gates reading
    /// `median_ns` cover it with no extra machinery. Honours the CLI
    /// filters like any benchmark.
    pub fn report_value(&mut self, id: &str, value: f64) -> &mut Self {
        if !self.selected(id) {
            return self;
        }
        println!("{:<52} value  {value:>14.1}  (reported, 1 sample)", id);
        self.records.push(Record {
            id: id.to_string(),
            samples: 1,
            iters_per_sample: 1,
            min_ns: value,
            mean_ns: value,
            median_ns: value,
            p95_ns: value,
            max_ns: value,
        });
        self
    }

    /// Opens a named group; benchmarks inside share the group prefix and
    /// its `sample_size`.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            prefix: name.to_string(),
            sample_size: DEFAULT_SAMPLE_SIZE,
            min_samples: 0,
        }
    }

    /// Writes all accumulated records as JSON and prints the output path.
    /// Called by `criterion_main!` after all groups ran.
    pub fn finalize(&mut self) {
        if self.records.is_empty() {
            return;
        }
        if let Err(e) = fs::create_dir_all(&self.out_dir) {
            eprintln!(
                "testkit-bench: cannot create {}: {e}",
                self.out_dir.display()
            );
            return;
        }
        let path = self.out_dir.join(format!("{}.json", self.target));
        let mut json = String::from("[\n");
        for (i, r) in self.records.iter().enumerate() {
            json.push_str(&format!(
                "  {{\"id\": {}, \"samples\": {}, \"iters_per_sample\": {}, \
                 \"min_ns\": {:.1}, \"mean_ns\": {:.1}, \"median_ns\": {:.1}, \
                 \"p95_ns\": {:.1}, \"max_ns\": {:.1}}}{}",
                json_string(&r.id),
                r.samples,
                r.iters_per_sample,
                r.min_ns,
                r.mean_ns,
                r.median_ns,
                r.p95_ns,
                r.max_ns,
                if i + 1 == self.records.len() {
                    "\n"
                } else {
                    ",\n"
                },
            ));
        }
        json.push_str("]\n");
        match fs::write(&path, json) {
            Ok(()) => println!("testkit-bench: wrote {}", path.display()),
            Err(e) => eprintln!("testkit-bench: cannot write {}: {e}", path.display()),
        }
    }
}

/// A benchmark group (criterion's `BenchmarkGroup` subset).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    prefix: String,
    sample_size: usize,
    min_samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Sets a sample-count floor that holds even under the global
    /// `TESTKIT_BENCH_SAMPLES` override. Use for benchmarks gated on the
    /// *minimum* sample: the min only converges with enough samples, so a
    /// CI speed knob must not starve it.
    pub fn min_samples(&mut self, n: usize) -> &mut Self {
        self.min_samples = n;
        self
    }

    /// Benchmarks `f` under `prefix/id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = format!("{}/{}", self.prefix, id.into().0);
        let n = self.sample_size;
        self.criterion.run_one(id, n, self.min_samples, &mut f);
        self
    }

    /// Benchmarks `f` with a borrowed input under `prefix/id`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let id = format!("{}/{}", self.prefix, id.0);
        let n = self.sample_size;
        self.criterion
            .run_one(id, n, self.min_samples, &mut |b| f(b, input));
        self
    }

    /// Ends the group (kept for criterion API parity; records are already
    /// accumulated).
    pub fn finish(self) {}
}

/// A benchmark identifier, `function/parameter` or bare parameter.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Id for `function` at `parameter`.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{function}/{parameter}"))
    }

    /// Id from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

/// Passed to the benchmark closure; [`iter`](Bencher::iter) does the
/// calibrated measurement.
pub struct Bencher {
    sample_size: usize,
    target_sample_ms: f64,
    record: Option<Record>,
}

impl Bencher {
    /// Measures `f`: calibrates iterations per sample to the target
    /// sample duration, runs one warmup sample, then `sample_size` timed
    /// samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibration: time single runs until we know roughly how long one
        // iteration takes (bounded so pathological benches still finish).
        let t0 = Instant::now();
        black_box(f());
        let once_ns = t0.elapsed().as_nanos().max(1) as f64;
        let target_ns = self.target_sample_ms * 1e6;
        let iters = ((target_ns / once_ns) as u64).clamp(1, 1_000_000);

        // Warmup sample.
        for _ in 0..iters {
            black_box(f());
        }

        let mut per_iter: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            per_iter.push(start.elapsed().as_nanos() as f64 / iters as f64);
        }
        per_iter.sort_by(|a, b| a.partial_cmp(b).expect("times are finite"));
        let n = per_iter.len();
        let mean = per_iter.iter().sum::<f64>() / n as f64;
        self.record = Some(Record {
            id: String::new(),
            samples: n,
            iters_per_sample: iters,
            min_ns: per_iter[0],
            mean_ns: mean,
            median_ns: percentile(&per_iter, 0.50),
            p95_ns: percentile(&per_iter, 0.95),
            max_ns: per_iter[n - 1],
        });
    }
}

/// Nearest-rank percentile of an ascending-sorted slice.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Groups benchmark functions under one name, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($f:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::bench::Criterion) {
            $( $f(c); )+
        }
    };
}

/// Entry point for a bench target, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::bench::Criterion::new(
                env!("CARGO_CRATE_NAME"),
                env!("CARGO_MANIFEST_DIR"),
            );
            $( $group(&mut c); )+
            c.finalize();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet_criterion(dir: &std::path::Path) -> Criterion {
        let mut c = Criterion::new("unit", dir.to_str().expect("utf8 path"));
        // Unit tests must not inherit `cargo test` CLI words as filters.
        c.filters.clear();
        c.out_dir = dir.join("results").join("bench");
        c.sample_override = Some(3);
        c.target_sample_ms = 0.01;
        c
    }

    #[test]
    fn bench_function_records_sane_statistics() {
        let dir = std::env::temp_dir().join("vlsi-testkit-bench-a");
        let mut c = quiet_criterion(&dir);
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let r = &c.records[0];
        assert_eq!(r.id, "noop");
        assert!(r.min_ns <= r.median_ns);
        assert!(r.median_ns <= r.p95_ns);
        assert!(r.p95_ns <= r.max_ns);
        assert!(r.iters_per_sample >= 1);
    }

    #[test]
    fn groups_prefix_ids_and_respect_sample_size() {
        let dir = std::env::temp_dir().join("vlsi-testkit-bench-b");
        let mut c = quiet_criterion(&dir);
        c.sample_override = None;
        let mut g = c.benchmark_group("grp");
        g.sample_size(4);
        g.bench_with_input(BenchmarkId::new("f", 7), &7u32, |b, &x| b.iter(|| x * 2));
        g.finish();
        let r = &c.records[0];
        assert_eq!(r.id, "grp/f/7");
        assert_eq!(r.samples, 4);
    }

    #[test]
    fn min_samples_floor_beats_the_global_override() {
        let dir = std::env::temp_dir().join("vlsi-testkit-bench-e");
        let mut c = quiet_criterion(&dir);
        c.sample_override = Some(3); // the CI speed knob
        let mut g = c.benchmark_group("grp");
        g.sample_size(4);
        g.min_samples(6);
        g.bench_function("floored", |b| b.iter(|| 1 + 1));
        g.finish();
        assert_eq!(c.records[0].samples, 6);
    }

    #[test]
    fn finalize_writes_valid_jsonish_output() {
        let dir = std::env::temp_dir().join("vlsi-testkit-bench-c");
        let mut c = quiet_criterion(&dir);
        c.bench_function("alpha", |b| b.iter(|| 2 * 2));
        c.finalize();
        let written = std::fs::read_to_string(dir.join("results").join("bench").join("unit.json"))
            .expect("json written");
        assert!(written.contains("\"id\": \"alpha\""));
        assert!(written.trim_start().starts_with('['));
        assert!(written.trim_end().ends_with(']'));
    }

    #[test]
    fn report_value_lands_in_records_and_json() {
        let dir = std::env::temp_dir().join("vlsi-testkit-bench-d");
        let mut c = quiet_criterion(&dir);
        c.report_value("scale/peak_rss_bytes", 123456789.0);
        assert_eq!(c.records.len(), 1);
        assert_eq!(c.records[0].median_ns, 123456789.0);
        assert_eq!(c.records[0].samples, 1);
        c.finalize();
        let written = std::fs::read_to_string(dir.join("results").join("bench").join("unit.json"))
            .expect("json written");
        assert!(written.contains("\"id\": \"scale/peak_rss_bytes\""));
        assert!(written.contains("\"median_ns\": 123456789.0"));
    }

    #[test]
    fn benchmark_id_formats_match_criterion() {
        assert_eq!(BenchmarkId::new("ml", "0pct").0, "ml/0pct");
        assert_eq!(BenchmarkId::from_parameter(3).0, "3");
    }

    #[test]
    fn json_string_escapes_specials() {
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
    }

    #[test]
    fn percentile_handles_small_samples() {
        let v = vec![1.0, 2.0, 3.0];
        assert_eq!(percentile(&v, 0.5), 2.0);
        assert_eq!(percentile(&v, 0.95), 3.0);
    }
}
