//! Self-contained test infrastructure for the fixed-vertices workspace:
//! a property-testing harness and a wall-clock benchmark runner, both
//! deterministic and dependency-free so the tier-1 gate
//! (`cargo build --release --offline && cargo test -q --offline`)
//! runs with no registry access at all.
//!
//! # Property testing
//!
//! [`prop_test!`] declares `#[test]` functions whose inputs are drawn from
//! a generator (any `Fn(&mut TestRng) -> T`). Each named test gets a
//! *fixed-seed corpus* — the case seeds are a pure function of the test
//! name — so a failure reproduces on every rerun without recording
//! anything. On failure the input is [shrunk](Shrink) to a minimal
//! counterexample before reporting.
//!
//! ```
//! use vlsi_testkit::{prop_test, gen, TestRng};
//! use vlsi_rng::Rng;
//!
//! prop_test! {
//!     #[cases(32)]
//!     fn sum_is_commutative((a, b) in |rng: &mut TestRng| {
//!         (rng.gen_range(0u64..1000), rng.gen_range(0u64..1000))
//!     }) {
//!         assert_eq!(a + b, b + a);
//!     }
//! }
//! # fn main() {}
//! ```
//!
//! Environment knobs: `TESTKIT_CASES` multiplies/overrides the per-test
//! case count; `TESTKIT_SEED` re-bases every corpus (for fuzzing beyond
//! the checked-in seeds).
//!
//! # Benchmarks
//!
//! [`mod@bench`] mirrors the slice of the criterion API the bench targets
//! use (`criterion_group!`, `criterion_main!`, groups, `bench_with_input`)
//! and writes median/p95 JSON records under `results/bench/`.

#![forbid(unsafe_code)]

pub mod bench;
pub mod gen;
pub mod prop;
mod shrink;

pub use prop::{check, PropConfig};
pub use shrink::Shrink;

/// The generator driving every property-test corpus.
pub type TestRng = vlsi_rng::Xoshiro256PlusPlus;
