//! Top-down recursive-bisection standard-cell placement with terminal
//! propagation.
//!
//! This crate is the *application* that motivates the paper: "In top-down
//! placement, the input to the partitioner is never a free hypergraph.
//! Rather, the input contains fixed terminals that arise from the chip
//! I/Os or from the propagated terminals of other subproblems in the
//! partitioning hierarchy." Every bisection the placer performs calls the
//! multilevel partitioner of [`vlsi_partition`] with exactly such
//! fixed-terminal instances (Dunlop–Kernighan terminal propagation).
//!
//! # Example
//!
//! ```
//! use vlsi_rng::SeedableRng;
//! use vlsi_netgen::synthetic::{Generator, GeneratorConfig};
//! use vlsi_placer::{hpwl, PlacerConfig, TopDownPlacer};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let circuit = Generator::new(GeneratorConfig {
//!     num_cells: 200,
//!     ..GeneratorConfig::default()
//! })
//! .generate(3);
//!
//! let placer = TopDownPlacer::new(PlacerConfig::default());
//! let mut rng = vlsi_rng::ChaCha8Rng::seed_from_u64(5);
//! let placement = placer.place_circuit(&circuit, &mut rng)?;
//! let wl = hpwl(&circuit.hypergraph, &placement.positions);
//! assert!(wl > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod legalize;
mod topdown;
mod wirelength;

pub use legalize::{legalize_rows, Legalized};
pub use topdown::{Placement, PlacerConfig, TopDownPlacer};
pub use wirelength::{hpwl, net_hpwl};
