//! The recursive-bisection placement engine.

use vlsi_rng::Rng;

use vlsi_hypergraph::{
    BalanceConstraint, FixedVertices, Hypergraph, HypergraphBuilder, PartId, VertexId,
};
use vlsi_netgen::{Circuit, Point, Rect};
use vlsi_partition::{MultilevelConfig, MultilevelPartitioner, PartitionError};

/// Configuration of the top-down placer.
///
/// # Example
/// ```
/// use vlsi_placer::PlacerConfig;
/// let cfg = PlacerConfig::default();
/// assert!(cfg.terminal_propagation);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PlacerConfig {
    /// Blocks with at most this many cells are placed directly (end case).
    pub min_block_cells: usize,
    /// Balance tolerance of each bisection (relative to the area split).
    pub balance_tolerance: f64,
    /// Multilevel partitioner settings used for every bisection.
    pub ml_config: MultilevelConfig,
    /// Propagate terminals from outside each block (Dunlop–Kernighan).
    /// Disabling this is the ablation that shows why the fixed-terminals
    /// regime matters: bisections become free-hypergraph instances.
    pub terminal_propagation: bool,
}

impl Default for PlacerConfig {
    fn default() -> Self {
        PlacerConfig {
            min_block_cells: 8,
            balance_tolerance: 0.1,
            ml_config: MultilevelConfig::default(),
            terminal_propagation: true,
        }
    }
}

/// The result of placement: a position for every vertex, and counters about
/// the partitioning instances the run generated.
#[derive(Debug, Clone, PartialEq)]
pub struct Placement {
    /// Position of every vertex (pads keep their input positions).
    pub positions: Vec<Point>,
    /// Number of bisection instances solved.
    pub num_bisections: usize,
    /// Total number of fixed terminal vertices over all bisection instances
    /// (they exist only when terminal propagation is on).
    pub total_terminals: usize,
    /// Total number of movable vertices over all bisection instances.
    pub total_movables: usize,
}

impl Placement {
    /// Average fraction of fixed vertices per bisection instance — directly
    /// comparable to the paper's Table I expectations.
    pub fn avg_fixed_fraction(&self) -> f64 {
        let total = self.total_terminals + self.total_movables;
        if total == 0 {
            0.0
        } else {
            self.total_terminals as f64 / total as f64
        }
    }
}

/// Top-down recursive-bisection placer built on the multilevel partitioner.
#[derive(Debug, Clone, Default)]
pub struct TopDownPlacer {
    config: PlacerConfig,
}

impl TopDownPlacer {
    /// Creates a placer.
    pub fn new(config: PlacerConfig) -> Self {
        TopDownPlacer { config }
    }

    /// The placer's configuration.
    pub fn config(&self) -> &PlacerConfig {
        &self.config
    }

    /// Places a generated [`Circuit`]: cells are placed inside the die, pads
    /// stay at their boundary locations.
    ///
    /// # Errors
    /// Propagates partitioning failures (infeasible bisection balances).
    pub fn place_circuit<R: Rng + ?Sized>(
        &self,
        circuit: &Circuit,
        rng: &mut R,
    ) -> Result<Placement, PartitionError> {
        let anchored: Vec<Option<Point>> = circuit
            .hypergraph
            .vertices()
            .map(|v| circuit.is_pad(v).then(|| circuit.location(v)))
            .collect();
        self.place(&circuit.hypergraph, &anchored, circuit.die, rng)
    }

    /// Like [`TopDownPlacer::place_circuit`] but returns, for every
    /// bisection instance the run generated, its `(movable, terminal)`
    /// vertex counts — the raw data for comparing the placement hierarchy
    /// against Rent's-rule expectations (the paper's Table I).
    ///
    /// # Errors
    /// Propagates partitioning failures.
    pub fn place_circuit_profiled<R: Rng + ?Sized>(
        &self,
        circuit: &Circuit,
        rng: &mut R,
    ) -> Result<Vec<(usize, usize)>, PartitionError> {
        let anchored: Vec<Option<Point>> = circuit
            .hypergraph
            .vertices()
            .map(|v| circuit.is_pad(v).then(|| circuit.location(v)))
            .collect();
        let mut profile = Vec::new();
        self.place_impl(
            &circuit.hypergraph,
            &anchored,
            circuit.die,
            rng,
            Some(&mut profile),
        )?;
        Ok(profile)
    }

    /// Places a hypergraph inside `die`. `anchored[v] = Some(point)` pins
    /// vertex `v` (e.g. a pad) at a location; all other vertices are placed.
    ///
    /// # Errors
    /// Propagates partitioning failures.
    ///
    /// # Panics
    /// Panics if `anchored.len() != hg.num_vertices()`.
    pub fn place<R: Rng + ?Sized>(
        &self,
        hg: &Hypergraph,
        anchored: &[Option<Point>],
        die: Rect,
        rng: &mut R,
    ) -> Result<Placement, PartitionError> {
        self.place_impl(hg, anchored, die, rng, None)
    }

    fn place_impl<R: Rng + ?Sized>(
        &self,
        hg: &Hypergraph,
        anchored: &[Option<Point>],
        die: Rect,
        rng: &mut R,
        mut profile: Option<&mut Vec<(usize, usize)>>,
    ) -> Result<Placement, PartitionError> {
        assert_eq!(anchored.len(), hg.num_vertices(), "anchored length");
        let cfg = &self.config;
        let ml = MultilevelPartitioner::new(cfg.ml_config);

        // Current position of every vertex: anchored vertices stay put,
        // movable ones live at the centre of their current block.
        let mut positions: Vec<Point> = anchored
            .iter()
            .map(|a| a.unwrap_or_else(|| die.center()))
            .collect();

        let movable: Vec<VertexId> = hg
            .vertices()
            .filter(|v| anchored[v.index()].is_none())
            .collect();

        // Breadth-first over blocks, so when a block is bisected every other
        // block has been refined to the same level and the propagated
        // terminal positions are equally accurate (Dunlop–Kernighan).
        let mut queue: std::collections::VecDeque<(Rect, Vec<VertexId>)> =
            std::collections::VecDeque::from([(die, movable)]);
        let mut num_bisections = 0usize;
        let mut total_terminals = 0usize;
        let mut total_movables = 0usize;

        while let Some((rect, cells)) = queue.pop_front() {
            if cells.len() <= cfg.min_block_cells {
                place_end_case(&mut positions, &rect, &cells);
                continue;
            }
            let vertical = rect.width() >= rect.height();
            let (r0, r1) = if vertical {
                rect.split_vertical()
            } else {
                rect.split_horizontal()
            };

            // Build the bisection instance: block cells + propagated
            // terminals from everything outside the block they connect to.
            let mut in_block = vec![false; hg.num_vertices()];
            for &v in &cells {
                in_block[v.index()] = true;
            }
            let mut builder = HypergraphBuilder::new();
            let mut sub_of = vec![None::<VertexId>; hg.num_vertices()];
            for &v in &cells {
                sub_of[v.index()] = Some(builder.add_vertex(hg.vertex_weight(v)));
            }
            let mut terminal_sides: Vec<PartId> = Vec::new();
            let mut terminal_ids = std::collections::HashMap::<u32, VertexId>::new();
            let mut nets: Vec<(u64, Vec<VertexId>)> = Vec::new();
            for n in hg.nets() {
                let pins = hg.net_pins(n);
                if !pins.iter().any(|&p| in_block[p.index()]) {
                    continue;
                }
                let mut new_pins = Vec::with_capacity(pins.len());
                for &p in pins {
                    if let Some(s) = sub_of[p.index()] {
                        new_pins.push(s);
                    } else if cfg.terminal_propagation {
                        let next = cells.len() + terminal_ids.len();
                        let t = *terminal_ids.entry(p.0).or_insert_with(|| {
                            let pos = positions[p.index()];
                            let side = if vertical {
                                u32::from(pos.x >= (rect.x0 + rect.x1) / 2.0)
                            } else {
                                u32::from(pos.y >= (rect.y0 + rect.y1) / 2.0)
                            };
                            terminal_sides.push(PartId(side));
                            VertexId::from_index(next)
                        });
                        if !new_pins.contains(&t) {
                            new_pins.push(t);
                        }
                    }
                }
                if new_pins.len() >= 2 {
                    nets.push((hg.net_weight(n), new_pins));
                }
            }
            for _ in 0..terminal_ids.len() {
                builder.add_vertex(0);
            }
            for (w, pins) in nets {
                builder.add_net(w, pins).expect("valid bisection net");
            }
            let sub_hg = builder.build().expect("valid bisection instance");
            let mut sub_fixed = FixedVertices::all_free(sub_hg.num_vertices());
            for (i, &side) in terminal_sides.iter().enumerate() {
                sub_fixed.fix(VertexId::from_index(cells.len() + i), side);
            }

            // The balance slack must admit the block's largest cell (blocks
            // deep in the hierarchy are often dominated by one macro); real
            // top-down placers shift the cutline in exactly this way.
            let wmax = cells
                .iter()
                .map(|&v| hg.vertex_weight(v))
                .max()
                .unwrap_or(0);
            let rel_slack = (sub_hg.total_weight() as f64 * cfg.balance_tolerance / 2.0) as u64;
            let balance = BalanceConstraint::bisection(
                sub_hg.total_weight(),
                vlsi_hypergraph::Tolerance::Absolute(rel_slack.max(wmax)),
            );
            let result = ml.run(&sub_hg, &sub_fixed, &balance, rng)?;

            num_bisections += 1;
            total_terminals += terminal_sides.len();
            total_movables += cells.len();
            if let Some(profile) = profile.as_deref_mut() {
                profile.push((cells.len(), terminal_sides.len()));
            }

            let mut left = Vec::new();
            let mut right = Vec::new();
            for (i, &v) in cells.iter().enumerate() {
                if result.parts[i] == PartId(0) {
                    left.push(v);
                } else {
                    right.push(v);
                }
            }
            // A macro-dominated block can legally end up entirely on one
            // side; splitting must still make progress or the recursion
            // would never terminate. Fall back to an even split by index.
            if left.is_empty() || right.is_empty() {
                let mut all = std::mem::take(if left.is_empty() {
                    &mut right
                } else {
                    &mut left
                });
                let half = all.len() / 2;
                right = all.split_off(half);
                left = all;
            }
            for &v in &left {
                positions[v.index()] = r0.center();
            }
            for &v in &right {
                positions[v.index()] = r1.center();
            }
            if !left.is_empty() {
                queue.push_back((r0, left));
            }
            if !right.is_empty() {
                queue.push_back((r1, right));
            }
        }

        Ok(Placement {
            positions,
            num_bisections,
            total_terminals,
            total_movables,
        })
    }
}

/// End case: spread the block's cells over a small grid inside the block.
fn place_end_case(positions: &mut [Point], rect: &Rect, cells: &[VertexId]) {
    if cells.is_empty() {
        return;
    }
    let cols = (cells.len() as f64).sqrt().ceil() as usize;
    let rows = cells.len().div_ceil(cols);
    for (i, &v) in cells.iter().enumerate() {
        let (r, c) = (i / cols, i % cols);
        positions[v.index()] = Point::new(
            rect.x0 + rect.width() * (c as f64 + 0.5) / cols as f64,
            rect.y0 + rect.height() * (r as f64 + 0.5) / rows as f64,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vlsi_netgen::synthetic::{Generator, GeneratorConfig};
    use vlsi_rng::ChaCha8Rng;
    use vlsi_rng::SeedableRng;

    use crate::wirelength::hpwl;

    fn circuit(cells: usize, seed: u64) -> Circuit {
        Generator::new(GeneratorConfig {
            num_cells: cells,
            ..GeneratorConfig::default()
        })
        .generate(seed)
    }

    fn fast_config() -> PlacerConfig {
        PlacerConfig {
            ml_config: MultilevelConfig {
                coarsest_size: 30,
                coarse_starts: 2,
                ..MultilevelConfig::default()
            },
            ..PlacerConfig::default()
        }
    }

    #[test]
    fn places_all_cells_inside_die() {
        let c = circuit(150, 1);
        let placer = TopDownPlacer::new(fast_config());
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let placement = placer.place_circuit(&c, &mut rng).unwrap();
        for v in c.cells() {
            let p = placement.positions[v.index()];
            assert!(c.die.contains(p), "cell {v} at {p:?} outside die");
        }
        // Pads untouched.
        for pad in c.pads() {
            assert_eq!(placement.positions[pad.index()], c.location(pad));
        }
    }

    #[test]
    fn generates_fixed_terminal_instances() {
        let c = circuit(300, 3);
        let placer = TopDownPlacer::new(fast_config());
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let placement = placer.place_circuit(&c, &mut rng).unwrap();
        assert!(placement.num_bisections > 10);
        assert!(placement.total_terminals > 0);
        // The paper's core claim about the placement context: a noticeable
        // share of each instance's vertices are fixed.
        assert!(
            placement.avg_fixed_fraction() > 0.05,
            "avg fixed fraction {}",
            placement.avg_fixed_fraction()
        );
    }

    #[test]
    fn terminal_propagation_improves_wirelength() {
        let c = circuit(400, 5);
        let with = TopDownPlacer::new(fast_config());
        let without = TopDownPlacer::new(PlacerConfig {
            terminal_propagation: false,
            ..fast_config()
        });
        // Average over a few seeds to damp noise.
        let (mut wl_with, mut wl_without) = (0.0, 0.0);
        for seed in 0..3 {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let p1 = with.place_circuit(&c, &mut rng).unwrap();
            wl_with += hpwl(&c.hypergraph, &p1.positions);
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let p2 = without.place_circuit(&c, &mut rng).unwrap();
            wl_without += hpwl(&c.hypergraph, &p2.positions);
        }
        assert!(
            wl_with < wl_without,
            "terminal propagation should reduce HPWL: {wl_with} vs {wl_without}"
        );
        // And without propagation there are no terminals at all.
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let p2 = without.place_circuit(&c, &mut rng).unwrap();
        assert_eq!(p2.total_terminals, 0);
    }

    #[test]
    fn placement_beats_random_wirelength() {
        let c = circuit(300, 7);
        let placer = TopDownPlacer::new(fast_config());
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let placement = placer.place_circuit(&c, &mut rng).unwrap();
        let placed_wl = hpwl(&c.hypergraph, &placement.positions);

        // Random placement baseline.
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let random: Vec<Point> = c
            .hypergraph
            .vertices()
            .map(|v| {
                if c.is_pad(v) {
                    c.location(v)
                } else {
                    Point::new(
                        rng.gen_range(c.die.x0..c.die.x1),
                        rng.gen_range(c.die.y0..c.die.y1),
                    )
                }
            })
            .collect();
        let random_wl = hpwl(&c.hypergraph, &random);
        assert!(
            placed_wl < random_wl * 0.8,
            "placed {placed_wl} vs random {random_wl}"
        );
    }

    #[test]
    fn anchored_vertices_never_move() {
        let c = circuit(60, 11);
        let placer = TopDownPlacer::new(fast_config());
        let mut anchored: Vec<Option<Point>> = c
            .hypergraph
            .vertices()
            .map(|v| c.is_pad(v).then(|| c.location(v)))
            .collect();
        // Additionally anchor one cell mid-die.
        let pinned = VertexId(5);
        let pin_pos = Point::new(1.0, 1.0);
        anchored[pinned.index()] = Some(pin_pos);
        let mut rng = ChaCha8Rng::seed_from_u64(12);
        let placement = placer
            .place(&c.hypergraph, &anchored, c.die, &mut rng)
            .unwrap();
        assert_eq!(placement.positions[pinned.index()], pin_pos);
    }

    #[test]
    fn end_case_grid_is_disjointish() {
        let mut positions = vec![Point::default(); 4];
        let rect = Rect::new(0.0, 0.0, 2.0, 2.0);
        let cells: Vec<VertexId> = (0..4).map(VertexId).collect();
        place_end_case(&mut positions, &rect, &cells);
        for i in 0..4 {
            for j in (i + 1)..4 {
                assert_ne!(positions[i], positions[j]);
            }
            assert!(rect.contains(positions[i]));
        }
    }
}
