//! Row-based legalization: snap a global placement into non-overlapping
//! standard-cell rows (tetris-style greedy packing).
//!
//! The top-down placer leaves cells at block centres; a real standard-cell
//! layout puts them in rows with no overlap. This legalizer scales cell
//! widths so the total area exactly fills `num_rows` rows across the die,
//! assigns every movable cell to the nearest row with remaining capacity,
//! and packs each row left to right in x order.

use vlsi_hypergraph::Hypergraph;
use vlsi_netgen::{Point, Rect};

/// Result of legalization: final positions plus displacement statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct Legalized {
    /// Position of every vertex (anchored vertices keep their input
    /// positions).
    pub positions: Vec<Point>,
    /// Mean distance moved by the legalized cells.
    pub mean_displacement: f64,
    /// Largest distance moved by any cell.
    pub max_displacement: f64,
}

/// Legalizes `positions` into `num_rows` rows inside `die`. Vertices with
/// `anchored[v] = true` (pads) are left untouched and consume no row
/// capacity; zero-weight movable vertices get a minimal width.
///
/// # Panics
/// Panics if the shapes disagree or `num_rows == 0`.
///
/// # Example
/// ```
/// use vlsi_hypergraph::HypergraphBuilder;
/// use vlsi_netgen::{Point, Rect};
/// use vlsi_placer::legalize_rows;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = HypergraphBuilder::new();
/// for _ in 0..4 {
///     b.add_vertex(1);
/// }
/// let hg = b.build()?;
/// let die = Rect::new(0.0, 0.0, 4.0, 2.0);
/// // All four cells stacked on one point: legalization must separate them.
/// let pos = vec![Point::new(2.0, 1.0); 4];
/// let out = legalize_rows(&hg, &pos, &[false; 4], die, 2);
/// for i in 0..4 {
///     for j in (i + 1)..4 {
///         let (a, b) = (out.positions[i], out.positions[j]);
///         assert!((a.x - b.x).abs() > 1e-9 || (a.y - b.y).abs() > 1e-9);
///     }
/// }
/// # Ok(())
/// # }
/// ```
pub fn legalize_rows(
    hg: &Hypergraph,
    positions: &[Point],
    anchored: &[bool],
    die: Rect,
    num_rows: usize,
) -> Legalized {
    assert_eq!(positions.len(), hg.num_vertices(), "positions length");
    assert_eq!(anchored.len(), hg.num_vertices(), "anchored length");
    assert!(num_rows > 0, "need at least one row");

    let movable: Vec<usize> = (0..hg.num_vertices()).filter(|&i| !anchored[i]).collect();
    let mut out = positions.to_vec();
    if movable.is_empty() {
        return Legalized {
            positions: out,
            mean_displacement: 0.0,
            max_displacement: 0.0,
        };
    }

    // Scale areas to widths that fill the rows with a small safety margin
    // (so greedy packing can never be forced off-die); cells wider than a
    // row — oversized macros — are capped at the row width.
    let total_area: u64 = movable
        .iter()
        .map(|&i| {
            hg.vertex_weight(vlsi_hypergraph::VertexId::from_index(i))
                .max(1)
        })
        .sum();
    let capacity = die.width() * num_rows as f64;
    let scale = 0.97 * capacity / total_area as f64;
    let width = |i: usize| -> f64 {
        let w = hg
            .vertex_weight(vlsi_hypergraph::VertexId::from_index(i))
            .max(1) as f64
            * scale;
        w.min(die.width() * 0.999)
    };

    let row_height = die.height() / num_rows as f64;
    let row_y = |r: usize| die.y0 + (r as f64 + 0.5) * row_height;
    let preferred_row = |p: Point| -> usize {
        (((p.y - die.y0) / row_height).floor() as isize).clamp(0, num_rows as isize - 1) as usize
    };

    // Sort the cells by (preferred row, x) and fill rows greedily; when a
    // row is full, spill to the nearest row with room.
    let mut order = movable.clone();
    order.sort_by(|&a, &b| {
        let (ra, rb) = (preferred_row(positions[a]), preferred_row(positions[b]));
        ra.cmp(&rb)
            .then(positions[a].x.total_cmp(&positions[b].x))
            .then(a.cmp(&b))
    });
    let mut cursor = vec![0.0f64; num_rows];

    let mut disp_sum = 0.0;
    let mut disp_max = 0.0f64;
    for &i in &order {
        let w = width(i);
        let want = preferred_row(positions[i]);
        // Nearest row (by |delta|) whose remaining width fits the cell;
        // fall back to the emptiest row if nothing fits cleanly.
        let mut chosen = None;
        for delta in 0..num_rows as isize {
            for cand in [want as isize - delta, want as isize + delta] {
                if cand < 0 || cand >= num_rows as isize {
                    continue;
                }
                let r = cand as usize;
                if cursor[r] + w <= die.width() + 1e-9 {
                    chosen = Some(r);
                    break;
                }
            }
            if chosen.is_some() {
                break;
            }
        }
        let r = chosen.unwrap_or_else(|| {
            (0..num_rows)
                .min_by(|&a, &b| cursor[a].total_cmp(&cursor[b]))
                .expect("num_rows > 0")
        });
        // In the pathological fallback (every row full, e.g. macros wider
        // than rows) clamp onto the die; the slight overlap there mirrors
        // how production legalizers defer oversized macros to floorplanning.
        let x = (die.x0 + cursor[r] + w / 2.0)
            .min(die.x1 - w / 2.0)
            .max(die.x0 + w / 2.0);
        cursor[r] += w;
        let new = Point::new(x, row_y(r));
        let d = ((new.x - positions[i].x).powi(2) + (new.y - positions[i].y).powi(2)).sqrt();
        disp_sum += d;
        disp_max = disp_max.max(d);
        out[i] = new;
    }

    Legalized {
        positions: out,
        mean_displacement: disp_sum / movable.len() as f64,
        max_displacement: disp_max,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vlsi_hypergraph::HypergraphBuilder;
    use vlsi_netgen::synthetic::{Generator, GeneratorConfig};
    use vlsi_rng::ChaCha8Rng;
    use vlsi_rng::SeedableRng;

    use crate::{hpwl, PlacerConfig, TopDownPlacer};

    #[test]
    fn rows_never_overlap() {
        let circuit = Generator::new(GeneratorConfig {
            num_cells: 200,
            ..GeneratorConfig::default()
        })
        .generate(3);
        let anchored: Vec<bool> = circuit
            .hypergraph
            .vertices()
            .map(|v| circuit.is_pad(v))
            .collect();
        let out = legalize_rows(
            &circuit.hypergraph,
            &circuit.placement,
            &anchored,
            circuit.die,
            14,
        );
        // Reconstruct intervals per row (same width formula as the
        // implementation) and assert disjointness.
        let scale = 0.97 * circuit.die.width() * 14.0
            / circuit
                .cells()
                .map(|v| circuit.hypergraph.vertex_weight(v).max(1))
                .sum::<u64>() as f64;
        let mut rows: std::collections::HashMap<i64, Vec<(f64, f64)>> = Default::default();
        for v in circuit.cells() {
            let p = out.positions[v.index()];
            let w = (circuit.hypergraph.vertex_weight(v).max(1) as f64 * scale)
                .min(circuit.die.width() * 0.999);
            rows.entry((p.y * 1000.0) as i64)
                .or_default()
                .push((p.x - w / 2.0, p.x + w / 2.0));
        }
        for intervals in rows.values_mut() {
            intervals.sort_by(|a, b| a.0.total_cmp(&b.0));
            for pair in intervals.windows(2) {
                assert!(
                    pair[0].1 <= pair[1].0 + 1e-6,
                    "overlap: {:?} vs {:?}",
                    pair[0],
                    pair[1]
                );
            }
        }
        // Everything stays on the die.
        for v in circuit.cells() {
            assert!(circuit.die.contains(out.positions[v.index()]));
        }
    }

    #[test]
    fn anchored_cells_untouched_and_zero_when_empty() {
        let mut b = HypergraphBuilder::new();
        let v0 = b.add_vertex(1);
        let hg = b.build().unwrap();
        let die = Rect::new(0.0, 0.0, 2.0, 2.0);
        let pos = vec![Point::new(1.5, 1.5)];
        let out = legalize_rows(&hg, &pos, &[true], die, 2);
        assert_eq!(out.positions[v0.index()], pos[0]);
        assert_eq!(out.mean_displacement, 0.0);
    }

    #[test]
    fn legalization_keeps_wirelength_in_the_same_regime() {
        let circuit = Generator::new(GeneratorConfig {
            num_cells: 300,
            ..GeneratorConfig::default()
        })
        .generate(5);
        let placer = TopDownPlacer::new(PlacerConfig::default());
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let placement = placer.place_circuit(&circuit, &mut rng).unwrap();
        let before = hpwl(&circuit.hypergraph, &placement.positions);
        let anchored: Vec<bool> = circuit
            .hypergraph
            .vertices()
            .map(|v| circuit.is_pad(v))
            .collect();
        let out = legalize_rows(
            &circuit.hypergraph,
            &placement.positions,
            &anchored,
            circuit.die,
            17,
        );
        let after = hpwl(&circuit.hypergraph, &out.positions);
        assert!(
            after < before * 1.8,
            "legalization should not destroy the placement: {before} -> {after}"
        );
        assert!(out.max_displacement <= circuit.die.width() + circuit.die.height());
    }

    #[test]
    fn heavy_cells_get_wide_slots() {
        let mut b = HypergraphBuilder::new();
        let big = b.add_vertex(10);
        let small: Vec<_> = (0..10).map(|_| b.add_vertex(1)).collect();
        let hg = b.build().unwrap();
        let die = Rect::new(0.0, 0.0, 10.0, 2.0);
        let pos = vec![Point::new(5.0, 0.5); 11];
        let out = legalize_rows(&hg, &pos, &[false; 11], die, 2);
        // Total width = 20 over 2 rows of width 10: exactly full. The big
        // cell occupies half a row; everything must still fit on-die.
        for v in hg.vertices() {
            assert!(die.contains(out.positions[v.index()]), "{v}");
        }
        let _ = (big, small);
    }
}
