//! Half-perimeter wirelength (HPWL) evaluation.

use vlsi_hypergraph::{Hypergraph, NetId};
use vlsi_netgen::Point;

/// Half-perimeter bounding-box wirelength of one net.
///
/// # Panics
/// Panics if the net is out of range or `positions` is too short.
///
/// # Example
/// ```
/// use vlsi_hypergraph::{HypergraphBuilder, NetId};
/// use vlsi_netgen::Point;
/// use vlsi_placer::net_hpwl;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = HypergraphBuilder::new();
/// let u = b.add_vertex(1);
/// let v = b.add_vertex(1);
/// b.add_net(1, [u, v])?;
/// let hg = b.build()?;
/// let pos = vec![Point::new(0.0, 0.0), Point::new(3.0, 4.0)];
/// assert_eq!(net_hpwl(&hg, NetId(0), &pos), 7.0);
/// # Ok(())
/// # }
/// ```
pub fn net_hpwl(hg: &Hypergraph, net: NetId, positions: &[Point]) -> f64 {
    let pins = hg.net_pins(net);
    let mut min_x = f64::INFINITY;
    let mut max_x = f64::NEG_INFINITY;
    let mut min_y = f64::INFINITY;
    let mut max_y = f64::NEG_INFINITY;
    for &p in pins {
        let pos = positions[p.index()];
        min_x = min_x.min(pos.x);
        max_x = max_x.max(pos.x);
        min_y = min_y.min(pos.y);
        max_y = max_y.max(pos.y);
    }
    if pins.is_empty() {
        0.0
    } else {
        (max_x - min_x) + (max_y - min_y)
    }
}

/// Total weighted HPWL over all nets.
pub fn hpwl(hg: &Hypergraph, positions: &[Point]) -> f64 {
    hg.nets()
        .map(|n| hg.net_weight(n) as f64 * net_hpwl(hg, n, positions))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vlsi_hypergraph::HypergraphBuilder;

    #[test]
    fn single_pin_net_is_zero() {
        let mut b = HypergraphBuilder::new();
        let u = b.add_vertex(1);
        b.add_net(1, [u]).unwrap();
        let hg = b.build().unwrap();
        assert_eq!(net_hpwl(&hg, NetId(0), &[Point::new(5.0, 5.0)]), 0.0);
    }

    #[test]
    fn weighted_total() {
        let mut b = HypergraphBuilder::new();
        let u = b.add_vertex(1);
        let v = b.add_vertex(1);
        let w = b.add_vertex(1);
        b.add_net(2, [u, v]).unwrap();
        b.add_net(1, [v, w]).unwrap();
        let hg = b.build().unwrap();
        let pos = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(1.0, 2.0),
        ];
        assert_eq!(hpwl(&hg, &pos), 2.0 * 1.0 + 1.0 * 2.0);
    }

    #[test]
    fn multi_pin_bounding_box() {
        let mut b = HypergraphBuilder::new();
        let v: Vec<_> = (0..3).map(|_| b.add_vertex(1)).collect();
        b.add_net(1, v.clone()).unwrap();
        let hg = b.build().unwrap();
        let pos = vec![
            Point::new(0.0, 0.0),
            Point::new(2.0, 5.0),
            Point::new(4.0, 1.0),
        ];
        assert_eq!(net_hpwl(&hg, NetId(0), &pos), 4.0 + 5.0);
    }
}
