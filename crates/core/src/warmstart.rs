//! Warm-started refinement: seed k-way FM from an existing partition.
//!
//! The paper's central empirical finding is that instances with a
//! substantial fixed fraction converge in one or two multistarts —
//! constrained runs are *cheap*. A serving layer exploits that by keeping
//! completed solutions around and, when a client submits a slightly
//! changed instance, refining the old assignment instead of partitioning
//! from scratch. This module is that entry point:
//! [`refine_from_partition_ctx`] takes a seed assignment (typically a
//! cached solution for a nearby instance), **re-legalizes** it against the
//! current fixity table and balance constraint, and then runs the k-way FM
//! refinement loop from the legalized seed.
//!
//! Legalization is deterministic and purely structural — no RNG is drawn —
//! so a warm run's result depends only on `(instance, seed assignment,
//! objective, max_passes, thread regime)`:
//!
//! 1. Every vertex whose seed part is out of range or forbidden by its
//!    fixity is relocated to its fixed part (or the lowest-indexed allowed
//!    part).
//! 2. While a part is over its balance ceiling, the lightest movable
//!    vertex in it (ties: lowest id) moves to the allowed part with the
//!    most headroom (ties: lowest index). Underfull parts are filled the
//!    same way, from the part with the most surplus.
//!
//! One [`Event::WarmStart`] is emitted after legalization with the
//! reused/relocated split and the seed objective value, then refinement
//! proceeds exactly as [`KwayRefiner`](crate::KwayRefiner) would: the
//! thread budget in the [`RunCtx`] selects the sequential pass (≤ 1) or
//! the synchronous-round parallel engine (≥ 2), both deterministic.

use vlsi_rng::Rng;
use vlsi_trace::{Event, Sink};

use vlsi_hypergraph::{
    BalanceConstraint, CutState, FixedVertices, Fixity, Hypergraph, Objective, PartId,
    Partitioning, VertexId,
};

use crate::engine::RunCtx;
use crate::kway;
use crate::{PartitionError, PartitionResult};

/// Result of a warm-started refinement run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WarmStartOutcome {
    /// The refined partition and its objective value.
    pub result: PartitionResult,
    /// Vertices the legalization stage had to relocate before refinement
    /// (0 when the seed was already legal for the current instance).
    pub relocated: usize,
}

fn infeasible(detail: String) -> PartitionError {
    PartitionError::InfeasibleInstance {
        vertex: None,
        detail,
    }
}

/// The lowest-indexed part `fx` allows below `k`, if any.
fn lowest_allowed(fx: Fixity, k: usize) -> Option<PartId> {
    (0..k).map(PartId::from_index).find(|&p| fx.allows(p))
}

/// Stage 1: clamp the seed onto the current fixity table and part count.
/// Returns the clamped assignment and how many vertices moved.
fn clamp_to_fixity(
    seed: &[PartId],
    fixed: &FixedVertices,
    k: usize,
) -> Result<(Vec<PartId>, usize), PartitionError> {
    let mut parts = Vec::with_capacity(seed.len());
    let mut relocated = 0usize;
    for (i, &p) in seed.iter().enumerate() {
        let v = VertexId::from_index(i);
        let fx = if i < fixed.len() {
            fixed.fixity(v)
        } else {
            Fixity::Free
        };
        let in_range = p.index() < k;
        if in_range && fx.allows(p) {
            parts.push(p);
            continue;
        }
        let target = lowest_allowed(fx, k)
            .ok_or_else(|| infeasible(format!("vertex {i}: fixity allows no part below {k}")))?;
        parts.push(target);
        relocated += 1;
    }
    Ok((parts, relocated))
}

/// Per-resource headroom of `part`: the minimum of `max - load` over all
/// resources (0 when any resource is at or over its ceiling).
fn headroom(pt: &Partitioning, balance: &BalanceConstraint, part: PartId, resources: usize) -> u64 {
    (0..resources)
        .map(|r| balance.max(part, r).saturating_sub(pt.load(part, r)))
        .min()
        .unwrap_or(0)
}

/// Whether moving a vertex with `weights` into `part` keeps every resource
/// at or under its ceiling.
fn fits_after_add(
    pt: &Partitioning,
    balance: &BalanceConstraint,
    part: PartId,
    weights: &[u64],
    resources: usize,
) -> bool {
    (0..resources)
        .all(|r| pt.load(part, r) + weights.get(r).copied().unwrap_or(0) <= balance.max(part, r))
}

/// Repairs an arbitrary assignment to full legality (fixity, then balance)
/// without refining — the shared pre-step of the warm-start API, also used
/// by the constrained multilevel k-way driver on its coarsest-level solve.
/// Deterministic, no RNG. Returns the legal assignment and the number of
/// vertices relocated.
///
/// # Errors
/// Same repair errors as [`refine_from_partition_ctx`].
pub(crate) fn legalize_assignment(
    hg: &Hypergraph,
    fixed: &FixedVertices,
    balance: &BalanceConstraint,
    seed: &[PartId],
) -> Result<(Vec<PartId>, usize), PartitionError> {
    let k = balance.num_parts();
    let (clamped, mut relocated) = clamp_to_fixity(seed, fixed, k)?;
    let mut pt = Partitioning::from_parts(hg, k, clamped)?;
    let (moves, legal) = legalize_balance(hg, fixed, balance, &mut pt)?;
    relocated += moves;
    if !legal {
        return Err(stuck_error(balance, &pt, hg.num_resources()));
    }
    Ok((pt.into_parts(), relocated))
}

/// Best-effort variant of [`legalize_assignment`] for coarse multilevel
/// levels, where cluster granularity can make a tight vector constraint
/// unreachable by single-vertex moves even though the fine instance is
/// feasible. Fixity violations are still hard errors; a stuck balance
/// repair instead returns the partially repaired assignment with
/// `legal = false` so the caller can retry after uncoarsening.
pub(crate) fn legalize_assignment_lenient(
    hg: &Hypergraph,
    fixed: &FixedVertices,
    balance: &BalanceConstraint,
    seed: &[PartId],
) -> Result<(Vec<PartId>, usize, bool), PartitionError> {
    let k = balance.num_parts();
    let (clamped, mut relocated) = clamp_to_fixity(seed, fixed, k)?;
    let mut pt = Partitioning::from_parts(hg, k, clamped)?;
    let (moves, legal) = legalize_balance(hg, fixed, balance, &mut pt)?;
    relocated += moves;
    Ok((pt.into_parts(), relocated, legal))
}

/// The diagnostic error for a balance repair that ran out of legal moves:
/// includes per-part per-resource loads against the constraint's maxima.
fn stuck_error(
    balance: &BalanceConstraint,
    pt: &Partitioning,
    num_resources: usize,
) -> PartitionError {
    let k = balance.num_parts();
    let resources = num_resources.min(balance.num_resources());
    let loads: Vec<Vec<u64>> = (0..k)
        .map(|p| {
            (0..resources)
                .map(|r| pt.load(PartId::from_index(p), r))
                .collect()
        })
        .collect();
    let maxima: Vec<Vec<u64>> = (0..k)
        .map(|p| {
            (0..resources)
                .map(|r| balance.max(PartId::from_index(p), r))
                .collect()
        })
        .collect();
    infeasible(format!(
        "cannot re-legalize warm-start seed: balance repair ran out of legal single-vertex \
         moves (loads {loads:?}, maxima {maxima:?})"
    ))
}

/// Stage 2: greedy deterministic balance repair on a clamped assignment.
/// Returns the number of moves performed and whether the assignment ended
/// fully legal; `false` means the greedy got stuck (no movable vertex
/// fits anywhere useful) or exhausted its move budget.
fn legalize_balance(
    hg: &Hypergraph,
    fixed: &FixedVertices,
    balance: &BalanceConstraint,
    pt: &mut Partitioning,
) -> Result<(usize, bool), PartitionError> {
    let k = balance.num_parts();
    let resources = hg.num_resources().min(balance.num_resources());
    let movable = |v: VertexId, to: PartId| -> bool {
        let fx = if v.index() < fixed.len() {
            fixed.fixity(v)
        } else {
            Fixity::Free
        };
        fx.allows(to)
    };
    let weight_of = |v: VertexId| -> u64 { hg.vertex_weights(v).iter().sum() };

    let mut moves = 0usize;
    let budget = 4 * hg.num_vertices() + 16;
    for _ in 0..budget {
        // The worst overfull (part, excess) pair, then the worst underfull.
        let overfull = (0..k)
            .map(PartId::from_index)
            .filter_map(|p| {
                let excess: u64 = (0..resources)
                    .map(|r| pt.load(p, r).saturating_sub(balance.max(p, r)))
                    .max()
                    .unwrap_or(0);
                (excess > 0).then_some((p, excess))
            })
            .max_by_key(|&(p, e)| (e, std::cmp::Reverse(p.index())));
        if let Some((from, _)) = overfull {
            // Lightest movable vertex out of `from` (ties: lowest id) into
            // the allowed part with the most headroom that stays legal.
            let mut best: Option<(u64, usize, PartId)> = None;
            for v in hg.vertices().filter(|&v| pt.part_of(v) == from) {
                let w = hg.vertex_weights(v);
                let candidate = (0..k)
                    .map(PartId::from_index)
                    .filter(|&q| q != from && movable(v, q))
                    .filter(|&q| fits_after_add(pt, balance, q, w, resources))
                    .max_by_key(|&q| {
                        (
                            headroom(pt, balance, q, resources),
                            std::cmp::Reverse(q.index()),
                        )
                    });
                if let Some(q) = candidate {
                    let key = (weight_of(v), v.index(), q);
                    if best.is_none_or(|(bw, bi, _)| (key.0, key.1) < (bw, bi)) {
                        best = Some(key);
                    }
                }
            }
            // Fallback when no clean fit exists: accept any move that
            // strictly shrinks the *total* violation, even into a part
            // that is itself tight on another resource (e.g. a zero-area
            // pad entering an area-violated part to relieve a cell-count
            // ceiling elsewhere). Total violation is a non-negative
            // integer that each such move strictly decreases, so this
            // cannot cycle. Tried only after the clean-fit rule so that
            // every historically repairable seed follows the old moves.
            let best = best.or_else(|| {
                let mut fallback: Option<(i64, u64, usize, PartId)> = None;
                for v in hg.vertices() {
                    let from = pt.part_of(v);
                    let from_excess: u64 = (0..resources)
                        .map(|r| pt.load(from, r).saturating_sub(balance.max(from, r)))
                        .sum();
                    if from_excess == 0 {
                        continue;
                    }
                    let w = hg.vertex_weights(v);
                    for q in (0..k).map(PartId::from_index) {
                        if q == from || !movable(v, q) {
                            continue;
                        }
                        let delta: i64 = (0..resources)
                            .map(|r| {
                                let wr = w.get(r).copied().unwrap_or(0);
                                let max_f = balance.max(from, r);
                                let max_q = balance.max(q, r);
                                let f0 = pt.load(from, r).saturating_sub(max_f) as i64;
                                let f1 = pt.load(from, r).saturating_sub(wr).saturating_sub(max_f)
                                    as i64;
                                let q0 = pt.load(q, r).saturating_sub(max_q) as i64;
                                let q1 = (pt.load(q, r) + wr).saturating_sub(max_q) as i64;
                                (f1 - f0) + (q1 - q0)
                            })
                            .sum();
                        if delta >= 0 {
                            continue;
                        }
                        let key = (delta, weight_of(v), v.index(), q);
                        let better = fallback.is_none_or(|(bd, bw, bi, bq)| {
                            (key.0, key.1, key.2, key.3.index()) < (bd, bw, bi, bq.index())
                        });
                        if better {
                            fallback = Some(key);
                        }
                    }
                }
                fallback.map(|(_, w, vi, q)| (w, vi, q))
            });
            let Some((_, vi, to)) = best else {
                return Ok((moves, false)); // stuck: no move shrinks any violation
            };
            pt.move_vertex(hg, VertexId::from_index(vi), to);
            moves += 1;
            continue;
        }
        let underfull = (0..k)
            .map(PartId::from_index)
            .filter_map(|p| {
                let deficit: u64 = (0..resources)
                    .map(|r| balance.min(p, r).saturating_sub(pt.load(p, r)))
                    .max()
                    .unwrap_or(0);
                (deficit > 0).then_some((p, deficit))
            })
            .max_by_key(|&(p, d)| (d, std::cmp::Reverse(p.index())));
        let Some((to, _)) = underfull else {
            return Ok((moves, true)); // fully legal
        };
        // Pull the lightest movable vertex into `to` from the donor part
        // with the most surplus over its own floor.
        let mut best: Option<(u64, u64, usize)> = None; // (donor surplus desc via max_by, weight, id)
        for v in hg.vertices() {
            let from = pt.part_of(v);
            if from == to || !movable(v, to) {
                continue;
            }
            let w = hg.vertex_weights(v);
            // The donor must stay at or above its floor, and `to` at or
            // under its ceiling.
            let donor_ok = (0..resources).all(|r| {
                pt.load(from, r)
                    .saturating_sub(w.get(r).copied().unwrap_or(0))
                    >= balance.min(from, r)
            });
            if !donor_ok || !fits_after_add(pt, balance, to, w, resources) {
                continue;
            }
            let surplus: u64 = (0..resources)
                .map(|r| pt.load(from, r).saturating_sub(balance.min(from, r)))
                .min()
                .unwrap_or(0);
            let key = (surplus, weight_of(v), v.index());
            let better = match best {
                None => true,
                Some((bs, bw, bi)) => {
                    (std::cmp::Reverse(key.0), key.1, key.2) < (std::cmp::Reverse(bs), bw, bi)
                }
            };
            if better {
                best = Some(key);
            }
        }
        let Some((_, _, vi)) = best else {
            return Ok((moves, false)); // stuck: no vertex can be pulled over the floor
        };
        pt.move_vertex(hg, VertexId::from_index(vi), to);
        moves += 1;
    }
    Ok((moves, false)) // budget exhausted without reaching full legality
}

/// Seeds k-way FM refinement from an existing assignment, re-legalizing
/// fixity and balance first.
///
/// This is the engine behind the service's incremental (warm-start) API:
/// instead of partitioning from scratch, the cached assignment for a
/// nearby instance is repaired and refined for up to `max_passes` k-way FM
/// passes. The [`RunCtx`] thread budget selects the refinement regime
/// exactly as [`KwayRefiner`](crate::KwayRefiner) does — `<= 1` runs the
/// sequential LIFO pass, `>= 2` the deterministic synchronous-round
/// parallel engine. No randomness is drawn; the RNG in the context exists
/// only for [`RunCtx`] API uniformity.
///
/// Emits one [`Event::WarmStart`] (reused/relocated split and the
/// legalized seed value) before the refinement passes.
///
/// # Errors
///
/// * [`PartitionError::Input`] when `seed` has the wrong length.
/// * [`PartitionError::InfeasibleInstance`] when no legal repair exists
///   (e.g. a fixity allows no part below `k`, or the balance constraint
///   cannot be reached by single-vertex moves).
///
/// # Example
///
/// ```
/// use vlsi_rng::SeedableRng;
/// use vlsi_hypergraph::{
///     BalanceConstraint, FixedVertices, HypergraphBuilder, Objective, PartId, Tolerance,
/// };
/// use vlsi_partition::{refine_from_partition_ctx, RunCtx};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = HypergraphBuilder::new();
/// let v: Vec<_> = (0..8).map(|_| b.add_vertex(1)).collect();
/// for w in v.windows(2) {
///     b.add_net(1, [w[0], w[1]])?;
/// }
/// let hg = b.build()?;
/// let balance = BalanceConstraint::even(2, hg.total_weights(), Tolerance::Relative(0.1));
/// let fixed = FixedVertices::all_free(8);
/// // A poor but legal seed: alternating parts (every net cut).
/// let seed: Vec<PartId> = (0..8).map(|i| PartId::from_index(i % 2)).collect();
/// let mut rng = vlsi_rng::ChaCha8Rng::seed_from_u64(0);
/// let out = refine_from_partition_ctx(
///     &hg, &fixed, &balance, &seed, Objective::Cut, 8, RunCtx::new(&mut rng),
/// )?;
/// assert!(out.result.cut <= 7, "refinement only improves the seed");
/// # Ok(())
/// # }
/// ```
#[allow(clippy::too_many_arguments)]
pub fn refine_from_partition_ctx<R, S>(
    hg: &Hypergraph,
    fixed: &FixedVertices,
    balance: &BalanceConstraint,
    seed: &[PartId],
    objective: Objective,
    max_passes: usize,
    ctx: RunCtx<'_, R, S>,
) -> Result<WarmStartOutcome, PartitionError>
where
    R: Rng + ?Sized,
    S: Sink,
{
    let n = hg.num_vertices();
    if seed.len() != n {
        return Err(PartitionError::Input(
            vlsi_hypergraph::PartitionInputError::LengthMismatch {
                num_vertices: n,
                assignment_len: seed.len(),
            },
        ));
    }
    let (parts, relocated) = legalize_assignment(hg, fixed, balance, seed)?;

    if S::ENABLED {
        ctx.sink.record(&Event::WarmStart {
            reused: (n - relocated.min(n)) as u64,
            relocated: relocated as u64,
            value: CutState::new(hg, balance.num_parts(), &parts).value(objective),
        });
    }

    let result = kway::refine_threaded(
        hg,
        fixed,
        balance,
        parts,
        objective,
        max_passes,
        ctx.sink,
        ctx.cancel,
        ctx.threads,
    )?;
    Ok(WarmStartOutcome { result, relocated })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vlsi_hypergraph::{validate_partitioning, HypergraphBuilder, Tolerance};
    use vlsi_rng::{ChaCha8Rng, SeedableRng};
    use vlsi_trace::VecSink;

    /// A chain of `n` unit vertices.
    fn chain(n: usize) -> Hypergraph {
        let mut b = HypergraphBuilder::new();
        let v: Vec<_> = (0..n).map(|_| b.add_vertex(1)).collect();
        for w in v.windows(2) {
            b.add_net(1, [w[0], w[1]]).unwrap();
        }
        b.build().unwrap()
    }

    fn even(hg: &Hypergraph, k: usize, tol: f64) -> BalanceConstraint {
        BalanceConstraint::even(k, hg.total_weights(), Tolerance::Relative(tol))
    }

    #[test]
    fn legal_seed_is_reused_and_refined() {
        let hg = chain(16);
        let balance = even(&hg, 2, 0.1);
        let fixed = FixedVertices::all_free(16);
        // Alternating seed: legal but maximally cut.
        let seed: Vec<PartId> = (0..16).map(|i| PartId::from_index(i % 2)).collect();
        let sink = VecSink::new();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let out = refine_from_partition_ctx(
            &hg,
            &fixed,
            &balance,
            &seed,
            Objective::Cut,
            8,
            RunCtx::new(&mut rng).with_sink(&sink),
        )
        .unwrap();
        assert_eq!(out.relocated, 0, "legal seed needs no repair");
        assert!(out.result.cut < 15, "refinement improved the seed");
        let events = sink.take();
        let warm: Vec<_> = events
            .iter()
            .filter(|e| matches!(e, Event::WarmStart { .. }))
            .collect();
        assert_eq!(warm.len(), 1);
        let Event::WarmStart {
            reused,
            relocated,
            value,
        } = warm[0]
        else {
            unreachable!()
        };
        assert_eq!((*reused, *relocated, *value), (16, 0, 15));
    }

    #[test]
    fn fixity_violations_are_repaired_before_refining() {
        let hg = chain(12);
        let balance = even(&hg, 2, 0.2);
        let mut fixed = FixedVertices::all_free(12);
        fixed.fix(VertexId::from_index(0), PartId::from_index(0));
        fixed.fix(VertexId::from_index(11), PartId::from_index(1));
        // Seed puts both fixed vertices on the wrong side.
        let seed: Vec<PartId> = (0..12)
            .map(|i| PartId::from_index(if i < 6 { 1 } else { 0 }))
            .collect();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let out = refine_from_partition_ctx(
            &hg,
            &fixed,
            &balance,
            &seed,
            Objective::Cut,
            8,
            RunCtx::new(&mut rng),
        )
        .unwrap();
        assert!(out.relocated >= 2, "both fixed vertices had to move");
        let pt = Partitioning::from_parts(&hg, 2, out.result.parts.clone()).unwrap();
        assert!(validate_partitioning(&hg, &pt, &balance, &fixed).is_valid());
        assert_eq!(pt.part_of(VertexId::from_index(0)).index(), 0);
        assert_eq!(pt.part_of(VertexId::from_index(11)).index(), 1);
    }

    #[test]
    fn unbalanced_seed_is_rebalanced() {
        let hg = chain(20);
        let balance = even(&hg, 4, 0.1);
        let fixed = FixedVertices::all_free(20);
        // Everything in part 0: wildly overfull, three parts under floor.
        let seed = vec![PartId::from_index(0); 20];
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let out = refine_from_partition_ctx(
            &hg,
            &fixed,
            &balance,
            &seed,
            Objective::Cut,
            8,
            RunCtx::new(&mut rng),
        )
        .unwrap();
        assert!(out.relocated > 0);
        let pt = Partitioning::from_parts(&hg, 4, out.result.parts.clone()).unwrap();
        assert!(validate_partitioning(&hg, &pt, &balance, &fixed).is_valid());
    }

    #[test]
    fn out_of_range_seed_parts_are_clamped() {
        let hg = chain(8);
        let balance = even(&hg, 2, 0.2);
        let fixed = FixedVertices::all_free(8);
        // Seed from a k=4 run being warm-started at k=2.
        let seed: Vec<PartId> = (0..8).map(|i| PartId::from_index(i % 4)).collect();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let out = refine_from_partition_ctx(
            &hg,
            &fixed,
            &balance,
            &seed,
            Objective::Cut,
            8,
            RunCtx::new(&mut rng),
        )
        .unwrap();
        let pt = Partitioning::from_parts(&hg, 2, out.result.parts.clone()).unwrap();
        assert!(validate_partitioning(&hg, &pt, &balance, &fixed).is_valid());
    }

    #[test]
    fn wrong_seed_length_is_an_input_error() {
        let hg = chain(8);
        let balance = even(&hg, 2, 0.2);
        let fixed = FixedVertices::all_free(8);
        let seed = vec![PartId::from_index(0); 5];
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let err = refine_from_partition_ctx(
            &hg,
            &fixed,
            &balance,
            &seed,
            Objective::Cut,
            4,
            RunCtx::new(&mut rng),
        )
        .unwrap_err();
        assert!(matches!(err, PartitionError::Input(_)), "{err:?}");
    }

    #[test]
    fn warm_result_is_identical_across_thread_budgets_within_a_regime() {
        let hg = chain(24);
        let balance = even(&hg, 2, 0.1);
        let mut fixed = FixedVertices::all_free(24);
        for i in 0..6 {
            fixed.fix(VertexId::from_index(i), PartId::from_index(i % 2));
        }
        let seed: Vec<PartId> = (0..24).map(|i| PartId::from_index(i % 2)).collect();
        let run = |threads: usize| {
            let mut rng = ChaCha8Rng::seed_from_u64(0);
            refine_from_partition_ctx(
                &hg,
                &fixed,
                &balance,
                &seed,
                Objective::Cut,
                8,
                RunCtx::new(&mut rng).with_threads(threads),
            )
            .unwrap()
        };
        let seq = run(1);
        let p2 = run(2);
        let p4 = run(4);
        let p8 = run(8);
        assert_eq!(p2, p4, "parallel regime is budget-invariant");
        assert_eq!(p2, p8, "parallel regime is budget-invariant");
        // Both regimes must be legal; they may legitimately differ.
        for out in [&seq, &p2] {
            let pt = Partitioning::from_parts(&hg, 2, out.result.parts.clone()).unwrap();
            assert!(validate_partitioning(&hg, &pt, &balance, &fixed).is_valid());
        }
    }
}
