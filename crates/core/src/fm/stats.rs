//! Per-pass and per-run statistics of the FM engine.
//!
//! These are the observables behind Table II of the paper ("average number
//! of passes per run and average percentage of nodes moved per pass,
//! excluding the first pass") and behind the analysis that improvements
//! concentrate near the beginning of a pass in the fixed-terminals regime.

/// Statistics of one FM pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PassStats {
    /// 0-based pass index within the run.
    pub pass: usize,
    /// Number of vertices eligible to move in this run.
    pub movable: usize,
    /// Moves actually made before the pass ended (gain exhaustion, balance
    /// lock-up, or the configured cutoff).
    pub moves_made: usize,
    /// Length of the best prefix that was kept after rollback.
    pub moves_kept: usize,
    /// Cut at the start of the pass.
    pub cut_before: u64,
    /// Cut after restoring the best prefix.
    pub cut_after: u64,
    /// The move limit that was in force (equals `movable` when unlimited).
    pub move_limit: usize,
}

impl PassStats {
    /// Percentage of movable vertices moved in this pass, `0..=100`.
    pub fn pct_moved(&self) -> f64 {
        if self.movable == 0 {
            0.0
        } else {
            100.0 * self.moves_made as f64 / self.movable as f64
        }
    }

    /// Fraction of the made moves that were wasted (rolled back).
    pub fn wasted_fraction(&self) -> f64 {
        if self.moves_made == 0 {
            0.0
        } else {
            (self.moves_made - self.moves_kept) as f64 / self.moves_made as f64
        }
    }

    /// Whether the pass improved the cut.
    pub fn improved(&self) -> bool {
        self.cut_after < self.cut_before
    }
}

/// Statistics of a complete FM run (a sequence of passes).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RunStats {
    /// One entry per executed pass, in order.
    pub passes: Vec<PassStats>,
}

impl RunStats {
    /// Number of passes executed.
    pub fn num_passes(&self) -> usize {
        self.passes.len()
    }

    /// Total moves made across all passes.
    pub fn total_moves(&self) -> usize {
        self.passes.iter().map(|p| p.moves_made).sum()
    }

    /// Average percentage of movable vertices moved per pass, *excluding
    /// the first pass* — the paper's Table II metric. Returns `None` when
    /// the run had fewer than two passes.
    pub fn avg_pct_moved_excl_first(&self) -> Option<f64> {
        if self.passes.len() < 2 {
            return None;
        }
        let later = &self.passes[1..];
        Some(later.iter().map(PassStats::pct_moved).sum::<f64>() / later.len() as f64)
    }

    /// Average percentage moved over all passes.
    pub fn avg_pct_moved(&self) -> Option<f64> {
        if self.passes.is_empty() {
            return None;
        }
        Some(self.passes.iter().map(PassStats::pct_moved).sum::<f64>() / self.passes.len() as f64)
    }

    /// Average position of the best prefix within a pass (kept / made),
    /// excluding the first pass — evidence for "improvements occur near the
    /// beginning of the pass".
    pub fn avg_best_prefix_fraction_excl_first(&self) -> Option<f64> {
        if self.passes.len() < 2 {
            return None;
        }
        let later: Vec<&PassStats> = self.passes[1..]
            .iter()
            .filter(|p| p.moves_made > 0)
            .collect();
        if later.is_empty() {
            return None;
        }
        Some(
            later
                .iter()
                .map(|p| p.moves_kept as f64 / p.moves_made as f64)
                .sum::<f64>()
                / later.len() as f64,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pass(
        pass: usize,
        movable: usize,
        made: usize,
        kept: usize,
        before: u64,
        after: u64,
    ) -> PassStats {
        PassStats {
            pass,
            movable,
            moves_made: made,
            moves_kept: kept,
            cut_before: before,
            cut_after: after,
            move_limit: movable,
        }
    }

    #[test]
    fn pct_moved() {
        assert_eq!(pass(0, 200, 50, 10, 9, 5).pct_moved(), 25.0);
        assert_eq!(pass(0, 0, 0, 0, 0, 0).pct_moved(), 0.0);
    }

    #[test]
    fn wasted_fraction() {
        let p = pass(0, 100, 80, 20, 9, 5);
        assert!((p.wasted_fraction() - 0.75).abs() < 1e-12);
        assert_eq!(pass(0, 10, 0, 0, 4, 4).wasted_fraction(), 0.0);
    }

    #[test]
    fn run_aggregates_exclude_first_pass() {
        let rs = RunStats {
            passes: vec![
                pass(0, 100, 100, 60, 50, 30),
                pass(1, 100, 40, 10, 30, 28),
                pass(2, 100, 20, 0, 28, 28),
            ],
        };
        assert_eq!(rs.num_passes(), 3);
        assert_eq!(rs.total_moves(), 160);
        assert!((rs.avg_pct_moved_excl_first().unwrap() - 30.0).abs() < 1e-12);
        let prefix = rs.avg_best_prefix_fraction_excl_first().unwrap();
        assert!((prefix - (0.25 + 0.0) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn short_runs_yield_none() {
        let rs = RunStats {
            passes: vec![pass(0, 10, 10, 5, 5, 3)],
        };
        assert_eq!(rs.avg_pct_moved_excl_first(), None);
        assert!(rs.avg_pct_moved().is_some());
        assert_eq!(RunStats::default().avg_pct_moved(), None);
    }
}
