//! Flat Fiduccia–Mattheyses bipartitioning with fixed vertices.
//!
//! The engine implements the classic FM pass discipline: every movable
//! vertex is moved at most once per pass, moves are chosen from gain
//! buckets (LIFO tie-breaking, or the CLIP shifted-gain variant), and at
//! the end of the pass the best prefix of the move sequence is restored.
//! Fixed vertices never enter the buckets; "or"-fixed vertices
//! ([`vlsi_hypergraph::Fixity::FixedAny`]) move only within their allowed
//! set. Pass lengths can be hard-capped ([`crate::PassCutoff`], Table III
//! of the paper) and every pass's statistics are recorded (Table II).

mod engine;
mod stats;

pub use engine::{BipartFm, FmResult, PassTrace};
pub use stats::{PassStats, RunStats};
