//! The FM bipartitioning engine proper.

use vlsi_rng::Rng;

use vlsi_hypergraph::{
    BalanceConstraint, FixedVertices, Fixity, Hypergraph, Objective, PartId, Partitioning, VertexId,
};
use vlsi_trace::{CancelStage, Event, MoverFixity, NullSink, Sink, VecSink};

use crate::cancel::{CancelToken, CHECK_INTERVAL};
use crate::config::{FmConfig, SelectionPolicy};
use crate::fm::{PassStats, RunStats};
use crate::gain::{KwayGains, MoveLog};
use crate::initial::random_initial;
use crate::parallel::GAIN_INIT_GRAIN;
use crate::PartitionError;

/// Gain of moving `v` to the other side under the cut objective: the net
/// weight freed by emptying `from`-critical nets minus the weight newly
/// cut by touching nets with no pin on the other side. Pure read of the
/// partitioning, so it is safe to evaluate from worker threads.
fn initial_gain_of(hg: &Hypergraph, partitioning: &Partitioning, v: VertexId) -> i64 {
    let from = partitioning.part_of(v);
    let to = from.other_side();
    let cs = partitioning.cut_state();
    let mut g = 0i64;
    for &n in hg.vertex_nets(v) {
        let w = hg.net_weight(n) as i64;
        if cs.pins_in(n, from) == 1 {
            g += w;
        }
        if cs.pins_in(n, to) == 0 {
            g -= w;
        }
    }
    g
}

/// Result of an FM run: the final assignment, its cut, and the per-pass
/// statistics used by the paper's Tables II and III.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FmResult {
    /// Final partition of every vertex.
    pub parts: Vec<PartId>,
    /// Final (best) cut value.
    pub cut: u64,
    /// Statistics of every executed pass.
    pub stats: RunStats,
}

/// Flat FM bipartitioner with fixed-vertex support.
///
/// # Example
/// ```
/// use vlsi_rng::SeedableRng;
/// use vlsi_hypergraph::{BalanceConstraint, FixedVertices, HypergraphBuilder, Tolerance};
/// use vlsi_partition::{BipartFm, FmConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // Two 4-cliques joined by a single net bisect with cut 1.
/// let mut b = HypergraphBuilder::new();
/// let v: Vec<_> = (0..8).map(|_| b.add_vertex(1)).collect();
/// for side in [&v[0..4], &v[4..8]] {
///     for i in 0..4 {
///         for j in (i + 1)..4 {
///             b.add_net(1, [side[i], side[j]])?;
///         }
///     }
/// }
/// b.add_net(1, [v[0], v[4]])?;
/// let hg = b.build()?;
///
/// let fm = BipartFm::new(FmConfig::default());
/// let balance = BalanceConstraint::bisection(8, Tolerance::Relative(0.0));
/// let fixed = FixedVertices::all_free(8);
/// let mut rng = vlsi_rng::ChaCha8Rng::seed_from_u64(3);
/// let result = fm.run_random(&hg, &fixed, &balance, &mut rng)?;
/// assert_eq!(result.cut, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct BipartFm {
    config: FmConfig,
    threads: usize,
}

impl BipartFm {
    /// Creates an engine with the given configuration (single-threaded).
    pub fn new(config: FmConfig) -> Self {
        BipartFm { config, threads: 1 }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &FmConfig {
        &self.config
    }

    /// Sets the worker-thread budget for gain initialization at the start
    /// of each pass. The result is byte-identical for every value (gains
    /// are precomputed in parallel, bucket insertion replays in the
    /// sequential order); `0` and `1` both mean single-threaded.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// The engine's worker-thread budget.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs FM from a random legal initial solution drawn with `rng`.
    ///
    /// # Errors
    /// Propagates [`crate::random_initial`] failures and the errors of
    /// [`BipartFm::run`].
    pub fn run_random<R: Rng + ?Sized>(
        &self,
        hg: &Hypergraph,
        fixed: &FixedVertices,
        balance: &BalanceConstraint,
        rng: &mut R,
    ) -> Result<FmResult, PartitionError> {
        self.run_random_with_sink(hg, fixed, balance, rng, &NullSink)
    }

    /// Like [`BipartFm::run_random`], emitting trace events into `sink`.
    ///
    /// # Errors
    /// Same as [`BipartFm::run_random`].
    pub fn run_random_with_sink<R: Rng + ?Sized, S: Sink>(
        &self,
        hg: &Hypergraph,
        fixed: &FixedVertices,
        balance: &BalanceConstraint,
        rng: &mut R,
        sink: &S,
    ) -> Result<FmResult, PartitionError> {
        self.run_random_cancellable(hg, fixed, balance, rng, sink, &CancelToken::never())
    }

    /// Like [`BipartFm::run_random_with_sink`], additionally polling
    /// `cancel`. The initial solution is always constructed, so even an
    /// already-cancelled token yields a legal (if unrefined) result.
    ///
    /// # Errors
    /// Same as [`BipartFm::run_random`].
    pub fn run_random_cancellable<R: Rng + ?Sized, S: Sink>(
        &self,
        hg: &Hypergraph,
        fixed: &FixedVertices,
        balance: &BalanceConstraint,
        rng: &mut R,
        sink: &S,
        cancel: &CancelToken,
    ) -> Result<FmResult, PartitionError> {
        let initial = random_initial(hg, fixed, balance, 2, rng)?;
        self.run_cancellable(hg, fixed, balance, initial, sink, cancel)
    }

    /// Runs FM passes from the given initial assignment until a pass fails
    /// to improve the cut (or `max_passes` is reached).
    ///
    /// # Errors
    /// * [`PartitionError::UnsupportedPartCount`] if `balance` describes
    ///   more than two partitions.
    /// * [`PartitionError::Input`] if `initial` is inconsistent with the
    ///   hypergraph or violates a fixity.
    pub fn run(
        &self,
        hg: &Hypergraph,
        fixed: &FixedVertices,
        balance: &BalanceConstraint,
        initial: Vec<PartId>,
    ) -> Result<FmResult, PartitionError> {
        self.run_with_sink(hg, fixed, balance, initial, &NullSink)
    }

    /// Like [`BipartFm::run`] but additionally records, for every pass, the
    /// cut value after each move — the raw data behind the paper's Section
    /// III analysis that "the improvements within a pass occur near the
    /// beginning of the pass".
    ///
    /// Implemented on top of the trace stream: the run is recorded into a
    /// [`VecSink`] and the traces are replayed from the events, so this is
    /// guaranteed to agree with what any external [`Sink`] observes.
    ///
    /// # Errors
    /// Same as [`BipartFm::run`].
    pub fn run_traced(
        &self,
        hg: &Hypergraph,
        fixed: &FixedVertices,
        balance: &BalanceConstraint,
        initial: Vec<PartId>,
    ) -> Result<(FmResult, Vec<PassTrace>), PartitionError> {
        let sink = VecSink::new();
        let result = self.run_with_sink(hg, fixed, balance, initial, &sink)?;
        let traces = vlsi_trace::replay::pass_summaries(&sink.take())
            .into_iter()
            .map(|s| PassTrace {
                pass: s.pass as usize,
                cut_before: s.cut_before,
                cuts: s.cuts,
            })
            .collect();
        Ok((result, traces))
    }

    /// Like [`BipartFm::run`], emitting the per-pass/per-move trace events
    /// ([`Event::PassStart`], [`Event::MoveCommitted`], [`Event::PassEnd`])
    /// into `sink`. With [`NullSink`] the instrumentation compiles away.
    ///
    /// # Errors
    /// Same as [`BipartFm::run`].
    ///
    /// # Example: count the engine's work with a `CounterSink`
    /// ```
    /// use vlsi_hypergraph::{BalanceConstraint, FixedVertices, HypergraphBuilder, Tolerance};
    /// use vlsi_partition::{BipartFm, FmConfig};
    /// use vlsi_trace::CounterSink;
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let mut b = HypergraphBuilder::new();
    /// let v: Vec<_> = (0..6).map(|_| b.add_vertex(1)).collect();
    /// for w in v.windows(2) {
    ///     b.add_net(1, [w[0], w[1]])?;
    /// }
    /// let hg = b.build()?;
    /// let balance = BalanceConstraint::bisection(6, Tolerance::Relative(0.0));
    /// let fixed = FixedVertices::all_free(6);
    ///
    /// let counters = CounterSink::new();
    /// let fm = BipartFm::new(FmConfig::default());
    /// let initial = (0..6)
    ///     .map(|i| vlsi_hypergraph::PartId((i % 2) as u32))
    ///     .collect();
    /// let result = fm.run_with_sink(&hg, &fixed, &balance, initial, &counters)?;
    ///
    /// let c = counters.snapshot();
    /// assert_eq!(c.passes as usize, result.stats.num_passes());
    /// assert_eq!(c.moves_tried as usize, result.stats.total_moves());
    /// assert!(c.bucket_ops > 0);
    /// # Ok(())
    /// # }
    /// ```
    pub fn run_with_sink<S: Sink>(
        &self,
        hg: &Hypergraph,
        fixed: &FixedVertices,
        balance: &BalanceConstraint,
        initial: Vec<PartId>,
        sink: &S,
    ) -> Result<FmResult, PartitionError> {
        self.run_cancellable(hg, fixed, balance, initial, sink, &CancelToken::never())
    }

    /// Like [`BipartFm::run_with_sink`], additionally polling `cancel` at
    /// pass boundaries and every [`CHECK_INTERVAL`] moves inside a pass.
    /// Cancellation is not an error: the run stops after restoring the
    /// current pass's best prefix, records one
    /// [`Event::Cancelled`] (stage `fm_pass`, value = cut at termination),
    /// and returns the best solution found so far.
    ///
    /// # Errors
    /// Same as [`BipartFm::run`].
    pub fn run_cancellable<S: Sink>(
        &self,
        hg: &Hypergraph,
        fixed: &FixedVertices,
        balance: &BalanceConstraint,
        initial: Vec<PartId>,
        sink: &S,
        cancel: &CancelToken,
    ) -> Result<FmResult, PartitionError> {
        if balance.num_parts() != 2 {
            return Err(PartitionError::UnsupportedPartCount {
                requested: balance.num_parts(),
                supported: 2,
            });
        }
        let mut partitioning = Partitioning::from_parts_fixed(hg, 2, initial, fixed)?;

        let movable: Vec<bool> = hg
            .vertices()
            .map(|v| {
                let fixity = if v.index() < fixed.len() {
                    fixed.fixity(v)
                } else {
                    Fixity::Free
                };
                // A vertex can participate if it may sit on both sides.
                fixity.allows(PartId(0)) && fixity.allows(PartId(1))
            })
            .collect();
        let num_movable = movable.iter().filter(|&&m| m).count();

        // Maximum possible |gain| = largest total incident net weight over
        // the *movable* vertices (immovable ones never enter the buckets;
        // a clustered mega-terminal would otherwise blow the array up).
        let gain_bound: i64 = hg
            .vertices()
            .filter(|v| movable[v.index()])
            .map(|v| {
                hg.vertex_nets(v)
                    .iter()
                    .map(|&n| hg.net_weight(n) as i64)
                    .sum()
            })
            .max()
            .unwrap_or(0)
            .max(1);
        // CLIP keys are (gain - initial gain), so they span twice the range.
        let key_bound = match self.config.policy {
            SelectionPolicy::Lifo => gain_bound,
            SelectionPolicy::Clip => 2 * gain_bound,
        };

        // Moves may transiently overshoot the balance window by the weight
        // of the largest movable vertex (the classic FM relaxation); only
        // strictly balanced prefixes are accepted.
        let mut relax = vec![0u64; hg.num_resources()];
        for v in hg.vertices() {
            if movable[v.index()] {
                for (r, &w) in hg.vertex_weights(v).iter().enumerate() {
                    relax[r] = relax[r].max(w);
                }
            }
        }

        let mut state = PassState {
            hg,
            balance,
            movable: &movable,
            partitioning: &mut partitioning,
            gains: KwayGains::new(2, hg.num_vertices(), key_bound),
            gain: vec![0i64; hg.num_vertices()],
            locked: vec![false; hg.num_vertices()],
            policy: self.config.policy,
            relax,
            fixed,
            sink,
            cancel,
            threads: self.threads,
            bucket_ops: 0,
        };

        let mut stats = RunStats::default();
        if !cancel.is_cancelled() {
            for pass_idx in 0..self.config.max_passes {
                let cutoff_active = pass_idx > 0 || self.config.cutoff_first_pass;
                let limit = if cutoff_active {
                    self.config.cutoff.limit(num_movable)
                } else {
                    num_movable
                };
                let pass_stats = state.run_pass(pass_idx, num_movable, limit);
                let improved = pass_stats.improved();
                stats.passes.push(pass_stats);
                if !improved || cancel.is_cancelled() {
                    break;
                }
            }
        }

        let cut = partitioning.cut_value(Objective::Cut);
        if S::ENABLED && cancel.is_cancelled() {
            sink.record(&Event::Cancelled {
                stage: CancelStage::FmPass,
                value: cut,
            });
        }
        Ok(FmResult {
            parts: partitioning.into_parts(),
            cut,
            stats,
        })
    }
}

/// The cut trajectory of one FM pass: `cuts[i]` is the cut value after the
/// `(i+1)`-th move (before any rollback).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PassTrace {
    /// 0-based pass index.
    pub pass: usize,
    /// Cut at the start of the pass.
    pub cut_before: u64,
    /// Cut after each move, in move order.
    pub cuts: Vec<u64>,
}

impl PassTrace {
    /// The move index (1-based) at which the minimum cut of the pass was
    /// first reached, as a fraction of the moves made; `None` for an empty
    /// pass. Small values = improvements concentrate near the beginning.
    pub fn best_position_fraction(&self) -> Option<f64> {
        if self.cuts.is_empty() {
            return None;
        }
        let best = *self.cuts.iter().min().expect("non-empty");
        if best >= self.cut_before {
            return Some(0.0);
        }
        let pos = self
            .cuts
            .iter()
            .position(|&c| c == best)
            .expect("min exists");
        Some((pos + 1) as f64 / self.cuts.len() as f64)
    }
}

/// Mutable working state shared by the passes of one run.
struct PassState<'a, S: Sink> {
    hg: &'a Hypergraph,
    balance: &'a BalanceConstraint,
    movable: &'a [bool],
    partitioning: &'a mut Partitioning,
    /// Shared k-way gain container with two target parts: a vertex on side
    /// `s` lives in the bucket for its destination `s.other_side()`.
    gains: KwayGains,
    gain: Vec<i64>,
    locked: Vec<bool>,
    policy: SelectionPolicy,
    /// Per-resource transient balance slack (largest movable vertex weight).
    relax: Vec<u64>,
    fixed: &'a FixedVertices,
    sink: &'a S,
    cancel: &'a CancelToken,
    /// Worker-thread budget for gain initialization (`<= 1` = inline).
    threads: usize,
    /// Gain-bucket operations of the current pass (only maintained when
    /// `S::ENABLED`; reported on the pass's `PassEnd` event).
    bucket_ops: u64,
}

impl<S: Sink> PassState<'_, S> {
    /// Executes one FM pass and restores the best prefix. Returns its stats
    /// and emits the pass's trace events into the sink.
    fn run_pass(&mut self, pass: usize, num_movable: usize, move_limit: usize) -> PassStats {
        let cut_before = self.partitioning.cut_value(Objective::Cut);
        if S::ENABLED {
            self.bucket_ops = 0;
            self.sink.record(&Event::PassStart {
                pass: pass as u32,
                cut: cut_before,
                movable: num_movable as u64,
                move_limit: move_limit as u64,
            });
        }
        self.prepare_buckets();

        let mut move_log = MoveLog::with_capacity(move_limit);
        let mut best_cut = cut_before;
        let mut best_imbalance = self.imbalance();

        while move_log.len() < move_limit {
            // Armed tokens are re-polled every CHECK_INTERVAL moves; the
            // best-prefix rollback below makes stopping mid-pass safe.
            if !self.cancel.is_never()
                && move_log.len().is_multiple_of(CHECK_INTERVAL)
                && self.cancel.is_cancelled()
            {
                break;
            }
            let Some((vertex, from)) = self.select_move() else {
                break;
            };
            let to = from.other_side();
            self.gains.remove(vertex, to);
            self.gains.decay_max_for(to);
            self.locked[vertex.index()] = true;
            // The vertex's own gain entry can be bumped while its move is
            // applied; capture the realised gain first.
            let gain = self.gain[vertex.index()];
            self.apply_move_with_gain_updates(vertex, from, to);
            move_log.record(vertex, from);
            let cut = self.partitioning.cut_value(Objective::Cut);
            if S::ENABLED {
                self.bucket_ops += 1; // the remove above
                let fixity = if vertex.index() < self.fixed.len()
                    && matches!(self.fixed.fixity(vertex), Fixity::FixedAny(_))
                {
                    MoverFixity::FixedAny
                } else {
                    MoverFixity::Free
                };
                self.sink.record(&Event::MoveCommitted {
                    pass: pass as u32,
                    vertex: vertex.index() as u64,
                    gain,
                    fixity,
                    cut,
                });
            }

            // Only strictly balanced states may become the accepted prefix.
            if !self.balance.is_satisfied(self.partitioning.loads()) {
                continue;
            }
            let imbalance = self.imbalance();
            if cut < best_cut || (cut == best_cut && imbalance < best_imbalance) {
                best_cut = cut;
                move_log.mark_best();
                best_imbalance = imbalance;
            }
        }

        // Roll back everything after the best prefix.
        let moves_made = move_log.len();
        let best_len = move_log.best_len();
        let (hg, partitioning) = (self.hg, &mut *self.partitioning);
        move_log.rollback_to_best(|vertex, from| {
            partitioning.move_vertex(hg, vertex, from);
        });
        debug_assert_eq!(self.partitioning.cut_value(Objective::Cut), best_cut);

        // Unlock for the next pass.
        self.locked.fill(false);
        self.gains.clear();

        if S::ENABLED {
            self.sink.record(&Event::PassEnd {
                pass: pass as u32,
                moves: moves_made as u64,
                best_prefix: best_len as u64,
                cut_before,
                cut_after: best_cut,
                bucket_ops: self.bucket_ops,
            });
        }

        PassStats {
            pass,
            movable: num_movable,
            moves_made,
            moves_kept: best_len,
            cut_before,
            cut_after: best_cut,
            move_limit,
        }
    }

    /// Primary-resource imbalance |load(0) − load(1)| used for tie-breaking.
    fn imbalance(&self) -> u64 {
        let a = self.partitioning.load(PartId(0), 0);
        let b = self.partitioning.load(PartId(1), 0);
        a.abs_diff(b)
    }

    /// Computes all initial gains and fills the buckets.
    ///
    /// Gains only read the (frozen) partitioning, so with a thread budget
    /// they are precomputed in parallel; bucket insertion always replays in
    /// the exact sequential order, keeping the run thread-count invariant.
    fn prepare_buckets(&mut self) {
        self.gains.clear();
        let n = self.hg.num_vertices();
        let workers = crate::parallel::effective_threads(self.threads, n, GAIN_INIT_GRAIN);
        let pre: Option<Vec<i64>> = (workers > 1).then(|| {
            let hg = self.hg;
            let partitioning: &Partitioning = self.partitioning;
            let movable = self.movable;
            let mut out = vec![0i64; n];
            crate::parallel::par_fill(&mut out, workers, |off, chunk| {
                for (i, slot) in chunk.iter_mut().enumerate() {
                    let v = VertexId((off + i) as u32);
                    if movable[v.index()] {
                        *slot = initial_gain_of(hg, partitioning, v);
                    }
                }
            });
            out
        });
        match self.policy {
            SelectionPolicy::Lifo => {
                for v in self.hg.vertices() {
                    if !self.movable[v.index()] {
                        continue;
                    }
                    let g = match &pre {
                        Some(gains) => gains[v.index()],
                        None => self.initial_gain(v),
                    };
                    self.gain[v.index()] = g;
                    let to = self.partitioning.part_of(v).other_side();
                    self.gains.insert(v, to, g);
                    if S::ENABLED {
                        self.bucket_ops += 1;
                    }
                }
            }
            SelectionPolicy::Clip => {
                // CLIP (Dutt & Deng): every vertex starts at key 0, but the
                // bucket-0 list is ordered by *decreasing initial gain*, so
                // before any delta accumulates the selection degenerates to
                // plain gain order; once moves start, the deltas cluster
                // selection around recently moved vertices. Insertion is at
                // the list head, so we insert in increasing-gain order.
                let mut by_gain: Vec<(i64, VertexId)> = self
                    .hg
                    .vertices()
                    .filter(|v| self.movable[v.index()])
                    .map(|v| {
                        let g = match &pre {
                            Some(gains) => gains[v.index()],
                            None => self.initial_gain(v),
                        };
                        (g, v)
                    })
                    .collect();
                by_gain.sort_unstable();
                for &(g, v) in &by_gain {
                    self.gain[v.index()] = g;
                    let to = self.partitioning.part_of(v).other_side();
                    self.gains.insert(v, to, 0);
                    if S::ENABLED {
                        self.bucket_ops += 1;
                    }
                }
            }
        }
    }

    /// Gain of moving `v` to the other side under the cut objective.
    fn initial_gain(&self, v: VertexId) -> i64 {
        initial_gain_of(self.hg, self.partitioning, v)
    }

    /// Picks the highest-key feasible move over both sides. Ties between
    /// sides are broken toward the heavier side (improves balance).
    fn select_move(&mut self) -> Option<(VertexId, PartId)> {
        let mut candidates: [Option<(VertexId, i64)>; 2] = [None, None];
        for (side, slot) in candidates.iter_mut().enumerate() {
            let from = PartId(side as u32);
            let to = from.other_side();
            let hg = self.hg;
            let balance = self.balance;
            let relax = &self.relax;
            let loads = self.partitioning.loads();
            let nr = hg.num_resources();
            *slot = self.gains.select_from(to, |v| {
                // Relaxed feasibility: the destination may overshoot its
                // maximum by the largest movable vertex weight.
                hg.vertex_weights(v)
                    .iter()
                    .enumerate()
                    .all(|(r, &w)| loads[to.index() * nr + r] + w <= balance.max(to, r) + relax[r])
            });
        }
        match (candidates[0], candidates[1]) {
            (None, None) => None,
            (Some((v, _)), None) => Some((v, PartId(0))),
            (None, Some((v, _))) => Some((v, PartId(1))),
            (Some((v0, k0)), Some((v1, k1))) => {
                if k0 > k1 {
                    Some((v0, PartId(0)))
                } else if k1 > k0 {
                    Some((v1, PartId(1)))
                } else {
                    // Equal keys: move from the heavier side.
                    let l0 = self.partitioning.load(PartId(0), 0);
                    let l1 = self.partitioning.load(PartId(1), 0);
                    if l0 >= l1 {
                        Some((v0, PartId(0)))
                    } else {
                        Some((v1, PartId(1)))
                    }
                }
            }
        }
    }

    /// Applies the standard FM delta-gain updates around the move of
    /// `vertex` from `from` to `to`, then performs the move itself.
    fn apply_move_with_gain_updates(&mut self, vertex: VertexId, from: PartId, to: PartId) {
        let expected_cut = self
            .partitioning
            .cut_value(Objective::Cut)
            .wrapping_sub(self.gain[vertex.index()] as u64);
        for &n in self.hg.vertex_nets(vertex) {
            let w = self.hg.net_weight(n) as i64;
            let to_count = self.partitioning.cut_state().pins_in(n, to);
            if to_count == 0 {
                // Net becomes critical from the `to` side: every other pin
                // gains from following the move.
                for &u in self.hg.net_pins(n) {
                    if u != vertex {
                        self.bump_gain(u, w);
                    }
                }
            } else if to_count == 1 {
                // The lone `to`-side pin loses its incentive to leave.
                if let Some(u) = self.lone_pin(n, to) {
                    self.bump_gain(u, -w);
                }
            }
        }
        self.partitioning.move_vertex(self.hg, vertex, to);
        for &n in self.hg.vertex_nets(vertex) {
            let w = self.hg.net_weight(n) as i64;
            let from_count = self.partitioning.cut_state().pins_in(n, from);
            if from_count == 0 {
                // Net no longer touches `from`: following moves stop paying.
                for &u in self.hg.net_pins(n) {
                    if u != vertex {
                        self.bump_gain(u, -w);
                    }
                }
            } else if from_count == 1 {
                // The lone `from`-side pin can now uncut the net by moving.
                if let Some(u) = self.lone_pin(n, from) {
                    self.bump_gain(u, w);
                }
            }
        }
        debug_assert_eq!(
            self.partitioning.cut_value(Objective::Cut),
            expected_cut,
            "gain of {vertex} disagreed with actual cut delta"
        );
    }

    /// Finds the single pin of `n` on `side` (caller guarantees exactly one).
    fn lone_pin(&self, n: vlsi_hypergraph::NetId, side: PartId) -> Option<VertexId> {
        self.hg
            .net_pins(n)
            .iter()
            .copied()
            .find(|&u| self.partitioning.part_of(u) == side)
    }

    /// Adds `delta` to `u`'s gain, updating its bucket key if unlocked.
    #[inline]
    fn bump_gain(&mut self, u: VertexId, delta: i64) {
        if delta == 0 {
            return;
        }
        self.gain[u.index()] += delta;
        if !self.locked[u.index()] && self.movable[u.index()] {
            let to = self.partitioning.part_of(u).other_side();
            self.gains.adjust(u, to, delta);
            if S::ENABLED {
                self.bucket_ops += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vlsi_hypergraph::{validate_partitioning, HypergraphBuilder, PartSet, Tolerance};
    use vlsi_rng::ChaCha8Rng;
    use vlsi_rng::SeedableRng;

    /// Two cliques of size `s` joined by `bridges` two-pin nets.
    fn two_cliques(s: usize, bridges: usize) -> Hypergraph {
        let mut b = HypergraphBuilder::new();
        let v: Vec<_> = (0..2 * s).map(|_| b.add_vertex(1)).collect();
        for base in [0, s] {
            for i in 0..s {
                for j in (i + 1)..s {
                    b.add_net(1, [v[base + i], v[base + j]]).unwrap();
                }
            }
        }
        for k in 0..bridges {
            b.add_net(1, [v[k % s], v[s + (k % s)]]).unwrap();
        }
        b.build().unwrap()
    }

    fn run_default(hg: &Hypergraph, fixed: &FixedVertices, tol: f64, seed: u64) -> FmResult {
        let balance = BalanceConstraint::bisection(hg.total_weight(), Tolerance::Relative(tol));
        let fm = BipartFm::new(FmConfig::default());
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        fm.run_random(hg, fixed, &balance, &mut rng).unwrap()
    }

    #[test]
    fn finds_the_obvious_bisection() {
        let hg = two_cliques(6, 1);
        let fixed = FixedVertices::all_free(hg.num_vertices());
        for seed in 0..5 {
            let result = run_default(&hg, &fixed, 0.0, seed);
            assert_eq!(result.cut, 1, "seed {seed}");
        }
    }

    #[test]
    fn solution_is_always_valid() {
        let hg = two_cliques(5, 3);
        let fixed = FixedVertices::all_free(hg.num_vertices());
        let balance = BalanceConstraint::bisection(hg.total_weight(), Tolerance::Relative(0.0));
        let fm = BipartFm::new(FmConfig::default());
        for seed in 0..10 {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let result = fm.run_random(&hg, &fixed, &balance, &mut rng).unwrap();
            let p = Partitioning::from_parts(&hg, 2, result.parts.clone()).unwrap();
            let report = validate_partitioning(&hg, &p, &balance, &fixed);
            assert!(report.is_valid(), "seed {seed}: {report}");
            assert_eq!(report.recomputed_cut, result.cut);
        }
    }

    /// Random hypergraph: `n` unit vertices, `m` nets of 2–4 distinct pins.
    fn random_hg(n: usize, m: usize, rng: &mut ChaCha8Rng) -> Hypergraph {
        use vlsi_rng::Rng;
        let mut b = HypergraphBuilder::new();
        let v: Vec<_> = (0..n).map(|_| b.add_vertex(1)).collect();
        for _ in 0..m {
            let size = rng.gen_range(2..=4usize.min(n));
            let mut pins = Vec::with_capacity(size);
            while pins.len() < size {
                let cand = v[rng.gen_range(0..n)];
                if !pins.contains(&cand) {
                    pins.push(cand);
                }
            }
            b.add_net(rng.gen_range(1..4u64), pins).unwrap();
        }
        b.build().unwrap()
    }

    /// End-to-end gain consistency on random instances, for both selection
    /// policies. Every applied move is already self-checked in debug builds
    /// (`apply_move_with_gain_updates` asserts the bucketed gain equals the
    /// realised cut delta), so driving full FM runs here exercises that
    /// assertion across thousands of delta-updates; the reported cut must
    /// also match a from-scratch recomputation.
    #[test]
    fn incremental_gains_agree_with_recomputation_on_random_instances() {
        use vlsi_rng::Rng;
        let mut rng = ChaCha8Rng::seed_from_u64(23);
        for policy in [SelectionPolicy::Lifo, SelectionPolicy::Clip] {
            let fm = BipartFm::new(FmConfig {
                policy,
                ..FmConfig::default()
            });
            for trial in 0..30 {
                let n = rng.gen_range(6..40usize);
                let hg = random_hg(n, rng.gen_range(n..4 * n), &mut rng);
                let mut fixed = FixedVertices::all_free(n);
                for i in 0..n {
                    if rng.gen_bool(0.2) {
                        fixed.fix(VertexId(i as u32), PartId(rng.gen_range(0..2)));
                    }
                }
                let balance =
                    BalanceConstraint::bisection(hg.total_weight(), Tolerance::Relative(0.10));
                let Ok(result) = fm.run_random(&hg, &fixed, &balance, &mut rng) else {
                    continue; // random fixing made the instance infeasible
                };
                let p = Partitioning::from_parts(&hg, 2, result.parts.clone()).unwrap();
                assert_eq!(
                    p.cut_value(Objective::Cut),
                    result.cut,
                    "{policy:?} trial {trial}: reported cut diverged from recomputation"
                );
                let report = validate_partitioning(&hg, &p, &balance, &fixed);
                assert!(report.is_valid(), "{policy:?} trial {trial}: {report}");
            }
        }
    }

    #[test]
    fn fixed_vertices_never_move() {
        let hg = two_cliques(5, 2);
        let mut fixed = FixedVertices::all_free(hg.num_vertices());
        // Pin one vertex of each clique: the best solution flips the whole
        // cliques to match (cut = the 2 bridges), and the pins stay put.
        fixed.fix(VertexId(0), PartId(1));
        fixed.fix(VertexId(5), PartId(0));
        let result = run_default(&hg, &fixed, 0.0, 7);
        assert_eq!(result.parts[0], PartId(1));
        assert_eq!(result.parts[5], PartId(0));
        assert!(result.cut >= 2);
    }

    #[test]
    fn fixed_any_moves_within_allowed_set() {
        let hg = two_cliques(4, 1);
        let mut fixed = FixedVertices::all_free(hg.num_vertices());
        // FixedAny over both sides is equivalent to free in a bisection.
        fixed.fix_any(VertexId(0), PartSet::all(2));
        let result = run_default(&hg, &fixed, 0.0, 9);
        assert_eq!(result.cut, 1);
    }

    #[test]
    fn good_fixed_vertices_make_the_instance_trivial() {
        let hg = two_cliques(6, 1);
        let mut fixed = FixedVertices::all_free(hg.num_vertices());
        for i in 0..6 {
            fixed.fix(VertexId(i), PartId(0));
            fixed.fix(VertexId(6 + i), PartId(1));
        }
        // Everything fixed consistently: FM has nothing to do, cut is 1.
        let result = run_default(&hg, &fixed, 0.0, 1);
        assert_eq!(result.cut, 1);
        assert_eq!(result.stats.total_moves(), 0);
    }

    #[test]
    fn clip_policy_reaches_same_quality_here() {
        let hg = two_cliques(6, 1);
        let fixed = FixedVertices::all_free(hg.num_vertices());
        let balance = BalanceConstraint::bisection(hg.total_weight(), Tolerance::Relative(0.0));
        let fm = BipartFm::new(FmConfig {
            policy: SelectionPolicy::Clip,
            ..FmConfig::default()
        });
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let result = fm.run_random(&hg, &fixed, &balance, &mut rng).unwrap();
        assert_eq!(result.cut, 1);
    }

    #[test]
    fn pass_cutoff_limits_moves_after_first_pass() {
        let hg = two_cliques(8, 4);
        let fixed = FixedVertices::all_free(hg.num_vertices());
        let balance = BalanceConstraint::bisection(hg.total_weight(), Tolerance::Relative(0.0));
        let fm = BipartFm::new(FmConfig {
            cutoff: crate::PassCutoff::Fraction(0.25),
            ..FmConfig::default()
        });
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let result = fm.run_random(&hg, &fixed, &balance, &mut rng).unwrap();
        for p in &result.stats.passes {
            if p.pass == 0 {
                assert_eq!(p.move_limit, p.movable);
            } else {
                assert_eq!(p.move_limit, 4); // 25% of 16
                assert!(p.moves_made <= 4);
            }
        }
    }

    #[test]
    fn stats_record_full_first_pass() {
        let hg = two_cliques(6, 2);
        let fixed = FixedVertices::all_free(hg.num_vertices());
        let result = run_default(&hg, &fixed, 0.0, 3);
        let first = &result.stats.passes[0];
        assert_eq!(first.movable, 12);
        // Without terminals the first pass flips essentially every vertex.
        assert!(first.moves_made >= 10);
    }

    #[test]
    fn weighted_vertices_respect_balance() {
        let mut b = HypergraphBuilder::new();
        let heavy = b.add_vertex(6);
        let v: Vec<_> = (0..6).map(|_| b.add_vertex(1)).collect();
        for &u in &v {
            b.add_net(1, [heavy, u]).unwrap();
        }
        let hg = b.build().unwrap();
        let fixed = FixedVertices::all_free(hg.num_vertices());
        let balance = BalanceConstraint::bisection(12, Tolerance::Relative(0.0));
        let fm = BipartFm::new(FmConfig::default());
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let result = fm.run_random(&hg, &fixed, &balance, &mut rng).unwrap();
        let p = Partitioning::from_parts(&hg, 2, result.parts).unwrap();
        assert_eq!(p.load(PartId(0), 0), 6);
        assert_eq!(p.load(PartId(1), 0), 6);
    }

    #[test]
    fn rejects_multiway_balance() {
        let hg = two_cliques(3, 1);
        let fixed = FixedVertices::all_free(hg.num_vertices());
        let balance = BalanceConstraint::even(3, &[hg.total_weight()], Tolerance::Relative(0.5));
        let fm = BipartFm::new(FmConfig::default());
        let err = fm
            .run(&hg, &fixed, &balance, vec![PartId(0); hg.num_vertices()])
            .unwrap_err();
        assert!(matches!(err, PartitionError::UnsupportedPartCount { .. }));
    }

    #[test]
    fn traces_cover_every_move_of_every_pass() {
        let hg = two_cliques(6, 2);
        let fixed = FixedVertices::all_free(hg.num_vertices());
        let balance = BalanceConstraint::bisection(hg.total_weight(), Tolerance::Relative(0.0));
        let fm = BipartFm::new(FmConfig::default());
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let initial = crate::random_initial(&hg, &fixed, &balance, 2, &mut rng).unwrap();
        let (result, traces) = fm.run_traced(&hg, &fixed, &balance, initial).unwrap();
        assert_eq!(traces.len(), result.stats.passes.len());
        for (trace, stats) in traces.iter().zip(&result.stats.passes) {
            assert_eq!(trace.cuts.len(), stats.moves_made);
            assert_eq!(trace.cut_before, stats.cut_before);
            // The minimum of the trajectory is the accepted cut (or the
            // pass start if nothing improved).
            if let Some(&min) = trace.cuts.iter().min() {
                assert_eq!(stats.cut_after, min.min(stats.cut_before));
            }
        }
    }

    #[test]
    fn trace_best_position_fraction() {
        let t = crate::PassTrace {
            pass: 1,
            cut_before: 10,
            cuts: vec![12, 8, 9, 8],
        };
        // First minimum at index 1 of 4 moves.
        assert_eq!(t.best_position_fraction(), Some(0.5));
        let none_better = crate::PassTrace {
            pass: 1,
            cut_before: 5,
            cuts: vec![7, 6],
        };
        assert_eq!(none_better.best_position_fraction(), Some(0.0));
        let empty = crate::PassTrace {
            pass: 0,
            cut_before: 5,
            cuts: vec![],
        };
        assert_eq!(empty.best_position_fraction(), None);
    }

    #[test]
    fn weighted_nets_drive_gains() {
        // v1 attached to v0 by weight-5 net and to v2 by weight-1 net;
        // optimum puts v1 with v0.
        let mut b = HypergraphBuilder::new();
        let v0 = b.add_vertex(1);
        let v1 = b.add_vertex(1);
        let v2 = b.add_vertex(1);
        let v3 = b.add_vertex(1);
        b.add_net(5, [v0, v1]).unwrap();
        b.add_net(1, [v1, v2]).unwrap();
        b.add_net(1, [v2, v3]).unwrap();
        let hg = b.build().unwrap();
        let fixed = FixedVertices::all_free(4);
        let balance = BalanceConstraint::bisection(4, Tolerance::Relative(0.0));
        let fm = BipartFm::new(FmConfig::default());
        let result = fm
            .run(
                &hg,
                &fixed,
                &balance,
                vec![PartId(0), PartId(1), PartId(0), PartId(1)],
            )
            .unwrap();
        assert_eq!(result.cut, 1);
        assert_eq!(result.parts[0], result.parts[1]);
    }
}
