//! Common result type shared by the partitioning engines.

use vlsi_hypergraph::PartId;

/// A completed partitioning solution: the assignment and its cut.
///
/// # Example
/// ```
/// use vlsi_hypergraph::PartId;
/// use vlsi_partition::PartitionResult;
/// let r = PartitionResult::new(vec![PartId(0), PartId(1)], 3);
/// assert_eq!(r.cut, 3);
/// assert_eq!(r.parts.len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionResult {
    /// Partition of each vertex, indexed by vertex id.
    pub parts: Vec<PartId>,
    /// Cut value of the assignment (weighted number of cut nets).
    pub cut: u64,
}

impl PartitionResult {
    /// Creates a result from an assignment and its cut value.
    pub fn new(parts: Vec<PartId>, cut: u64) -> Self {
        PartitionResult { parts, cut }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction() {
        let r = PartitionResult::new(vec![PartId(1)], 0);
        assert_eq!(r.parts, vec![PartId(1)]);
        assert_eq!(r.cut, 0);
    }
}
