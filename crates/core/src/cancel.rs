//! Cooperative cancellation for the partitioning engines.
//!
//! A [`CancelToken`] is a cheap, cloneable handle combining a manual flag
//! with an optional wall-clock deadline. Engines poll it at pass
//! boundaries and (for the long inner loops) every few dozen moves; when
//! the token reports cancelled, the engine stops early and returns its
//! **best-so-far** solution — a legal partition, never an error. The
//! multistart drivers additionally guarantee that at least one start runs
//! to completion, so a caller with an already-expired deadline still gets
//! a valid (if unrefined) answer.
//!
//! [`CancelToken::never`] is the default for all plain entry points: it
//! holds no allocation and every check is a single predictable branch, so
//! un-cancellable runs cost what they did before cancellation existed
//! (`cargo bench --bench cancel_overhead` keeps this honest).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Interval, in inner-loop iterations (moves, proposals, swaps), at which
/// engines re-poll an armed token. Checks at this granularity bound the
/// cancellation latency to a few microseconds of engine work while keeping
/// the `Instant::now` call off the per-move hot path.
pub const CHECK_INTERVAL: usize = 64;

#[derive(Debug)]
struct Inner {
    flag: AtomicBool,
    deadline: Option<Instant>,
}

/// A cheap, cloneable cancellation handle: an atomic flag plus an optional
/// deadline. All clones observe the same flag.
///
/// # Example
/// ```
/// use vlsi_partition::CancelToken;
///
/// let never = CancelToken::never();
/// assert!(!never.is_cancelled());
///
/// let manual = CancelToken::new();
/// let watcher = manual.clone();
/// assert!(!watcher.is_cancelled());
/// manual.cancel();
/// assert!(watcher.is_cancelled());
///
/// let expired = CancelToken::with_deadline(std::time::Duration::ZERO);
/// assert!(expired.is_cancelled());
/// ```
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    inner: Option<Arc<Inner>>,
}

impl CancelToken {
    /// A token that never cancels. Checks against it are a single branch
    /// on a `None` discriminant — no allocation, no atomics, no clock.
    /// `const`, so it can back `static` defaults such as the one
    /// [`RunCtx::new`](crate::RunCtx::new) borrows.
    pub const fn never() -> Self {
        CancelToken { inner: None }
    }

    /// A manually-cancellable token (no deadline).
    pub fn new() -> Self {
        CancelToken {
            inner: Some(Arc::new(Inner {
                flag: AtomicBool::new(false),
                deadline: None,
            })),
        }
    }

    /// A token that cancels `timeout` from now (and can also be cancelled
    /// manually before that).
    pub fn with_deadline(timeout: Duration) -> Self {
        CancelToken::at_deadline(Instant::now() + timeout)
    }

    /// A token that cancels at `deadline` (and can also be cancelled
    /// manually before that).
    pub fn at_deadline(deadline: Instant) -> Self {
        CancelToken {
            inner: Some(Arc::new(Inner {
                flag: AtomicBool::new(false),
                deadline: Some(deadline),
            })),
        }
    }

    /// Sets the manual flag. A no-op on [`CancelToken::never`].
    pub fn cancel(&self) {
        if let Some(inner) = &self.inner {
            inner.flag.store(true, Ordering::Relaxed);
        }
    }

    /// Whether the token is cancelled (manually or by deadline expiry).
    ///
    /// Deadline expiry is latched into the flag on first observation, so
    /// repeated checks after expiry never touch the clock again.
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        let Some(inner) = &self.inner else {
            return false;
        };
        if inner.flag.load(Ordering::Relaxed) {
            return true;
        }
        match inner.deadline {
            Some(deadline) if Instant::now() >= deadline => {
                inner.flag.store(true, Ordering::Relaxed);
                true
            }
            _ => false,
        }
    }

    /// Whether this is the zero-cost [`CancelToken::never`] token.
    pub fn is_never(&self) -> bool {
        self.inner.is_none()
    }

    /// Time remaining until the deadline (`None` when the token has no
    /// deadline; zero once expired).
    pub fn remaining(&self) -> Option<Duration> {
        let deadline = self.inner.as_ref()?.deadline?;
        Some(deadline.saturating_duration_since(Instant::now()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_is_free_and_never_cancels() {
        let t = CancelToken::never();
        assert!(t.is_never());
        assert!(!t.is_cancelled());
        t.cancel(); // no-op
        assert!(!t.is_cancelled());
        assert_eq!(t.remaining(), None);
    }

    #[test]
    fn manual_cancel_is_shared_across_clones() {
        let t = CancelToken::new();
        let clone = t.clone();
        assert!(!clone.is_cancelled());
        t.cancel();
        assert!(clone.is_cancelled());
        assert_eq!(t.remaining(), None);
    }

    #[test]
    fn zero_deadline_is_immediately_cancelled() {
        let t = CancelToken::with_deadline(Duration::ZERO);
        assert!(t.is_cancelled());
        assert_eq!(t.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn far_deadline_is_not_cancelled() {
        let t = CancelToken::with_deadline(Duration::from_secs(3600));
        assert!(!t.is_cancelled());
        assert!(t.remaining().unwrap() > Duration::from_secs(3000));
        // Manual cancel still wins over the pending deadline.
        t.cancel();
        assert!(t.is_cancelled());
    }

    #[test]
    fn default_is_never() {
        assert!(CancelToken::default().is_never());
    }
}
