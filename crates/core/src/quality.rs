//! The iterated-multilevel quality layer: V-cycles and ensemble
//! recombination.
//!
//! Both levers buy better cut at equal wall-clock on top of any multistart
//! run (ROADMAP item 5), and both are driven by the [`Multistart`]
//! builder's `vcycles` / `ensemble` knobs:
//!
//! * **V-cycles** (`run_vcycles`): re-coarsen the instance *respecting
//!   the current best partition* — heavy-edge matching merges only
//!   vertices in the same part (fixed vertices stay pinned), so the
//!   projected coarse partition has exactly the objective value of the
//!   fine one — then re-refine down the new hierarchy. Because the
//!   refiners never accept a worse solution, the best value is
//!   monotonically non-increasing across cycles; the loop stops at the
//!   first cycle without strict improvement, or when the budget or the
//!   cancel token expires.
//! * **Ensemble recombination** (`recombine`): vertices co-assigned
//!   across *all* retained top solutions form agreement clusters (split
//!   greedily in vertex order under per-resource cluster-weight caps —
//!   the heavy-vertex guard of "Vertex Weights Revisited" — and under
//!   fixity compatibility), the clusters are force-coarsened through the
//!   same contraction tail heavy-edge matching uses, and a final
//!   constrained solve runs seeded from the best start. The seed's value
//!   is preserved exactly by the contraction, so the recombined solution
//!   is never worse than the best retained start.
//!
//! Every step is deterministic and worker-thread-count invariant: the
//! restricted coarsening, the 2-way FM stack's gain initialization and the
//! synchronous-round k-way engine all compute byte-identical results at
//! any thread budget (see [`crate::parallel`]).
//!
//! [`Multistart`]: crate::multistart::Multistart

use std::collections::HashMap;

use vlsi_rng::Rng;
use vlsi_trace::{Event, Sink};

use vlsi_hypergraph::{
    BalanceConstraint, CutState, FixedVertices, Fixity, Hypergraph, Objective, PartId,
};

use crate::cancel::CancelToken;
use crate::config::MultilevelConfig;
use crate::engine::{FmStack, Refiner, RunCtx};
use crate::kway;
use crate::multilevel::{coarsen_once, contract_clusters, merge_fixity, CoarsenParams, Level};
use crate::{PartitionError, PartitionResult};

/// Improvement passes the k-way refinement path spends per level before
/// giving up (each pass is itself a full best-prefix refinement).
const QUALITY_REFINE_PASSES: usize = 4;

/// The objective value of `parts` on `hg` under `balance`'s part count.
pub(crate) fn objective_value(
    hg: &Hypergraph,
    balance: &BalanceConstraint,
    parts: &[PartId],
    objective: Objective,
) -> u64 {
    CutState::new(hg, balance.num_parts(), parts).value(objective)
}

/// Refines `parts` in place with the strongest thread-count-invariant
/// refiner for the instance shape: the 2-way FM stack for bisection under
/// the cut objective, the synchronous-round k-way engine otherwise. Never
/// returns a solution worse than the seed; the returned `cut` field holds
/// the value of `objective`.
#[allow(clippy::too_many_arguments)]
fn quality_refine<R: Rng + ?Sized, S: Sink>(
    hg: &Hypergraph,
    fixed: &FixedVertices,
    balance: &BalanceConstraint,
    objective: Objective,
    parts: Vec<PartId>,
    rng: &mut R,
    sink: &S,
    cancel: &CancelToken,
    threads: usize,
) -> Result<PartitionResult, PartitionError> {
    if balance.num_parts() == 2 && objective == Objective::Cut {
        let cfg = MultilevelConfig {
            threads,
            ..MultilevelConfig::default()
        };
        let refiner = FmStack::from_multilevel(&cfg);
        return refiner.refine_ctx(
            hg,
            fixed,
            balance,
            parts,
            RunCtx::new(rng)
                .with_sink(sink)
                .with_cancel(cancel)
                .with_threads(threads),
        );
    }
    let seed_value = objective_value(hg, balance, &parts, objective);
    let mut best = PartitionResult::new(parts, seed_value);
    for _ in 0..QUALITY_REFINE_PASSES {
        if cancel.is_cancelled() {
            break;
        }
        let r = kway::refine_pass_parallel(
            hg,
            fixed,
            balance,
            best.parts.clone(),
            objective,
            threads.max(1),
        )?;
        if r.cut < best.cut {
            best = r;
        } else {
            break;
        }
    }
    Ok(best)
}

/// The coarsening knobs the quality layer uses: the multilevel engine's
/// defaults, with the fixed-weight budget extended to every part of a
/// k-way instance.
fn vcycle_params(hg: &Hypergraph, balance: &BalanceConstraint, threads: usize) -> CoarsenParams {
    let cfg = MultilevelConfig::default();
    CoarsenParams {
        max_cluster_weight: ((hg.total_weight() as f64) * cfg.max_cluster_fraction)
            .ceil()
            .max(1.0) as u64,
        max_cluster_weights: Vec::new(),
        max_net_size_for_matching: 64,
        max_fixed_part_weight: (0..balance.num_parts())
            .map(|p| balance.max(PartId(p as u32), 0))
            .collect(),
        allow_free_fixed_merge: false,
        threads,
    }
}

/// One V-cycle: coarsen restricted to same-part merges (so the partition
/// projects exactly), then refine the projection back down the hierarchy.
#[allow(clippy::too_many_arguments)]
fn one_vcycle<R: Rng + ?Sized, S: Sink>(
    hg: &Hypergraph,
    fixed: &FixedVertices,
    balance: &BalanceConstraint,
    objective: Objective,
    params: &CoarsenParams,
    parts: &[PartId],
    rng: &mut R,
    sink: &S,
    cancel: &CancelToken,
    threads: usize,
) -> Result<PartitionResult, PartitionError> {
    let cfg = MultilevelConfig::default();
    let mut levels: Vec<Level> = Vec::new();
    let mut cur_parts = parts.to_vec();
    loop {
        let (cur_hg, cur_fixed) = match levels.last() {
            Some(l) => (&l.hg, &l.fixed),
            None => (hg, fixed),
        };
        if cur_hg.num_vertices() <= cfg.coarsest_size || cancel.is_cancelled() {
            break;
        }
        match coarsen_once(
            cur_hg,
            cur_fixed,
            params,
            cfg.min_shrink,
            Some(&cur_parts),
            rng,
        ) {
            Some(level) => {
                // A cluster's part = any member's part (all members share
                // it by the same-part restriction).
                let mut coarse_parts = vec![PartId(0); level.hg.num_vertices()];
                for v in 0..level.map.len() {
                    coarse_parts[level.map[v].index()] = cur_parts[v];
                }
                cur_parts = coarse_parts;
                levels.push(level);
            }
            None => break,
        }
    }

    let (coarsest_hg, coarsest_fixed) = match levels.last() {
        Some(l) => (&l.hg, &l.fixed),
        None => (hg, fixed),
    };
    let mut r = quality_refine(
        coarsest_hg,
        coarsest_fixed,
        balance,
        objective,
        cur_parts,
        rng,
        sink,
        cancel,
        threads,
    )?;
    for i in (0..levels.len()).rev() {
        let fine_parts = levels[i].project(&r.parts);
        let (fine_hg, fine_fixed) = if i == 0 {
            (hg, fixed)
        } else {
            (&levels[i - 1].hg, &levels[i - 1].fixed)
        };
        r = quality_refine(
            fine_hg, fine_fixed, balance, objective, fine_parts, rng, sink, cancel, threads,
        )?;
    }
    Ok(r)
}

/// Runs up to `cycles` V-cycles on `best`, stopping at the first cycle
/// without strict improvement (or on cancellation). Emits one
/// [`Event::VCycleStart`] / [`Event::VCycleEnd`] bracket per cycle run.
/// The returned value is never worse than the input.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_vcycles<R: Rng + ?Sized, S: Sink>(
    hg: &Hypergraph,
    fixed: &FixedVertices,
    balance: &BalanceConstraint,
    objective: Objective,
    mut best: PartitionResult,
    cycles: usize,
    rng: &mut R,
    sink: &S,
    cancel: &CancelToken,
    threads: usize,
) -> Result<PartitionResult, PartitionError> {
    let params = vcycle_params(hg, balance, threads);
    for cycle in 0..cycles {
        if cancel.is_cancelled() {
            break;
        }
        if S::ENABLED {
            sink.record(&Event::VCycleStart {
                cycle: cycle as u32,
                value: best.cut,
            });
        }
        let before = best.cut;
        let candidate = one_vcycle(
            hg,
            fixed,
            balance,
            objective,
            &params,
            &best.parts,
            rng,
            sink,
            cancel,
            threads,
        )?;
        if candidate.cut <= best.cut {
            best = candidate;
        }
        if S::ENABLED {
            sink.record(&Event::VCycleEnd {
                cycle: cycle as u32,
                value: best.cut,
            });
        }
        if best.cut >= before {
            break; // no strict improvement: iterating further cannot help
        }
    }
    Ok(best)
}

/// Ensemble recombination over the retained `top` solutions (best first).
///
/// Vertices with the same assignment across *every* retained solution form
/// agreement clusters; a cluster is split (greedily, in vertex order) when
/// adding a vertex would push its weight vector past the per-resource caps
/// — the tightest part capacity per resource, so every cluster stays
/// placeable — or make its fixities incompatible. The clusters are
/// force-coarsened and the coarse instance is solved seeded from `top[0]`,
/// whose value the contraction preserves exactly; the projected solution
/// gets one final fine-level refinement.
///
/// Returns `None` when recombination has nothing to work with: fewer than
/// two retained solutions, or no agreement compression at all (every
/// vertex its own cluster). Emits one [`Event::RecombineStart`].
#[allow(clippy::too_many_arguments)]
pub(crate) fn recombine<R: Rng + ?Sized, S: Sink>(
    hg: &Hypergraph,
    fixed: &FixedVertices,
    balance: &BalanceConstraint,
    objective: Objective,
    top: &[PartitionResult],
    rng: &mut R,
    sink: &S,
    cancel: &CancelToken,
    threads: usize,
) -> Result<Option<PartitionResult>, PartitionError> {
    let n = hg.num_vertices();
    if top.len() < 2 || n == 0 {
        return Ok(None);
    }

    // Per-resource cluster-weight caps: the tightest part capacity, so a
    // cluster never outgrows every legal placement (the heavy-vertex
    // pathology guard, applied to agreement clusters).
    let nr = balance.num_resources().min(hg.num_resources());
    let caps: Vec<u64> = (0..nr)
        .map(|r| {
            (0..balance.num_parts())
                .map(|p| balance.max(PartId(p as u32), r))
                .min()
                .unwrap_or(u64::MAX)
        })
        .collect();

    // Agreement clusters keyed by the per-solution assignment signature.
    // One open cluster per signature: (cluster id, merged fixity,
    // accumulated weight vector). Cluster ids are assigned in vertex
    // order, so the clustering is deterministic.
    let mut open: HashMap<Vec<u32>, (u32, Fixity, Vec<u64>)> = HashMap::new();
    let mut cluster_of = vec![0u32; n];
    let mut num_clusters = 0usize;
    for v in hg.vertices() {
        let sig: Vec<u32> = top.iter().map(|t| t.parts[v.index()].0).collect();
        let w = hg.vertex_weights(v);
        let f = fixed.fixity(v);
        let mut assigned = false;
        if let Some((c, cf, cw)) = open.get_mut(&sig) {
            if crate::multilevel::within_resource_caps(cw, w, &caps) {
                if let Some(m) = merge_fixity(*cf, f) {
                    cluster_of[v.index()] = *c;
                    *cf = m;
                    for (a, &b) in cw.iter_mut().zip(w) {
                        *a += b;
                    }
                    assigned = true;
                }
            }
        }
        if !assigned {
            let c = num_clusters as u32;
            num_clusters += 1;
            cluster_of[v.index()] = c;
            open.insert(sig.clone(), (c, f, w.to_vec()));
        }
    }
    if num_clusters >= n {
        return Ok(None); // the starts agree nowhere: nothing to contract
    }

    if S::ENABLED {
        sink.record(&Event::RecombineStart {
            solutions: top.len() as u32,
            clusters: num_clusters as u64,
            value: top[0].cut,
        });
    }

    let level = contract_clusters(hg, fixed, cluster_of, num_clusters, threads);
    // Seed the coarse solve from the best start: every cluster member
    // shares its assignment (the signature includes solution 0), and the
    // contraction preserves part loads and the objective value exactly.
    let mut coarse_parts = vec![PartId(0); num_clusters];
    for v in 0..n {
        coarse_parts[level.map[v].index()] = top[0].parts[v];
    }
    let coarse = quality_refine(
        &level.hg,
        &level.fixed,
        balance,
        objective,
        coarse_parts,
        rng,
        sink,
        cancel,
        threads,
    )?;
    let fine_parts = level.project(&coarse.parts);
    let refined = quality_refine(
        hg, fixed, balance, objective, fine_parts, rng, sink, cancel, threads,
    )?;
    Ok(Some(refined))
}

#[cfg(test)]
mod tests {
    use super::*;
    use vlsi_hypergraph::{validate_partitioning, HypergraphBuilder, Partitioning, Tolerance};
    use vlsi_rng::{ChaCha8Rng, SeedableRng};
    use vlsi_trace::NullSink;

    fn grid(side: usize) -> Hypergraph {
        let mut b = HypergraphBuilder::new();
        let v: Vec<_> = (0..side * side).map(|_| b.add_vertex(1)).collect();
        for r in 0..side {
            for c in 0..side {
                if c + 1 < side {
                    b.add_net(1, [v[r * side + c], v[r * side + c + 1]])
                        .unwrap();
                }
                if r + 1 < side {
                    b.add_net(1, [v[r * side + c], v[(r + 1) * side + c]])
                        .unwrap();
                }
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn vcycles_never_worsen_and_stay_legal() {
        let hg = grid(10);
        let fixed = FixedVertices::all_free(hg.num_vertices());
        let balance = BalanceConstraint::bisection(hg.total_weight(), Tolerance::Relative(0.02));
        // A poor legal seed: striped columns.
        let parts: Vec<PartId> = (0..hg.num_vertices())
            .map(|i| PartId(((i % 10) >= 5) as u32))
            .collect();
        let seed_cut = objective_value(&hg, &balance, &parts, Objective::Cut);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let r = run_vcycles(
            &hg,
            &fixed,
            &balance,
            Objective::Cut,
            PartitionResult::new(parts, seed_cut),
            3,
            &mut rng,
            &NullSink,
            &CancelToken::never(),
            1,
        )
        .unwrap();
        assert!(r.cut <= seed_cut);
        let p = Partitioning::from_parts(&hg, 2, r.parts).unwrap();
        assert!(validate_partitioning(&hg, &p, &balance, &fixed).is_valid());
    }

    #[test]
    fn recombine_never_worse_than_best_retained() {
        let hg = grid(8);
        let fixed = FixedVertices::all_free(hg.num_vertices());
        // Two mediocre solutions that agree on most rows and disagree on a
        // band; the looser tolerance keeps both legal.
        let a: Vec<PartId> = (0..64).map(|i| PartId((i / 8 >= 4) as u32)).collect();
        let b: Vec<PartId> = (0..64)
            .map(|i| {
                let row = i / 8;
                PartId((row >= 4 || row == 3) as u32)
            })
            .collect();
        let balance = BalanceConstraint::bisection(hg.total_weight(), Tolerance::Relative(0.30));
        let va = objective_value(&hg, &balance, &a, Objective::Cut);
        let vb = objective_value(&hg, &balance, &b, Objective::Cut);
        assert!(va <= vb);
        let top = vec![PartitionResult::new(a, va), PartitionResult::new(b, vb)];
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let r = recombine(
            &hg,
            &fixed,
            &balance,
            Objective::Cut,
            &top,
            &mut rng,
            &NullSink,
            &CancelToken::never(),
            1,
        )
        .unwrap()
        .expect("agreement exists");
        assert!(r.cut <= va);
        let p = Partitioning::from_parts(&hg, 2, r.parts).unwrap();
        assert!(validate_partitioning(&hg, &p, &balance, &fixed).is_valid());
    }

    #[test]
    fn recombine_declines_without_agreement_or_solutions() {
        let hg = grid(4);
        let fixed = FixedVertices::all_free(16);
        let balance = BalanceConstraint::bisection(16, Tolerance::Relative(0.2));
        let a: Vec<PartId> = (0..16).map(|i| PartId((i >= 8) as u32)).collect();
        let one = vec![PartitionResult::new(a.clone(), 4)];
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        assert!(recombine(
            &hg,
            &fixed,
            &balance,
            Objective::Cut,
            &one,
            &mut rng,
            &NullSink,
            &CancelToken::never(),
            1,
        )
        .unwrap()
        .is_none());
        // Perfectly anti-correlated pair: no two vertices share a
        // signature-compatible cluster beyond singletons only if every
        // signature is unique — construct alternating disagreement.
        let b: Vec<PartId> = (0..16).map(|i| PartId((i % 2) as u32)).collect();
        let c: Vec<PartId> = (0..16).map(|i| PartId(((i / 2) % 2) as u32)).collect();
        let d: Vec<PartId> = (0..16).map(|i| PartId(((i / 4) % 2) as u32)).collect();
        let e: Vec<PartId> = (0..16).map(|i| PartId(((i / 8) % 2) as u32)).collect();
        let top: Vec<PartitionResult> = [b, c, d, e]
            .into_iter()
            .map(|p| {
                let v = objective_value(&hg, &balance, &p, Objective::Cut);
                PartitionResult::new(p, v)
            })
            .collect();
        // All 16 signatures are distinct (4-bit codes 0..16): no clusters.
        assert!(recombine(
            &hg,
            &fixed,
            &balance,
            Objective::Cut,
            &top,
            &mut rng,
            &NullSink,
            &CancelToken::never(),
            1,
        )
        .unwrap()
        .is_none());
    }
}
