//! Multistart driver reproducing the paper's 1/2/4/8-start protocol.

use std::time::{Duration, Instant};

use vlsi_rng::Rng;

use vlsi_hypergraph::{BalanceConstraint, FixedVertices, Hypergraph};
use vlsi_trace::{CancelStage, Event, NullSink, Sink};

use crate::cancel::CancelToken;
use crate::engine::RunCtx;
use crate::{PartitionError, PartitionResult};

/// One independent start: its cut and wall-clock time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StartRecord {
    /// Cut achieved by this start.
    pub cut: u64,
    /// Wall-clock time the start took.
    pub elapsed: Duration,
}

/// Outcome of a multistart run: the best solution and per-start records.
#[derive(Debug, Clone, PartialEq)]
pub struct MultistartOutcome {
    /// The best solution over all starts.
    pub best: PartitionResult,
    /// Per-start cut/time records, in execution order.
    pub starts: Vec<StartRecord>,
}

impl MultistartOutcome {
    /// Best cut among the first `n` starts (the paper's "best of s starts"
    /// protocol — s ∈ {1, 2, 4, 8}). As with [`time_of_first`](Self::time_of_first),
    /// `n` is clamped to the number of executed starts, so asking for more
    /// starts than ran reports the best over all of them. Returns `None`
    /// only when `n` is zero (no starts considered).
    pub fn best_of_first(&self, n: usize) -> Option<u64> {
        self.starts[..n.min(self.starts.len())]
            .iter()
            .map(|s| s.cut)
            .min()
    }

    /// Total wall-clock time of the first `n` starts.
    pub fn time_of_first(&self, n: usize) -> Duration {
        self.starts[..n.min(self.starts.len())]
            .iter()
            .map(|s| s.elapsed)
            .sum()
    }

    /// Mean per-start wall-clock time.
    pub fn avg_start_time(&self) -> Duration {
        if self.starts.is_empty() {
            Duration::ZERO
        } else {
            self.time_of_first(self.starts.len()) / self.starts.len() as u32
        }
    }
}

/// Runs `partitioner` for `starts` independent starts and keeps the best.
///
/// `partitioner` is any closure producing a [`PartitionResult`] from the
/// instance and an RNG — both the flat FM and the multilevel engine fit.
///
/// # Errors
/// Propagates the first error returned by `partitioner`.
///
/// # Example
/// ```
/// use vlsi_rng::SeedableRng;
/// use vlsi_hypergraph::{BalanceConstraint, FixedVertices, HypergraphBuilder, Tolerance};
/// use vlsi_partition::{multistart, BipartFm, FmConfig, PartitionResult};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = HypergraphBuilder::new();
/// let v: Vec<_> = (0..6).map(|_| b.add_vertex(1)).collect();
/// for w in v.windows(2) {
///     b.add_net(1, [w[0], w[1]])?;
/// }
/// let hg = b.build()?;
/// let balance = BalanceConstraint::bisection(6, Tolerance::Relative(0.0));
/// let fixed = FixedVertices::all_free(6);
/// let fm = BipartFm::new(FmConfig::default());
///
/// let mut rng = vlsi_rng::ChaCha8Rng::seed_from_u64(0);
/// let outcome = multistart(&hg, &fixed, &balance, 4, &mut rng, |hg, fx, bc, rng| {
///     let r = fm.run_random(hg, fx, bc, rng)?;
///     Ok(PartitionResult::new(r.parts, r.cut))
/// })?;
/// assert_eq!(outcome.best.cut, 1);
/// assert_eq!(outcome.starts.len(), 4);
/// # Ok(())
/// # }
/// ```
pub fn multistart<R, F>(
    hg: &Hypergraph,
    fixed: &FixedVertices,
    balance: &BalanceConstraint,
    starts: usize,
    rng: &mut R,
    partitioner: F,
) -> Result<MultistartOutcome, PartitionError>
where
    R: Rng + ?Sized,
    F: FnMut(
        &Hypergraph,
        &FixedVertices,
        &BalanceConstraint,
        &mut R,
    ) -> Result<PartitionResult, PartitionError>,
{
    multistart_with_sink(hg, fixed, balance, starts, rng, &NullSink, partitioner)
}

/// Like [`multistart`], emitting an [`Event::StartFinished`] per start
/// (index, cut, wall-clock microseconds) into `sink` — the raw data behind
/// the paper's Figures 1–2 cut/CPU-time traces.
///
/// The driver only emits the start bracket; pass a sink-aware closure
/// (e.g. one calling [`crate::BipartFm::run_with_sink`]) to also stream
/// the per-pass events of each start.
///
/// # Errors
/// Propagates the first error returned by `partitioner`.
pub fn multistart_with_sink<R, S, F>(
    hg: &Hypergraph,
    fixed: &FixedVertices,
    balance: &BalanceConstraint,
    starts: usize,
    rng: &mut R,
    sink: &S,
    mut partitioner: F,
) -> Result<MultistartOutcome, PartitionError>
where
    R: Rng + ?Sized,
    S: Sink,
    F: FnMut(
        &Hypergraph,
        &FixedVertices,
        &BalanceConstraint,
        &mut R,
    ) -> Result<PartitionResult, PartitionError>,
{
    assert!(starts > 0, "at least one start required");
    let mut best: Option<PartitionResult> = None;
    let mut records = Vec::with_capacity(starts);
    for start in 0..starts {
        let t0 = Instant::now();
        let result = partitioner(hg, fixed, balance, rng)?;
        let elapsed = t0.elapsed();
        if S::ENABLED {
            sink.record(&Event::StartFinished {
                start: start as u32,
                cut: result.cut,
                micros: elapsed.as_micros() as u64,
            });
        }
        records.push(StartRecord {
            cut: result.cut,
            elapsed,
        });
        match &best {
            Some(b) if b.cut <= result.cut => {}
            _ => best = Some(result),
        }
    }
    Ok(MultistartOutcome {
        best: best.expect("starts > 0"),
        starts: records,
    })
}

/// Runs `starts` independent starts across `threads` OS threads, keeping
/// the best. Start `i` always uses `ChaCha8Rng::seed_from_u64(base_seed + i)`,
/// so the outcome is deterministic and identical to a sequential run with
/// the same seeding, regardless of scheduling.
///
/// `partitioner` is shared across threads and must be `Sync`.
///
/// # Errors
/// Propagates the error of the lowest-indexed failing start.
///
/// # Panics
/// Panics if `starts == 0` or `threads == 0`.
///
/// # Example
/// ```
/// use vlsi_hypergraph::{BalanceConstraint, FixedVertices, HypergraphBuilder, Tolerance};
/// use vlsi_partition::{multistart_parallel, BipartFm, FmConfig, PartitionResult};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = HypergraphBuilder::new();
/// let v: Vec<_> = (0..6).map(|_| b.add_vertex(1)).collect();
/// for w in v.windows(2) {
///     b.add_net(1, [w[0], w[1]])?;
/// }
/// let hg = b.build()?;
/// let balance = BalanceConstraint::bisection(6, Tolerance::Relative(0.0));
/// let fixed = FixedVertices::all_free(6);
/// let fm = BipartFm::new(FmConfig::default());
/// let outcome = multistart_parallel(&hg, &fixed, &balance, 4, 2, 7, &|hg, fx, bc, rng| {
///     let r = fm.run_random(hg, fx, bc, rng)?;
///     Ok(PartitionResult::new(r.parts, r.cut))
/// })?;
/// assert_eq!(outcome.best.cut, 1);
/// # Ok(())
/// # }
/// ```
pub fn multistart_parallel<F>(
    hg: &Hypergraph,
    fixed: &FixedVertices,
    balance: &BalanceConstraint,
    starts: usize,
    threads: usize,
    base_seed: u64,
    partitioner: &F,
) -> Result<MultistartOutcome, PartitionError>
where
    F: Fn(
            &Hypergraph,
            &FixedVertices,
            &BalanceConstraint,
            &mut vlsi_rng::ChaCha8Rng,
        ) -> Result<PartitionResult, PartitionError>
        + Sync,
{
    use vlsi_rng::SeedableRng;

    assert!(starts > 0, "at least one start required");
    assert!(threads > 0, "at least one thread required");
    let threads = threads.min(starts);

    let mut slots: Vec<Option<Result<(PartitionResult, Duration), PartitionError>>> =
        (0..starts).map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut chunks: Vec<&mut [Option<_>]> = Vec::new();
        let mut rest = slots.as_mut_slice();
        let per = starts.div_ceil(threads);
        while !rest.is_empty() {
            let take = per.min(rest.len());
            let (head, tail) = rest.split_at_mut(take);
            chunks.push(head);
            rest = tail;
        }
        for (c, chunk) in chunks.into_iter().enumerate() {
            let first_index = c * per;
            scope.spawn(move || {
                for (off, slot) in chunk.iter_mut().enumerate() {
                    let i = first_index + off;
                    let mut rng =
                        vlsi_rng::ChaCha8Rng::seed_from_u64(base_seed.wrapping_add(i as u64));
                    let t0 = Instant::now();
                    let result = partitioner(hg, fixed, balance, &mut rng);
                    *slot = Some(result.map(|r| (r, t0.elapsed())));
                }
            });
        }
    });

    let mut best: Option<PartitionResult> = None;
    let mut records = Vec::with_capacity(starts);
    for slot in slots {
        let (result, elapsed) = slot.expect("every slot was filled")?;
        records.push(StartRecord {
            cut: result.cut,
            elapsed,
        });
        match &best {
            Some(b) if b.cut <= result.cut => {}
            _ => best = Some(result),
        }
    }
    Ok(MultistartOutcome {
        best: best.expect("starts > 0"),
        starts: records,
    })
}

/// [`multistart`] over any [`Partitioner`](crate::Partitioner) — the
/// trait-layer driver used by the experiment harness.
///
/// # Errors
/// Propagates the first error returned by the engine.
///
/// # Example
/// ```
/// use vlsi_rng::SeedableRng;
/// use vlsi_hypergraph::{BalanceConstraint, FixedVertices, HypergraphBuilder, Tolerance};
/// use vlsi_partition::{multistart_engine, EngineConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = HypergraphBuilder::new();
/// let v: Vec<_> = (0..6).map(|_| b.add_vertex(1)).collect();
/// for w in v.windows(2) {
///     b.add_net(1, [w[0], w[1]])?;
/// }
/// let hg = b.build()?;
/// let balance = BalanceConstraint::bisection(6, Tolerance::Relative(0.0));
/// let fixed = FixedVertices::all_free(6);
/// let engine = EngineConfig::by_name("fm").unwrap();
/// let mut rng = vlsi_rng::ChaCha8Rng::seed_from_u64(0);
/// let outcome = multistart_engine(&hg, &fixed, &balance, 4, &mut rng, &engine)?;
/// assert_eq!(outcome.best.cut, 1);
/// # Ok(())
/// # }
/// ```
pub fn multistart_engine<R, E>(
    hg: &Hypergraph,
    fixed: &FixedVertices,
    balance: &BalanceConstraint,
    starts: usize,
    rng: &mut R,
    engine: &E,
) -> Result<MultistartOutcome, PartitionError>
where
    R: Rng + ?Sized,
    E: crate::Partitioner,
{
    multistart(
        hg,
        fixed,
        balance,
        starts,
        rng,
        |hg, fixed, balance, rng| engine.partition_ctx(hg, fixed, balance, RunCtx::new(rng)),
    )
}

/// [`multistart_with_sink`] over any [`Partitioner`](crate::Partitioner):
/// each start streams the engine's own trace events plus the
/// [`Event::StartFinished`] bracket into `sink`.
///
/// # Errors
/// Propagates the first error returned by the engine.
pub fn multistart_engine_with_sink<R, S, E>(
    hg: &Hypergraph,
    fixed: &FixedVertices,
    balance: &BalanceConstraint,
    starts: usize,
    rng: &mut R,
    sink: &S,
    engine: &E,
) -> Result<MultistartOutcome, PartitionError>
where
    R: Rng + ?Sized,
    S: Sink,
    E: crate::Partitioner,
{
    multistart_with_sink(
        hg,
        fixed,
        balance,
        starts,
        rng,
        sink,
        |hg, fixed, balance, rng| {
            engine.partition_ctx(hg, fixed, balance, RunCtx::new(rng).with_sink(sink))
        },
    )
}

/// [`multistart_engine_with_sink`] with cooperative cancellation: the
/// token is threaded into every start, starts after the first are skipped
/// once it fires, and a cancelled run records one [`Event::Cancelled`]
/// (stage `multistart`, value = best cut). Start 0 always executes, so an
/// already-expired deadline still yields a legal best-so-far solution.
///
/// # Errors
/// Propagates the first error returned by the engine.
///
/// # Panics
/// Panics if `starts == 0`.
#[allow(clippy::too_many_arguments)]
pub fn multistart_engine_cancellable<R, S, E>(
    hg: &Hypergraph,
    fixed: &FixedVertices,
    balance: &BalanceConstraint,
    starts: usize,
    rng: &mut R,
    sink: &S,
    engine: &E,
    cancel: &CancelToken,
) -> Result<MultistartOutcome, PartitionError>
where
    R: Rng + ?Sized,
    S: Sink,
    E: crate::Partitioner,
{
    assert!(starts > 0, "at least one start required");
    let mut best: Option<PartitionResult> = None;
    let mut records = Vec::with_capacity(starts);
    for start in 0..starts {
        if start > 0 && cancel.is_cancelled() {
            break;
        }
        let t0 = Instant::now();
        let result = engine.partition_ctx(
            hg,
            fixed,
            balance,
            RunCtx::new(rng).with_sink(sink).with_cancel(cancel),
        )?;
        let elapsed = t0.elapsed();
        if S::ENABLED {
            sink.record(&Event::StartFinished {
                start: start as u32,
                cut: result.cut,
                micros: elapsed.as_micros() as u64,
            });
        }
        records.push(StartRecord {
            cut: result.cut,
            elapsed,
        });
        match &best {
            Some(b) if b.cut <= result.cut => {}
            _ => best = Some(result),
        }
    }
    let best = best.expect("start 0 always runs");
    if S::ENABLED && cancel.is_cancelled() {
        sink.record(&Event::Cancelled {
            stage: CancelStage::Multistart,
            value: best.cut,
        });
    }
    Ok(MultistartOutcome {
        best,
        starts: records,
    })
}

/// [`multistart_parallel`] over any [`Partitioner`](crate::Partitioner)
/// that is `Sync` — same deterministic per-start seeding, no
/// engine-specific glue.
///
/// # Errors
/// Propagates the error of the lowest-indexed failing start.
///
/// # Panics
/// Panics if `starts == 0` or `threads == 0`.
pub fn multistart_parallel_engine<E>(
    hg: &Hypergraph,
    fixed: &FixedVertices,
    balance: &BalanceConstraint,
    starts: usize,
    threads: usize,
    base_seed: u64,
    engine: &E,
) -> Result<MultistartOutcome, PartitionError>
where
    E: crate::Partitioner + Sync,
{
    let run = |hg: &Hypergraph,
               fixed: &FixedVertices,
               balance: &BalanceConstraint,
               rng: &mut vlsi_rng::ChaCha8Rng|
     -> Result<PartitionResult, PartitionError> {
        engine.partition_ctx(hg, fixed, balance, RunCtx::new(rng))
    };
    multistart_parallel(hg, fixed, balance, starts, threads, base_seed, &run)
}

/// [`multistart_parallel_engine`] with cooperative cancellation and a
/// summary sink.
///
/// The token is threaded into every start; start 0 always runs (possibly
/// stopping early at the engine's own checkpoints), and starts that have
/// not begun when the token fires are skipped entirely, so
/// `outcome.starts` may be shorter than `starts` — but never empty.
///
/// Worker threads run their engines **untraced**: thread interleaving
/// would otherwise scramble event order. Only the per-start
/// [`Event::StartFinished`] brackets are emitted, at collection time in
/// ascending start order, followed by one [`Event::Cancelled`] (stage
/// `multistart`) when the run was cut short — so the summary stream is
/// deterministic for a fixed set of completed starts.
///
/// # Errors
/// Propagates the error of the lowest-indexed failing start.
///
/// # Panics
/// Panics if `starts == 0` or `threads == 0`.
#[allow(clippy::too_many_arguments)]
pub fn multistart_parallel_engine_cancellable<S, E>(
    hg: &Hypergraph,
    fixed: &FixedVertices,
    balance: &BalanceConstraint,
    starts: usize,
    threads: usize,
    base_seed: u64,
    engine: &E,
    sink: &S,
    cancel: &CancelToken,
) -> Result<MultistartOutcome, PartitionError>
where
    S: Sink,
    E: crate::Partitioner + Sync,
{
    multistart_parallel_engine_instrumented(
        hg, fixed, balance, starts, threads, base_seed, engine, sink, &NullSink, cancel,
    )
}

/// [`multistart_parallel_engine_cancellable`] with an extra **engine
/// sink** that every start's engine run records into.
///
/// The summary `sink` keeps its deterministic contract (per-start
/// [`Event::StartFinished`] in ascending order at collection time).
/// `engine_sink` instead receives the engines' internal event streams
/// (levels, passes, moves, cancellation checkpoints) **live from the
/// worker threads**, so with `threads > 1` its event *order* is not
/// deterministic — only the multiset of events is. It exists for
/// order-insensitive consumers, above all the
/// [`CounterSink`](vlsi_trace::CounterSink) a serving layer uses to
/// aggregate pass/move totals across jobs; pass
/// [`NullSink`] to opt out (what the plain
/// cancellable variant does).
///
/// # Errors
/// Propagates the error of the lowest-indexed failing start.
///
/// # Panics
/// Panics if `starts == 0` or `threads == 0`.
#[allow(clippy::too_many_arguments)]
pub fn multistart_parallel_engine_instrumented<S, ES, E>(
    hg: &Hypergraph,
    fixed: &FixedVertices,
    balance: &BalanceConstraint,
    starts: usize,
    threads: usize,
    base_seed: u64,
    engine: &E,
    sink: &S,
    engine_sink: &ES,
    cancel: &CancelToken,
) -> Result<MultistartOutcome, PartitionError>
where
    S: Sink,
    ES: Sink + Sync,
    E: crate::Partitioner + Sync,
{
    use vlsi_rng::SeedableRng;

    assert!(starts > 0, "at least one start required");
    assert!(threads > 0, "at least one thread required");
    let threads = threads.min(starts);

    let mut slots: Vec<Option<Result<(PartitionResult, Duration), PartitionError>>> =
        (0..starts).map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut chunks: Vec<&mut [Option<_>]> = Vec::new();
        let mut rest = slots.as_mut_slice();
        let per = starts.div_ceil(threads);
        while !rest.is_empty() {
            let take = per.min(rest.len());
            let (head, tail) = rest.split_at_mut(take);
            chunks.push(head);
            rest = tail;
        }
        for (c, chunk) in chunks.into_iter().enumerate() {
            let first_index = c * per;
            scope.spawn(move || {
                for (off, slot) in chunk.iter_mut().enumerate() {
                    let i = first_index + off;
                    // Start 0 must yield a result; everything else is
                    // skippable once the token fires.
                    if i > 0 && cancel.is_cancelled() {
                        continue;
                    }
                    let mut rng =
                        vlsi_rng::ChaCha8Rng::seed_from_u64(base_seed.wrapping_add(i as u64));
                    let t0 = Instant::now();
                    let result = engine.partition_ctx(
                        hg,
                        fixed,
                        balance,
                        RunCtx::new(&mut rng)
                            .with_sink(engine_sink)
                            .with_cancel(cancel),
                    );
                    *slot = Some(result.map(|r| (r, t0.elapsed())));
                }
            });
        }
    });

    let mut best: Option<PartitionResult> = None;
    let mut records = Vec::new();
    for (i, slot) in slots.into_iter().enumerate() {
        let Some(outcome) = slot else {
            continue; // start skipped by cancellation
        };
        let (result, elapsed) = outcome?;
        if S::ENABLED {
            sink.record(&Event::StartFinished {
                start: i as u32,
                cut: result.cut,
                micros: elapsed.as_micros() as u64,
            });
        }
        records.push(StartRecord {
            cut: result.cut,
            elapsed,
        });
        match &best {
            Some(b) if b.cut <= result.cut => {}
            _ => best = Some(result),
        }
    }
    let best = best.expect("start 0 always runs");
    if S::ENABLED && cancel.is_cancelled() {
        sink.record(&Event::Cancelled {
            stage: CancelStage::Multistart,
            value: best.cut,
        });
    }
    Ok(MultistartOutcome {
        best,
        starts: records,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vlsi_hypergraph::{HypergraphBuilder, PartId, Tolerance};
    use vlsi_rng::ChaCha8Rng;
    use vlsi_rng::SeedableRng;

    fn tiny() -> (Hypergraph, FixedVertices, BalanceConstraint) {
        let mut b = HypergraphBuilder::new();
        let v: Vec<_> = (0..4).map(|_| b.add_vertex(1)).collect();
        b.add_net(1, [v[0], v[1]]).unwrap();
        b.add_net(1, [v[2], v[3]]).unwrap();
        let hg = b.build().unwrap();
        let fx = FixedVertices::all_free(4);
        let bc = BalanceConstraint::bisection(4, Tolerance::Relative(0.0));
        (hg, fx, bc)
    }

    #[test]
    fn keeps_best_and_all_records() {
        let (hg, fx, bc) = tiny();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut cuts = [5u64, 2, 7].into_iter();
        let outcome = multistart(&hg, &fx, &bc, 3, &mut rng, |_, _, _, _| {
            Ok(PartitionResult::new(
                vec![PartId(0); 4],
                cuts.next().unwrap(),
            ))
        })
        .unwrap();
        assert_eq!(outcome.best.cut, 2);
        assert_eq!(outcome.starts.len(), 3);
        assert_eq!(outcome.best_of_first(1), Some(5));
        assert_eq!(outcome.best_of_first(2), Some(2));
        assert_eq!(outcome.best_of_first(9), Some(2));
        assert_eq!(outcome.best_of_first(0), None);
    }

    #[test]
    fn best_of_first_clamps_to_executed_starts() {
        let (hg, fx, bc) = tiny();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut cuts = [5u64, 2, 7].into_iter();
        let outcome = multistart(&hg, &fx, &bc, 3, &mut rng, |_, _, _, _| {
            Ok(PartitionResult::new(
                vec![PartId(0); 4],
                cuts.next().unwrap(),
            ))
        })
        .unwrap();
        // Exactly at, one past, and far past the executed-start count all
        // report the best over every start that actually ran.
        assert_eq!(outcome.best_of_first(3), Some(2));
        assert_eq!(outcome.best_of_first(4), Some(2));
        assert_eq!(outcome.best_of_first(usize::MAX), Some(2));
        // Zero starts considered: nothing to report.
        assert_eq!(outcome.best_of_first(0), None);
    }

    #[test]
    fn errors_propagate() {
        let (hg, fx, bc) = tiny();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let err = multistart(&hg, &fx, &bc, 2, &mut rng, |_, _, _, _| {
            Err(PartitionError::InfeasibleInstance {
                vertex: None,
                detail: "boom".into(),
            })
        })
        .unwrap_err();
        assert!(matches!(err, PartitionError::InfeasibleInstance { .. }));
    }

    #[test]
    fn ties_keep_earlier_start() {
        let (hg, fx, bc) = tiny();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut i = 0u32;
        let outcome = multistart(&hg, &fx, &bc, 2, &mut rng, |_, _, _, _| {
            i += 1;
            Ok(PartitionResult::new(vec![PartId(i - 1); 4], 3))
        })
        .unwrap();
        assert_eq!(outcome.best.parts[0], PartId(0));
    }

    #[test]
    fn parallel_matches_sequential_seeding() {
        let (hg, fx, bc) = tiny();
        let fm = crate::BipartFm::new(crate::FmConfig::default());
        let run = |hg: &Hypergraph,
                   fx: &FixedVertices,
                   bc: &BalanceConstraint,
                   rng: &mut ChaCha8Rng|
         -> Result<PartitionResult, PartitionError> {
            let r = fm.run_random(hg, fx, bc, rng)?;
            Ok(PartitionResult::new(r.parts, r.cut))
        };
        let par = multistart_parallel(&hg, &fx, &bc, 5, 3, 42, &run).unwrap();
        // Sequential reference with the same per-start seeding.
        let mut seq_cuts = Vec::new();
        for i in 0..5u64 {
            let mut rng = ChaCha8Rng::seed_from_u64(42 + i);
            seq_cuts.push(run(&hg, &fx, &bc, &mut rng).unwrap().cut);
        }
        let par_cuts: Vec<u64> = par.starts.iter().map(|s| s.cut).collect();
        assert_eq!(par_cuts, seq_cuts);
        assert_eq!(par.best.cut, *seq_cuts.iter().min().unwrap());
    }

    #[test]
    fn parallel_single_thread_works() {
        let (hg, fx, bc) = tiny();
        let outcome = multistart_parallel(&hg, &fx, &bc, 3, 1, 0, &|_, _, _, _| {
            Ok(PartitionResult::new(vec![PartId(0); 4], 2))
        })
        .unwrap();
        assert_eq!(outcome.starts.len(), 3);
        assert_eq!(outcome.best.cut, 2);
    }

    #[test]
    fn parallel_errors_propagate() {
        let (hg, fx, bc) = tiny();
        let err = multistart_parallel(&hg, &fx, &bc, 4, 2, 0, &|_, _, _, _| {
            Err::<PartitionResult, _>(PartitionError::InfeasibleInstance {
                vertex: None,
                detail: "boom".into(),
            })
        })
        .unwrap_err();
        assert!(matches!(err, PartitionError::InfeasibleInstance { .. }));
    }

    #[test]
    fn sink_sees_one_start_event_per_start() {
        use vlsi_trace::{replay, VecSink};
        let (hg, fx, bc) = tiny();
        let fm = crate::BipartFm::new(crate::FmConfig::default());
        let sink = VecSink::new();
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let outcome = multistart_with_sink(&hg, &fx, &bc, 3, &mut rng, &sink, |hg, fx, bc, rng| {
            let r = fm.run_random_with_sink(hg, fx, bc, rng, &sink)?;
            Ok(PartitionResult::new(r.parts, r.cut))
        })
        .unwrap();
        let events = sink.take();
        let start_events: Vec<_> = events
            .iter()
            .filter_map(|e| match e {
                Event::StartFinished { start, cut, .. } => Some((*start, *cut)),
                _ => None,
            })
            .collect();
        assert_eq!(start_events.len(), 3);
        for (i, (start, cut)) in start_events.iter().enumerate() {
            assert_eq!(*start as usize, i);
            assert_eq!(*cut, outcome.starts[i].cut);
        }
        // The FM pass events of every start rode the same stream.
        assert!(!replay::pass_summaries(&events).is_empty());
    }

    #[test]
    fn every_registry_engine_runs_under_both_drivers() {
        use crate::engine::{EngineConfig, ENGINES};
        let mut b = HypergraphBuilder::new();
        let v: Vec<_> = (0..12).map(|_| b.add_vertex(1)).collect();
        for w in v.windows(2) {
            b.add_net(1, [w[0], w[1]]).unwrap();
        }
        let hg = b.build().unwrap();
        let fx = FixedVertices::all_free(12);
        let bc = BalanceConstraint::bisection(12, Tolerance::Relative(0.2));
        for info in ENGINES {
            let engine = EngineConfig::by_name(info.name).unwrap();
            let mut rng = ChaCha8Rng::seed_from_u64(5);
            let seq = multistart_engine(&hg, &fx, &bc, 2, &mut rng, &engine).unwrap();
            let par = multistart_parallel_engine(&hg, &fx, &bc, 2, 2, 5, &engine).unwrap();
            assert_eq!(seq.starts.len(), 2, "{}", info.name);
            assert_eq!(par.starts.len(), 2, "{}", info.name);
            assert!(par.best.cut >= 1, "{}", info.name);
        }
    }

    #[test]
    fn cancelled_token_still_yields_start_zero() {
        use crate::engine::EngineConfig;
        use vlsi_trace::VecSink;
        let mut b = HypergraphBuilder::new();
        let v: Vec<_> = (0..12).map(|_| b.add_vertex(1)).collect();
        for w in v.windows(2) {
            b.add_net(1, [w[0], w[1]]).unwrap();
        }
        let hg = b.build().unwrap();
        let fx = FixedVertices::all_free(12);
        let bc = BalanceConstraint::bisection(12, Tolerance::Relative(0.2));
        let engine = EngineConfig::by_name("fm").unwrap();
        let cancel = CancelToken::new();
        cancel.cancel();

        let sink = VecSink::new();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let seq =
            multistart_engine_cancellable(&hg, &fx, &bc, 8, &mut rng, &sink, &engine, &cancel)
                .unwrap();
        assert_eq!(seq.starts.len(), 1, "only start 0 runs when pre-cancelled");
        assert_eq!(seq.best.parts.len(), 12);
        assert!(sink.take().iter().any(
            |e| matches!(e, Event::Cancelled { stage, .. } if *stage == CancelStage::Multistart)
        ));

        let sink = VecSink::new();
        let par =
            multistart_parallel_engine_cancellable(&hg, &fx, &bc, 8, 2, 3, &engine, &sink, &cancel)
                .unwrap();
        assert!(
            !par.starts.is_empty() && par.starts.len() < 8,
            "pre-cancelled parallel run skips later starts"
        );
        assert_eq!(par.best.parts.len(), 12);
        assert!(sink.take().iter().any(
            |e| matches!(e, Event::Cancelled { stage, .. } if *stage == CancelStage::Multistart)
        ));
    }

    #[test]
    fn cancellable_parallel_matches_plain_when_never_cancelled() {
        use crate::engine::EngineConfig;
        let mut b = HypergraphBuilder::new();
        let v: Vec<_> = (0..16).map(|_| b.add_vertex(1)).collect();
        for w in v.windows(3) {
            b.add_net(1, [w[0], w[1], w[2]]).unwrap();
        }
        let hg = b.build().unwrap();
        let fx = FixedVertices::all_free(16);
        let bc = BalanceConstraint::bisection(16, Tolerance::Relative(0.2));
        let engine = EngineConfig::by_name("fm").unwrap();
        let plain = multistart_parallel_engine(&hg, &fx, &bc, 4, 2, 9, &engine).unwrap();
        let canc = multistart_parallel_engine_cancellable(
            &hg,
            &fx,
            &bc,
            4,
            2,
            9,
            &engine,
            &NullSink,
            &CancelToken::never(),
        )
        .unwrap();
        assert_eq!(plain.best.cut, canc.best.cut);
        assert_eq!(plain.best.parts, canc.best.parts);
        let a: Vec<_> = plain.starts.iter().map(|s| s.cut).collect();
        let b: Vec<_> = canc.starts.iter().map(|s| s.cut).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn timing_accumulates() {
        let (hg, fx, bc) = tiny();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let outcome = multistart(&hg, &fx, &bc, 2, &mut rng, |_, _, _, _| {
            Ok(PartitionResult::new(vec![PartId(0); 4], 1))
        })
        .unwrap();
        assert!(outcome.time_of_first(2) >= outcome.starts[0].elapsed);
        assert!(outcome.avg_start_time() <= outcome.time_of_first(2));
    }
}
